(* Command-line front end for the conflict-abstraction verifier:

     proust_verify check --model counter --threshold 2
     proust_verify check --model pqueue --literal-figure3
     proust_verify pairs --model queue
     proust_verify synth --model counter
     proust_verify sat --model counter --threshold 1

   `check` runs the exhaustive Definition 3.1 checker, `sat` the
   SAT-based encoding, `pairs` lists non-commuting operation pairs,
   `synth` runs the CEGIS search over the model's candidate space. *)

module V = Proust_verify

(* Each built-in model is packed with its candidate abstractions so the
   subcommands can dispatch on a name. *)
type packed =
  | Packed : {
      model : ('s, 'o, 'r) V.Adt_model.t;
      ca : ('s, 'o) V.Ca_spec.t;
      candidates : ('s, 'o) V.Ca_spec.t list;
    }
      -> packed

let pack name ~threshold ~literal ~slots ~stripes =
  match name with
  | "counter" ->
      Packed
        {
          model = V.Adt_model.counter ~bound:6;
          ca = V.Ca_spec.counter ~threshold ();
          candidates = V.Synth.counter_candidates ~max_threshold:4;
        }
  | "map" ->
      Packed
        {
          model = V.Adt_model.small_map ();
          ca =
            (if literal then V.Ca_spec.broken_map ~slots ()
             else V.Ca_spec.striped_map ~slots ());
          candidates = V.Synth.map_candidates ~max_slots:slots;
        }
  | "pqueue" ->
      Packed
        {
          model = V.Adt_model.small_pqueue ();
          ca =
            (if literal then V.Ca_spec.figure3_literal_pqueue ~stripes ()
             else V.Ca_spec.pqueue ~stripes ());
          candidates = V.Synth.pqueue_candidates ~stripes;
        }
  | "queue" ->
      Packed
        {
          model = V.Adt_model.small_queue ();
          ca = (if literal then V.Ca_spec.broken_fifo () else V.Ca_spec.fifo ());
          candidates =
            [ V.Ca_spec.broken_fifo (); V.Ca_spec.fifo () ];
        }
  | "stack" ->
      Packed
        {
          model = V.Adt_model.small_stack ();
          ca = V.Ca_spec.stack ();
          candidates = [ V.Ca_spec.stack () ];
        }
  | other ->
      prerr_endline
        ("unknown model: " ^ other ^ " (counter|map|pqueue|queue|stack)");
      exit 2

let do_check (Packed p) =
  Printf.printf "model %s, abstraction %s, %d states x %d ops\n"
    p.model.V.Adt_model.name p.ca.V.Ca_spec.name
    (List.length p.model.V.Adt_model.states)
    (List.length p.model.V.Adt_model.ops);
  match V.Ca_check.check p.model p.ca with
  | None ->
      print_endline "VERIFIED: Definition 3.1 holds on the bounded model";
      0
  | Some cex ->
      print_endline
        ("REJECTED: " ^ V.Ca_check.show_counterexample p.model cex);
      1

let do_sat (Packed p) =
  match V.Ca_encode.check_model p.model p.ca with
  | V.Ca_encode.G_correct ->
      print_endline "UNSAT: the conflict abstraction is correct (Theorem E.1)";
      0
  | V.Ca_encode.G_counterexample d ->
      print_endline ("SAT: " ^ d);
      1

let do_pairs (Packed p) =
  let pairs = V.Commute.non_commuting_pairs p.model in
  Printf.printf "%d non-commuting (state, m, n) triples:\n" (List.length pairs);
  List.iter
    (fun (s, a, b) ->
      Printf.printf "  %s : %s vs %s\n"
        (p.model.V.Adt_model.show_state s)
        (p.model.V.Adt_model.show_op a)
        (p.model.V.Adt_model.show_op b))
    pairs;
  0

let do_derive (Packed p) =
  let ca = V.Synth.derive p.model in
  Printf.printf "derived %s: %d slots\n" ca.V.Ca_spec.name ca.V.Ca_spec.slots;
  match V.Ca_check.check p.model ca with
  | None ->
      print_endline "CERTIFIED by the Definition 3.1 checker";
      0
  | Some cex ->
      print_endline ("FAILED: " ^ V.Ca_check.show_counterexample p.model cex);
      1

let do_synth (Packed p) =
  let out = V.Synth.synthesize p.model p.candidates in
  Printf.printf "tried %d candidates, %d full checks, %d counterexamples\n"
    out.V.Synth.candidates_tried out.V.Synth.full_checks
    (List.length out.V.Synth.counterexamples);
  List.iter
    (fun cex ->
      print_endline ("  cex: " ^ V.Ca_check.show_counterexample p.model cex))
    out.V.Synth.counterexamples;
  match out.V.Synth.chosen with
  | Some ca ->
      print_endline ("SYNTHESIZED: " ^ ca.V.Ca_spec.name);
      0
  | None ->
      print_endline "NO SOUND CANDIDATE in the search space";
      1

open Cmdliner

let model_arg =
  Arg.(
    value & opt string "counter"
    & info [ "model" ] ~doc:"Model: counter, map, pqueue, queue, stack")

let threshold_arg =
  Arg.(value & opt int 2 & info [ "threshold" ] ~doc:"Counter CA threshold")

let literal_arg =
  Arg.(
    value & flag
    & info [ "literal-figure3"; "broken" ]
        ~doc:"Use the known-broken variant of the abstraction")

let slots_arg = Arg.(value & opt int 4 & info [ "slots" ] ~doc:"CA slot count")

let stripes_arg =
  Arg.(value & opt int 2 & info [ "stripes" ] ~doc:"Group-element stripes")

let with_packed f model threshold literal slots stripes =
  exit (f (pack model ~threshold ~literal ~slots ~stripes))

let term f =
  Term.(
    const (with_packed f) $ model_arg $ threshold_arg $ literal_arg $ slots_arg
    $ stripes_arg)

let cmds =
  [
    Cmd.v (Cmd.info "check" ~doc:"Exhaustive Definition 3.1 check") (term do_check);
    Cmd.v (Cmd.info "sat" ~doc:"SAT-based check (Appendix E)") (term do_sat);
    Cmd.v (Cmd.info "pairs" ~doc:"List non-commuting operation pairs") (term do_pairs);
    Cmd.v (Cmd.info "synth" ~doc:"CEGIS search for a sound abstraction") (term do_synth);
    Cmd.v
      (Cmd.info "derive"
         ~doc:"Derive an abstraction automatically from commutativity conditions")
      (term do_derive);
  ]

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "proust_verify" ~doc:"Conflict-abstraction verification")
          cmds))
