examples/bank_transfer.ml: Domain Format List Option Printf Proust_stm Proust_structures Random Stm
