examples/inventory.ml: Array Atomic Domain List Option Printf Proust_structures Random Stm
