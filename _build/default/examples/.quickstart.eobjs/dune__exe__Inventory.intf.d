examples/inventory.mli:
