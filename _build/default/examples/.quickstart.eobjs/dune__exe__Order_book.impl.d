examples/order_book.ml: Domain List Printf Proust_structures Random Stm String Tvar
