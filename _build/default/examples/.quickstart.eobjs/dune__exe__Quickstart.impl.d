examples/quickstart.ml: Printf Proust_structures Stm
