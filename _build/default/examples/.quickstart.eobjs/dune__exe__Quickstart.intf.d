examples/quickstart.mli:
