examples/task_scheduler.ml: Atomic Domain List Printf Proust_structures Random Stm Tvar
