(* Atomic transfers across two Proustian maps under real concurrency.

   Each account has a checking and a savings balance, in two separate
   wrapped maps.  Concurrent transactions move money between random
   accounts and between the two maps; the invariant is that the global
   sum of money is conserved, which only holds if the maps compose
   transactionally.

   Run with: dune exec examples/bank_transfer.exe *)

module S = Proust_structures

let accounts = 64
let domains = 4
let transfers = 2_000
let initial = 1_000

let () =
  let checking : (int, int) S.P_lazy_hashmap.t = S.P_lazy_hashmap.make () in
  let savings : (int, int) S.P_lazy_triemap.t = S.P_lazy_triemap.make () in
  Stm.atomically (fun txn ->
      for a = 0 to accounts - 1 do
        ignore (S.P_lazy_hashmap.put checking txn a initial);
        ignore (S.P_lazy_triemap.put savings txn a initial)
      done);

  let worker d () =
    let rng = Random.State.make [| d |] in
    for _ = 1 to transfers do
      let from_acct = Random.State.int rng accounts in
      let to_acct = Random.State.int rng accounts in
      let amount = 1 + Random.State.int rng 20 in
      Stm.atomically (fun txn ->
          (* Move from one account's checking to another's savings;
             refuse (atomically observing both maps) on insufficient
             funds. *)
          let c = Option.get (S.P_lazy_hashmap.get checking txn from_acct) in
          if c >= amount then begin
            ignore (S.P_lazy_hashmap.put checking txn from_acct (c - amount));
            let s = Option.get (S.P_lazy_triemap.get savings txn to_acct) in
            ignore (S.P_lazy_triemap.put savings txn to_acct (s + amount))
          end)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;

  let total =
    Stm.atomically (fun txn ->
        let t = ref 0 in
        for a = 0 to accounts - 1 do
          t := !t + Option.get (S.P_lazy_hashmap.get checking txn a);
          t := !t + Option.get (S.P_lazy_triemap.get savings txn a)
        done;
        !t)
  in
  let expected = 2 * accounts * initial in
  Printf.printf "%d domains x %d transfers: total=%d expected=%d -> %s\n"
    domains transfers total expected
    (if total = expected then "CONSERVED" else "LOST MONEY (bug!)");
  Format.printf "STM activity: %a@." Proust_stm.Stats.pp
    (Proust_stm.Stats.read ());
  exit (if total = expected then 0 else 1)
