(* A miniature limit-order book built from three Proustian objects:
   two priority queues (bids: highest price first; asks: lowest price
   first) and an ordered map of executed trades keyed by sequence
   number, supporting range scans over recent history.

   Matching is a single transaction: pop the best bid and best ask,
   and either execute (recording the trade) or put both back — so no
   observer ever sees a half-matched book.

   Run with: dune exec examples/order_book.exe *)

module S = Proust_structures

type order = { price : int; id : int }

let () =
  (* bids: max-heap via inverted comparison *)
  let bids =
    S.P_lazy_pqueue.make ~cmp:(fun a b -> compare (b.price, b.id) (a.price, a.id)) ()
  in
  let asks =
    S.P_lazy_pqueue.make ~cmp:(fun a b -> compare (a.price, a.id) (b.price, b.id)) ()
  in
  let trades : (int, int) S.P_omap.t =
    (* trade sequence number -> execution price *)
    S.P_omap.make ~slots:32 ~index:(fun seq -> seq / 8) ()
  in
  let trade_seq = Tvar.make 0 in

  let submit side price id =
    Stm.atomically (fun txn ->
        match side with
        | `Bid -> S.P_lazy_pqueue.insert bids txn { price; id }
        | `Ask -> S.P_lazy_pqueue.insert asks txn { price; id })
  in

  (* Try to cross the book once; true if a trade executed. *)
  let match_once () =
    Stm.atomically (fun txn ->
        match
          (S.P_lazy_pqueue.min bids txn, S.P_lazy_pqueue.min asks txn)
        with
        | Some bid, Some ask when bid.price >= ask.price ->
            ignore (S.P_lazy_pqueue.remove_min bids txn);
            ignore (S.P_lazy_pqueue.remove_min asks txn);
            let seq = Stm.read txn trade_seq in
            Stm.write txn trade_seq (seq + 1);
            ignore (S.P_omap.put trades txn seq ((bid.price + ask.price) / 2));
            true
        | _ -> false)
  in

  let traders = 3 and orders_each = 120 in
  let ds =
    List.init traders (fun t ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| t |] in
            for i = 0 to orders_each - 1 do
              let id = (t * orders_each) + i in
              let price = 95 + Random.State.int rng 11 in
              submit (if Random.State.bool rng then `Bid else `Ask) price id;
              (* opportunistic matching by every trader *)
              ignore (match_once ())
            done))
  in
  List.iter Domain.join ds;
  (* drain remaining crosses *)
  while match_once () do
    ()
  done;

  let executed = Tvar.peek trade_seq in
  let resting =
    Stm.atomically (fun txn ->
        (S.P_lazy_pqueue.size bids txn, S.P_lazy_pqueue.size asks txn))
  in
  let total_orders = traders * orders_each in
  let accounted = (2 * executed) + fst resting + snd resting in
  Printf.printf "orders=%d trades=%d resting=(%d bids, %d asks) -> %s\n"
    total_orders executed (fst resting) (snd resting)
    (if accounted = total_orders then "BALANCED" else "IMBALANCED (bug!)");

  (* Range-scan the last few trades from the ordered map. *)
  let recent =
    Stm.atomically (fun txn ->
        S.P_omap.range trades txn ~lo:(max 0 (executed - 5)) ~hi:executed)
  in
  Printf.printf "last trades: %s\n"
    (String.concat ", "
       (List.map (fun (seq, px) -> Printf.sprintf "#%d@%d" seq px) recent));
  (* Book never crossed at rest: best bid < best ask. *)
  (match
     Stm.atomically (fun txn ->
         (S.P_lazy_pqueue.min bids txn, S.P_lazy_pqueue.min asks txn))
   with
  | Some bid, Some ask ->
      Printf.printf "resting spread: bid %d / ask %d (%s)\n" bid.price
        ask.price
        (if bid.price < ask.price then "uncrossed" else "CROSSED (bug!)")
  | _ -> print_endline "book empty on one side");
  exit (if accounted = total_orders then 0 else 1)
