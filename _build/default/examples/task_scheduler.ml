(* A job scheduler composing a Proustian priority queue with a
   Proustian map, plus the STM's retry combinator.

   Producers submit jobs with priorities; workers atomically pop the
   highest-priority job AND mark it running in the status map — no job
   can be observed popped-but-untracked.  Workers block on [Stm.retry]
   when the queue is empty and wake when a producer commits.

   Run with: dune exec examples/task_scheduler.exe *)

module S = Proust_structures

type status = Pending | Running | Done

let jobs_per_producer = 50
let producers = 2
let workers = 2

let () =
  let queue : (int * int) S.P_lazy_pqueue.t =
    (* jobs are (priority, id); smaller priority = more urgent *)
    S.P_lazy_pqueue.make ~cmp:compare ()
  in
  let status : (int, status) S.P_lazy_hashmap.t = S.P_lazy_hashmap.make () in
  let produced = Atomic.make 0 in
  let processed = Atomic.make 0 in
  let popped = Tvar.make 0 in
  let total_jobs = producers * jobs_per_producer in

  let producer p () =
    let rng = Random.State.make [| p |] in
    for i = 0 to jobs_per_producer - 1 do
      let id = (p * jobs_per_producer) + i in
      let prio = Random.State.int rng 10 in
      Stm.atomically (fun txn ->
          S.P_lazy_pqueue.insert queue txn (prio, id);
          ignore (S.P_lazy_hashmap.put status txn id Pending));
      ignore (Atomic.fetch_and_add produced 1)
    done
  in

  let worker () =
    let running = ref true in
    while !running do
      let job =
        Stm.atomically (fun txn ->
            match S.P_lazy_pqueue.remove_min queue txn with
            | Some (_, id) ->
                Stm.write txn popped (Stm.read txn popped + 1);
                ignore (S.P_lazy_hashmap.put status txn id Running);
                Some id
            | None ->
                (* Nothing to pop.  If every job has been claimed we are
                   finished; otherwise block until either a producer
                   commits an insert (the queue's conflict-abstraction
                   slots change) or another worker claims the last job
                   (the [popped] tvar changes). *)
                if Stm.read txn popped >= total_jobs then None
                else Stm.retry txn)
      in
      match job with
      | None -> running := false
      | Some id ->
          (* "Execute" the job, then mark it done. *)
          Stm.atomically (fun txn ->
              ignore (S.P_lazy_hashmap.put status txn id Done));
          ignore (Atomic.fetch_and_add processed 1)
    done
  in

  let ps = List.init producers (fun p -> Domain.spawn (producer p)) in
  let ws = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ps;
  List.iter Domain.join ws;

  let done_count =
    Stm.atomically (fun txn ->
        let n = ref 0 in
        for id = 0 to total_jobs - 1 do
          if S.P_lazy_hashmap.get status txn id = Some Done then incr n
        done;
        !n)
  in
  Printf.printf "produced=%d processed=%d done=%d / %d -> %s\n"
    (Atomic.get produced) (Atomic.get processed) done_count total_jobs
    (if done_count = total_jobs then "ALL DONE" else "INCOMPLETE (bug!)");
  exit (if done_count = total_jobs then 0 else 1)
