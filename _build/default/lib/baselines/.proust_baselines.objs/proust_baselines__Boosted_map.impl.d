lib/baselines/boosted_map.ml: Proust_structures
