lib/baselines/boosted_map.mli: Proust_structures Stm
