lib/baselines/coarse_map.mli: Proust_structures Stm
