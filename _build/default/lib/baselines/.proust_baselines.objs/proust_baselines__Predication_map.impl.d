lib/baselines/predication_map.ml: Committed_size Proust_concurrent Proust_structures Stm Tvar
