lib/baselines/predication_map.mli: Proust_structures Stm
