lib/baselines/stm_hashmap.ml: Array Hashtbl List Option Proust_structures Stm Tvar
