lib/baselines/stm_hashmap.mli: Proust_structures Stm
