lib/concurrent/avl.ml: List
