lib/concurrent/avl.mli:
