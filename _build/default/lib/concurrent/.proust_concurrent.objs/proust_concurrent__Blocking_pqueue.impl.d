lib/concurrent/blocking_pqueue.ml: Array Fun List Mutex
