lib/concurrent/blocking_pqueue.mli:
