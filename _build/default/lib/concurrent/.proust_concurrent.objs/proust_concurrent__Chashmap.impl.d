lib/concurrent/chashmap.ml: Array Fun Hashtbl Mutex Striped_counter
