lib/concurrent/chashmap.mli:
