lib/concurrent/cow_omap.ml: Atomic Avl List Stdlib
