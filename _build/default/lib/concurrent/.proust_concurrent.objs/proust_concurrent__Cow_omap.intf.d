lib/concurrent/cow_omap.mli:
