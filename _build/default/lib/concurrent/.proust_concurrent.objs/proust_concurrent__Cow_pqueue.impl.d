lib/concurrent/cow_pqueue.ml: Atomic Pheap
