lib/concurrent/cow_pqueue.mli:
