lib/concurrent/cow_queue.ml: Atomic Pqueue_fifo
