lib/concurrent/cow_queue.mli:
