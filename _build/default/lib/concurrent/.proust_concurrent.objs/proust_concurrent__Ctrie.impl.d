lib/concurrent/ctrie.ml: Atomic Hamt Hashtbl
