lib/concurrent/ctrie.mli:
