lib/concurrent/deque.ml: Fun List Mutex Option
