lib/concurrent/deque.mli:
