lib/concurrent/hamt.ml: Array List
