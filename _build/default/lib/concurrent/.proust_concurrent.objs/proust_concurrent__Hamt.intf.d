lib/concurrent/hamt.mli:
