lib/concurrent/lf_list.ml: Atomic List Stdlib Striped_counter
