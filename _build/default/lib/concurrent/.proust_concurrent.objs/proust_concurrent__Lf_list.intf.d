lib/concurrent/lf_list.mli:
