lib/concurrent/nn_counter.ml: Atomic
