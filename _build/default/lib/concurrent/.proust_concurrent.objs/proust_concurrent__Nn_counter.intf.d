lib/concurrent/nn_counter.mli:
