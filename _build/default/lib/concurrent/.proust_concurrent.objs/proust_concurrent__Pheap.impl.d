lib/concurrent/pheap.ml: List
