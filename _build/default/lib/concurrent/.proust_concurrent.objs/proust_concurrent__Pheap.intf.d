lib/concurrent/pheap.mli:
