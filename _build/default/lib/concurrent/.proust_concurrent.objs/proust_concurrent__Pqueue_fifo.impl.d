lib/concurrent/pqueue_fifo.ml: List
