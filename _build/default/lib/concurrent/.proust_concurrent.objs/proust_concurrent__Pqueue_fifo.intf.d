lib/concurrent/pqueue_fifo.mli:
