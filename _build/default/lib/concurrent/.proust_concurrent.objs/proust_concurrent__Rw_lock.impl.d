lib/concurrent/rw_lock.ml: Fun Hashtbl Mutex Option Unix
