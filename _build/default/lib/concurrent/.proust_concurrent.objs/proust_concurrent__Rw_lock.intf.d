lib/concurrent/rw_lock.mli:
