lib/concurrent/skiplist.ml: Array Atomic Domain Fun List Mutex Option Stdlib Striped_counter
