lib/concurrent/skiplist.mli:
