lib/concurrent/striped_counter.ml: Array Atomic Domain
