lib/concurrent/striped_counter.mli:
