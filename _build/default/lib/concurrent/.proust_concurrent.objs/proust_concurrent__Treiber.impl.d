lib/concurrent/treiber.ml: Atomic Striped_counter
