lib/concurrent/treiber.mli:
