type ('k, 'v) t =
  | Leaf
  | Node of { l : ('k, 'v) t; k : 'k; v : 'v; r : ('k, 'v) t; h : int }

let empty = Leaf
let is_empty t = t = Leaf
let height = function Leaf -> 0 | Node { h; _ } -> h

let node l k v r =
  Node { l; k; v; r; h = 1 + max (height l) (height r) }

(* Rebalance assuming |height l - height r| <= 2. *)
let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Node { l = ll; k = lk; v = lv; r = lr; _ } when height ll >= height lr ->
        node ll lk lv (node lr k v r)
    | Node
        {
          l = ll;
          k = lk;
          v = lv;
          r = Node { l = lrl; k = lrk; v = lrv; r = lrr; _ };
          _;
        } ->
        node (node ll lk lv lrl) lrk lrv (node lrr k v r)
    | _ -> assert false
  else if hr > hl + 1 then
    match r with
    | Node { l = rl; k = rk; v = rv; r = rr; _ } when height rr >= height rl ->
        node (node l k v rl) rk rv rr
    | Node
        {
          l = Node { l = rll; k = rlk; v = rlv; r = rlr; _ };
          k = rk;
          v = rv;
          r = rr;
          _;
        } ->
        node (node l k v rll) rlk rlv (node rlr rk rv rr)
    | _ -> assert false
  else node l k v r

let rec find ~compare key = function
  | Leaf -> None
  | Node { l; k; v; r; _ } ->
      let c = compare key k in
      if c = 0 then Some v
      else if c < 0 then find ~compare key l
      else find ~compare key r

let rec add ~compare key value = function
  | Leaf -> (node Leaf key value Leaf, None)
  | Node { l; k; v; r; _ } ->
      let c = compare key k in
      if c = 0 then (node l key value r, Some v)
      else if c < 0 then
        let l', old = add ~compare key value l in
        (balance l' k v r, old)
      else
        let r', old = add ~compare key value r in
        (balance l k v r', old)

let rec min_binding = function
  | Leaf -> None
  | Node { l = Leaf; k; v; _ } -> Some (k, v)
  | Node { l; _ } -> min_binding l

let rec max_binding = function
  | Leaf -> None
  | Node { r = Leaf; k; v; _ } -> Some (k, v)
  | Node { r; _ } -> max_binding r

let rec remove_min = function
  | Leaf -> invalid_arg "Avl.remove_min"
  | Node { l = Leaf; k; v; r; _ } -> (k, v, r)
  | Node { l; k; v; r; _ } ->
      let mk, mv, l' = remove_min l in
      (mk, mv, balance l' k v r)

let rec remove ~compare key = function
  | Leaf -> (Leaf, None)
  | Node { l; k; v; r; _ } ->
      let c = compare key k in
      if c = 0 then
        match (l, r) with
        | Leaf, _ -> (r, Some v)
        | _, Leaf -> (l, Some v)
        | _ ->
            let sk, sv, r' = remove_min r in
            (balance l sk sv r', Some v)
      else if c < 0 then
        let l', old = remove ~compare key l in
        (balance l' k v r, old)
      else
        let r', old = remove ~compare key r in
        (balance l k v r', old)

let rec iter f = function
  | Leaf -> ()
  | Node { l; k; v; r; _ } ->
      iter f l;
      f k v;
      iter f r

let rec cardinal = function
  | Leaf -> 0
  | Node { l; r; _ } -> 1 + cardinal l + cardinal r

let bindings t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let rec fold_range ~compare ~lo ~hi f t acc =
  match t with
  | Leaf -> acc
  | Node { l; k; v; r; _ } ->
      let acc = if compare lo k < 0 then fold_range ~compare ~lo ~hi f l acc else acc in
      let acc =
        if compare lo k <= 0 && compare k hi <= 0 then f k v acc else acc
      in
      if compare k hi < 0 then fold_range ~compare ~lo ~hi f r acc else acc

let well_formed ~compare t =
  let ok = ref true in
  let rec go lo hi = function
    | Leaf -> 0
    | Node { l; k; v = _; r; h } ->
        (match lo with Some lo -> if compare k lo <= 0 then ok := false | None -> ());
        (match hi with Some hi -> if compare k hi >= 0 then ok := false | None -> ());
        let hl = go lo (Some k) l in
        let hr = go (Some k) hi r in
        if h <> 1 + max hl hr then ok := false;
        if abs (hl - hr) > 1 then ok := false;
        h
  in
  ignore (go None None t);
  !ok
