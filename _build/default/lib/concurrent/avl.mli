(** Persistent AVL tree map over ordered keys.  The immutable core of
    {!Cow_omap}, the snapshot-able ordered map the Proustian ordered
    map wraps.  All operations are pure. *)

type ('k, 'v) t

val empty : ('k, 'v) t
val is_empty : ('k, 'v) t -> bool

val find : compare:('k -> 'k -> int) -> 'k -> ('k, 'v) t -> 'v option

(** Returns the updated tree and the previous binding. *)
val add :
  compare:('k -> 'k -> int) -> 'k -> 'v -> ('k, 'v) t -> ('k, 'v) t * 'v option

val remove :
  compare:('k -> 'k -> int) -> 'k -> ('k, 'v) t -> ('k, 'v) t * 'v option

val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option
val cardinal : ('k, 'v) t -> int

(** [fold_range ~compare ~lo ~hi f t acc] folds over bindings with
    [lo <= k <= hi] in ascending key order. *)
val fold_range :
  compare:('k -> 'k -> int) ->
  lo:'k ->
  hi:'k ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) t ->
  'acc ->
  'acc

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val bindings : ('k, 'v) t -> ('k * 'v) list

(** AVL balance + ordering invariants, for property tests. *)
val well_formed : compare:('k -> 'k -> int) -> ('k, 'v) t -> bool
