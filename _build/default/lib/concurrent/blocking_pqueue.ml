type 'a handle = { value : 'a; mutable dead : bool }

type 'a t = {
  m : Mutex.t;
  cmp : 'a -> 'a -> int;
  mutable heap : 'a handle array;  (* slots [0, len) form a binary heap *)
  mutable len : int;
  mutable live : int;
}

let create ~cmp () =
  { m = Mutex.create (); cmp; heap = [||]; len = 0; live = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.heap.(i).value t.heap.(parent).value < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.heap.(l).value t.heap.(!smallest).value < 0 then
    smallest := l;
  if r < t.len && t.cmp t.heap.(r).value t.heap.(!smallest).value < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = max 8 (2 * Array.length t.heap) in
  let heap = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let push t h =
  if t.len = Array.length t.heap then
    if t.len = 0 then t.heap <- Array.make 8 h else grow t;
  t.heap.(t.len) <- h;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_root t =
  let h = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0
  end;
  h

(* Rebuild the heap from live entries once the dead majority makes
   every poll pay for tombstones. *)
let compact t =
  let lived = Array.sub t.heap 0 t.len |> Array.to_list |> List.filter (fun h -> not h.dead) in
  t.len <- 0;
  List.iter (fun h -> push t h) lived

let add t v =
  locked t (fun () ->
      let h = { value = v; dead = false } in
      push t h;
      t.live <- t.live + 1;
      h)

let delete t h =
  locked t (fun () ->
      if h.dead then false
      else begin
        h.dead <- true;
        t.live <- t.live - 1;
        if t.len > 8 && t.live * 2 < t.len then compact t;
        true
      end)

let handle_value h = h.value

let remove_value t v =
  locked t (fun () ->
      let found = ref false in
      for i = 0 to t.len - 1 do
        let h = t.heap.(i) in
        if (not !found) && (not h.dead) && t.cmp h.value v = 0 then begin
          h.dead <- true;
          t.live <- t.live - 1;
          found := true
        end
      done;
      if !found && t.len > 8 && t.live * 2 < t.len then compact t;
      !found)

let rec drop_dead t =
  if t.len > 0 && t.heap.(0).dead then begin
    ignore (pop_root t);
    drop_dead t
  end

let peek t =
  locked t (fun () ->
      drop_dead t;
      if t.len = 0 then None else Some t.heap.(0).value)

let poll t =
  locked t (fun () ->
      drop_dead t;
      if t.len = 0 then None
      else begin
        let h = pop_root t in
        h.dead <- true;
        t.live <- t.live - 1;
        Some h.value
      end)

let contains t v =
  locked t (fun () ->
      let found = ref false in
      for i = 0 to t.len - 1 do
        if (not t.heap.(i).dead) && t.cmp t.heap.(i).value v = 0 then
          found := true
      done;
      !found)

let size t = locked t (fun () -> t.live)
let is_empty t = size t = 0

let to_sorted_list t =
  locked t (fun () ->
      Array.sub t.heap 0 t.len |> Array.to_list
      |> List.filter (fun h -> not h.dead)
      |> List.map (fun h -> h.value)
      |> List.sort t.cmp)
