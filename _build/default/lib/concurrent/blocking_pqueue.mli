(** Mutex-guarded binary-heap priority queue with removable handles —
    the repo's stand-in for [java.util.concurrent.PriorityBlockingQueue]
    as used by the eager Proustian priority queue (Figure 3).

    [add] returns a handle that supports the paper's lazy-deletion
    trick: the eager wrapper registers [delete handle] as the inverse
    of [insert].  Deleted entries are skipped by [poll]/[peek] and
    physically compacted once they dominate the heap. *)

type 'a t
type 'a handle

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val add : 'a t -> 'a -> 'a handle

(** Mark the handle's entry dead; [true] if this call killed it. *)
val delete : 'a t -> 'a handle -> bool

val handle_value : 'a handle -> 'a

(** Mark one live entry comparing equal to the value dead; [true] if
    one was found.  Supports inverses whose handle was consumed by a
    same-transaction [poll] (see {!Proust_structures.P_pqueue}). *)
val remove_value : 'a t -> 'a -> bool
val peek : 'a t -> 'a option
val poll : 'a t -> 'a option

(** O(n) scan of live entries. *)
val contains : 'a t -> 'a -> bool

(** Count of live entries. *)
val size : 'a t -> int

val is_empty : 'a t -> bool
val to_sorted_list : 'a t -> 'a list
