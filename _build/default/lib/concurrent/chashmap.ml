type ('k, 'v) stripe = { m : Mutex.t; tbl : ('k, 'v) Hashtbl.t }

type ('k, 'v) t = {
  stripes : ('k, 'v) stripe array;
  hash : 'k -> int;
  mask : int;
  count : Striped_counter.t;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(stripes = 32) ?(hash = Hashtbl.hash) () =
  let n = next_pow2 stripes 1 in
  {
    stripes = Array.init n (fun _ -> { m = Mutex.create (); tbl = Hashtbl.create 16 });
    hash;
    mask = n - 1;
    count = Striped_counter.create ();
  }

let stripe_of t k = t.stripes.(t.hash k land t.mask)

let with_stripe t k f =
  let s = stripe_of t k in
  Mutex.lock s.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.m) (fun () -> f s.tbl)

let get t k = with_stripe t k (fun tbl -> Hashtbl.find_opt tbl k)
let contains t k = with_stripe t k (fun tbl -> Hashtbl.mem tbl k)

let put t k v =
  with_stripe t k (fun tbl ->
      let old = Hashtbl.find_opt tbl k in
      Hashtbl.replace tbl k v;
      if old = None then Striped_counter.incr t.count;
      old)

let put_if_absent t k v =
  with_stripe t k (fun tbl ->
      match Hashtbl.find_opt tbl k with
      | Some _ as old -> old
      | None ->
          Hashtbl.replace tbl k v;
          Striped_counter.incr t.count;
          None)

let remove t k =
  with_stripe t k (fun tbl ->
      let old = Hashtbl.find_opt tbl k in
      if old <> None then begin
        Hashtbl.remove tbl k;
        Striped_counter.decr t.count
      end;
      old)

let compute t k f =
  with_stripe t k (fun tbl ->
      let old = Hashtbl.find_opt tbl k in
      (match f old with
      | Some v ->
          Hashtbl.replace tbl k v;
          if old = None then Striped_counter.incr t.count
      | None ->
          if old <> None then begin
            Hashtbl.remove tbl k;
            Striped_counter.decr t.count
          end);
      old)

let size t = Striped_counter.get t.count
let is_empty t = size t = 0

let iter f t =
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.m)
        (fun () -> Hashtbl.iter f s.tbl))
    t.stripes

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.m)
        (fun () ->
          Striped_counter.add t.count (-Hashtbl.length s.tbl);
          Hashtbl.reset s.tbl))
    t.stripes

let bindings t = fold (fun k v acc -> (k, v) :: acc) t []
