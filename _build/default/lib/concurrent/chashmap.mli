(** Lock-striped concurrent hash map — the repo's stand-in for
    [java.util.concurrent.ConcurrentHashMap].

    Linearizable per-key operations; size is maintained by a striped
    counter and is only quiescently consistent, exactly like the Java
    original.  No snapshot support — which is precisely why the lazy
    Proustian wrapper over this structure must use memoized shadow
    copies rather than snapshots (§4). *)

type ('k, 'v) t

(** [create ()] uses [Hashtbl.hash] and structural equality;
    [stripes] is rounded up to a power of two (default 32). *)
val create : ?stripes:int -> ?hash:('k -> int) -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> 'v option
val contains : ('k, 'v) t -> 'k -> bool

(** [put t k v] binds [k] to [v] and returns the previous binding. *)
val put : ('k, 'v) t -> 'k -> 'v -> 'v option

(** [put_if_absent t k v] binds only when unbound; returns the existing
    binding otherwise. *)
val put_if_absent : ('k, 'v) t -> 'k -> 'v -> 'v option

val remove : ('k, 'v) t -> 'k -> 'v option

(** [compute t k f] atomically (w.r.t. key [k]) replaces the binding of
    [k] by [f (current binding)]; [None] removes.  Returns the previous
    binding. *)
val compute : ('k, 'v) t -> 'k -> ('v option -> 'v option) -> 'v option

val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

(** Weakly consistent iteration: each stripe is locked in turn. *)
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val clear : ('k, 'v) t -> unit

(** Point-in-time-per-stripe association list (tests/debugging). *)
val bindings : ('k, 'v) t -> ('k * 'v) list
