type ('k, 'v) snapshot = {
  tree : ('k, 'v) Avl.t;
  count : int;
  compare : 'k -> 'k -> int;
}

type ('k, 'v) t = { root : ('k, 'v) snapshot Atomic.t }

let create ?(compare = Stdlib.compare) () =
  { root = Atomic.make { tree = Avl.empty; count = 0; compare } }

let snapshot t = Atomic.get t.root
let get t k = (fun s -> Avl.find ~compare:s.compare k s.tree) (snapshot t)
let contains t k = get t k <> None

let rec put t k v =
  let s = Atomic.get t.root in
  let tree, old = Avl.add ~compare:s.compare k v s.tree in
  let count = if old = None then s.count + 1 else s.count in
  if Atomic.compare_and_set t.root s { s with tree; count } then old
  else put t k v

let rec remove t k =
  let s = Atomic.get t.root in
  let tree, old = Avl.remove ~compare:s.compare k s.tree in
  match old with
  | None -> None
  | Some _ ->
      if Atomic.compare_and_set t.root s { s with tree; count = s.count - 1 }
      then old
      else remove t k

let min_binding t = Avl.min_binding (snapshot t).tree
let max_binding t = Avl.max_binding (snapshot t).tree

let range t ~lo ~hi =
  let s = snapshot t in
  Avl.fold_range ~compare:s.compare ~lo ~hi (fun k v acc -> (k, v) :: acc)
    s.tree []
  |> List.rev

let size t = (snapshot t).count
let is_empty t = size t = 0
let commit t ~expected ~desired = Atomic.compare_and_set t.root expected desired
let bindings t = Avl.bindings (snapshot t).tree

module Snapshot = struct
  type ('k, 'v) t = ('k, 'v) snapshot

  let find s k = Avl.find ~compare:s.compare k s.tree

  let add s k v =
    let tree, old = Avl.add ~compare:s.compare k v s.tree in
    let count = if old = None then s.count + 1 else s.count in
    ({ s with tree; count }, old)

  let remove s k =
    let tree, old = Avl.remove ~compare:s.compare k s.tree in
    let count = if old = None then s.count else s.count - 1 in
    ({ s with tree; count }, old)

  let min_binding s = Avl.min_binding s.tree
  let max_binding s = Avl.max_binding s.tree

  let range s ~lo ~hi =
    Avl.fold_range ~compare:s.compare ~lo ~hi (fun k v acc -> (k, v) :: acc)
      s.tree []
    |> List.rev

  let size s = s.count
  let bindings s = Avl.bindings s.tree
end
