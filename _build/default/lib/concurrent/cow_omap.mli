(** Concurrent copy-on-write ordered map with O(1) snapshots: a
    persistent AVL behind an atomic root.  Linearizable, lock-free, and
    supports range folds — the ordered-map base the paper's footnote 4
    wishes existed as a snapshot-able concurrent collection. *)

type ('k, 'v) t
type ('k, 'v) snapshot

val create : ?compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> 'k -> 'v option
val put : ('k, 'v) t -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> 'k -> 'v option
val contains : ('k, 'v) t -> 'k -> bool
val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option

(** Ascending bindings with [lo <= k <= hi] at a single linearization
    point (an implicit snapshot). *)
val range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k * 'v) list

val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val snapshot : ('k, 'v) t -> ('k, 'v) snapshot
val commit : ('k, 'v) t -> expected:('k, 'v) snapshot -> desired:('k, 'v) snapshot -> bool
val bindings : ('k, 'v) t -> ('k * 'v) list

module Snapshot : sig
  type ('k, 'v) t = ('k, 'v) snapshot

  val find : ('k, 'v) t -> 'k -> 'v option
  val add : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t * 'v option
  val remove : ('k, 'v) t -> 'k -> ('k, 'v) t * 'v option
  val min_binding : ('k, 'v) t -> ('k * 'v) option
  val max_binding : ('k, 'v) t -> ('k * 'v) option
  val range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k * 'v) list
  val size : ('k, 'v) t -> int
  val bindings : ('k, 'v) t -> ('k * 'v) list
end
