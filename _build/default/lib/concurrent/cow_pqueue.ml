type 'a snapshot = { heap : 'a Pheap.t; count : int; cmp : 'a -> 'a -> int }
type 'a t = { root : 'a snapshot Atomic.t }

let create ~cmp () =
  { root = Atomic.make { heap = Pheap.empty; count = 0; cmp } }

let snapshot t = Atomic.get t.root

let rec add t x =
  let s = Atomic.get t.root in
  let s' = { s with heap = Pheap.insert ~cmp:s.cmp x s.heap; count = s.count + 1 } in
  if not (Atomic.compare_and_set t.root s s') then add t x

let peek t = Pheap.find_min (snapshot t).heap

let rec poll t =
  let s = Atomic.get t.root in
  match Pheap.delete_min ~cmp:s.cmp s.heap with
  | None -> None
  | Some (x, heap) ->
      if Atomic.compare_and_set t.root s { s with heap; count = s.count - 1 }
      then Some x
      else poll t

let rec remove t x =
  let s = Atomic.get t.root in
  let heap, removed = Pheap.remove ~cmp:s.cmp x s.heap in
  if not removed then false
  else if Atomic.compare_and_set t.root s { s with heap; count = s.count - 1 }
  then true
  else remove t x

let contains t x =
  let s = snapshot t in
  Pheap.mem ~cmp:s.cmp x s.heap

let size t = (snapshot t).count
let is_empty t = size t = 0
let commit t ~expected ~desired = Atomic.compare_and_set t.root expected desired

module Snapshot = struct
  type 'a t = 'a snapshot

  let peek s = Pheap.find_min s.heap

  let poll s =
    match Pheap.delete_min ~cmp:s.cmp s.heap with
    | None -> None
    | Some (x, heap) -> Some (x, { s with heap; count = s.count - 1 })

  let add s x =
    { s with heap = Pheap.insert ~cmp:s.cmp x s.heap; count = s.count + 1 }

  let remove s x =
    let heap, removed = Pheap.remove ~cmp:s.cmp x s.heap in
    if removed then ({ s with heap; count = s.count - 1 }, true) else (s, false)

  let contains s x = Pheap.mem ~cmp:s.cmp x s.heap
  let size s = s.count
  let to_sorted_list s = Pheap.to_sorted_list ~cmp:s.cmp s.heap
end
