(** Concurrent copy-on-write priority queue with O(1) snapshots.

    The paper's authors "designed a new base copy-on-write data
    structure" for their [LazyPriorityQueue] because no existing
    concurrent heap offered efficient snapshots (§4, footnote 4).
    This is that structure: a persistent pairing heap behind an atomic
    root; every mutation is a CAS retry loop, [snapshot] is one load. *)

type 'a t
type 'a snapshot

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val add : 'a t -> 'a -> unit

(** Smallest element, without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. *)
val poll : 'a t -> 'a option

(** Remove one occurrence of [x]; [true] if something was removed. *)
val remove : 'a t -> 'a -> bool

val contains : 'a t -> 'a -> bool
val size : 'a t -> int
val is_empty : 'a t -> bool

(** O(1) point-in-time snapshot. *)
val snapshot : 'a t -> 'a snapshot

(** [commit t ~expected ~desired] installs a rebuilt state if the queue
    is still exactly [expected]; used by replay paths. *)
val commit : 'a t -> expected:'a snapshot -> desired:'a snapshot -> bool

module Snapshot : sig
  type 'a t = 'a snapshot

  val peek : 'a t -> 'a option
  val poll : 'a t -> ('a * 'a t) option
  val add : 'a t -> 'a -> 'a t
  val remove : 'a t -> 'a -> 'a t * bool
  val contains : 'a t -> 'a -> bool
  val size : 'a t -> int
  val to_sorted_list : 'a t -> 'a list
end
