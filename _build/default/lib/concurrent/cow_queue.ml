type 'a snapshot = 'a Pqueue_fifo.t
type 'a t = { root : 'a snapshot Atomic.t }

let create () = { root = Atomic.make Pqueue_fifo.empty }
let snapshot t = Atomic.get t.root

let rec enqueue t v =
  let s = Atomic.get t.root in
  if not (Atomic.compare_and_set t.root s (Pqueue_fifo.enqueue s v)) then
    enqueue t v

let rec dequeue t =
  let s = Atomic.get t.root in
  match Pqueue_fifo.dequeue s with
  | None -> None
  | Some (v, s') ->
      if Atomic.compare_and_set t.root s s' then Some v else dequeue t

let peek t = Pqueue_fifo.peek (snapshot t)
let size t = Pqueue_fifo.length (snapshot t)
let is_empty t = size t = 0
let commit t ~expected ~desired = Atomic.compare_and_set t.root expected desired
let to_list t = Pqueue_fifo.to_list (snapshot t)

module Snapshot = struct
  type 'a t = 'a snapshot

  let enqueue = Pqueue_fifo.enqueue
  let dequeue = Pqueue_fifo.dequeue
  let peek = Pqueue_fifo.peek
  let size = Pqueue_fifo.length
  let to_list = Pqueue_fifo.to_list
end
