(** Concurrent copy-on-write FIFO queue with O(1) snapshots: a
    persistent queue behind an atomic root, in the mould of
    {!Cow_pqueue}.  Base structure for the lazy Proustian FIFO. *)

type 'a t
type 'a snapshot

val create : unit -> 'a t
val enqueue : 'a t -> 'a -> unit
val dequeue : 'a t -> 'a option
val peek : 'a t -> 'a option
val size : 'a t -> int
val is_empty : 'a t -> bool
val snapshot : 'a t -> 'a snapshot
val commit : 'a t -> expected:'a snapshot -> desired:'a snapshot -> bool
val to_list : 'a t -> 'a list

module Snapshot : sig
  type 'a t = 'a snapshot

  val enqueue : 'a t -> 'a -> 'a t
  val dequeue : 'a t -> ('a * 'a t) option
  val peek : 'a t -> 'a option
  val size : 'a t -> int
  val to_list : 'a t -> 'a list
end
