type ('k, 'v) snapshot = {
  map : ('k, 'v) Hamt.t;
  count : int;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
}

type ('k, 'v) t = { root : ('k, 'v) snapshot Atomic.t }

let create ?(hash = Hashtbl.hash) ?(equal = fun a b -> a = b) () =
  { root = Atomic.make { map = Hamt.empty; count = 0; hash; equal } }

let snapshot t = Atomic.get t.root

let get t k =
  let s = snapshot t in
  Hamt.find ~hash:s.hash ~equal:s.equal k s.map

let contains t k = get t k <> None
let size t = (snapshot t).count
let is_empty t = size t = 0

let rec put t k v =
  let s = Atomic.get t.root in
  let map, old = Hamt.add ~hash:s.hash ~equal:s.equal k v s.map in
  let count = if old = None then s.count + 1 else s.count in
  if Atomic.compare_and_set t.root s { s with map; count } then old
  else put t k v

let rec put_if_absent t k v =
  let s = Atomic.get t.root in
  match Hamt.find ~hash:s.hash ~equal:s.equal k s.map with
  | Some _ as old -> old
  | None ->
      let map, _ = Hamt.add ~hash:s.hash ~equal:s.equal k v s.map in
      if Atomic.compare_and_set t.root s { s with map; count = s.count + 1 }
      then None
      else put_if_absent t k v

let rec remove t k =
  let s = Atomic.get t.root in
  let map, old = Hamt.remove ~hash:s.hash ~equal:s.equal k s.map in
  match old with
  | None -> None
  | Some _ ->
      if Atomic.compare_and_set t.root s { s with map; count = s.count - 1 }
      then old
      else remove t k

let iter f t = Hamt.iter f (snapshot t).map
let fold f t init = Hamt.fold f (snapshot t).map init
let bindings t = Hamt.bindings (snapshot t).map

let compare_and_swap_root t ~expected ~desired =
  Atomic.compare_and_set t.root expected desired

module Snapshot = struct
  type ('k, 'v) t = ('k, 'v) snapshot

  let find s k = Hamt.find ~hash:s.hash ~equal:s.equal k s.map
  let mem s k = find s k <> None
  let size s = s.count

  let add s k v =
    let map, old = Hamt.add ~hash:s.hash ~equal:s.equal k v s.map in
    let count = if old = None then s.count + 1 else s.count in
    ({ s with map; count }, old)

  let remove s k =
    let map, old = Hamt.remove ~hash:s.hash ~equal:s.equal k s.map in
    let count = if old = None then s.count else s.count - 1 in
    ({ s with map; count }, old)

  let iter f s = Hamt.iter f s.map
  let fold f s init = Hamt.fold f s.map init
  let bindings s = Hamt.bindings s.map
end
