(** Concurrent trie map with constant-time snapshots — the repo's
    stand-in for Scala's [concurrent.TrieMap] (Prokopec et al.).

    A persistent {!Hamt} sits behind a single atomic root pointer;
    updates are CAS retry loops, so every operation is linearizable and
    lock-free, and [snapshot] is one atomic load.  That snapshot
    capability is exactly what the lazy Proustian wrapper's
    snapshot-replay shadow copies require (§4). *)

type ('k, 'v) t
type ('k, 'v) snapshot

val create : ?hash:('k -> int) -> ?equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> 'k -> 'v option
val contains : ('k, 'v) t -> 'k -> bool

(** [put t k v] binds and returns the previous binding. *)
val put : ('k, 'v) t -> 'k -> 'v -> 'v option

val put_if_absent : ('k, 'v) t -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> 'k -> 'v option

(** O(1); exact at the linearization point of the load. *)
val size : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

(** O(1) point-in-time snapshot. *)
val snapshot : ('k, 'v) t -> ('k, 'v) snapshot

(** Replace the whole map content in one step (used by replay commit
    paths that rebuilt state on a snapshot).  Returns [false] if the
    map changed since [expected] was taken. *)
val compare_and_swap_root :
  ('k, 'v) t -> expected:('k, 'v) snapshot -> desired:('k, 'v) snapshot -> bool

(** Iteration over the live map works on an implicit snapshot. *)
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val bindings : ('k, 'v) t -> ('k * 'v) list

module Snapshot : sig
  type ('k, 'v) t = ('k, 'v) snapshot

  val find : ('k, 'v) t -> 'k -> 'v option
  val mem : ('k, 'v) t -> 'k -> bool
  val size : ('k, 'v) t -> int
  val add : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t * 'v option
  val remove : ('k, 'v) t -> 'k -> ('k, 'v) t * 'v option
  val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
  val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
  val bindings : ('k, 'v) t -> ('k * 'v) list
end
