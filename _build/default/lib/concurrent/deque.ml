type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a t = {
  m : Mutex.t;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable count : int;
}

let create () = { m = Mutex.create (); front = None; back = None; count = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push_front t v =
  locked t (fun () ->
      let n = { value = v; prev = None; next = t.front; linked = true } in
      (match t.front with
      | Some f -> f.prev <- Some n
      | None -> t.back <- Some n);
      t.front <- Some n;
      t.count <- t.count + 1;
      n)

let push_back t v =
  locked t (fun () ->
      let n = { value = v; prev = t.back; next = None; linked = true } in
      (match t.back with
      | Some b -> b.next <- Some n
      | None -> t.front <- Some n);
      t.back <- Some n;
      t.count <- t.count + 1;
      n)

(* Caller holds the mutex. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  t.count <- t.count - 1

let pop_front t =
  locked t (fun () ->
      match t.front with
      | None -> None
      | Some n ->
          unlink t n;
          Some n.value)

let pop_back t =
  locked t (fun () ->
      match t.back with
      | None -> None
      | Some n ->
          unlink t n;
          Some n.value)

let peek_front t = locked t (fun () -> Option.map (fun n -> n.value) t.front)
let peek_back t = locked t (fun () -> Option.map (fun n -> n.value) t.back)

let delete t n =
  locked t (fun () ->
      if n.linked then begin
        unlink t n;
        true
      end
      else false)

let node_value n = n.value

let remove_value t v =
  locked t (fun () ->
      let rec go = function
        | None -> false
        | Some n ->
            if n.value = v then begin
              unlink t n;
              true
            end
            else go n.next
      in
      go t.front)

let size t = locked t (fun () -> t.count)
let is_empty t = size t = 0

let to_list t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go (n.value :: acc) n.next
      in
      go [] t.front)
