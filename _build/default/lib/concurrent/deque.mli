(** Mutex-guarded doubly-linked deque with removable node handles —
    the repo's stand-in for [java.util.concurrent.LinkedBlockingDeque].

    The eager Proustian FIFO queue wraps this: an enqueue's inverse
    deletes the node it created (lazy deletion by handle), and a
    dequeue's inverse pushes the value back on the end it came from —
    operations a lock-free Michael-Scott queue cannot support. *)

type 'a t
type 'a node

val create : unit -> 'a t
val push_front : 'a t -> 'a -> 'a node
val push_back : 'a t -> 'a -> 'a node
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option
val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

(** Unlink the node; [false] if it was already removed. *)
val delete : 'a t -> 'a node -> bool

val node_value : 'a node -> 'a

(** Unlink the first (front-most) node whose value equals [v]; [false]
    if none.  Supports inverses whose node handle was consumed by a
    same-transaction [pop] (see {!Proust_structures.P_fifo}). *)
val remove_value : 'a t -> 'a -> bool
val size : 'a t -> int
val is_empty : 'a t -> bool

(** Front-to-back contents. *)
val to_list : 'a t -> 'a list
