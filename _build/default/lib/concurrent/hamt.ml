type ('k, 'v) t =
  | Empty
  | Leaf of int * ('k * 'v) list  (* full hash, nonempty collision bucket *)
  | Node of int * ('k, 'v) t array  (* bitmap, compressed children *)

let bits = 5
let arity = 1 lsl bits
let chunk_mask = arity - 1
let empty = Empty
let is_empty t = t = Empty

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let child_pos bitmap bit = popcount (bitmap land (bit - 1))

let rec find ~hash ~equal k t =
  find_aux ~equal (hash k) 0 k t

and find_aux ~equal h shift k = function
  | Empty -> None
  | Leaf (h2, kvs) ->
      if h2 = h then
        List.find_map (fun (k2, v) -> if equal k k2 then Some v else None) kvs
      else None
  | Node (bitmap, children) ->
      let bit = 1 lsl ((h lsr shift) land chunk_mask) in
      if bitmap land bit = 0 then None
      else find_aux ~equal h (shift + bits) k children.(child_pos bitmap bit)

let array_insert arr pos x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 pos;
  Array.blit arr pos out (pos + 1) (n - pos);
  out

let array_set arr pos x =
  let out = Array.copy arr in
  out.(pos) <- x;
  out

let array_remove arr pos =
  let n = Array.length arr in
  let out = Array.make (n - 1) arr.(0) in
  Array.blit arr 0 out 0 pos;
  Array.blit arr (pos + 1) out pos (n - 1 - pos);
  out

(* Re-home an existing leaf one level down, as a singleton node. *)
let push_down shift h leaf =
  Node (1 lsl ((h lsr shift) land chunk_mask), [| leaf |])

let rec add ~hash ~equal k v t =
  add_aux ~equal (hash k) 0 k v t

and add_aux ~equal h shift k v t =
  match t with
  | Empty -> (Leaf (h, [ (k, v) ]), None)
  | Leaf (h2, kvs) when h2 = h ->
      let old =
        List.find_map (fun (k2, v2) -> if equal k k2 then Some v2 else None) kvs
      in
      let rest = List.filter (fun (k2, _) -> not (equal k k2)) kvs in
      (Leaf (h, (k, v) :: rest), old)
  | Leaf (h2, _) ->
      (* Distinct hashes collided at this level: split and retry. *)
      add_aux ~equal h shift k v (push_down shift h2 t)
  | Node (bitmap, children) ->
      let bit = 1 lsl ((h lsr shift) land chunk_mask) in
      let pos = child_pos bitmap bit in
      if bitmap land bit = 0 then
        (Node (bitmap lor bit, array_insert children pos (Leaf (h, [ (k, v) ]))), None)
      else
        let child, old = add_aux ~equal h (shift + bits) k v children.(pos) in
        (Node (bitmap, array_set children pos child), old)

let rec remove ~hash ~equal k t =
  remove_aux ~equal (hash k) 0 k t

and remove_aux ~equal h shift k t =
  match t with
  | Empty -> (Empty, None)
  | Leaf (h2, kvs) ->
      if h2 <> h then (t, None)
      else
        let old =
          List.find_map (fun (k2, v2) -> if equal k k2 then Some v2 else None) kvs
        in
        if old = None then (t, None)
        else begin
          match List.filter (fun (k2, _) -> not (equal k k2)) kvs with
          | [] -> (Empty, old)
          | rest -> (Leaf (h, rest), old)
        end
  | Node (bitmap, children) -> (
      let bit = 1 lsl ((h lsr shift) land chunk_mask) in
      if bitmap land bit = 0 then (t, None)
      else
        let pos = child_pos bitmap bit in
        let child, old = remove_aux ~equal h (shift + bits) k children.(pos) in
        match old with
        | None -> (t, None)
        | Some _ ->
            let node =
              if child = Empty then
                let bitmap' = bitmap land lnot bit in
                if bitmap' = 0 then Empty
                else Node (bitmap', array_remove children pos)
              else Node (bitmap, array_set children pos child)
            in
            (node, old))

let rec iter f = function
  | Empty -> ()
  | Leaf (_, kvs) -> List.iter (fun (k, v) -> f k v) kvs
  | Node (_, children) -> Array.iter (iter f) children

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = fold (fun k v acc -> (k, v) :: acc) t []

let well_formed ~hash t =
  let ok = ref true in
  let rec go shift prefix_check = function
    | Empty -> ()  (* only legal at the root; checked by caller context *)
    | Leaf (h, kvs) ->
        if kvs = [] then ok := false;
        List.iter (fun (k, _) -> if hash k <> h then ok := false) kvs;
        if not (prefix_check h) then ok := false
    | Node (bitmap, children) ->
        if popcount bitmap <> Array.length children then ok := false;
        if Array.length children = 0 then ok := false;
        let pos = ref 0 in
        for idx = 0 to arity - 1 do
          if bitmap land (1 lsl idx) <> 0 then begin
            let child = children.(!pos) in
            if child = Empty then ok := false;
            go (shift + bits)
              (fun h ->
                (h lsr shift) land chunk_mask = idx && prefix_check h)
              child;
            incr pos
          end
        done
  in
  go 0 (fun _ -> true) t;
  !ok
