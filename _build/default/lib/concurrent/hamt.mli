(** Persistent hash-array-mapped trie.

    The immutable core of {!Ctrie}: 32-way branching on successive
    5-bit slices of the key hash, with collision buckets at exhausted
    hashes.  All operations are pure; updates share structure with the
    original, which is what makes Ctrie snapshots O(1).

    The hash and equality functions are supplied per call so that one
    node type serves any key type; {!Ctrie} fixes them once. *)

type ('k, 'v) t

val empty : ('k, 'v) t
val is_empty : ('k, 'v) t -> bool
val find : hash:('k -> int) -> equal:('k -> 'k -> bool) -> 'k -> ('k, 'v) t -> 'v option

(** [add ~hash ~equal k v t] is the updated trie and the previous
    binding of [k], if any. *)
val add :
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  'k ->
  'v ->
  ('k, 'v) t ->
  ('k, 'v) t * 'v option

val remove :
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  'k ->
  ('k, 'v) t ->
  ('k, 'v) t * 'v option

val cardinal : ('k, 'v) t -> int
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val bindings : ('k, 'v) t -> ('k * 'v) list

(** Structural invariants for property tests: bitmap arity matches the
    child array, no empty subtrees, leaf buckets are nonempty and
    hash-consistent, entries sit on the path their hash dictates. *)
val well_formed : hash:('k -> int) -> ('k, 'v) t -> bool
