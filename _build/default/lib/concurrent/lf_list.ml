type 'k state = { marked : bool; next : 'k node option }
and 'k node = { key : 'k; state : 'k state Atomic.t }

type 'k t = {
  head : 'k state Atomic.t;  (* head sentinel: never marked *)
  compare : 'k -> 'k -> int;
  count : Striped_counter.t;
}

let create ?(compare = Stdlib.compare) () =
  {
    head = Atomic.make { marked = false; next = None };
    compare;
    count = Striped_counter.create ();
  }

(* [find t k] positions at the first live node with key >= k, returning
   (prev cell, prev cell's observed state, that node or None).  Marked
   nodes encountered on the way are physically unlinked; any CAS race
   restarts the traversal from the head. *)
let rec find t k =
  let rec advance prev =
    let ps = Atomic.get prev in
    if ps.marked then find t k
    else
      match ps.next with
      | None -> (prev, ps, None)
      | Some curr ->
          let cs = Atomic.get curr.state in
          if cs.marked then
            if Atomic.compare_and_set prev ps { ps with next = cs.next } then
              advance prev
            else find t k
          else if t.compare curr.key k < 0 then advance curr.state
          else (prev, ps, Some curr)
  in
  advance t.head

let rec add t k =
  let prev, ps, curr = find t k in
  match curr with
  | Some n when t.compare n.key k = 0 -> false
  | _ ->
      let node = { key = k; state = Atomic.make { marked = false; next = curr } } in
      if Atomic.compare_and_set prev ps { ps with next = Some node } then begin
        Striped_counter.incr t.count;
        true
      end
      else add t k

let rec remove t k =
  let _, _, curr = find t k in
  match curr with
  | Some n when t.compare n.key k = 0 ->
      let cs = Atomic.get n.state in
      if cs.marked then false
      else if Atomic.compare_and_set n.state cs { cs with marked = true } then begin
        Striped_counter.decr t.count;
        ignore (find t k);  (* help the physical unlink along *)
        true
      end
      else remove t k
  | _ -> false

let contains t k =
  let rec go = function
    | None -> false
    | Some n ->
        let c = t.compare n.key k in
        if c < 0 then go (Atomic.get n.state).next
        else c = 0 && not (Atomic.get n.state).marked
  in
  go (Atomic.get t.head).next

let size t = Striped_counter.get t.count
let is_empty t = size t = 0

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n ->
        let s = Atomic.get n.state in
        go (if s.marked then acc else n.key :: acc) s.next
  in
  go [] (Atomic.get t.head).next
