(** Lock-free sorted linked-list set (Harris/Michael algorithm).

    Logical deletion marks a node's successor state; traversals help by
    physically unlinking marked nodes.  Included as a representative
    lock-free base structure so the Proustian set wrapper demonstrates
    boosting a genuinely non-blocking library object (§1). *)

type 'k t

val create : ?compare:('k -> 'k -> int) -> unit -> 'k t

(** [add t k] inserts [k]; [false] if already present. *)
val add : 'k t -> 'k -> bool

(** [remove t k] deletes [k]; [false] if absent. *)
val remove : 'k t -> 'k -> bool

val contains : 'k t -> 'k -> bool

(** Quiescently consistent count. *)
val size : 'k t -> int

val is_empty : 'k t -> bool

(** Ascending live keys at traversal time. *)
val to_list : 'k t -> 'k list
