type t = int Atomic.t

let create ?(init = 0) () =
  if init < 0 then invalid_arg "Nn_counter.create: negative";
  Atomic.make init

let get = Atomic.get
let incr t = ignore (Atomic.fetch_and_add t 1)

let rec try_decr t =
  let v = Atomic.get t in
  if v = 0 then false
  else if Atomic.compare_and_set t v (v - 1) then true
  else try_decr t
