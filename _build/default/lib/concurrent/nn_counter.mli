(** Linearizable non-negative counter — the base object for the
    paper's §3 running example.  [try_decr] refuses to go below zero,
    returning the error flag the example's [decr] reports. *)

type t

val create : ?init:int -> unit -> t
val get : t -> int
val incr : t -> unit

(** [try_decr t] decrements unless the value is 0; [true] on success. *)
val try_decr : t -> bool
