type 'a t = E | T of 'a * 'a t list

let empty = E
let is_empty t = t = E

let merge ~cmp a b =
  match (a, b) with
  | E, t | t, E -> t
  | T (x, xs), T (y, ys) ->
      if cmp x y <= 0 then T (x, b :: xs) else T (y, a :: ys)

let insert ~cmp x t = merge ~cmp (T (x, [])) t
let find_min = function E -> None | T (x, _) -> Some x

let rec merge_pairs ~cmp = function
  | [] -> E
  | [ h ] -> h
  | h1 :: h2 :: rest -> merge ~cmp (merge ~cmp h1 h2) (merge_pairs ~cmp rest)

let delete_min ~cmp = function
  | E -> None
  | T (x, hs) -> Some (x, merge_pairs ~cmp hs)

let rec iter f = function
  | E -> ()
  | T (x, hs) ->
      f x;
      List.iter (iter f) hs

let fold f t init =
  let acc = ref init in
  iter (fun x -> acc := f x !acc) t;
  !acc

let size t = fold (fun _ n -> n + 1) t 0

let mem ~cmp x t =
  let found = ref false in
  iter (fun y -> if cmp x y = 0 then found := true) t;
  !found

let of_list ~cmp l = List.fold_left (fun h x -> insert ~cmp x h) empty l

let remove ~cmp x t =
  if not (mem ~cmp x t) then (t, false)
  else begin
    (* Rebuild without one occurrence; acceptable O(n) since arbitrary
       removal is not on the hot path of any wrapped operation. *)
    let removed = ref false in
    let keep =
      fold
        (fun y acc ->
          if (not !removed) && cmp x y = 0 then begin
            removed := true;
            acc
          end
          else y :: acc)
        t []
    in
    (of_list ~cmp keep, true)
  end

let rec to_sorted_list ~cmp t =
  match delete_min ~cmp t with
  | None -> []
  | Some (x, rest) -> x :: to_sorted_list ~cmp rest

let well_formed ~cmp t =
  let rec go = function
    | E -> true
    | T (x, hs) ->
        List.for_all
          (function
            | E -> false  (* children are never empty heaps *)
            | T (y, _) as h -> cmp x y <= 0 && go h)
          hs
  in
  go t
