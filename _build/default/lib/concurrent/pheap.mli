(** Persistent (purely functional) pairing heap.

    The immutable core of {!Cow_pqueue}.  All operations are pure;
    [merge]/[insert] are O(1), [delete_min] amortized O(log n). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val insert : cmp:('a -> 'a -> int) -> 'a -> 'a t -> 'a t
val merge : cmp:('a -> 'a -> int) -> 'a t -> 'a t -> 'a t
val find_min : 'a t -> 'a option
val delete_min : cmp:('a -> 'a -> int) -> 'a t -> ('a * 'a t) option

(** O(n). *)
val size : 'a t -> int

(** O(n); [true] if some element is structurally equal. *)
val mem : cmp:('a -> 'a -> int) -> 'a -> 'a t -> bool

(** Remove one occurrence of an element; O(n) rebuild. *)
val remove : cmp:('a -> 'a -> int) -> 'a -> 'a t -> ('a t * bool)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : cmp:('a -> 'a -> int) -> 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

(** Heap-order invariant check for property tests. *)
val well_formed : cmp:('a -> 'a -> int) -> 'a t -> bool
