(* Invariant: [front] is empty only when [back] is empty. *)
type 'a t = { front : 'a list; back : 'a list; len : int }

let empty = { front = []; back = []; len = 0 }
let is_empty t = t.len = 0

let norm t =
  match t.front with
  | [] -> { t with front = List.rev t.back; back = [] }
  | _ -> t

let enqueue t v = norm { t with back = v :: t.back; len = t.len + 1 }

let dequeue t =
  match t.front with
  | [] -> None
  | v :: rest -> Some (v, norm { t with front = rest; len = t.len - 1 })

let peek t = match t.front with [] -> None | v :: _ -> Some v
let length t = t.len
let to_list t = t.front @ List.rev t.back
let of_list l = { front = l; back = []; len = List.length l }
