(** Persistent FIFO queue (Okasaki's two-list representation).  The
    immutable core of {!Cow_queue}. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val enqueue : 'a t -> 'a -> 'a t
val dequeue : 'a t -> ('a * 'a t) option
val peek : 'a t -> 'a option
val length : 'a t -> int
val to_list : 'a t -> 'a list

(** Front-to-back. *)
val of_list : 'a list -> 'a t
