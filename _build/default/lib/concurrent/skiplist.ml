type 'k bound = Min | Key of 'k | Max

type ('k, 'v) node = {
  key : 'k bound;
  mutable value : 'v option;  (* None only transiently meaningless; sentinels hold None *)
  next : ('k, 'v) node option array;
  lock : Mutex.t;
  mutable marked : bool;
  mutable fully_linked : bool;
  top_level : int;  (* highest valid index into [next] *)
}

type ('k, 'v) t = {
  head : ('k, 'v) node;
  compare : 'k -> 'k -> int;
  max_level : int;
  count : Striped_counter.t;
  seed : int Atomic.t;
}

let make_node ~key ~value ~top_level ~levels =
  {
    key;
    value;
    next = Array.make levels None;
    lock = Mutex.create ();
    marked = false;
    fully_linked = false;
    top_level;
  }

let create ?(compare = Stdlib.compare) ?(max_level = 16) () =
  let tail = make_node ~key:Max ~value:None ~top_level:(max_level - 1) ~levels:max_level in
  tail.fully_linked <- true;
  let head = make_node ~key:Min ~value:None ~top_level:(max_level - 1) ~levels:max_level in
  Array.fill head.next 0 max_level (Some tail);
  head.fully_linked <- true;
  {
    head;
    compare;
    max_level;
    count = Striped_counter.create ();
    seed = Atomic.make 0x1e3779b97f4a7c15;
  }

let cmp_bound t b k =
  match b with Min -> -1 | Max -> 1 | Key k' -> t.compare k' k

(* Geometric random level from a splitmix-style step on a shared seed. *)
let random_level t =
  let s = Atomic.fetch_and_add t.seed 0x232be59bd9b4e019 in
  let z = s lxor (s lsr 30) in
  let z = z * 0x3f58476d1ce4e5b in
  let z = z lxor (z lsr 27) in
  let rec go lvl bits =
    if lvl >= t.max_level - 1 || bits land 1 = 0 then lvl
    else go (lvl + 1) (bits lsr 1)
  in
  go 0 (z land max_int)

(* Fill preds/succs for [k]; returns the level at which a node with key
   [k] was found, or -1. *)
let find t k preds succs =
  let found = ref (-1) in
  let pred = ref t.head in
  for level = t.max_level - 1 downto 0 do
    let curr = ref (Option.get !pred.next.(level)) in
    while cmp_bound t !curr.key k < 0 do
      pred := !curr;
      curr := Option.get !curr.next.(level)
    done;
    if !found = -1 && cmp_bound t !curr.key k = 0 then found := level;
    preds.(level) <- !pred;
    succs.(level) <- !curr
  done;
  !found

let get t k =
  (* Wait-free traversal: no locks, read the mark at the end. *)
  let pred = ref t.head in
  let result = ref None in
  for level = t.max_level - 1 downto 0 do
    let curr = ref (Option.get !pred.next.(level)) in
    while cmp_bound t !curr.key k < 0 do
      pred := !curr;
      curr := Option.get !curr.next.(level)
    done;
    if cmp_bound t !curr.key k = 0 && !result = None then
      if !curr.fully_linked && not !curr.marked then result := !curr.value
  done;
  !result

let contains t k = get t k <> None

let with_locks nodes f =
  (* Lock an already-deduplicated, order-stable list of nodes. *)
  List.iter (fun n -> Mutex.lock n.lock) nodes;
  Fun.protect
    ~finally:(fun () -> List.iter (fun n -> Mutex.unlock n.lock) nodes)
    f

let dedup_nodes nodes =
  List.fold_left
    (fun acc n -> if List.memq n acc then acc else acc @ [ n ])
    [] nodes

let rec put t k v =
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.head in
  let found = find t k preds succs in
  if found >= 0 then begin
    (* Key present (or a marked victim): update in place under the
       node's lock, unless it is being removed — then retry. *)
    let node = succs.(found) in
    if not node.fully_linked then begin
      Domain.cpu_relax ();
      put t k v
    end
    else
      let outcome =
        Mutex.lock node.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock node.lock)
          (fun () ->
            if node.marked then `Retry
            else begin
              let old = node.value in
              node.value <- Some v;
              `Done old
            end)
      in
      match outcome with
      | `Retry ->
          Domain.cpu_relax ();
          put t k v
      | `Done old -> old
  end
  else begin
    let top_level = random_level t in
    let to_lock =
      dedup_nodes (List.init (top_level + 1) (fun l -> preds.(l)))
    in
    let ok =
      with_locks to_lock (fun () ->
          let valid = ref true in
          for level = 0 to top_level do
            let p = preds.(level) and s = succs.(level) in
            let still_linked =
              match p.next.(level) with Some x -> x == s | None -> false
            in
            if p.marked || s.marked || not still_linked then valid := false
          done;
          if not !valid then false
          else begin
            let node =
              make_node ~key:(Key k) ~value:(Some v) ~top_level
                ~levels:(top_level + 1)
            in
            for level = 0 to top_level do
              node.next.(level) <- Some succs.(level)
            done;
            for level = 0 to top_level do
              preds.(level).next.(level) <- Some node
            done;
            node.fully_linked <- true;
            Striped_counter.incr t.count;
            true
          end)
    in
    if ok then None
    else begin
      Domain.cpu_relax ();
      put t k v
    end
  end

let remove t k =
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.head in
  let found = find t k preds succs in
  if found < 0 then None
  else begin
    let victim = succs.(found) in
    if not (victim.fully_linked && victim.top_level = found && not victim.marked)
    then None
    else begin
      Mutex.lock victim.lock;
      if victim.marked then begin
        Mutex.unlock victim.lock;
        None
      end
      else begin
        victim.marked <- true;
        let old = victim.value in
        let top_level = victim.top_level in
        let finish () =
          let to_lock =
            dedup_nodes (List.init (top_level + 1) (fun l -> preds.(l)))
          in
          with_locks to_lock (fun () ->
              let valid = ref true in
              for level = 0 to top_level do
                let p = preds.(level) in
                let still_linked =
                  match p.next.(level) with
                  | Some x -> x == victim
                  | None -> false
                in
                if p.marked || not still_linked then valid := false
              done;
              if !valid then begin
                for level = top_level downto 0 do
                  preds.(level).next.(level) <- victim.next.(level)
                done;
                true
              end
              else false)
        in
        let rec unlink () =
          if not (finish ()) then begin
            (* predecessors shifted: re-find and retry the unlink *)
            ignore (find t k preds succs);
            Domain.cpu_relax ();
            unlink ()
          end
        in
        unlink ();
        Striped_counter.decr t.count;
        Mutex.unlock victim.lock;
        old
      end
    end
  end

let size t = Striped_counter.get t.count
let is_empty t = size t = 0

(* Weakly consistent level-0 traversal. *)
let fold_live t f init =
  let acc = ref init in
  let curr = ref (Option.get t.head.next.(0)) in
  let continue = ref true in
  while !continue do
    match !curr.key with
    | Max -> continue := false
    | Min -> curr := Option.get !curr.next.(0)
    | Key k ->
        (match !curr.value with
        | Some v when !curr.fully_linked && not !curr.marked ->
            acc := f k v !acc
        | _ -> ());
        curr := Option.get !curr.next.(0)
  done;
  !acc

let bindings t = List.rev (fold_live t (fun k v acc -> (k, v) :: acc) [])

let min_binding t =
  fold_live t (fun k v acc -> match acc with None -> Some (k, v) | some -> some) None

let max_binding t = fold_live t (fun k v _ -> Some (k, v)) None

let range t ~lo ~hi =
  bindings t
  |> List.filter (fun (k, _) -> t.compare k lo >= 0 && t.compare k hi <= 0)
