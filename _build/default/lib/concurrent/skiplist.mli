(** Concurrent ordered map: a lazy-synchronization skiplist
    (Herlihy & Shavit ch. 14, adapted from set to map).

    Per-node locks, optimistic traversal with validation, logical
    deletion via mark bits.  [get]/[contains] are wait-free
    traversals; [put]/[remove] lock at most the predecessor/victim
    nodes at each level.  No snapshots — which is exactly why the
    Proustian wrapper over this structure must use the eager update
    strategy with inverses, unlike the snapshot-able {!Cow_omap}. *)

type ('k, 'v) t

val create : ?compare:('k -> 'k -> int) -> ?max_level:int -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> 'k -> 'v option
val contains : ('k, 'v) t -> 'k -> bool

(** [put t k v] binds and returns the previous binding. *)
val put : ('k, 'v) t -> 'k -> 'v -> 'v option

val remove : ('k, 'v) t -> 'k -> 'v option

(** Quiescently consistent count. *)
val size : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

(** Smallest live binding at traversal time. *)
val min_binding : ('k, 'v) t -> ('k * 'v) option

val max_binding : ('k, 'v) t -> ('k * 'v) option

(** Weakly consistent ascending bindings with [lo <= k <= hi]. *)
val range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k * 'v) list

(** Weakly consistent ascending bindings. *)
val bindings : ('k, 'v) t -> ('k * 'v) list
