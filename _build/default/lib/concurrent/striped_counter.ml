type t = { cells : int Atomic.t array; mask : int }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(stripes = 16) () =
  let n = next_pow2 stripes 1 in
  { cells = Array.init n (fun _ -> Atomic.make 0); mask = n - 1 }

let cell t = t.cells.((Domain.self () :> int) land t.mask)
let add t n = ignore (Atomic.fetch_and_add (cell t) n)
let incr t = add t 1
let decr t = add t (-1)
let get t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
