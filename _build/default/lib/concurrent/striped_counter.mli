(** Contention-splitting counter (java.util.concurrent LongAdder
    analog): adds hit a per-domain stripe; reads sum all stripes. *)

type t

val create : ?stripes:int -> unit -> t
val add : t -> int -> unit
val incr : t -> unit
val decr : t -> unit

(** Linearizable only in quiescence; concurrent reads may miss
    in-flight adds, which is the standard LongAdder contract. *)
val get : t -> int

val reset : t -> unit
