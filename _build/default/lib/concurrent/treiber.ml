type 'a t = { top : 'a list Atomic.t; count : Striped_counter.t }

let create () = { top = Atomic.make []; count = Striped_counter.create () }

let rec push t v =
  let cur = Atomic.get t.top in
  if Atomic.compare_and_set t.top cur (v :: cur) then
    Striped_counter.incr t.count
  else push t v

let rec pop t =
  match Atomic.get t.top with
  | [] -> None
  | v :: rest as cur ->
      if Atomic.compare_and_set t.top cur rest then begin
        Striped_counter.decr t.count;
        Some v
      end
      else pop t

let peek t = match Atomic.get t.top with [] -> None | v :: _ -> Some v
let size t = Striped_counter.get t.count
let is_empty t = Atomic.get t.top = []
let to_list t = Atomic.get t.top
