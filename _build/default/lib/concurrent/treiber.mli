(** Treiber lock-free stack: a linearizable LIFO base structure.  The
    Proustian stack wrapper demonstrates boosting a structure whose
    operations barely commute (every pair of stack operations
    conflicts, so its conflict abstraction is a single element). *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

(** Quiescently consistent. *)
val size : 'a t -> int

val is_empty : 'a t -> bool

(** Top-to-bottom contents at load time. *)
val to_list : 'a t -> 'a list
