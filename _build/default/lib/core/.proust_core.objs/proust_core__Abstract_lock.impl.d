lib/core/abstract_lock.ml: Intent List Lock_allocator Stm Update_strategy
