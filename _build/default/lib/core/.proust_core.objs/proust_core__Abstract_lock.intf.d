lib/core/abstract_lock.mli: Intent Lock_allocator Stm Update_strategy
