lib/core/committed_size.ml: Proust_concurrent Stm Tvar
