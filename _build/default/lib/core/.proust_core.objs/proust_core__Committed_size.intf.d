lib/core/committed_size.mli: Stm
