lib/core/conflict_abstraction.ml: Hashtbl Intent List
