lib/core/conflict_abstraction.mli: Intent
