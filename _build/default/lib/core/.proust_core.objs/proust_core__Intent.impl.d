lib/core/intent.ml: Format
