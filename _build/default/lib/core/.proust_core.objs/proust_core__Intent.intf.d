lib/core/intent.mli: Format
