lib/core/lock_allocator.ml: Array Atomic Conflict_abstraction Hashtbl Intent List Proust_concurrent Stats Stm Tvar Txn_desc Unix
