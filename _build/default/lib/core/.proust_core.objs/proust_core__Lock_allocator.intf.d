lib/core/lock_allocator.mli: Conflict_abstraction Intent Stm
