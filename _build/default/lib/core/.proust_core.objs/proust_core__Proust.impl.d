lib/core/proust.ml: Format List Lock_allocator Printf Stm String Update_strategy
