lib/core/proust.mli: Format Lock_allocator Stm Update_strategy
