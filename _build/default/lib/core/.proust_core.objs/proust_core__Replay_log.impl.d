lib/core/replay_log.ml: Hashtbl List Option Stm
