lib/core/replay_log.mli: Stm
