lib/core/update_strategy.ml:
