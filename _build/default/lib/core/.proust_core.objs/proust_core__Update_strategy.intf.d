lib/core/update_strategy.mli:
