(** The [AbstractLock] of Listing 1: the bridge between a wrapped
    operation and the synchronisation supplied by a lock allocator
    policy.

    [apply] acquires the declared intents through the LAP, runs the
    operation, and — under the eager update strategy — registers the
    operation's inverse as a rollback handler, to be run in reverse
    registration order if the transaction aborts.

    Under the lazy strategy no inverse is registered (aborting simply
    drops the replay log); the operation body passed by a lazy wrapper
    is expected to route through a {!Replay_log}. *)

type 'k t

val make : lap:'k Lock_allocator.t -> strategy:Update_strategy.t -> 'k t
val strategy : 'k t -> Update_strategy.t
val lap_kind : 'k t -> Lock_allocator.kind

(** [apply t txn intents ?inverse f] — the Scala
    [abstractLock(acquire)(f)(invF)].  [inverse] receives the
    operation's result, mirroring how Figure 2a's [put] inverts using
    the returned previous binding. *)
val apply :
  'k t -> Stm.txn -> 'k Intent.t list -> ?inverse:('z -> unit) -> (unit -> 'z) -> 'z

(** [acquire_stable t txn compute] acquires the intents demanded by the
    current (state-dependent) computation, then re-computes and
    acquires any newly demanded intents, until a fixed point.  This is
    the boosting re-sampling discipline for intents that consult the
    live base state (the §3 counter's threshold test, a queue's
    emptiness test): between sampling and acquisition the state may
    shift and demand stronger synchronization.  Intent keys are
    compared structurally; an acquired write covers a later read of the
    same element. *)
val acquire_stable : 'k t -> Stm.txn -> (unit -> 'k Intent.t list) -> unit
