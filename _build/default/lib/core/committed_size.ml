type t =
  | Counter of {
      total : Proust_concurrent.Striped_counter.t;
      pending : int ref Stm.Local.key;
    }
  | Transactional of int Tvar.t

let create = function
  | `Transactional -> Transactional (Tvar.make 0)
  | `Counter ->
      let total = Proust_concurrent.Striped_counter.create () in
      let pending =
        Stm.Local.key (fun txn ->
            let cell = ref 0 in
            Stm.after_commit txn (fun () ->
                Proust_concurrent.Striped_counter.add total !cell);
            cell)
      in
      Counter { total; pending }

let add t txn d =
  match t with
  | Transactional r -> Stm.Ref.modify txn r (fun n -> n + d)
  | Counter { pending; _ } ->
      let cell = Stm.Local.get txn pending in
      cell := !cell + d

let read t txn =
  match t with
  | Transactional r -> Stm.read txn r
  | Counter { total; pending } ->
      Proust_concurrent.Striped_counter.get total + !(Stm.Local.get txn pending)

let peek = function
  | Transactional r -> Tvar.peek r
  | Counter { total; _ } -> Proust_concurrent.Striped_counter.get total
