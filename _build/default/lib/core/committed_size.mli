(** Reified size of a wrapped structure (Listing 2: "Size has been
    reified out of the abstract state as an optimization").

    Two representations:

    - [`Transactional]: a single STM ref, updated inside the
      transaction — the literal ScalaProust code.  Faithful, but every
      size-changing operation conflicts on the one location, so it
      serializes inserts/removes; kept for parity and ablation.
    - [`Counter]: a striped counter; deltas accumulate in a
      transaction-local cell and are folded in after commit, so aborted
      transactions leave no trace.  The default.

    In both representations, a transaction reading the size sees its
    own pending deltas, matching the transactional-ref semantics. *)

type t

val create : [ `Counter | `Transactional ] -> t

(** Record a size delta from inside a transaction. *)
val add : t -> Stm.txn -> int -> unit

(** Size as observed by this transaction. *)
val read : t -> Stm.txn -> int

(** Committed size, non-transactionally (tests, reporting). *)
val peek : t -> int
