type access = { slot : int; write : bool }

type 'k t = {
  slots : int;
  accesses : stripe:int -> 'k Intent.t -> access list;
}

let striped ?(slots = 1024) ?(hash = Hashtbl.hash) () =
  {
    slots;
    accesses =
      (fun ~stripe:_ intent ->
        let slot = hash (Intent.key intent) land max_int mod slots in
        [ { slot; write = Intent.is_write intent } ]);
  }

let indexed ~slots ~index =
  {
    slots;
    accesses =
      (fun ~stripe:_ intent ->
        let slot = index (Intent.key intent) in
        if slot < 0 || slot >= slots then
          invalid_arg "Conflict_abstraction.indexed: slot out of range";
        [ { slot; write = Intent.is_write intent } ]);
  }

let exact ~slots accesses = { slots; accesses }

let coarse () =
  {
    slots = 1;
    accesses =
      (fun ~stripe:_ intent -> [ { slot = 0; write = Intent.is_write intent } ]);
  }

let group_accesses ~width ~base ~stripe intent =
  if Intent.is_write intent then
    [ { slot = base + (abs stripe mod width); write = true } ]
  else List.init width (fun i -> { slot = base + i; write = false })

let accesses_for t ~stripe intents =
  let strongest = Hashtbl.create 8 in
  List.iter
    (fun intent ->
      List.iter
        (fun a ->
          match Hashtbl.find_opt strongest a.slot with
          | Some true -> ()
          | Some false -> if a.write then Hashtbl.replace strongest a.slot true
          | None -> Hashtbl.replace strongest a.slot a.write)
        (t.accesses ~stripe intent))
    intents;
  Hashtbl.fold (fun slot write acc -> { slot; write } :: acc) strongest []
  |> List.sort (fun a b -> compare a.slot b.slot)
