(** Conflict abstractions (§3).

    A conflict abstraction translates an abstract data type's semantic
    notion of conflict into concrete accesses on [M] synchronisation
    slots, such that any two non-commuting operations touch a common
    slot with at least one access being a write (Definition 3.1).

    The paper formalizes this as families of functions
    [f_i^(m,rd), f_i^(m,wr) : args -> state -> bool].  Here the wrapper
    computes the state-dependent part when it builds its intent list
    (exactly as Figure 3's [insert] consults [min] before choosing
    [Read] or [Write] on [PQueueMin]), and the conflict abstraction
    maps each intent to slot accesses.

    The same object drives both lock-allocator policies: a pessimistic
    LAP interprets an access as a read/write lock acquisition on slot
    [i]; an optimistic LAP interprets it as an STM read/write of the
    [i]-th tvar of its region.

    [stripe] is a per-transaction token (the transaction id) that lets
    an abstraction spread {e mutually compatible writers} over several
    sub-slots.  This expresses abstract-state elements like the paper's
    [PQueueMultiSet], which "allows multiple writers or multiple
    readers (but not both simultaneously)": writers write one sub-slot
    each (colliding only at rate 1/width), readers read all of them. *)

type access = { slot : int; write : bool }

type 'k t = {
  slots : int;  (** the region size M, a tuning parameter (§3) *)
  accesses : stripe:int -> 'k Intent.t -> access list;
}

(** Key-striped abstraction ("lock striping", §3): intent on key [k]
    becomes one access to slot [hash k mod slots], read or write
    matching the intent. *)
val striped : ?slots:int -> ?hash:('k -> int) -> unit -> 'k t

(** Abstraction over an enumerated abstract state: each element has its
    own slot, via the provided injection into [0, slots). *)
val indexed : slots:int -> index:('k -> int) -> 'k t

(** Fully custom abstraction. *)
val exact : slots:int -> (stripe:int -> 'k Intent.t -> access list) -> 'k t

(** Coarse single-slot abstraction (a single global read/write lock) —
    the conservative approximation always available (§1). *)
val coarse : unit -> 'k t

(** [group ~width ~base] maps an element to a band of [width] sub-slots
    starting at [base]: a write touches the sub-slot selected by the
    transaction's stripe; a read touches the whole band.  Encodes
    multiple-writers-or-multiple-readers elements. *)
val group_accesses : width:int -> base:int -> stripe:int -> 'k Intent.t -> access list

(** [accesses_for t ~stripe intents] concatenates and de-duplicates
    accesses, keeping the strongest mode per slot, in slot order. *)
val accesses_for : 'k t -> stripe:int -> 'k Intent.t list -> access list
