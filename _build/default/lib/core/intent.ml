type 'k t = Read of 'k | Write of 'k

let key = function Read k | Write k -> k
let is_write = function Write _ -> true | Read _ -> false
let promote = function Read k -> Write k | Write k -> Write k
let map f = function Read k -> Read (f k) | Write k -> Write (f k)

let pp ppk fmt = function
  | Read k -> Format.fprintf fmt "Read(%a)" ppk k
  | Write k -> Format.fprintf fmt "Write(%a)" ppk k
