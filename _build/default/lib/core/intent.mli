(** Lock intents — the paper's [LockFor] hierarchy (Listing 1).

    A Proustian operation declares, per abstract-state element it
    touches, whether it needs shared ([Read]) or exclusive ([Write])
    access.  The abstract-state element type ['k] is chosen by the
    wrapper: a map uses its key type; the priority queue uses the
    two-element [PQueueMin]/[PQueueMultiSet] state (Listing 3). *)

type 'k t = Read of 'k | Write of 'k

val key : 'k t -> 'k
val is_write : 'k t -> bool

(** [promote i] turns a read intent into a write intent on the same
    element (used by conservative approximations). *)
val promote : 'k t -> 'k t

val map : ('k -> 'j) -> 'k t -> 'j t
val pp : (Format.formatter -> 'k -> unit) -> Format.formatter -> 'k t -> unit
