(** Lock allocator policies (§2).

    A LAP allocates concurrency-control primitives for the slots of a
    conflict abstraction:

    - the {e pessimistic} LAP hands out standard re-entrant read/write
      locks, acquired before the operation runs and held until the
      transaction commits or aborts (boosting-style two-phase locking;
      deadlock is broken by deadline timeout, which aborts and retries
      the transaction);
    - the {e optimistic} LAP maps lock invocations onto reads and
      writes of STM-managed memory locations, letting the underlying
      STM detect and manage the conflicts (predication-style).

    Both interpret the same {!Conflict_abstraction}, which is the
    unification the paper's design space rests on. *)

type kind = Optimistic | Pessimistic

type 'k t = {
  kind : kind;
  name : string;
  acquire : Stm.txn -> 'k Intent.t list -> unit;
      (** Perform the concrete synchronisation for the given intents.
          May abort the transaction (pessimistic deadline expiry,
          optimistic conflict). *)
}

(** Pessimistic LAP over an array of {!Proust_concurrent.Rw_lock}, one
    per conflict-abstraction slot.  [timeout] is the per-acquisition
    deadline in seconds before the transaction restarts (default 5ms).
    All locks a transaction acquired are released after commit or on
    abort. *)
val pessimistic :
  ?timeout:float -> ca:'k Conflict_abstraction.t -> unit -> 'k t

(** Optimistic LAP over an array of STM tvars, one per slot.  A write
    access stores a fresh unique token (§3: "values written are unique,
    such as sequence numbers"); a read access performs an STM read.

    [validate_writes] additionally performs an STM read before each
    write access, putting the slot in the read set so that commit-time
    validation catches conflicting commits even under STMs with lazy
    conflict detection.  This is the bracket Theorem 5.3 requires for
    lazy/optimistic objects; switching it off reproduces the paper's
    weaker eager/optimistic variant that is only opaque when the STM
    detects all conflicts eagerly (Theorem 5.2) — measurable with the
    [Eager_eager] STM mode. *)
val optimistic :
  ?validate_writes:bool -> ca:'k Conflict_abstraction.t -> unit -> 'k t
