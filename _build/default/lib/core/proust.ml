type point = {
  lap : Lock_allocator.kind;
  strategy : Update_strategy.t;
}

let all_points =
  [
    { lap = Lock_allocator.Pessimistic; strategy = Update_strategy.Eager };
    { lap = Lock_allocator.Pessimistic; strategy = Update_strategy.Lazy };
    { lap = Lock_allocator.Optimistic; strategy = Update_strategy.Eager };
    { lap = Lock_allocator.Optimistic; strategy = Update_strategy.Lazy };
  ]

let point_name p =
  let lap =
    match p.lap with
    | Lock_allocator.Pessimistic -> "pessimistic"
    | Lock_allocator.Optimistic -> "optimistic"
  in
  Printf.sprintf "%s/%s" lap (Update_strategy.name p.strategy)

let prior_work p =
  match (p.lap, p.strategy) with
  | Lock_allocator.Pessimistic, Update_strategy.Eager ->
      "transactional boosting (Herlihy & Koskinen)"
  | Lock_allocator.Pessimistic, Update_strategy.Lazy ->
      "(novel in Proust)"
  | Lock_allocator.Optimistic, Update_strategy.Eager ->
      "optimistic transactional boosting (Hassan et al.)"
  | Lock_allocator.Optimistic, Update_strategy.Lazy ->
      "transactional predication (Bronson et al.)"

let compatible p (mode : Stm.mode) =
  match (p.lap, p.strategy, mode) with
  (* Pessimistic synchronization does not rely on the STM to detect
     object conflicts at all; opaque under any mode (Theorem 5.1). *)
  | Lock_allocator.Pessimistic, _, _ -> true
  (* Lazy/optimistic is opaque under any mode thanks to the
     write-CA/op/read-CA bracket around each operation (Theorem 5.3). *)
  | Lock_allocator.Optimistic, Update_strategy.Lazy, _ -> true
  (* Eager/optimistic mutates the shared base before commit; it is only
     opaque when the STM surfaces both conflict classes at encounter
     time (Theorem 5.2).  This is the figure's "empty quarter" under a
     fully lazy STM. *)
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Lazy_lazy -> false
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Serial_commit ->
      false
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Eager_lazy -> true
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Eager_eager -> true

let verdict p mode =
  if compatible p mode then "opaque"
  else "unsound (needs eager conflict detection)"

let pp_design_space fmt () =
  Format.fprintf fmt "%-20s | %-42s | %-13s | %-13s | %-13s | %-13s@."
    "design point" "closest prior work"
    (Stm.mode_name Stm.Lazy_lazy)
    (Stm.mode_name Stm.Eager_lazy)
    (Stm.mode_name Stm.Eager_eager)
    (Stm.mode_name Stm.Serial_commit);
  Format.fprintf fmt "%s@." (String.make 128 '-');
  List.iter
    (fun p ->
      let cell mode = if compatible p mode then "opaque" else "UNSOUND" in
      Format.fprintf fmt "%-20s | %-42s | %-13s | %-13s | %-13s | %-13s@."
        (point_name p) (prior_work p) (cell Stm.Lazy_lazy)
        (cell Stm.Eager_lazy) (cell Stm.Eager_eager)
        (cell Stm.Serial_commit))
    all_points
