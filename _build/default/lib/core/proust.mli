(** Top-level entry point: design-space configuration (Figure 1).

    A {!point} names one cell of the Proust design space — which
    lock-allocator policy synchronizes the wrapped object, and whether
    the base structure is updated eagerly or lazily.  {!compatible}
    encodes the figure's compatibility constraints against the
    underlying STM's conflict-detection strategy, including the "empty
    quarter": eager updates combined with optimistic synchronization
    are sound only when the STM detects both read/write and write/write
    conflicts eagerly (Theorem 5.2). *)

type point = {
  lap : Lock_allocator.kind;
  strategy : Update_strategy.t;
}

val all_points : point list
val point_name : point -> string

(** Closest prior work occupying the point, per Figure 1. *)
val prior_work : point -> string

(** [compatible point stm_mode] — is the combination opaque? *)
val compatible : point -> Stm.mode -> bool

(** Reasoned verdict for the design-space table. *)
val verdict : point -> Stm.mode -> string

(** Render the Figure 1-style design-space matrix. *)
val pp_design_space : Format.formatter -> unit -> unit
