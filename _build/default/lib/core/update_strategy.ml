type t = Eager | Lazy

let name = function Eager -> "eager" | Lazy -> "lazy"
