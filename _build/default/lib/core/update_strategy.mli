(** The update-strategy axis of the design space (§2).

    [Eager]: the base structure is modified as the transaction
    executes; every mutating operation must declare an inverse, which
    the abstract lock registers as a rollback handler.

    [Lazy]: operations are forwarded through a replay log against a
    shadow copy and applied to the base structure only at commit time;
    no inverses are needed. *)

type t = Eager | Lazy

val name : t -> string
