lib/stm/backoff.ml: Atomic Domain Random Unix
