lib/stm/backoff.mli:
