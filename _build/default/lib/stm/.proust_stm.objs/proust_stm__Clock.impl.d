lib/stm/clock.ml: Atomic
