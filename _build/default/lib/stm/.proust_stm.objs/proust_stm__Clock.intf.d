lib/stm/clock.mli:
