lib/stm/contention.ml: Txn_desc
