lib/stm/contention.mli: Txn_desc
