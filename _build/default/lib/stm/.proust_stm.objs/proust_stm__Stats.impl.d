lib/stm/stats.ml: Array Atomic Domain Format
