lib/stm/stm.ml: Atomic Backoff Clock Contention Domain Fun Hashtbl List Obj Stats Tvar Txn_desc
