lib/stm/stm.mli: Contention Tvar Txn_desc
