lib/stm/tvar.ml: Atomic List Txn_desc
