lib/stm/tvar.mli: Atomic Txn_desc
