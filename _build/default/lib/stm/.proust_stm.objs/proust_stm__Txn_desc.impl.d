lib/stm/txn_desc.ml: Atomic Format
