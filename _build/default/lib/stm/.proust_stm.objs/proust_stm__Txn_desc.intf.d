lib/stm/txn_desc.mli: Atomic Format
