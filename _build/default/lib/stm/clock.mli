(** Global version clock, in the style of TL2.

    Every committed read-write transaction advances the clock by one and
    stamps its write set with the new value.  Readers sample the clock at
    transaction start and use the sample to decide whether an observed
    location version is consistent with their snapshot. *)

type t

val create : unit -> t

(** [now t] is the current clock value.  Monotone, starts at [0]. *)
val now : t -> int

(** [tick t] atomically advances the clock and returns the new value.
    Each returned value is unique across all callers. *)
val tick : t -> int

(** The process-wide clock used by the default STM instance. *)
val global : t
