type mode = Lazy_lazy | Eager_lazy | Eager_eager | Serial_commit

let mode_name = function
  | Lazy_lazy -> "lazy-lazy"
  | Eager_lazy -> "eager-lazy"
  | Eager_eager -> "eager-eager"
  | Serial_commit -> "serial-commit"

type config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
  max_attempts : int;
}

let default_config_v =
  ref
    {
      mode = Lazy_lazy;
      cm = Contention.passive ();
      extend_reads = false;
      max_attempts = 100_000;
    }

let default_config = !default_config_v
let set_default_config c = default_config_v := c
let get_default_config () = !default_config_v

(* Packed read-set and write-set entries.  The existential type is
   re-established with [Obj.magic] in [read], justified by the global
   uniqueness of tvar uids: equal uid implies physically the same tvar,
   hence the same value type. *)
type wentry = Wentry : 'a Tvar.t * 'a -> wentry
type rentry = Rentry : 'a Tvar.t * int -> rentry
type locked = Locked : 'a Tvar.t -> locked

type txn = {
  mutable rv : int;
  mutable tdesc : Txn_desc.t;
  cfg : config;
  reads : (int, rentry) Hashtbl.t;
  writes : (int, wentry) Hashtbl.t;
  mutable locked : locked list;
  mutable commit_locked_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable after_commit_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable abort_hooks : (unit -> unit) list;  (* LIFO storage = run order *)
  locals : (int, exn) Hashtbl.t;
  backoff : Backoff.t;
  mutable finished : bool;
}

type abort_reason = Conflict | Killed | Explicit

exception Abort_exn of abort_reason
exception Retry_exn
exception Too_many_attempts of int
exception Not_in_transaction

let desc t = t.tdesc
let config t = t.cfg
let read_version t = t.rv

let check_open t = if t.finished then raise Not_in_transaction

let check_alive t =
  check_open t;
  if Txn_desc.is_aborted t.tdesc then raise (Abort_exn Killed)

let on_commit_locked t f =
  check_alive t;
  t.commit_locked_hooks <- f :: t.commit_locked_hooks

let after_commit t f =
  check_alive t;
  t.after_commit_hooks <- f :: t.after_commit_hooks

let on_abort t f =
  check_alive t;
  t.abort_hooks <- f :: t.abort_hooks

(* ------------------------------------------------------------------ *)
(* Conflict arbitration                                                 *)

(* Arbitrate against [other]; returns when the caller should re-attempt
   the acquisition, raises [Abort_exn] when the caller must restart. *)
let arbitrate t ~other ~attempt =
  check_alive t;
  match t.cfg.cm.Contention.decide ~self:t.tdesc ~other ~attempt with
  | Contention.Wait ->
      Stats.record_lock_wait ();
      Backoff.once t.backoff
  | Contention.Restart_self -> raise (Abort_exn Conflict)
  | Contention.Abort_other ->
      if Txn_desc.try_abort other then Stats.record_remote_abort ();
      (* Give the victim a beat to notice and release its locks. *)
      Backoff.once t.backoff

(* ------------------------------------------------------------------ *)
(* Read validation and timestamp extension                              *)

let entry_valid t (Rentry (tv, ver)) =
  (Tvar.load tv).version = ver
  &&
  match Tvar.current_owner tv with
  | None -> true
  | Some d -> d == t.tdesc

let reads_valid t =
  Hashtbl.fold (fun _ e ok -> ok && entry_valid t e) t.reads true

let try_extend t =
  let now = Clock.now Clock.global in
  if reads_valid t then begin
    t.rv <- now;
    Stats.record_extension ();
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Read and write                                                       *)

let rec lock_for_write : type a. txn -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      if t.cfg.mode = Eager_eager then wait_out_readers t tv ~attempt:0
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_for_write t tv ~attempt:(attempt + 1)

(* With visible readers, a writer that just locked [tv] must come to an
   agreement with every active reader before proceeding; either the
   readers finish/abort or this transaction restarts (releasing the
   lock on its abort path). *)
and wait_out_readers : type a. txn -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.active_readers tv ~except:t.tdesc with
  | [] -> ()
  | other :: _ ->
      arbitrate t ~other ~attempt;
      wait_out_readers t tv ~attempt:(attempt + 1)

let write : type a. txn -> a Tvar.t -> a -> unit =
 fun t tv v ->
  check_alive t;
  (match t.cfg.mode with
  | Lazy_lazy | Serial_commit -> ()
  | Eager_lazy | Eager_eager -> lock_for_write t tv ~attempt:0);
  Hashtbl.replace t.writes tv.Tvar.uid (Wentry (tv, v));
  Txn_desc.earn t.tdesc 1

let rec read : type a. txn -> a Tvar.t -> a =
 fun t tv ->
  check_alive t;
  match Hashtbl.find_opt t.writes tv.Tvar.uid with
  | Some (Wentry (tv', v)) ->
      assert (Obj.repr tv' == Obj.repr tv);
      (* Same uid implies same tvar, hence same type parameter. *)
      (Obj.magic v : a)
  | None -> read_committed t tv ~attempt:0

and read_committed : type a. txn -> a Tvar.t -> attempt:int -> a =
 fun t tv ~attempt ->
  if t.cfg.mode = Eager_eager then Tvar.register_reader tv t.tdesc;
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      arbitrate t ~other:d ~attempt;
      read_committed t tv ~attempt:(attempt + 1)
  | _ -> (
      let s = Tvar.load tv in
      if s.Tvar.version > t.rv && not (t.cfg.extend_reads && try_extend t)
      then begin
        Stats.record_conflict ();
        raise (Abort_exn Conflict)
      end
      else if s.Tvar.version > t.rv then
        (* extension succeeded; re-examine under the new timestamp *)
        read_committed t tv ~attempt
      else
        match Hashtbl.find_opt t.reads tv.Tvar.uid with
        | Some (Rentry (_, ver)) when ver <> s.Tvar.version ->
            Stats.record_conflict ();
            raise (Abort_exn Conflict)
        | Some _ ->
            Txn_desc.earn t.tdesc 1;
            s.Tvar.value
        | None ->
            Hashtbl.replace t.reads tv.Tvar.uid (Rentry (tv, s.Tvar.version));
            Txn_desc.earn t.tdesc 1;
            s.Tvar.value)

(* ------------------------------------------------------------------ *)
(* Commit and abort                                                     *)

let release_locks t =
  List.iter (fun (Locked tv) -> Tvar.unlock tv t.tdesc) t.locked;
  t.locked <- []

let run_hooks hooks =
  (* Run every hook even if one raises; re-raise the first failure once
     lock hygiene is restored by the caller. *)
  let first_exn = ref None in
  List.iter
    (fun f ->
      try f ()
      with e -> if !first_exn = None then first_exn := Some e)
    hooks;
  match !first_exn with None -> () | Some e -> raise e

let do_abort t reason =
  ignore (Txn_desc.try_abort t.tdesc);
  Stats.record_abort ();
  (match reason with
  | Conflict -> Stats.record_conflict ()
  | Killed | Explicit -> ());
  (* LIFO: inverses registered after an operation run before the
     abstract-lock releases registered when the lock was acquired. *)
  let hooks = t.abort_hooks in
  t.abort_hooks <- [];
  t.finished <- true;
  Fun.protect ~finally:(fun () -> release_locks t) (fun () -> run_hooks hooks)

(* NOrec-style global commit lock for the Serial_commit mode: all
   writing commits serialize here instead of locking their write sets
   per location. *)
let commit_gate = Atomic.make 0

let acquire_commit_gate t =
  let b = Backoff.create () in
  let rec loop () =
    check_alive t;
    if not (Atomic.compare_and_set commit_gate 0 t.tdesc.Txn_desc.id) then begin
      Stats.record_lock_wait ();
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let release_commit_gate t =
  if Atomic.get commit_gate = t.tdesc.Txn_desc.id then
    Atomic.set commit_gate 0

let sorted_writes t =
  let l = Hashtbl.fold (fun _ e acc -> e :: acc) t.writes [] in
  List.sort (fun (Wentry (a, _)) (Wentry (b, _)) -> compare a.Tvar.uid b.Tvar.uid) l

let rec lock_entry t tv ~attempt =
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked -> t.locked <- Locked tv :: t.locked
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_entry t tv ~attempt:(attempt + 1)

let do_commit t =
  check_alive t;
  let writes = sorted_writes t in
  (* Phase 1: lock the write set (uid order avoids lock-order livelock;
     eager modes already hold these locks).  The Serial_commit mode
     instead takes the one global commit gate. *)
  let serial = t.cfg.mode = Serial_commit in
  if serial then begin
    if writes <> [] then acquire_commit_gate t
  end
  else List.iter (fun (Wentry (tv, _)) -> lock_entry t tv ~attempt:0) writes;
  (* Phase 2: validate the read set against the snapshot timestamp.
     A transaction whose writes immediately follow its snapshot (rv+1 =
     wv) cannot have missed a concurrent commit, per TL2. *)
  let wv = if writes = [] then t.rv else Clock.tick Clock.global in
  let fail reason =
    if serial then release_commit_gate t;
    raise (Abort_exn reason)
  in
  if writes <> [] && wv > t.rv + 1 && not (reads_valid t) then fail Conflict;
  (* Phase 3: linearize. *)
  if not (Txn_desc.try_commit t.tdesc) then fail Killed;
  Stats.record_commit ();
  (* Phase 4: locked-phase handlers (replay logs), then publish. *)
  t.finished <- true;
  let locked_hooks = List.rev t.commit_locked_hooks in
  let after_hooks = List.rev t.after_commit_hooks in
  t.commit_locked_hooks <- [];
  t.after_commit_hooks <- [];
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (Wentry (tv, v)) -> Tvar.publish tv v ~version:wv)
        writes;
      release_locks t;
      if serial then release_commit_gate t)
    (fun () -> run_hooks locked_hooks);
  run_hooks after_hooks

(* ------------------------------------------------------------------ *)
(* Retry support                                                        *)

let retry t =
  check_alive t;
  raise Retry_exn

let restart t =
  check_alive t;
  raise (Abort_exn Explicit)

(* Build watchers before the txn record is torn down, so [atomically]
   can poll for a change after aborting. *)
let read_watchers t =
  Hashtbl.fold
    (fun _ (Rentry (tv, ver)) acc ->
      (fun () ->
        let s = Tvar.load tv in
        s.Tvar.version <> ver)
      :: acc)
    t.reads []

let wait_for_change watchers =
  if watchers = [] then
    failwith "Stm.retry: transaction read nothing; it would block forever";
  let b = Backoff.create () in
  let rec loop () =
    if List.exists (fun w -> w ()) watchers then () else (Backoff.once b; loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* or_else                                                              *)

let or_else t f g =
  check_alive t;
  let saved_writes = Hashtbl.copy t.writes in
  let saved_locked = t.locked in
  let saved_commit = t.commit_locked_hooks in
  let saved_after = t.after_commit_hooks in
  let saved_abort = t.abort_hooks in
  let saved_locals = Hashtbl.copy t.locals in
  try f t
  with Retry_exn ->
    (* Roll back the first branch's buffered effects.  Locks taken by
       the branch (eager modes) are released; locks predating the
       branch are kept. *)
    let new_locks =
      List.filter (fun l -> not (List.memq l saved_locked)) t.locked
    in
    List.iter (fun (Locked tv) -> Tvar.unlock tv t.tdesc) new_locks;
    t.locked <- saved_locked;
    Hashtbl.reset t.writes;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.writes k v) saved_writes;
    Hashtbl.reset t.locals;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.locals k v) saved_locals;
    t.commit_locked_hooks <- saved_commit;
    t.after_commit_hooks <- saved_after;
    t.abort_hooks <- saved_abort;
    g t

let rec or_else_list t = function
  | [] -> retry t
  | [ f ] -> f t
  | f :: rest -> or_else t f (fun t -> or_else_list t rest)

let guard t cond = if not cond then retry t

(* ------------------------------------------------------------------ *)
(* Transaction-local storage                                            *)

module Local = struct
  type 'a key = {
    kuid : int;
    inject : 'a -> exn;
    project : exn -> 'a option;
    init : txn -> 'a;
  }

  let next_kuid = Atomic.make 1

  let key (type s) (init : txn -> s) : s key =
    let exception E of s in
    {
      kuid = Atomic.fetch_and_add next_kuid 1;
      inject = (fun x -> E x);
      project = (function E x -> Some x | _ -> None);
      init;
    }

  let find t k =
    check_open t;
    match Hashtbl.find_opt t.locals k.kuid with
    | None -> None
    | Some e -> k.project e

  let set t k v =
    check_open t;
    Hashtbl.replace t.locals k.kuid (k.inject v)

  let get t k =
    match find t k with
    | Some v -> v
    | None ->
        let v = k.init t in
        set t k v;
        v
end

(* ------------------------------------------------------------------ *)
(* The atomic-block driver                                              *)

let make_txn cfg ~priority =
  let rv = Clock.now Clock.global in
  {
    rv;
    tdesc = Txn_desc.create ~priority ~birth:rv ();
    cfg;
    reads = Hashtbl.create 16;
    writes = Hashtbl.create 16;
    locked = [];
    commit_locked_hooks = [];
    after_commit_hooks = [];
    abort_hooks = [];
    locals = Hashtbl.create 8;
    backoff = Backoff.create ();
    finished = false;
  }

(* Nesting is flattened: a domain-local slot tracks the transaction an
   [atomically] is currently running on this domain, and nested calls
   join it.  The nested body's effects then commit or abort with the
   outer transaction, which is the composition semantics Proustian
   objects assume. *)
let current_txn : txn option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let atomically_root cfg f =
  let backoff = Backoff.create () in
  let rec attempt n ~priority =
    if n > cfg.max_attempts then raise (Too_many_attempts n);
    Stats.record_start ();
    let t = make_txn cfg ~priority in
    Domain.DLS.set current_txn (Some t);
    let retry_after_abort ?watchers reason =
      Domain.DLS.set current_txn None;
      do_abort t reason;
      (match watchers with
      | Some ws -> wait_for_change ws
      | None -> Backoff.once backoff);
      attempt (n + 1) ~priority:t.tdesc.Txn_desc.priority
    in
    match f t with
    | result -> (
        match do_commit t with
        | () ->
            Domain.DLS.set current_txn None;
            result
        | exception Abort_exn reason -> retry_after_abort reason)
    | exception Abort_exn reason -> retry_after_abort reason
    | exception Retry_exn ->
        let watchers = read_watchers t in
        retry_after_abort ~watchers Explicit
    | exception e ->
        (* A user exception observed in an inconsistent (zombie) state is
           an artifact of late conflict detection, not a real error:
           abort and re-run, as ScalaSTM does (§7).  In a consistent
           state, abort and propagate. *)
        Domain.DLS.set current_txn None;
        let consistent = reads_valid t in
        do_abort t Explicit;
        if consistent then raise e
        else begin
          Backoff.once backoff;
          attempt (n + 1) ~priority:t.tdesc.Txn_desc.priority
        end
  in
  attempt 1 ~priority:0

let atomically ?config:(cfg = !default_config_v) f =
  match Domain.DLS.get current_txn with
  | Some outer when not outer.finished -> f outer
  | _ -> atomically_root cfg f

module Ref = struct
  type 'a t = 'a Tvar.t

  let make = Tvar.make
  let get = read
  let set = write
  let modify t r f = write t r (f (read t r))
end
