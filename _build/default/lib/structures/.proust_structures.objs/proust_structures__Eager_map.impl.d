lib/structures/eager_map.ml: Abstract_lock Committed_size Hashtbl Intent Map_intf Option Stm Update_strategy
