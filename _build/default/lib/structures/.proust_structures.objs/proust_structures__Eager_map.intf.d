lib/structures/eager_map.mli: Lock_allocator Map_intf Stm
