lib/structures/map_intf.ml: Conflict_abstraction Lock_allocator Stm
