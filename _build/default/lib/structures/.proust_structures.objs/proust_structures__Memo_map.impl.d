lib/structures/memo_map.ml: Abstract_lock Committed_size Eager_map Intent Map_intf Replay_log Stm Update_strategy
