lib/structures/memo_map.mli: Eager_map Lock_allocator Map_intf Stm
