lib/structures/p_counter.mli: Map_intf Stm
