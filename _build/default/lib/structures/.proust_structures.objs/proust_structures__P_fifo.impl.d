lib/structures/p_fifo.ml: Abstract_lock Committed_size Intent Map_intf Option Proust_concurrent Queue_intf Update_strategy
