lib/structures/p_fifo.mli: Map_intf Queue_intf Stm
