lib/structures/p_hashmap.ml: Conflict_abstraction Eager_map Map_intf Proust_concurrent
