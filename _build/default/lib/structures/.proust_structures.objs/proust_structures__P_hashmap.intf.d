lib/structures/p_hashmap.mli: Eager_map Lock_allocator Map_intf Proust_concurrent Stm
