lib/structures/p_lazy_fifo.ml: Abstract_lock Committed_size Intent Map_intf Proust_concurrent Queue_intf Replay_log Stm Update_strategy
