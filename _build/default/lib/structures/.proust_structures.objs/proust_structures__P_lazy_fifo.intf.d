lib/structures/p_lazy_fifo.mli: Map_intf Queue_intf Stm
