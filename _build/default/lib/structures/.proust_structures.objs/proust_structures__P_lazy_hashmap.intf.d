lib/structures/p_lazy_hashmap.mli: Map_intf Proust_concurrent Stm
