lib/structures/p_lazy_pqueue.mli: Map_intf Pqueue_intf Stm
