lib/structures/p_lazy_triemap.mli: Map_intf Proust_concurrent Stm
