lib/structures/p_omap.ml: Abstract_lock Committed_size Conflict_abstraction Fun Intent List Map_intf Option Proust_concurrent Replay_log Stm Update_strategy
