lib/structures/p_omap.mli: Conflict_abstraction Map_intf Stm Update_strategy
