lib/structures/p_pqueue.ml: Abstract_lock Committed_size Intent Map_intf Option Pqueue_intf Proust_concurrent Update_strategy
