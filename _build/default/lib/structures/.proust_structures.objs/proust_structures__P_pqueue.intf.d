lib/structures/p_pqueue.mli: Map_intf Pqueue_intf Stm
