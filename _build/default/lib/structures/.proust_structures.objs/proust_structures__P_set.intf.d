lib/structures/p_set.mli: Map_intf Stm
