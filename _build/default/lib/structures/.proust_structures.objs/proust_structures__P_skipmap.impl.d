lib/structures/p_skipmap.ml: Abstract_lock Committed_size Intent Map_intf Option P_omap Proust_concurrent Update_strategy
