lib/structures/p_skipmap.mli: Map_intf Stm
