lib/structures/p_stack.mli: Map_intf Stm
