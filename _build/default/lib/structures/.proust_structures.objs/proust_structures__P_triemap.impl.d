lib/structures/p_triemap.ml: Conflict_abstraction Eager_map Map_intf Proust_concurrent
