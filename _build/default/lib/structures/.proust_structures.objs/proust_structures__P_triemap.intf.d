lib/structures/p_triemap.mli: Eager_map Lock_allocator Map_intf Proust_concurrent Stm
