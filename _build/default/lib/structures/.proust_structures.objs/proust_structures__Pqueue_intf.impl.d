lib/structures/pqueue_intf.ml: Conflict_abstraction Intent Stm
