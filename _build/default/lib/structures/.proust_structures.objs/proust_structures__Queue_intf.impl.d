lib/structures/queue_intf.ml: Conflict_abstraction Intent Stm
