(** The transactional map trait (Listing 2), as a first-class record so
    benchmarks and tests can drive any implementation uniformly. *)

type ('k, 'v) ops = {
  get : Stm.txn -> 'k -> 'v option;
  put : Stm.txn -> 'k -> 'v -> 'v option;
      (** binds and returns the previous binding *)
  remove : Stm.txn -> 'k -> 'v option;
  contains : Stm.txn -> 'k -> bool;
  size : Stm.txn -> int;
}

(** Module-style view of the same trait, for wrappers exposed as
    modules. *)
module type S = sig
  type ('k, 'v) t

  val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
  val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
  val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
  val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
  val size : ('k, 'v) t -> Stm.txn -> int
  val ops : ('k, 'v) t -> ('k, 'v) ops
end

(** Choice of lock-allocator policy used by convenience constructors.
    [Optimistic_unvalidated] omits the read-before-write on
    conflict-abstraction slots: the paper's plain eager/optimistic
    construction, opaque only under eager STM conflict detection
    (Theorem 5.2). *)
type lap_choice = Optimistic | Optimistic_unvalidated | Pessimistic

let make_lap (choice : lap_choice) ~(ca : 'k Conflict_abstraction.t) :
    'k Lock_allocator.t =
  match choice with
  | Optimistic -> Lock_allocator.optimistic ~validate_writes:true ~ca ()
  | Optimistic_unvalidated ->
      Lock_allocator.optimistic ~validate_writes:false ~ca ()
  | Pessimistic -> Lock_allocator.pessimistic ~ca ()
