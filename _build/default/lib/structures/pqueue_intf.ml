(** The transactional priority-queue trait (Listing 3).

    The abstract state has two elements: [Min], the current minimum,
    and [Multiset], the bag of queued values.  Commutativity is
    expressed against these elements rather than pairwise between
    methods — the "linear in the state space" economy the paper claims:

    - [Min] admits multiple readers xor a single writer;
    - [Multiset] admits multiple writers or multiple readers, but not
      both at once (all inserts commute with each other).

    The multiset's writers-compatible-with-writers semantics is encoded
    in the conflict abstraction as a striped band of sub-slots
    ({!Conflict_abstraction.group_accesses}). *)

type state = Min | Multiset

type 'v ops = {
  insert : Stm.txn -> 'v -> unit;
  remove_min : Stm.txn -> 'v option;
  min : Stm.txn -> 'v option;
  contains : Stm.txn -> 'v -> bool;
  size : Stm.txn -> int;
}

(** Conflict abstraction shared by both priority-queue wrappers:
    slot 0 is [Min]; slots 1..stripes are the [Multiset] band. *)
let ca ~stripes : state Conflict_abstraction.t =
  Conflict_abstraction.exact ~slots:(1 + stripes) (fun ~stripe intent ->
      match Intent.key intent with
      | Min ->
          [ { Conflict_abstraction.slot = 0; write = Intent.is_write intent } ]
      | Multiset ->
          Conflict_abstraction.group_accesses ~width:stripes ~base:1 ~stripe
            intent)
