(** The transactional FIFO-queue trait, with a two-element abstract
    state in the style of Listing 3:

    - [Head]: the dequeue end.  [dequeue] and [front] operate here.
    - [Tail]: the enqueue end.  [enqueue] operates here.

    Commutativity facts the conflict abstraction encodes:
    - enqueues never commute with each other (they order elements), so
      [Tail] is exclusively written;
    - an enqueue into an {e empty} queue creates the new front, so it
      additionally writes [Head];
    - a dequeue that empties the queue additionally writes [Tail]
      (freezing emptiness against concurrent enqueues that sampled the
      queue as non-empty).

    The state-dependent intents are acquired through
    {!Abstract_lock.acquire_stable}.

    Under the {e eager} update strategy, dequeue additionally reads
    [Tail], making every dequeue conflict with every enqueue.  This is
    not a Definition 3.1 requirement — deq and enq commute on a
    non-empty queue — but an abort-safety one: an eager enqueue is
    visible in the shared base before its transaction commits, and
    without the conflict a concurrent dequeue could drain down to and
    consume the uncommitted element (whose enqueuer may yet abort).
    The paper's eager priority queue avoids this automatically because
    every [removeMin] already conflicts with every [insert] through
    [PQueueMin]; a FIFO's conflict abstraction must pay for it
    explicitly.  Lazy wrappers keep uncommitted effects off the shared
    structure, so they skip the extra read. *)

type state = Head | Tail

type 'v ops = {
  enqueue : Stm.txn -> 'v -> unit;
  dequeue : Stm.txn -> 'v option;
  front : Stm.txn -> 'v option;
  size : Stm.txn -> int;
}

let ca () : state Conflict_abstraction.t =
  Conflict_abstraction.indexed ~slots:2 ~index:(function Head -> 0 | Tail -> 1)

(** Extra intent for eager dequeues (see above). *)
let eager_dequeue_guard = [ Intent.Read Tail ]
