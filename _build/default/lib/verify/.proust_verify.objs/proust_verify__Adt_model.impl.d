lib/verify/adt_model.ml: Fun Int List Printf String
