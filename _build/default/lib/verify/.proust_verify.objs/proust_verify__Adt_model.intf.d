lib/verify/adt_model.mli:
