lib/verify/ca_check.ml: Adt_model Ca_spec Commute Fun List Printf
