lib/verify/ca_check.mli: Adt_model Ca_spec
