lib/verify/ca_encode.ml: Adt_model Array Ca_spec Fd List Printf
