lib/verify/ca_encode.mli: Adt_model Ca_spec
