lib/verify/ca_spec.ml: Adt_model List Printf
