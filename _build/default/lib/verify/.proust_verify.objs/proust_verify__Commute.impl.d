lib/verify/commute.ml: Adt_model List
