lib/verify/commute.mli: Adt_model
