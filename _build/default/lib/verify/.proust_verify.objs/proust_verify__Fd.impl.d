lib/verify/fd.ml: Array Fun List Sat
