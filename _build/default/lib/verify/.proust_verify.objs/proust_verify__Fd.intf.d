lib/verify/fd.mli:
