lib/verify/history.ml: List Mutex Stm Txn_desc
