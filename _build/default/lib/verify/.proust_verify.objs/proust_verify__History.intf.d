lib/verify/history.mli: Stm
