lib/verify/sat.ml: Array List
