lib/verify/sat.mli:
