lib/verify/serializability.ml: Adt_model History List
