lib/verify/serializability.mli: Adt_model History
