lib/verify/synth.ml: Adt_model Array Ca_check Ca_spec Commute Fun List
