lib/verify/synth.mli: Adt_model Ca_check Ca_spec
