(** Exhaustive checker for Definition 3.1.

    For every state in the model's bounded space, every ordered pair of
    operation instances, and every pair of transaction stripes: if the
    operations do not commute in that state, their conflict-abstraction
    accesses must overlap on some slot with at least one write.

    The second operation's accesses are evaluated both at the common
    state σ (the literal Definition 3.1) and at the post-first-op state
    σ' — the state a concurrent transaction may consult while computing
    its intents (the boosting re-sampling race); a correct
    state-dependent abstraction must conflict under both readings. *)

type ('s, 'o) counterexample = {
  state : 's;
  op_m : 'o;
  op_n : 'o;
  stripe_m : int;
  stripe_n : int;
  evaluated_at : [ `Same_state | `Post_state ];
}

let overlaps_with_write (rm, wm) (rn, wn) =
  let mem x l = List.mem x l in
  List.exists (fun i -> mem i wn) rm
  || List.exists (fun i -> mem i rn) wm
  || List.exists (fun i -> mem i wn) wm

let conflicting (ca : ('s, 'o) Ca_spec.t) ~stripe_m ~stripe_n s_m s_n op_m op_n
    =
  let acc_m =
    (ca.reads ~stripe:stripe_m s_m op_m, ca.writes ~stripe:stripe_m s_m op_m)
  in
  let acc_n =
    (ca.reads ~stripe:stripe_n s_n op_n, ca.writes ~stripe:stripe_n s_n op_n)
  in
  overlaps_with_write acc_m acc_n

let check (type s o r) (m : (s, o, r) Adt_model.t) (ca : (s, o) Ca_spec.t) :
    (s, o) counterexample option =
  let stripes = List.init ca.stripe_width Fun.id in
  let exception Found of (s, o) counterexample in
  try
    List.iter
      (fun s ->
        List.iter
          (fun op_m ->
            List.iter
              (fun op_n ->
                if not (Commute.commutes m s op_m op_n) then
                  let s_post, _ = m.apply s op_m in
                  List.iter
                    (fun stripe_m ->
                      List.iter
                        (fun stripe_n ->
                          if
                            not
                              (conflicting ca ~stripe_m ~stripe_n s s op_m
                                 op_n)
                          then
                            raise
                              (Found
                                 {
                                   state = s;
                                   op_m;
                                   op_n;
                                   stripe_m;
                                   stripe_n;
                                   evaluated_at = `Same_state;
                                 });
                          if
                            not
                              (conflicting ca ~stripe_m ~stripe_n s s_post
                                 op_m op_n)
                          then
                            raise
                              (Found
                                 {
                                   state = s;
                                   op_m;
                                   op_n;
                                   stripe_m;
                                   stripe_n;
                                   evaluated_at = `Post_state;
                                 }))
                        stripes)
                    stripes)
              m.ops)
          m.ops)
      m.states;
    None
  with Found cex -> Some cex

let show_counterexample (m : ('s, 'o, 'r) Adt_model.t)
    (cex : ('s, 'o) counterexample) =
  Printf.sprintf
    "state=%s m=%s n=%s stripes=(%d,%d) at=%s: operations do not commute but \
     trigger no conflicting access"
    (m.show_state cex.state) (m.show_op cex.op_m) (m.show_op cex.op_n)
    cex.stripe_m cex.stripe_n
    (match cex.evaluated_at with
    | `Same_state -> "sigma"
    | `Post_state -> "sigma'")
