(** Exhaustive checker for Definition 3.1: every non-commuting pair of
    operation instances, in every bounded state and for every stripe
    pair, must trigger overlapping slot accesses with at least one
    write.  The second operation's accesses are checked both at the
    common state σ (the literal definition) and at the post-first-op
    state σ' (the boosting re-sampling race). *)

type ('s, 'o) counterexample = {
  state : 's;
  op_m : 'o;
  op_n : 'o;
  stripe_m : int;
  stripe_n : int;
  evaluated_at : [ `Same_state | `Post_state ];
}

(** Do the accesses of [op_m] (at state [s_m], stripe [stripe_m]) and
    [op_n] (at [s_n], [stripe_n]) overlap with a write?  Exposed for
    {!Synth}'s counterexample screening. *)
val conflicting :
  ('s, 'o) Ca_spec.t ->
  stripe_m:int ->
  stripe_n:int ->
  's -> 's -> 'o -> 'o -> bool

(** [check model ca] is [None] when the abstraction is correct on the
    bounded model, or the first counterexample found. *)
val check :
  ('s, 'o, 'r) Adt_model.t ->
  ('s, 'o) Ca_spec.t ->
  ('s, 'o) counterexample option

val show_counterexample :
  ('s, 'o, 'r) Adt_model.t -> ('s, 'o) counterexample -> string
