(** SAT encoding of conflict-abstraction correctness for the §3
    counter — the Appendix E construction, discharged by the in-tree
    DPLL solver instead of an external SMT tool.

    The formula asserts, over a bounded counter domain:

    + two operations [m] and [n] execute in order ([m] from state [c0]
      to [c1], [n] from [c1] to [c2]);
    + their conflict-abstraction accesses (evaluated at their
      respective invocation states, as in the appendix's
      [(incr_CA l0 l1 c0)] / [(decr_CA l1 l2 c1)]) do not conflict;
    + executing the opposite order from [c0] yields a different final
      state or different return values.

    If this is UNSAT, every conflict-free pair commutes — i.e. the
    conflict abstraction is correct on the bounded domain
    (Theorem E.1, contrapositive). *)

type verdict =
  | Correct
  | Counterexample of {
      op_m : Adt_model.counter_op;
      op_n : Adt_model.counter_op;
      c0 : int;
      description : string;
    }

(* Operation encoding: 0 = incr, 1 = decr. *)
let op_of_int = function 0 -> Adt_model.Incr | _ -> Adt_model.Decr
let show_op = function Adt_model.Incr -> "incr" | Adt_model.Decr -> "decr"

(* step o cin = (cout, err): the counter transition relation. *)
let step o cin ~bound =
  match op_of_int o with
  | Adt_model.Incr -> if cin >= bound then None else Some (cin + 1, 0)
  | Adt_model.Decr -> if cin = 0 then Some (0, 1) else Some (cin - 1, 0)

let reads_ca o c ~threshold = op_of_int o = Adt_model.Incr && c < threshold
let writes_ca o c ~threshold = op_of_int o = Adt_model.Decr && c < threshold

let check_counter ?(threshold = 2) ?(bound = 6) () =
  let p = Fd.create () in
  let dom = bound + 1 in
  let o_m = Fd.var p 2 and o_n = Fd.var p 2 in
  let c0 = Fd.var p dom
  and c1 = Fd.var p dom
  and c2 = Fd.var p dom
  and c3 = Fd.var p dom
  and c4 = Fd.var p dom in
  (* err flags for each of the four executions *)
  let e_m1 = Fd.bool_var p
  and e_n1 = Fd.bool_var p
  and e_n2 = Fd.bool_var p
  and e_m2 = Fd.bool_var p in
  let assert_step o cin cout err =
    Fd.assert_table p [ o; cin; cout; err ] (function
      | [ o; cin; cout; err ] -> step o cin ~bound = Some (cout, err)
      | _ -> false)
  in
  (* Order 1: m then n.  Order 2: n then m. *)
  assert_step o_m c0 c1 e_m1;
  assert_step o_n c1 c2 e_n1;
  assert_step o_n c0 c3 e_n2;
  assert_step o_m c3 c4 e_m2;
  (* No conflict between m's accesses at c0 and n's accesses at c1. *)
  Fd.assert_table p [ o_m; c0; o_n; c1 ] (function
    | [ om; s0; on; s1 ] ->
        let m_rd = reads_ca om s0 ~threshold
        and m_wr = writes_ca om s0 ~threshold
        and n_rd = reads_ca on s1 ~threshold
        and n_wr = writes_ca on s1 ~threshold in
        not ((m_rd && n_wr) || (m_wr && n_rd) || (m_wr && n_wr))
    | _ -> false);
  (* The two orders disagree on final state or on some return value. *)
  Fd.assert_table p [ c2; c4; e_m1; e_m2; e_n1; e_n2 ] (function
    | [ c2; c4; em1; em2; en1; en2 ] ->
        not (c2 = c4 && em1 = em2 && en1 = en2)
    | _ -> false);
  match Fd.solve p with
  | None -> Correct
  | Some read ->
      let m = op_of_int (read o_m) and n = op_of_int (read o_n) in
      Counterexample
        {
          op_m = m;
          op_n = n;
          c0 = read c0;
          description =
            Printf.sprintf
              "%s;%s from %d commutes-not (finals %d vs %d) yet no conflict \
               detected"
              (show_op m) (show_op n) (read c0) (read c2) (read c4);
        }

(* ------------------------------------------------------------------ *)
(* Generalized encoding: Definition 3.1 for ANY finite model, by       *)
(* enumerating its states, operations and return values into finite    *)
(* domains.  Practical for the small models in Adt_model; the          *)
(* exhaustive Ca_check scales further, but this route exercises the    *)
(* reduction-to-satisfiability claim end to end.                       *)

type generic_verdict = G_correct | G_counterexample of string

let check_model (type s o r) (m : (s, o, r) Adt_model.t)
    (ca : (s, o) Ca_spec.t) =
  (* Deduplicate states under the model's own equality so state ids are
     canonical. *)
  let states =
    List.fold_left
      (fun acc st ->
        if List.exists (m.Adt_model.equal_state st) acc then acc else st :: acc)
      [] m.Adt_model.states
    |> List.rev |> Array.of_list
  in
  let ops = Array.of_list m.Adt_model.ops in
  let state_id st =
    let rec go i =
      if i >= Array.length states then
        invalid_arg "Ca_encode.check_model: model is not closed under apply"
      else if m.Adt_model.equal_state st states.(i) then i
      else go (i + 1)
    in
    go 0
  in
  (* Enumerate return values reachable in one step. *)
  let rets = ref [] in
  Array.iter
    (fun st ->
      Array.iter
        (fun op ->
          let _, r = m.Adt_model.apply st op in
          if not (List.exists (m.Adt_model.equal_ret r) !rets) then
            rets := r :: !rets)
        ops)
    states;
  let rets = Array.of_list (List.rev !rets) in
  let ret_id r =
    let rec go i =
      if m.Adt_model.equal_ret r rets.(i) then i else go (i + 1)
    in
    go 0
  in
  (* step o s = (s', ret) as ids; None when s' escapes the bounded
     state space (the boundary of the exploration). *)
  let step o s =
    let s', r = m.Adt_model.apply states.(s) ops.(o) in
    match state_id s' with
    | id -> Some (id, ret_id r)
    | exception Invalid_argument _ -> None
  in
  let p = Fd.create () in
  let n_states = Array.length states
  and n_ops = Array.length ops
  and n_rets = Array.length rets in
  let o_m = Fd.var p n_ops and o_n = Fd.var p n_ops in
  let sm = Fd.var p ca.Ca_spec.stripe_width
  and sn = Fd.var p ca.Ca_spec.stripe_width in
  let s0 = Fd.var p n_states
  and s1 = Fd.var p n_states
  and s2 = Fd.var p n_states
  and s3 = Fd.var p n_states
  and s4 = Fd.var p n_states in
  let r_m1 = Fd.var p n_rets
  and r_n1 = Fd.var p n_rets
  and r_n2 = Fd.var p n_rets
  and r_m2 = Fd.var p n_rets in
  let assert_step o cin cout ret =
    Fd.assert_table p [ o; cin; cout; ret ] (function
      | [ o; cin; cout; ret ] -> step o cin = Some (cout, ret)
      | _ -> false)
  in
  assert_step o_m s0 s1 r_m1;
  assert_step o_n s1 s2 r_n1;
  assert_step o_n s0 s3 r_n2;
  assert_step o_m s3 s4 r_m2;
  (* Conflict-freedom of m's accesses at s0 against n's at s1. *)
  Fd.assert_table p [ o_m; s0; o_n; s1; sm; sn ] (function
    | [ om; st0; on; st1; str_m; str_n ] ->
        let m_rd = ca.Ca_spec.reads ~stripe:str_m states.(st0) ops.(om)
        and m_wr = ca.Ca_spec.writes ~stripe:str_m states.(st0) ops.(om)
        and n_rd = ca.Ca_spec.reads ~stripe:str_n states.(st1) ops.(on)
        and n_wr = ca.Ca_spec.writes ~stripe:str_n states.(st1) ops.(on) in
        let hits a b = List.exists (fun x -> List.mem x b) a in
        not (hits m_rd n_wr || hits m_wr n_rd || hits m_wr n_wr)
    | _ -> false);
  (* The two orders disagree somewhere. *)
  Fd.assert_table p [ s2; s4; r_m1; r_m2; r_n1; r_n2 ] (function
    | [ a; b; rm1; rm2; rn1; rn2 ] -> not (a = b && rm1 = rm2 && rn1 = rn2)
    | _ -> false);
  match Fd.solve p with
  | None -> G_correct
  | Some read ->
      G_counterexample
        (Printf.sprintf
           "%s: ops %s;%s from state %s disagree across orders yet trigger no \
            conflict (stripes %d,%d)"
           m.Adt_model.name
           (m.Adt_model.show_op ops.(read o_m))
           (m.Adt_model.show_op ops.(read o_n))
           (m.Adt_model.show_state states.(read s0))
           (read sm) (read sn))
