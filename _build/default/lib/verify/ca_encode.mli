(** SAT encodings of conflict-abstraction correctness (Appendix E),
    discharged by the in-tree DPLL solver instead of an external SMT
    tool.  UNSAT means every conflict-free pair commutes — the
    abstraction is correct on the bounded domain (Theorem E.1,
    contrapositive). *)

(** {1 The hand-built counter encoding of Appendix E} *)

type verdict =
  | Correct
  | Counterexample of {
      op_m : Adt_model.counter_op;
      op_n : Adt_model.counter_op;
      c0 : int;
      description : string;
    }

val check_counter : ?threshold:int -> ?bound:int -> unit -> verdict

(** {1 Generalized encoding for any finite model}

    States, operations and return values are enumerated into finite
    domains; adequate for the small models of {!Adt_model} (the
    exhaustive {!Ca_check} scales further). *)

type generic_verdict = G_correct | G_counterexample of string

val check_model :
  ('s, 'o, 'r) Adt_model.t -> ('s, 'o) Ca_spec.t -> generic_verdict
