(** Commutativity of operation pairs (§3: "Two operations commute if
    applying them in either order yields the same return values and the
    same final object state"). *)

let commutes (m : ('s, 'o, 'r) Adt_model.t) (s : 's) (op_a : 'o) (op_b : 'o) =
  let s1, ra = m.apply s op_a in
  let s2, rb = m.apply s1 op_b in
  let s1', rb' = m.apply s op_b in
  let s2', ra' = m.apply s1' op_a in
  m.equal_state s2 s2' && m.equal_ret ra ra' && m.equal_ret rb rb'

(** All non-commuting pairs in the model's state space (diagnostics). *)
let non_commuting_pairs (m : ('s, 'o, 'r) Adt_model.t) =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b -> if commutes m s a b then None else Some (s, a, b))
            m.ops)
        m.ops)
    m.states

(** [commuting_states m a b] — the bounded states where [a] and [b]
    commute: the commutativity condition of the pair, by enumeration
    (the finite-model analogue of commutativity condition refinement,
    which §3 suggests automating with SMT). *)
let commuting_states (m : ('s, 'o, 'r) Adt_model.t) a b =
  List.filter (fun s -> commutes m s a b) m.states
