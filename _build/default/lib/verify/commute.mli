(** Commutativity of operation pairs (§3: two operations commute if
    applying them in either order yields the same return values and
    the same final object state). *)

val commutes : ('s, 'o, 'r) Adt_model.t -> 's -> 'o -> 'o -> bool

(** All non-commuting (state, m, n) triples in the model's bounded
    space (diagnostics; also printed by [proust_verify pairs]). *)
val non_commuting_pairs : ('s, 'o, 'r) Adt_model.t -> ('s * 'o * 'o) list

(** The commutativity condition of a pair, as the set of bounded
    states where it holds (finite-model commutativity condition
    refinement, cf. §3's SMT automation). *)
val commuting_states : ('s, 'o, 'r) Adt_model.t -> 'o -> 'o -> 's list
