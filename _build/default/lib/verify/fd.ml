type var = { base : int; size : int }

type t = {
  mutable nvars : int;
  mutable clauses : Sat.clause list;
}

let create () = { nvars = 0; clauses = [] }

(* One-hot encoding: propositional var [base + i] means "value = i". *)
let var t size =
  if size < 1 then invalid_arg "Fd.var: empty domain";
  let v = { base = t.nvars + 1; size } in
  t.nvars <- t.nvars + size;
  (* at least one *)
  t.clauses <- List.init size (fun i -> v.base + i) :: t.clauses;
  (* at most one *)
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      t.clauses <- [ -(v.base + i); -(v.base + j) ] :: t.clauses
    done
  done;
  v

let bool_var t = var t 2

let rec tuples = function
  | [] -> [ [] ]
  | v :: rest ->
      let tails = tuples rest in
      List.concat_map (fun i -> List.map (fun tl -> i :: tl) tails)
        (List.init v.size Fun.id)

let assert_table t vars pred =
  List.iter
    (fun tuple ->
      if not (pred tuple) then
        t.clauses <-
          List.map2 (fun v i -> -(v.base + i)) vars tuple :: t.clauses)
    (tuples vars)

let solve t =
  match Sat.solve ~nvars:t.nvars t.clauses with
  | Sat.Unsat -> None
  | Sat.Sat assign ->
      Some
        (fun v ->
          let rec find i =
            if i >= v.size then
              invalid_arg "Fd.solve: unassigned one-hot variable"
            else if assign.(v.base + i) then i
            else find (i + 1)
          in
          find 0)

let stats t = (t.nvars, List.length t.clauses)
