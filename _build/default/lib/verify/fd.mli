(** A finite-domain constraint layer over {!Sat}.

    Variables range over [0, size).  Constraints are extensional
    ("table") constraints given as characteristic predicates, compiled
    by blocking every disallowed tuple — adequate for the small
    arities and domains of the Appendix E encodings. *)

type t
type var

val create : unit -> t

(** [var t n] is a fresh variable with domain [{0..n-1}]. *)
val var : t -> int -> var

val bool_var : t -> var

(** [assert_table t vars pred] constrains the joint assignment of
    [vars] to tuples satisfying [pred]. *)
val assert_table : t -> var list -> (int list -> bool) -> unit

(** [solve t] is a satisfying assignment, if any. *)
val solve : t -> (var -> int) option

(** Number of propositional variables/clauses generated (diagnostics). *)
val stats : t -> int * int
