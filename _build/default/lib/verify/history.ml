(** Recording of committed transactions' abstract operations, for
    offline serializability checking of live runs.

    Tests wrap each data-structure call with {!log}; events buffer in
    transaction-local storage and flush to the shared history only when
    the transaction commits, so the recorded history contains exactly
    the committed operations with their observed return values. *)

type ('o, 'r) event = { op : 'o; ret : 'r }
type ('o, 'r) record = { txn_id : int; events : ('o, 'r) event list }

type ('o, 'r) t = {
  m : Mutex.t;
  committed : ('o, 'r) record list ref;  (* newest first *)
  buffer_key : ('o, 'r) event list ref Stm.Local.key;
}

let make () =
  let m = Mutex.create () in
  let committed = ref [] in
  let buffer_key =
    Stm.Local.key (fun txn ->
        let buf = ref [] in
        let id = (Stm.desc txn).Txn_desc.id in
        Stm.after_commit txn (fun () ->
            Mutex.lock m;
            committed := { txn_id = id; events = List.rev !buf } :: !committed;
            Mutex.unlock m);
        buf)
  in
  { m; committed; buffer_key }

let log t txn op ret =
  let buf = Stm.Local.get txn t.buffer_key in
  buf := { op; ret } :: !buf

let records t =
  Mutex.lock t.m;
  let out = List.rev !(t.committed) in
  Mutex.unlock t.m;
  out

let clear t =
  Mutex.lock t.m;
  t.committed := [];
  Mutex.unlock t.m
