(** Recording of committed transactions' abstract operations, for
    offline serializability checking of live runs.  Events buffer in
    transaction-local storage and flush to the shared history only when
    the transaction commits. *)

type ('o, 'r) event = { op : 'o; ret : 'r }
type ('o, 'r) record = { txn_id : int; events : ('o, 'r) event list }
type ('o, 'r) t

val make : unit -> ('o, 'r) t

(** Log one operation with its observed return value. *)
val log : ('o, 'r) t -> Stm.txn -> 'o -> 'r -> unit

(** Committed records, oldest first. *)
val records : ('o, 'r) t -> ('o, 'r) record list

val clear : ('o, 'r) t -> unit
