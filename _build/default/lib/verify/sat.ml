type literal = int
type clause = literal list
type result = Sat of bool array | Unsat

(* Assignment: 0 unassigned, 1 true, -1 false. *)

let value assign lit =
  let v = assign.(abs lit) in
  if v = 0 then 0 else if (v > 0) = (lit > 0) then 1 else -1

(* Unit propagation over the full clause list.  Returns [`Conflict] or
   [`Ok trail] where [trail] lists the variables it assigned. *)
let propagate clauses assign =
  let trail = ref [] in
  let changed = ref true in
  let conflict = ref false in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun clause ->
        if not !conflict then begin
          let unassigned = ref [] and satisfied = ref false in
          List.iter
            (fun lit ->
              match value assign lit with
              | 1 -> satisfied := true
              | 0 -> unassigned := lit :: !unassigned
              | _ -> ())
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ lit ] ->
                assign.(abs lit) <- (if lit > 0 then 1 else -1);
                trail := abs lit :: !trail;
                changed := true
            | _ -> ()
        end)
      clauses
  done;
  if !conflict then `Conflict !trail else `Ok !trail

let solve ~nvars clauses =
  let assign = Array.make (nvars + 1) 0 in
  let undo trail = List.iter (fun v -> assign.(v) <- 0) trail in
  let rec pick_var v = if v > nvars then 0 else if assign.(v) = 0 then v else pick_var (v + 1) in
  let rec go () =
    match propagate clauses assign with
    | `Conflict trail ->
        undo trail;
        false
    | `Ok trail -> (
        let v = pick_var 1 in
        if v = 0 then true
        else begin
          let try_branch b =
            assign.(v) <- b;
            if go () then true
            else begin
              assign.(v) <- 0;
              false
            end
          in
          if try_branch 1 then true
          else if try_branch (-1) then true
          else begin
            undo trail;
            false
          end
        end)
  in
  if go () then Sat (Array.map (fun v -> v > 0) assign) else Unsat

let satisfiable ~nvars clauses =
  match solve ~nvars clauses with Sat _ -> true | Unsat -> false
