(** A small DPLL SAT solver (unit propagation + branching), sufficient
    for the finite-domain encodings of Appendix E.

    Literals are non-zero integers in DIMACS convention: variable [v]
    is the positive literal [v], its negation [-v].  Variables are
    numbered from 1. *)

type literal = int
type clause = literal list
type result = Sat of bool array  (** index [v] holds variable [v] *) | Unsat

val solve : nvars:int -> clause list -> result

(** Convenience: satisfiability of a formula already known closed. *)
val satisfiable : nvars:int -> clause list -> bool
