(** Counterexample-guided synthesis of conflict abstractions — the
    CEGIS direction sketched in §9 / Appendix E ("using SAT/SMT
    counter-examples as the basis for constructing f_1^(m,rd), ...").

    The search walks a caller-supplied candidate sequence (ordered
    cheapest-first: fewer slots, weaker accesses) and returns the first
    candidate satisfying Definition 3.1.  Counterexamples from rejected
    candidates accumulate and cheaply screen later candidates before
    paying for a full exhaustive check — the counterexample-guided
    pruning at the heart of CEGIS. *)

type ('s, 'o) outcome = {
  chosen : ('s, 'o) Ca_spec.t option;
  candidates_tried : int;
  full_checks : int;  (** candidates that reached the expensive oracle *)
  counterexamples : ('s, 'o) Ca_check.counterexample list;
}

(* Does an accumulated counterexample already reject this candidate?
   Definition 3.1 demands conflict for every stripe pair, so a single
   conflict-free stripe pair on the counterexample's state and
   operations rejects. *)
let cex_rejects (m : ('s, 'o, 'r) Adt_model.t) (ca : ('s, 'o) Ca_spec.t)
    (cex : ('s, 'o) Ca_check.counterexample) =
  let s = cex.Ca_check.state in
  let s_n =
    match cex.Ca_check.evaluated_at with
    | `Same_state -> s
    | `Post_state -> fst (m.Adt_model.apply s cex.Ca_check.op_m)
  in
  let stripes = List.init ca.Ca_spec.stripe_width Fun.id in
  List.exists
    (fun stripe_m ->
      List.exists
        (fun stripe_n ->
          not
            (Ca_check.conflicting ca ~stripe_m ~stripe_n s s_n
               cex.Ca_check.op_m cex.Ca_check.op_n))
        stripes)
    stripes

let synthesize (m : ('s, 'o, 'r) Adt_model.t)
    (candidates : ('s, 'o) Ca_spec.t list) : ('s, 'o) outcome =
  let cexs = ref [] in
  let tried = ref 0 and full = ref 0 in
  let rec go = function
    | [] ->
        {
          chosen = None;
          candidates_tried = !tried;
          full_checks = !full;
          counterexamples = !cexs;
        }
    | ca :: rest ->
        incr tried;
        if List.exists (cex_rejects m ca) !cexs then go rest
        else begin
          incr full;
          match Ca_check.check m ca with
          | None ->
              {
                chosen = Some ca;
                candidates_tried = !tried;
                full_checks = !full;
                counterexamples = !cexs;
              }
          | Some cex ->
              cexs := cex :: !cexs;
              go rest
        end
  in
  go candidates

(* ------------------------------------------------------------------ *)
(* Ready-made candidate spaces                                          *)

(** Counter abstractions ordered by increasing threshold: the
    synthesizer recovers the paper's threshold 2 as the weakest sound
    choice. *)
let counter_candidates ~max_threshold =
  List.init (max_threshold + 1) (fun t -> Ca_spec.counter ~threshold:t ())

(** Map abstractions ordered by increasing slot count (coarse first). *)
let map_candidates ~max_slots =
  List.init max_slots (fun i -> Ca_spec.striped_map ~slots:(i + 1) ())

(** Priority-queue abstractions: the literal Figure 3 computation
    first (cheaper: fewer Min writes), then the repaired one — the
    synthesizer rejects the former with the empty-queue counterexample
    and lands on the latter. *)
let pqueue_candidates ~stripes =
  [ Ca_spec.figure3_literal_pqueue ~stripes (); Ca_spec.pqueue ~stripes () ]

(* ------------------------------------------------------------------ *)
(* Fully automatic derivation                                           *)

(** [derive m] mechanically constructs a conflict abstraction for any
    finite model, with no designer input: one slot per unordered
    operation pair, written by both operations exactly in the states
    where the pair fails to commute — closed forward one step, so the
    σ′-evaluation of {!Ca_check} (a concurrent transaction computing
    its intents after the first operation ran) still sees the
    conflict.  States outside the bounded space fall back to writing
    every slot (sound, maximally conservative).

    The result is certified by {!Ca_check} in the test suite for every
    built-in model; it is the automation the paper's §3 sketches via
    SMT, here by enumeration.  Hand-written abstractions remain
    preferable for slot economy ([derive] allocates O(ops²) slots). *)
let derive (m : ('s, 'o, 'r) Adt_model.t) : ('s, 'o) Ca_spec.t =
  let ops = Array.of_list m.Adt_model.ops in
  let nops = Array.length ops in
  let states = Array.of_list m.Adt_model.states in
  let nstates = Array.length states in
  let slot_of i j = if i <= j then (i * nops) + j else (j * nops) + i in
  let state_index s =
    let rec go i =
      if i >= nstates then None
      else if m.Adt_model.equal_state s states.(i) then Some i
      else go (i + 1)
    in
    go 0
  in
  (* hot.(si).(slot): the pair conflicts in state si. *)
  let hot = Array.init nstates (fun _ -> Array.make (nops * nops) false) in
  for si = 0 to nstates - 1 do
    for i = 0 to nops - 1 do
      for j = i to nops - 1 do
        if not (Commute.commutes m states.(si) ops.(i) ops.(j)) then
          hot.(si).(slot_of i j) <- true
      done
    done
  done;
  (* Forward closure: a state reachable in one step from a hot state is
     hot too (the σ′ evaluation point). *)
  let closed = Array.map Array.copy hot in
  for si = 0 to nstates - 1 do
    for k = 0 to nops - 1 do
      let s', _ = m.Adt_model.apply states.(si) ops.(k) in
      match state_index s' with
      | Some ti ->
          for p = 0 to (nops * nops) - 1 do
            if hot.(si).(p) then closed.(ti).(p) <- true
          done
      | None -> ()
    done
  done;
  let op_index o =
    let rec go i =
      if i >= nops then invalid_arg "Synth.derive: unknown operation"
      else if ops.(i) == o || ops.(i) = o then i
      else go (i + 1)
    in
    go 0
  in
  let writes ~stripe:_ s o =
    let i = op_index o in
    match state_index s with
    | None -> List.init nops (fun j -> slot_of i j)  (* out of space: all *)
    | Some si ->
        List.filter_map
          (fun j ->
            let p = slot_of i j in
            if closed.(si).(p) then Some p else None)
          (List.init nops Fun.id)
  in
  {
    Ca_spec.name = "derived(" ^ m.Adt_model.name ^ ")";
    slots = nops * nops;
    stripe_width = 1;
    reads = (fun ~stripe:_ _ _ -> []);
    writes;
  }
