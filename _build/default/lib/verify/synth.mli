(** Counterexample-guided synthesis of conflict abstractions — the
    CEGIS direction sketched in §9 / Appendix E.  Walks a candidate
    sequence (ordered cheapest-first) and returns the first candidate
    satisfying Definition 3.1; counterexamples from rejected candidates
    cheaply screen later ones before the full exhaustive check. *)

type ('s, 'o) outcome = {
  chosen : ('s, 'o) Ca_spec.t option;
  candidates_tried : int;
  full_checks : int;  (** candidates that reached the expensive oracle *)
  counterexamples : ('s, 'o) Ca_check.counterexample list;
}

(** Does an accumulated counterexample already reject this candidate? *)
val cex_rejects :
  ('s, 'o, 'r) Adt_model.t ->
  ('s, 'o) Ca_spec.t ->
  ('s, 'o) Ca_check.counterexample ->
  bool

val synthesize :
  ('s, 'o, 'r) Adt_model.t -> ('s, 'o) Ca_spec.t list -> ('s, 'o) outcome

(** {1 Ready-made candidate spaces} *)

(** Thresholds [0..max]: recovers the paper's threshold 2 as the
    weakest sound choice. *)
val counter_candidates :
  max_threshold:int -> (int, Adt_model.counter_op) Ca_spec.t list

val map_candidates :
  max_slots:int -> ((int * int) list, Adt_model.map_op) Ca_spec.t list

(** The literal Figure 3 abstraction first, then the repaired one: the
    search rejects the former with the empty-queue counterexample. *)
val pqueue_candidates : stripes:int -> (int list, Adt_model.pq_op) Ca_spec.t list

(** {1 Fully automatic derivation}

    [derive m] constructs a sound conflict abstraction for any finite
    model with no designer input: one slot per non-commuting operation
    pair, written by both operations in exactly the states where the
    pair conflicts (forward-closed one step for the σ′ race; states
    outside the bounded space conservatively write everything).
    Certified against {!Ca_check} in the test suite; allocates O(ops²)
    slots, so hand-written abstractions stay preferable for economy. *)
val derive : ('s, 'o, 'r) Adt_model.t -> ('s, 'o) Ca_spec.t
