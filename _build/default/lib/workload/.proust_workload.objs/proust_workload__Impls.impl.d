lib/workload/impls.ml: Proust_baselines Proust_structures Stm
