lib/workload/report.ml: Printf Runner Stats String Workload
