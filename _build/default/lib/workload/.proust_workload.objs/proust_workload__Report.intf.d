lib/workload/report.mli: Runner
