lib/workload/runner.ml: Array Atomic Domain Gc List Proust_structures Random Stats Stm Unix Workload
