lib/workload/runner.mli: Proust_structures Stats Stm Workload
