lib/workload/workload.ml: Array Proust_structures Random
