lib/workload/workload.mli: Proust_structures Stm
