(** Table/series rendering for benchmark output, in the shape of the
    paper's Figure 4 series. *)

val header : unit -> unit
val row : name:string -> Runner.result -> unit
val csv_header : out_channel -> unit
val csv_row : out_channel -> name:string -> Runner.result -> unit
val section : string -> unit
