(** Multi-domain throughput runner for the Figure 4 experiment: each
    trial prefills the map to half the key range, splits the stream
    across domains released through a spin barrier, and measures
    first-start to last-finish inside the workers (timing from the
    spawner under-measures when domains outnumber cores).  Trials are
    separated by a major GC; warmup trials are discarded. *)

type result = {
  threads : int;
  spec : Workload.spec;
  mean_ms : float;
  stddev_ms : float;
  trials_ms : float list;
  throughput : float;  (** committed ops per second, from the mean *)
  stats : Stats.snapshot;  (** STM activity during the measured trials *)
}

(** [barrier n] returns an [enter] function that blocks until [n]
    participants arrived. *)
val barrier : int -> unit -> unit

(** [run ?config ?dist ~threads ~spec make_ops] — [make_ops] builds a
    fresh map per trial so trials are independent. *)
val run :
  ?config:Stm.config ->
  ?dist:Workload.distribution ->
  ?trials:int ->
  ?warmup:int ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> (int, int) Proust_structures.Map_intf.ops) ->
  result
