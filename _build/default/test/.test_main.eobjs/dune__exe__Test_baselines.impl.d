test/test_baselines.ml: Atomic Domain List Option Proust_baselines Proust_structures Random Stats Stm Util
