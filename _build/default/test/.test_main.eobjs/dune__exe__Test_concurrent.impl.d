test/test_concurrent.ml: Alcotest Array Atomic Fun Hashtbl Int List Map Option Proust_concurrent QCheck2 Random Unix Util
