test/test_edges.ml: Adt_model Array Atomic Backoff Clock Domain History List Proust_baselines Proust_concurrent Proust_core Proust_structures Proust_verify Serializability Stm Tvar Txn_desc Util
