test/test_extensions.ml: Alcotest Array Atomic Domain Fun Int List Map Option Proust_concurrent Proust_core Proust_structures Proust_verify Proust_workload QCheck2 Random Stm Util
