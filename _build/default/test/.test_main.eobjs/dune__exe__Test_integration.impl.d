test/test_integration.ml: Int List Map Option Printf Proust_baselines Proust_structures Proust_verify QCheck2 Random Stm Util
