test/test_matrix.ml: Domain List Option Printf Proust_core Proust_structures Random Stm Tvar Unix Util
