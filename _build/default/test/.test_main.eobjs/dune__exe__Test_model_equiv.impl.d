test/test_model_equiv.ml: Int List Map Proust_core Proust_structures QCheck2 Stm Util
