test/test_opacity.ml: Atomic Contention Domain List Option Proust_baselines Proust_concurrent Proust_structures Stats Stm Tvar Unix Util
