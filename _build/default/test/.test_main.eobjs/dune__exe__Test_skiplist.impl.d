test/test_skiplist.ml: Fun Int List Map Option Proust_concurrent Proust_structures QCheck2 Random Stm Util
