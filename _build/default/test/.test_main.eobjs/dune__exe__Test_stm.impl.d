test/test_stm.ml: Alcotest Atomic Contention Domain List Stats Stm Tvar Txn_desc Unix Util
