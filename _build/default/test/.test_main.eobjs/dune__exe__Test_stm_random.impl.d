test/test_stm_random.ml: Array List Printf QCheck2 Stm Tvar Util
