test/test_structures.ml: Alcotest Atomic Int List Option Proust_concurrent Proust_structures Random Stm Util
