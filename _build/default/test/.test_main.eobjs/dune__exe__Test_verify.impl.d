test/test_verify.ml: Alcotest Array List Printf Proust_baselines Proust_verify Random Stm String Util
