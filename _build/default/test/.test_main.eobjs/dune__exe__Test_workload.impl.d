test/test_workload.ml: Array Filename List Printf Proust_baselines Proust_structures Proust_workload Stats String Sys Util
