test/util.ml: Alcotest Domain List QCheck2 QCheck_alcotest Stm
