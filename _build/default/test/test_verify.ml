(** Tests for the verification library: models, commutativity, the
    Definition 3.1 checker, the SAT solver and Appendix E encoding, and
    the history serializability checker. *)

open Util
module V = Proust_verify

(* ------------------------------------------------------------------ *)
(* Models & commutativity                                               *)

let test_counter_model () =
  let m = V.Adt_model.counter ~bound:6 in
  check ci "apply incr" 3 (fst (m.apply 2 V.Adt_model.Incr));
  check cb "decr at 0 errs" true
    (snd (m.apply 0 V.Adt_model.Decr) = V.Adt_model.Decr_err);
  check cb "decr at 2 ok" true
    (snd (m.apply 2 V.Adt_model.Decr) = V.Adt_model.Decr_ok)

let test_commute_counter () =
  let m = V.Adt_model.counter ~bound:6 in
  check cb "incr/incr commute" true
    (V.Commute.commutes m 0 V.Adt_model.Incr V.Adt_model.Incr);
  check cb "incr/decr at 0 do not" false
    (V.Commute.commutes m 0 V.Adt_model.Incr V.Adt_model.Decr);
  check cb "incr/decr at 1 commute" true
    (V.Commute.commutes m 1 V.Adt_model.Incr V.Adt_model.Decr);
  check cb "decr/decr at 1 do not" false
    (V.Commute.commutes m 1 V.Adt_model.Decr V.Adt_model.Decr);
  check cb "decr/decr at 3 commute" true
    (V.Commute.commutes m 3 V.Adt_model.Decr V.Adt_model.Decr)

let test_commute_map () =
  let m = V.Adt_model.small_map () in
  let open V.Adt_model in
  check cb "get/get commute" true (V.Commute.commutes m [] (MGet 0) (MGet 0));
  check cb "disjoint put/get commute" true
    (V.Commute.commutes m [] (MPut (0, 1)) (MGet 1));
  check cb "same-key put/get conflict" false
    (V.Commute.commutes m [] (MPut (0, 1)) (MGet 0));
  check cb "same-value puts still conflict by return" false
    (V.Commute.commutes m [] (MPut (0, 1)) (MRemove 0))

let test_commute_pqueue () =
  let m = V.Adt_model.small_pqueue () in
  let open V.Adt_model in
  check cb "insert/insert commute" true
    (V.Commute.commutes m [ 1 ] (PInsert 0) (PInsert 2));
  check cb "insert-above-min commutes with removeMin" true
    (V.Commute.commutes m [ 0; 1 ] (PInsert 2) PRemoveMin);
  check cb "insert-below-min conflicts with removeMin" false
    (V.Commute.commutes m [ 1 ] (PInsert 0) PRemoveMin);
  check cb "min vs insert-into-empty conflict" false
    (V.Commute.commutes m [] PMin (PInsert 0))

let test_non_commuting_pairs_listed () =
  let m = V.Adt_model.counter ~bound:4 in
  let pairs = V.Commute.non_commuting_pairs m in
  check cb "some non-commuting pairs" true (List.length pairs > 0);
  check cb "all listed pairs really conflict" true
    (List.for_all (fun (s, a, b) -> not (V.Commute.commutes m s a b)) pairs)

(* ------------------------------------------------------------------ *)
(* Definition 3.1 checker                                               *)

let test_ca_counter_correct () =
  let m = V.Adt_model.counter ~bound:6 in
  check cb "threshold 2 verified" true
    (V.Ca_check.check m (V.Ca_spec.counter ~threshold:2 ()) = None);
  check cb "threshold 3 also sound (more conservative)" true
    (V.Ca_check.check m (V.Ca_spec.counter ~threshold:3 ()) = None)

let test_ca_counter_broken () =
  let m = V.Adt_model.counter ~bound:6 in
  match V.Ca_check.check m (V.Ca_spec.counter ~threshold:1 ()) with
  | Some cex ->
      check cb "counterexample is real" true
        (not (V.Commute.commutes m cex.V.Ca_check.state cex.V.Ca_check.op_m
                cex.V.Ca_check.op_n));
      check cb "description renders" true
        (String.length (V.Ca_check.show_counterexample m cex) > 0)
  | None -> Alcotest.fail "threshold 1 must be rejected"

let test_ca_map () =
  let m = V.Adt_model.small_map () in
  check cb "striped map CA correct" true
    (V.Ca_check.check m (V.Ca_spec.striped_map ~slots:4 ()) = None);
  check cb "single-slot map CA correct (coarse)" true
    (V.Ca_check.check m (V.Ca_spec.striped_map ~slots:1 ()) = None);
  check cb "broken map CA rejected" true
    (V.Ca_check.check m (V.Ca_spec.broken_map ()) <> None)

let test_ca_pqueue () =
  let m = V.Adt_model.small_pqueue () in
  check cb "fixed pqueue CA correct" true
    (V.Ca_check.check m (V.Ca_spec.pqueue ~stripes:2 ()) = None);
  check cb "one-stripe variant also correct" true
    (V.Ca_check.check m (V.Ca_spec.pqueue ~stripes:1 ()) = None);
  match V.Ca_check.check m (V.Ca_spec.figure3_literal_pqueue ()) with
  | Some cex ->
      check cb "figure 3 literal gap found at the empty queue" true
        (cex.V.Ca_check.state = [])
  | None -> Alcotest.fail "figure-3 literal CA should be rejected"

(* ------------------------------------------------------------------ *)
(* SAT solver                                                           *)

let test_sat_trivial () =
  (match V.Sat.solve ~nvars:1 [ [ 1 ] ] with
  | V.Sat.Sat a -> check cb "x true" true a.(1)
  | V.Sat.Unsat -> Alcotest.fail "satisfiable");
  check cb "x and not x" false (V.Sat.satisfiable ~nvars:1 [ [ 1 ]; [ -1 ] ]);
  check cb "empty clause" false (V.Sat.satisfiable ~nvars:1 [ [] ])

let test_sat_implications () =
  (* (x -> y) and x and not y : unsat *)
  check cb "modus ponens" false
    (V.Sat.satisfiable ~nvars:2 [ [ -1; 2 ]; [ 1 ]; [ -2 ] ]);
  (* 3-colour-ish: (a or b) & (not a or b) & (a or not b) => a,b *)
  match V.Sat.solve ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ] ] with
  | V.Sat.Sat a ->
      check cb "a" true a.(1);
      check cb "b" true a.(2)
  | V.Sat.Unsat -> Alcotest.fail "satisfiable"

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: unsat.  Vars p(i,h) = 2i + h + 1. *)
  let v i h = (2 * i) + h + 1 in
  let clauses =
    (* each pigeon somewhere *)
    List.init 3 (fun i -> [ v i 0; v i 1 ])
    @ (* no two pigeons share a hole *)
    List.concat_map
      (fun h ->
        [ [ -v 0 h; -v 1 h ]; [ -v 0 h; -v 2 h ]; [ -v 1 h; -v 2 h ] ])
      [ 0; 1 ]
  in
  check cb "pigeonhole(3,2) unsat" false (V.Sat.satisfiable ~nvars:6 clauses)

(* ------------------------------------------------------------------ *)
(* Finite-domain layer                                                  *)

let test_fd_basic () =
  let p = V.Fd.create () in
  let x = V.Fd.var p 5 and y = V.Fd.var p 5 in
  V.Fd.assert_table p [ x; y ] (function
    | [ a; b ] -> a + b = 6 && a > b
    | _ -> false);
  match V.Fd.solve p with
  | Some read ->
      check ci "x + y = 6" 6 (read x + read y);
      check cb "x > y" true (read x > read y)
  | None -> Alcotest.fail "satisfiable"

let test_fd_unsat () =
  let p = V.Fd.create () in
  let x = V.Fd.var p 3 in
  V.Fd.assert_table p [ x ] (fun _ -> false);
  check cb "no assignment" true (V.Fd.solve p = None)

(* ------------------------------------------------------------------ *)
(* Appendix E encoding                                                  *)

let test_encode_correct () =
  match V.Ca_encode.check_counter ~threshold:2 ~bound:5 () with
  | V.Ca_encode.Correct -> ()
  | V.Ca_encode.Counterexample { description; _ } ->
      Alcotest.fail ("unexpected: " ^ description)

let test_encode_broken () =
  match V.Ca_encode.check_counter ~threshold:1 ~bound:5 () with
  | V.Ca_encode.Counterexample { c0; _ } ->
      check cb "counterexample near zero" true (c0 <= 1)
  | V.Ca_encode.Correct -> Alcotest.fail "threshold 1 must be SAT"

let test_encode_zero_threshold () =
  (* threshold 0: the CA never touches the slot at all. *)
  match V.Ca_encode.check_counter ~threshold:0 ~bound:5 () with
  | V.Ca_encode.Counterexample _ -> ()
  | V.Ca_encode.Correct -> Alcotest.fail "threshold 0 must be SAT"

let test_encode_agrees_with_exhaustive () =
  (* The two verification routes agree across thresholds. *)
  List.iter
    (fun threshold ->
      let model = V.Adt_model.counter ~bound:5 in
      let exhaustive =
        V.Ca_check.check model (V.Ca_spec.counter ~threshold ()) = None
      in
      let sat =
        V.Ca_encode.check_counter ~threshold ~bound:5 () = V.Ca_encode.Correct
      in
      check cb
        (Printf.sprintf "threshold %d agreement" threshold)
        exhaustive sat)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* History recording & serializability                                  *)

let test_serializable_history () =
  let open V.Adt_model in
  let records =
    [
      { V.History.txn_id = 1; events = [ { V.History.op = MPut (0, 1); ret = MVal None } ] };
      {
        V.History.txn_id = 2;
        events = [ { V.History.op = MGet 0; ret = MVal (Some 1) } ];
      };
    ]
  in
  let m = small_map () in
  check cb "serializable" true (V.Serializability.check m ~init:[] records);
  match V.Serializability.witness m ~init:[] records with
  | Some order -> check clist_i "witness order" [ 1; 2 ] order
  | None -> Alcotest.fail "expected witness"

let test_non_serializable_history () =
  let open V.Adt_model in
  (* Both transactions claim to have observed the key absent and then
     bound it — inconsistent with any serial order that explains both
     return values of the second put. *)
  let records =
    [
      {
        V.History.txn_id = 1;
        events =
          [
            { V.History.op = MGet 0; ret = MVal None };
            { V.History.op = MPut (0, 1); ret = MVal None };
          ];
      };
      {
        V.History.txn_id = 2;
        events =
          [
            { V.History.op = MGet 0; ret = MVal None };
            { V.History.op = MPut (0, 1); ret = MVal None };
          ];
      };
    ]
  in
  let m = small_map () in
  check cb "rejected" false (V.Serializability.check m ~init:[] records)

let test_live_history_serializable () =
  (* Record a real concurrent run over a predication map restricted to
     the model's tiny domain, then check it serializes. *)
  let open V.Adt_model in
  let m = Proust_baselines.Predication_map.make () in
  let recorder = V.History.make () in
  spawn_all 3 (fun d ->
      let rng = Random.State.make [| d |] in
      for _ = 1 to 2 do
        Stm.atomically (fun txn ->
            for _ = 1 to 2 do
              let k = Random.State.int rng 3 in
              if Random.State.bool rng then begin
                let v = Random.State.int rng 2 in
                let old = Proust_baselines.Predication_map.put m txn k v in
                V.History.log recorder txn (MPut (k, v)) (MVal old)
              end
              else
                let r = Proust_baselines.Predication_map.get m txn k in
                V.History.log recorder txn (MGet k) (MVal r)
            done)
      done);
  let records = V.History.records recorder in
  check ci "all committed recorded" 6 (List.length records);
  check cb "live history serializable" true
    (V.Serializability.check (small_map ()) ~init:[] records);
  V.History.clear recorder;
  check ci "cleared" 0 (List.length (V.History.records recorder))

let test_commuting_states () =
  let m = V.Adt_model.counter ~bound:6 in
  check clist_i "incr/decr commute above 0" [ 1; 2; 3; 4 ]
    (V.Commute.commuting_states m V.Adt_model.Incr V.Adt_model.Decr);
  check ci "incr/incr commute everywhere" 5
    (List.length (V.Commute.commuting_states m V.Adt_model.Incr V.Adt_model.Incr))

let test_derive_all_models () =
  let certify : type s o r. (s, o, r) V.Adt_model.t -> unit =
   fun m ->
    check cb
      (Printf.sprintf "derived CA for %s verified" m.V.Adt_model.name)
      true
      (V.Ca_check.check m (V.Synth.derive m) = None)
  in
  certify (V.Adt_model.counter ~bound:6);
  certify (V.Adt_model.small_map ());
  certify (V.Adt_model.small_pqueue ());
  certify (V.Adt_model.small_queue ());
  certify (V.Adt_model.small_stack ());
  certify (V.Adt_model.small_omap ())

let test_derive_is_not_trivial () =
  (* The derived abstraction must still let commuting pairs run free:
     two incrs at any state touch no common slot. *)
  let m = V.Adt_model.counter ~bound:6 in
  let ca = V.Synth.derive m in
  let writes s = ca.V.Ca_spec.writes ~stripe:0 s V.Adt_model.Incr in
  check clist_i "incr writes nothing at high states" [] (writes 4);
  check cb "incr writes the pair slot near 0" true (writes 0 <> [])

let suite =
  [
    test "counter model" test_counter_model;
    test "commutativity conditions" test_commuting_states;
    slow "derive: all models certified" test_derive_all_models;
    test "derive: commuting pairs stay free" test_derive_is_not_trivial;
    test "commute: counter" test_commute_counter;
    test "commute: map" test_commute_map;
    test "commute: pqueue" test_commute_pqueue;
    test "non-commuting pairs" test_non_commuting_pairs_listed;
    test "Def 3.1: counter correct" test_ca_counter_correct;
    test "Def 3.1: counter broken" test_ca_counter_broken;
    test "Def 3.1: map" test_ca_map;
    test "Def 3.1: pqueue (incl. Figure 3 gap)" test_ca_pqueue;
    test "sat: trivial" test_sat_trivial;
    test "sat: implications" test_sat_implications;
    test "sat: pigeonhole" test_sat_pigeonhole;
    test "fd: basic" test_fd_basic;
    test "fd: unsat" test_fd_unsat;
    test "encode: correct" test_encode_correct;
    test "encode: broken" test_encode_broken;
    test "encode: zero threshold" test_encode_zero_threshold;
    slow "encode agrees with exhaustive" test_encode_agrees_with_exhaustive;
    test "serializability: positive" test_serializable_history;
    test "serializability: negative" test_non_serializable_history;
    slow "serializability: live run" test_live_history_serializable;
  ]
