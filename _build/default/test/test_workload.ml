(** Tests for the benchmark substrate: workload generation and the
    throughput runner. *)

open Util
module W = Proust_workload

let spec ~u ~o =
  { W.Workload.key_range = 64; write_fraction = u; ops_per_txn = o; total_ops = 1_000 }

let test_stream_deterministic () =
  let s1 = W.Workload.stream ~seed:7 (spec ~u:0.5 ~o:4) ~count:100 in
  let s2 = W.Workload.stream ~seed:7 (spec ~u:0.5 ~o:4) ~count:100 in
  check cb "same seed, same stream" true (s1 = s2);
  let s3 = W.Workload.stream ~seed:8 (spec ~u:0.5 ~o:4) ~count:100 in
  check cb "different seed differs" true (s1 <> s3)

let classify = function
  | W.Workload.Get _ -> `R
  | W.Workload.Put _ | W.Workload.Remove _ -> `W

let test_write_fraction () =
  let count = 20_000 in
  let s = W.Workload.stream ~seed:1 (spec ~u:0.25 ~o:1) ~count in
  let writes =
    Array.fold_left (fun n op -> if classify op = `W then n + 1 else n) 0 s
  in
  let frac = float_of_int writes /. float_of_int count in
  check cb
    (Printf.sprintf "write fraction ~0.25 (got %.3f)" frac)
    true
    (frac > 0.22 && frac < 0.28)

let test_extremes () =
  let all p s = Array.for_all p s in
  check cb "u=0 all reads" true
    (all
       (fun op -> classify op = `R)
       (W.Workload.stream ~seed:1 (spec ~u:0.0 ~o:1) ~count:2_000));
  check cb "u=1 all writes" true
    (all
       (fun op -> classify op = `W)
       (W.Workload.stream ~seed:1 (spec ~u:1.0 ~o:1) ~count:2_000))

let test_keys_in_range () =
  let s = W.Workload.stream ~seed:3 (spec ~u:0.5 ~o:1) ~count:5_000 in
  check cb "all keys in range" true
    (Array.for_all
       (fun op ->
         let k =
           match op with
           | W.Workload.Get k | W.Workload.Put (k, _) | W.Workload.Remove k -> k
         in
         k >= 0 && k < 64)
       s)

let test_txn_count () =
  check ci "exact division" 10 (W.Workload.txn_count (spec ~u:0.0 ~o:100) ~count:1_000);
  check ci "ragged tail" 11 (W.Workload.txn_count (spec ~u:0.0 ~o:100) ~count:1_001)

let test_runner_end_to_end () =
  let make () =
    Proust_structures.P_lazy_hashmap.ops (Proust_structures.P_lazy_hashmap.make ())
  in
  let r =
    W.Runner.run ~trials:2 ~warmup:0 ~threads:2 ~spec:(spec ~u:0.5 ~o:4) make
  in
  check ci "two trials" 2 (List.length r.W.Runner.trials_ms);
  check cb "positive time" true (r.W.Runner.mean_ms > 0.0);
  check cb "throughput sane" true (r.W.Runner.throughput > 0.0);
  (* per trial: 32 prefill txns + 1000/2 ops in 4-op txns per thread *)
  check cb "commits recorded" true (r.W.Runner.stats.Stats.commits > 0)

let test_report_renders () =
  let make () =
    Proust_baselines.Predication_map.ops (Proust_baselines.Predication_map.make ())
  in
  let r =
    W.Runner.run ~trials:1 ~warmup:0 ~threads:1 ~spec:(spec ~u:0.5 ~o:1) make
  in
  (* smoke: the printers do not raise *)
  W.Report.header ();
  W.Report.row ~name:"test" r;
  let tmp = Filename.temp_file "proust" ".csv" in
  let oc = open_out tmp in
  W.Report.csv_header oc;
  W.Report.csv_row oc ~name:"test" r;
  close_out oc;
  let ic = open_in tmp in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Sys.remove tmp;
  check cb "csv header" true (String.length header > 0);
  check cb "csv row mentions impl" true (String.length row > 4)

let suite =
  [
    test "stream deterministic" test_stream_deterministic;
    test "write fraction honored" test_write_fraction;
    test "u extremes" test_extremes;
    test "keys in range" test_keys_in_range;
    test "txn count" test_txn_count;
    slow "runner end to end" test_runner_end_to_end;
    slow "report renders" test_report_renders;
  ]
