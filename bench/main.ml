(* Benchmark harness: regenerates every evaluation artifact of the
   paper (see DESIGN.md's per-experiment index).

     main.exe [fig1|fig4|fig4-memo|micro|ablation-m|ablation-cm|
               ablation-mode|pqueue|overload|durability|obs-overhead|all]
              [--json FILE] [--trace FILE]

   --json writes every measured cell as a "proust-bench/v1" report
   (and enables the metrics layer, so cells carry latency
   percentiles); --trace enables tracing and writes a Chrome
   trace_event file loadable in Perfetto.

   Environment knobs (defaults tuned for a small container; the paper
   ran 1M ops on 40 vCPUs):
     PROUST_OPS      total operations per cell        (default 20000)
     PROUST_THREADS  comma-separated thread counts    (default 1,2,4,8)
     PROUST_TRIALS   measured trials per cell         (default 2)
     PROUST_QUICK    =1 shrinks the fig4 grid for smoke runs
     PROUST_DOMAINS  base domain count for the overload sweep
     PROUST_DEADLINE_US / PROUST_MAX_ATTEMPTS  per-op QoS bounds *)

module W = Proust_workload
module S = Proust_structures
module B = Proust_baselines
module V = Proust_verify
module Obs = Proust_obs

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let env_int_list name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> String.split_on_char ',' s |> List.map int_of_string

let quick = Sys.getenv_opt "PROUST_QUICK" = Some "1"
let total_ops = env_int "PROUST_OPS" (if quick then 4_000 else 20_000)

let threads_list =
  env_int_list "PROUST_THREADS" (if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ])

let trials = env_int "PROUST_TRIALS" 2
let u_list = if quick then [ 0.0; 1.0 ] else [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
let o_list = if quick then [ 1; 16 ] else [ 1; 2; 16; 256 ]

let spec ~u ~o =
  {
    W.Workload.key_range = 1024;
    write_fraction = u;
    ops_per_txn = o;
    total_ops;
  }

(* --json FILE / --trace FILE may appear anywhere after the command. *)
let flag_val name =
  let rec go = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let json_file = flag_val "--json"
let trace_file = flag_val "--trace"
let cells : Obs.Json.t list ref = ref []

(* Every measured cell flows through here: printed as a table row and,
   under --json, retained for the report written at exit. *)
let record ~name (r : W.Runner.result) =
  W.Report.row ~name r;
  if json_file <> None then cells := W.Report.json_cell ~name r :: !cells

let run_cell (e : W.Registry.entry) ~u ~o ~threads =
  let r = W.Runner.run_entry ~trials ~warmup:1 ~threads ~spec:(spec ~u ~o) e in
  record ~name:e.W.Registry.name r

(* ------------------------------------------------------------------ *)

let fig1 () =
  W.Report.section "FIG1: the Proust design space (Figure 1)";
  Proust_core.Proust.pp_design_space Format.std_formatter ();
  (* Back the static table with the machine-checked conflict
     abstractions (Definition 3.1 / Appendix E). *)
  let counter_model = V.Adt_model.counter ~bound:6 in
  (match V.Ca_check.check counter_model (V.Ca_spec.counter ()) with
  | None -> print_endline "counter conflict abstraction: verified (Def 3.1)"
  | Some c ->
      print_endline
        ("counter conflict abstraction: FAILED "
        ^ V.Ca_check.show_counterexample counter_model c));
  match V.Ca_encode.check_counter () with
  | V.Ca_encode.Correct ->
      print_endline "counter conflict abstraction: verified (SAT, Appendix E)"
  | V.Ca_encode.Counterexample { description; _ } ->
      print_endline ("counter SAT check FAILED: " ^ description)

let fig4 () =
  W.Report.section
    (Printf.sprintf
       "FIG4: map throughput, %d ops, key range 1024 (paper: 1M ops, 40 vCPUs)"
       total_ops);
  W.Report.header ();
  let impls = W.Registry.maps () in
  List.iter
    (fun u ->
      List.iter
        (fun o ->
          List.iter
            (fun threads ->
              List.iter
                (fun (impl : W.Registry.entry) ->
                  (* §7: pessimistic runs only at o = 1 (livelock under
                     long transactions). *)
                  if (not impl.W.Registry.meta.S.Trait.pessimistic) || o = 1
                  then run_cell impl ~u ~o ~threads)
                impls)
            threads_list)
        o_list)
    u_list

let fig4_memo () =
  W.Report.section
    "FIG4 (bottom): memoizing shadow copies, log combining on/off";
  W.Report.header ();
  let variants =
    List.filter_map W.Registry.find [ "lazy-memo"; "lazy-memo-combine" ]
  in
  List.iter
    (fun o ->
      List.iter
        (fun u ->
          List.iter
            (fun threads ->
              List.iter (fun impl -> run_cell impl ~u ~o ~threads) variants)
            threads_list)
        (if quick then [ 0.5 ] else [ 0.25; 0.5; 1.0 ]))
    (if quick then [ 16 ] else [ 16; 64; 256 ])

let ablation_m () =
  W.Report.section
    "ABL-M: conflict-abstraction region size M (striping width)";
  W.Report.header ();
  let u = 0.5 and o = 16 in
  List.iter
    (fun slots ->
      List.iter
        (fun threads ->
          let name = Printf.sprintf "lazy-memo/M=%d" slots in
          let r =
            W.Runner.run ~label:name ~trials ~warmup:1 ~threads
              ~spec:(spec ~u ~o) (fun () ->
                S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ()))
          in
          record ~name r)
        (List.filter (fun t -> t > 1) threads_list))
    [ 1; 16; 64; 256; 1024; 4096 ]

let ablation_cm () =
  W.Report.section "ABL-CM: contention managers under high contention";
  W.Report.header ();
  let base = Stm.get_default_config () in
  List.iter
    (fun (cm : Proust_stm.Contention.t) ->
      List.iter
        (fun threads ->
          let config = Some { base with Stm.cm } in
          let make () = B.Predication_map.ops (B.Predication_map.make ()) in
          let sp = { (spec ~u:1.0 ~o:4) with W.Workload.key_range = 64 } in
          let name =
            Printf.sprintf "predication/%s" cm.Proust_stm.Contention.name
          in
          let r =
            W.Runner.run ?config ~label:name ~trials ~warmup:1 ~threads
              ~spec:sp make
          in
          record ~name r)
        (List.filter (fun t -> t > 1) threads_list))
    (Proust_stm.Contention.all ())

let ablation_mode () =
  W.Report.section "ABL-MODE: STM conflict-detection mode x Proust variant";
  W.Report.header ();
  let base = Stm.get_default_config () in
  let modes = Stm.Mode.all in
  List.iter
    (fun mode ->
      let config = Some { base with Stm.mode } in
      let entries =
        [
          ( Printf.sprintf "lazy-memo/%s" (Stm.mode_name mode),
            fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ()) );
          ( Printf.sprintf "predication/%s" (Stm.mode_name mode),
            fun () -> B.Predication_map.ops (B.Predication_map.make ()) );
        ]
        @
        (* eager updates are unsound under a fully lazy STM (Figure 1's
           empty quarter) — skip those cells. *)
        (if not (S.Trait.mode_ok S.Trait.Encounter_time mode) then []
         else
           [
             ( Printf.sprintf "eager-opt/%s" (Stm.mode_name mode),
               fun () -> S.P_hashmap.ops (S.P_hashmap.make ()) );
           ])
      in
      List.iter
        (fun (name, make) ->
          List.iter
            (fun threads ->
              let r =
                W.Runner.run ?config ~label:name ~trials ~warmup:1 ~threads
                  ~spec:(spec ~u:0.5 ~o:16) make
              in
              record ~name r)
            (List.filter (fun t -> t > 1) threads_list))
        entries)
    modes

(* ------------------------------------------------------------------ *)
(* MVCC: read-mostly throughput, Multi_version snapshots vs the TL2
   lazy baseline.

   Each worker flips a read/write coin per operation: a read scans 8
   random tvars in one transaction, a write increments 4.  Under
   [multi-version] the read side goes through [Stm.read_only] — the
   abort-free snapshot path — while under [tl2-lazy] it is an ordinary
   update-less transaction that validates (and aborts) like any other.
   The JSON cells carry both abort counters so CI can gate on
   (a) zero [ro_aborts] and (b) MVCC >= TL2 throughput at 90%+
   reads. *)
let mvcc_bench () =
  W.Report.section
    "MVCC: read-ratio sweep, multi-version snapshots vs tl2-lazy";
  Printf.printf "%-16s %5s %4s %10s %12s %8s %9s %9s\n" "impl" "read%" "t"
    "mean(ms)" "ops/s" "aborts" "ro_commit" "ro_abort";
  Printf.printf "%s\n" (String.make 80 '-');
  let key_range = 256 in
  (* Read transactions scan 32 tvars: the snapshot path pays a fixed
     registration cost per transaction, while TL2 pays per read
     (read-log append + commit-time validation) — a scan this size is
     the design point where abort-free snapshots earn their keep. *)
  let reads_per_txn = 32 and writes_per_txn = 4 in
  let impls =
    [
      ("tl2-lazy", Stm.Lazy_lazy, false);
      ("multi-version", Stm.Multi_version, true);
    ]
  in
  (* Stats snapshots are taken per trial window and summed per impl:
     the trials below interleave the two impls, so a single
     before/after diff would mix their counters.  Gauge fields carry
     readings, not deltas, so they take the max instead of a sum. *)
  let gauge_fields =
    [
      "fsync_batch_size_p50";
      "fsync_batch_size_p99";
      "wait_list_max";
      "version_chain_max";
    ]
  in
  let combine_stats acc st =
    match acc with
    | [] -> st
    | _ ->
        List.map2
          (fun (k, va) (_, vb) ->
            (k, if List.mem k gauge_fields then max va vb else va + vb))
          acc st
  in
  List.iter
    (fun read_pct ->
      List.iter
        (fun workers ->
          let tvs = Array.init key_range (fun _ -> Tvar.make 0) in
          let per = max 500 (total_ops / workers) in
          let run_once ~config ~ro_reads () =
            let started = Array.make workers 0.0 in
            let finished = Array.make workers 0.0 in
            let enter = W.Runner.barrier workers in
            let body i () =
              let rng = Random.State.make [| 0x3c5; i |] in
              let read_scan txn =
                let acc = ref 0 in
                for _ = 1 to reads_per_txn do
                  acc :=
                    !acc + Stm.read txn tvs.(Random.State.int rng key_range)
                done;
                !acc
              in
              enter ();
              started.(i) <- Clock.now_mono ();
              for _ = 1 to per do
                if Random.State.float rng 1.0 < read_pct then
                  if ro_reads then ignore (Stm.read_only ~config read_scan)
                  else ignore (Stm.atomically ~config read_scan)
                else
                  Stm.atomically ~config (fun txn ->
                      for _ = 1 to writes_per_txn do
                        let tv = tvs.(Random.State.int rng key_range) in
                        Stm.write txn tv (Stm.read txn tv + 1)
                      done)
              done;
              finished.(i) <- Clock.now_mono ()
            in
            let ds = List.init workers (fun i -> Domain.spawn (body i)) in
            List.iter Domain.join ds;
            (Array.fold_left max neg_infinity finished
            -. Array.fold_left min infinity started)
            *. 1000.0
          in
          (* Same discipline as Runner — one warmup, then best of
             [trials] — except the trials ALTERNATE between the two
             impls.  The containers this runs in are noisy on minute
             scales; running all of one impl's trials before the
             other's would fold that drift into the comparison. *)
          let rows =
            List.map
              (fun (impl, mode, ro_reads) ->
                let config = { (Stm.get_default_config ()) with Stm.mode } in
                ignore (run_once ~config ~ro_reads ());
                (impl, mode, ro_reads, config, ref infinity, ref []))
              impls
          in
          for _ = 1 to trials do
            List.iter
              (fun (_, _, ro_reads, config, best, acc) ->
                let before = Stats.read () in
                let dt = run_once ~config ~ro_reads () in
                let st = Stats.diff before (Stats.read ()) in
                best := Float.min !best dt;
                acc := combine_stats !acc (Stats.to_assoc st))
              rows
          done;
          List.iter
            (fun (impl, mode, _, _, best, acc) ->
              let dt_ms = !best in
              let stat k = try List.assoc k !acc with Not_found -> 0 in
              let total = workers * per in
              let ops_per_s = float_of_int total /. dt_ms *. 1000.0 in
              let name =
                Printf.sprintf "%s/r%.0f" impl (read_pct *. 100.0)
              in
              Printf.printf "%-16s %4.0f%% %4d %10.2f %12.0f %8d %9d %9d\n%!"
                name (read_pct *. 100.0) workers dt_ms ops_per_s
                (stat "aborts") (stat "ro_commits") (stat "ro_aborts");
              if json_file <> None then
                cells :=
                  Obs.Json.Obj
                    [
                      ("kind", Obs.Json.String "mvcc");
                      ("impl", Obs.Json.String impl);
                      ("mode", Obs.Json.String (Stm.mode_name mode));
                      ("read_pct", Obs.Json.Float (read_pct *. 100.0));
                      ("threads", Obs.Json.Int workers);
                      ("key_range", Obs.Json.Int key_range);
                      ("reads_per_txn", Obs.Json.Int reads_per_txn);
                      ("writes_per_txn", Obs.Json.Int writes_per_txn);
                      ("ops", Obs.Json.Int total);
                      ("mean_ms", Obs.Json.Float dt_ms);
                      ("ops_per_s", Obs.Json.Float ops_per_s);
                      ("aborts", Obs.Json.Int (stat "aborts"));
                      ("ro_commits", Obs.Json.Int (stat "ro_commits"));
                      ("ro_aborts", Obs.Json.Int (stat "ro_aborts"));
                      ("versions_gced", Obs.Json.Int (stat "versions_gced"));
                      ( "stats",
                        Obs.Json.Obj
                          (List.map
                             (fun (k, v) -> (k, Obs.Json.Int v))
                             !acc) );
                    ]
                  :: !cells)
            rows)
        (List.filter (fun t -> t > 1) threads_list))
    [ 0.5; 0.9; 0.99 ]

let pqueue_bench () =
  W.Report.section "PQ-BENCH: priority queue, eager vs pessimistic vs lazy";
  W.Report.header ();
  let sp = { (spec ~u:0.5 ~o:1) with W.Workload.total_ops = max 1_000 (total_ops / 2) } in
  List.iter
    (fun (e : W.Registry.entry) ->
      List.iter
        (fun threads ->
          let r = W.Runner.run_entry ~trials ~warmup:1 ~threads ~spec:sp e in
          record ~name:e.W.Registry.name r)
        threads_list)
    (W.Registry.pqueues ())

let queue_bench () =
  W.Report.section "FIFO-BENCH: queue wrappers across the design space";
  W.Report.header ();
  let sp = { (spec ~u:0.5 ~o:1) with W.Workload.total_ops = max 1_000 (total_ops / 2) } in
  List.iter
    (fun (e : W.Registry.entry) ->
      List.iter
        (fun threads ->
          let r = W.Runner.run_entry ~trials ~warmup:1 ~threads ~spec:sp e in
          record ~name:e.W.Registry.name r)
        threads_list)
    (W.Registry.queues ())

let ablation_zipf () =
  W.Report.section
    "ABL-ZIPF: hot-key skew (Zipf 0.99) vs uniform keys, u=0.5 o=16";
  W.Report.header ();
  let entries =
    [
      ("stm-map", fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ()));
      ("predication", fun () -> B.Predication_map.ops (B.Predication_map.make ()));
      ("lazy-memo", fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ()));
    ]
  in
  List.iter
    (fun (dist_name, dist) ->
      List.iter
        (fun (name, make) ->
          List.iter
            (fun threads ->
              let label = Printf.sprintf "%s/%s" name dist_name in
              let r =
                W.Runner.run ~dist ~label ~trials ~warmup:1 ~threads
                  ~spec:(spec ~u:0.5 ~o:16) make
              in
              record ~name:label r)
            (List.filter (fun t -> t > 1) threads_list))
        entries)
    [ ("uniform", W.Workload.Uniform); ("zipf99", W.Workload.Zipf 0.99) ]

let ablation_combine () =
  W.Report.section
    "ABL-COMBINE: S9 log-combining extensions (undo logs, snapshot \
     replays); small key range to force aborts";
  W.Report.header ();
  let entries =
    [
      ( "eager/undo-per-op",
        Some (W.Impls.eager_mode ()),
        fun () -> S.P_hashmap.ops (S.P_hashmap.make ~combine_undo:false ()) );
      ( "eager/undo-combined",
        Some (W.Impls.eager_mode ()),
        fun () -> S.P_hashmap.ops (S.P_hashmap.make ~combine_undo:true ()) );
      ( "lazy-snap/replay",
        None,
        fun () -> S.P_lazy_triemap.ops (S.P_lazy_triemap.make ~combine:false ())
      );
      ( "lazy-snap/root-cas",
        None,
        fun () -> S.P_lazy_triemap.ops (S.P_lazy_triemap.make ~combine:true ())
      );
    ]
  in
  List.iter
    (fun (name, config, make) ->
      List.iter
        (fun threads ->
          let sp = { (spec ~u:0.75 ~o:64) with W.Workload.key_range = 128 } in
          let r =
            W.Runner.run ?config ~label:name ~trials ~warmup:1 ~threads
              ~spec:sp make
          in
          record ~name r)
        (List.filter (fun t -> t > 1) threads_list))
    entries

let structures_bench () =
  W.Report.section "STRUCT-BENCH: fifo / stack / ordered-map wrappers";
  Printf.printf "%-22s %4s %10s %12s %9s %9s\n" "impl" "t" "mean(ms)" "ops/s"
    "commits" "aborts";
  Printf.printf "%s\n" (String.make 72 '-');
  let total = max 1_000 (total_ops / 2) in
  let bench : type q.
      string -> ?config:Stm.config -> (unit -> q) -> (q -> Stm.txn -> int -> unit) -> unit =
   fun name ?config make_q step ->
    List.iter
      (fun threads ->
        let q = make_q () in
        let enter = W.Runner.barrier threads in
        let per = total / threads in
        let before = Stats.read () in
        let started = Array.make threads 0.0 in
        let finished = Array.make threads 0.0 in
        let body i () =
          enter ();
          started.(i) <- Clock.now_mono ();
          for j = 1 to per do
            Stm.atomically ?config (fun txn -> step q txn j)
          done;
          finished.(i) <- Clock.now_mono ()
        in
        let ds = List.init threads (fun i -> Domain.spawn (body i)) in
        List.iter Domain.join ds;
        let dt =
          (Array.fold_left max neg_infinity finished
          -. Array.fold_left min infinity started)
          *. 1000.0
        in
        let st = Stats.diff before (Stats.read ()) in
        Printf.printf "%-22s %4d %10.2f %12.0f %9d %9d\n%!" name threads dt
          (float_of_int total /. dt *. 1000.0)
          st.Stats.commits st.Stats.aborts)
      threads_list
  in
  let eager_mode = { (Stm.get_default_config ()) with Stm.mode = Stm.Eager_lazy } in
  bench "fifo-eager-pess"
    (fun () -> S.P_fifo.make ~lap:S.Trait.Pessimistic ())
    (fun q txn j ->
      if j land 1 = 0 then S.P_fifo.enqueue q txn j
      else ignore (S.P_fifo.dequeue q txn));
  bench "fifo-lazy-opt"
    (fun () -> S.P_lazy_fifo.make ())
    (fun q txn j ->
      if j land 1 = 0 then S.P_lazy_fifo.enqueue q txn j
      else ignore (S.P_lazy_fifo.dequeue q txn));
  bench "stack-eager-opt" ~config:eager_mode
    (fun () -> S.P_stack.make ())
    (fun q txn j ->
      if j land 1 = 0 then S.P_stack.push q txn j
      else ignore (S.P_stack.pop q txn));
  bench "omap-lazy-opt"
    (fun () -> S.P_omap.make ~index:(fun k -> k / 16) ())
    (fun q txn j ->
      let k = j land 1023 in
      if j land 3 = 0 then ignore (S.P_omap.range q txn ~lo:k ~hi:(k + 32))
      else ignore (S.P_omap.put q txn k j))

let compose_bench () =
  W.Report.section
    "COMPOSE: one transaction spanning map + priority queue + counter";
  Printf.printf "%-22s %4s %10s %12s %9s %9s\n" "preset" "t" "mean(ms)"
    "txn/s" "commits" "aborts";
  Printf.printf "%s\n" (String.make 72 '-');
  let total_txns = max 500 (total_ops / 8) in
  let bench name ?config make_world =
    List.iter
      (fun threads ->
        let step, _world = make_world () in
        let enter = W.Runner.barrier threads in
        let per = total_txns / threads in
        let before = Stats.read () in
        let started = Array.make threads 0.0 in
        let finished = Array.make threads 0.0 in
        let body i () =
          let rng = Random.State.make [| i + 13 |] in
          enter ();
          started.(i) <- Clock.now_mono ();
          for _ = 1 to per do
            Stm.atomically ?config (fun txn -> step rng txn)
          done;
          finished.(i) <- Clock.now_mono ()
        in
        let ds = List.init threads (fun i -> Domain.spawn (body i)) in
        List.iter Domain.join ds;
        let dt =
          (Array.fold_left max neg_infinity finished
          -. Array.fold_left min infinity started)
          *. 1000.0
        in
        let st = Stats.diff before (Stats.read ()) in
        Printf.printf "%-22s %4d %10.2f %12.0f %9d %9d\n%!" name threads dt
          (float_of_int total_txns /. dt *. 1000.0)
          st.Stats.commits st.Stats.aborts)
      threads_list
  in
  (* One "world": a work map, a job queue and a completion counter; a
     step claims a job, bumps its key in the map, and counts it. *)
  let make_world ~map ~pq ~counter_lap () =
    let m : (int, int) Proust_structures.Trait.Map.ops = map () in
    let q : int S.Trait.Pqueue.ops = pq () in
    let c = S.P_counter.make ~lap:counter_lap ~init:1_000_000 () in
    let step rng txn =
      let k = Random.State.int rng 256 in
      q.S.Trait.Pqueue.insert txn k;
      (match q.S.Trait.Pqueue.remove_min txn with
      | Some j ->
          let v =
            Option.value ~default:0 (m.Proust_structures.Trait.Map.get txn j)
          in
          ignore (m.Proust_structures.Trait.Map.put txn j (v + 1))
      | None -> ());
      S.P_counter.incr c txn
    in
    (step, (m, q, c))
  in
  bench "all-pessimistic"
    (make_world
       ~map:(fun () ->
         S.P_hashmap.ops (S.P_hashmap.make ~lap:S.Trait.Pessimistic ()))
       ~pq:(fun () ->
         S.P_pqueue.ops
           (S.P_pqueue.make ~cmp:Int.compare ~lap:S.Trait.Pessimistic ()))
       ~counter_lap:S.Trait.Pessimistic);
  bench "all-lazy-optimistic" ~config:(W.Impls.eager_mode ())
    (* counter is eager; Eager_lazy covers it, lazy structures are
       opaque under every mode *)
    (make_world
       ~map:(fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ()))
       ~pq:(fun () -> S.P_lazy_pqueue.ops (S.P_lazy_pqueue.make ~cmp:Int.compare ()))
       ~counter_lap:S.Trait.Optimistic);
  bench "mixed" ~config:(W.Impls.eager_mode ())
    (make_world
       ~map:(fun () -> S.P_lazy_triemap.ops (S.P_lazy_triemap.make ()))
       ~pq:(fun () ->
         S.P_pqueue.ops
           (S.P_pqueue.make ~cmp:Int.compare ~lap:S.Trait.Pessimistic ()))
       ~counter_lap:S.Trait.Optimistic)

(* ------------------------------------------------------------------ *)
(* TAB-MICRO: single-threaded per-operation latency (Bechamel).        *)

let micro () =
  W.Report.section "TAB-MICRO: single-thread per-op latency (Bechamel)";
  let open Bechamel in
  let make_test name
      (make : unit -> (int, int) Proust_structures.Trait.Map.ops) =
    let ops = make () in
    Stm.atomically (fun txn ->
        for k = 0 to 1023 do
          ignore (ops.put txn k k)
        done);
    let i = ref 0 in
    [
      Test.make
        ~name:(name ^ "/get")
        (Staged.stage (fun () ->
             incr i;
             ignore (Stm.atomically (fun txn -> ops.get txn (!i land 1023)))));
      Test.make
        ~name:(name ^ "/put")
        (Staged.stage (fun () ->
             incr i;
             ignore (Stm.atomically (fun txn -> ops.put txn (!i land 1023) !i))));
    ]
  in
  let tests =
    List.concat
      [
        make_test "stm-map" (fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ()));
        make_test "predication" (fun () ->
            B.Predication_map.ops (B.Predication_map.make ()));
        make_test "eager-pess" (fun () ->
            Proust_structures.P_hashmap.ops (Proust_structures.P_hashmap.make ~lap:Proust_structures.Trait.Pessimistic ()));
        make_test "lazy-memo" (fun () ->
            Proust_structures.P_lazy_hashmap.ops (Proust_structures.P_lazy_hashmap.make ()));
        make_test "lazy-snap" (fun () ->
            Proust_structures.P_lazy_triemap.ops (Proust_structures.P_lazy_triemap.make ()));
      ]
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-36s %12s\n%s\n" "benchmark" "ns/op" (String.make 50 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-36s %12.1f\n" name ns) rows

(* ------------------------------------------------------------------ *)
(* OBS-OVERHEAD: the disabled-observability budget.                     *)

(* Measures a tight read/write transaction loop three ways in one
   process: with observability never enabled (base), with tracing and
   metrics on, and again after disabling them.  Each instrumentation
   site must collapse back to a single atomic load once the gate
   closes, so the third measurement has to land within tolerance of
   the first; otherwise this exits non-zero (the CI regression
   check).  Robustness against container noise: best-of-N. *)
let obs_overhead () =
  W.Report.section "OBS-OVERHEAD: disabled-tracing budget (single atomic load)";
  let iters = env_int "PROUST_OVERHEAD_ITERS" 200_000 in
  let tolerance =
    float_of_int (env_int "PROUST_OVERHEAD_TOL_PCT" 5) /. 100.0
  in
  let r = Tvar.make 0 in
  let once () =
    let t0 = Clock.now_mono () in
    for i = 1 to iters do
      Stm.atomically (fun txn ->
          ignore (Stm.read txn r);
          Stm.write txn r i)
    done;
    (Clock.now_mono () -. t0) /. float_of_int iters *. 1e9
  in
  let best_of n =
    ignore (once ());
    Gc.full_major ();
    let best = ref infinity in
    for _ = 1 to n do
      best := min !best (once ())
    done;
    !best
  in
  let base = best_of 5 in
  Obs.Trace.enable ();
  Obs.Metrics.enable ();
  let on = best_of 3 in
  Obs.Trace.disable ();
  Obs.Metrics.disable ();
  let off = best_of 5 in
  Printf.printf "ns/txn  never-enabled %8.1f   enabled %8.1f   re-disabled %8.1f\n"
    base on off;
  let limit = base *. (1.0 +. tolerance) in
  if off > limit then begin
    Printf.printf
      "FAIL: re-disabled %.1f ns/txn exceeds never-enabled %.1f ns/txn by \
       more than %.0f%%\n"
      off base (tolerance *. 100.0);
    exit 1
  end
  else
    Printf.printf "PASS: disabled-observability overhead within %.0f%% budget\n"
      (tolerance *. 100.0)

(* ------------------------------------------------------------------ *)
(* OVERLOAD: QoS degradation curve under domain oversubscription.      *)

(* Sweeps worker counts from 1x to 4x PROUST_DOMAINS running a
   write-heavy eager hashmap workload where every operation is a
   bounded [Stm.atomic ~deadline ~max_attempts] call, with the
   shedder and the watchdog armed.  The point of the curve: past the
   core count, throughput degrades but every worker keeps committing
   (no starvation, no livelock) and the refused work is visible in
   the shed / timed-out / budget columns rather than silently
   retried forever. *)
let overload () =
  let base = env_int "PROUST_DOMAINS" (max 2 (min 4 (Domain.recommended_domain_count ()))) in
  let deadline_s = float_of_int (env_int "PROUST_DEADLINE_US" 10_000) *. 1e-6 in
  let max_attempts = env_int "PROUST_MAX_ATTEMPTS" 64 in
  W.Report.section
    (Printf.sprintf
       "OVERLOAD: bounded txns at 1x-4x of %d domains (deadline %.1f ms, \
        budget %d attempts)"
       base (deadline_s *. 1000.0) max_attempts);
  Printf.printf "%-14s %4s %5s %10s %12s %9s %9s %6s %6s %6s %6s\n" "impl" "t"
    "over" "mean(ms)" "ops/s" "commits" "min/wkr" "shed" "tmout" "budg" "wkill";
  Printf.printf "%s\n" (String.make 104 '-');
  let key_range = 256 in
  let config = Some (W.Impls.eager_mode ()) in
  Qos.Shedder.enable ();
  let wd = Qos.Watchdog.start () in
  Fun.protect
    ~finally:(fun () ->
      Qos.Watchdog.stop wd;
      Qos.Shedder.disable ())
    (fun () ->
      List.iter
        (fun mult ->
          let workers = base * mult in
          let per = max 200 (total_ops / workers) in
          let name = Printf.sprintf "overload/x%d" mult in
          let m = S.P_hashmap.ops (S.P_hashmap.make ()) in
          let committed = Array.make workers 0 in
          let shed = Array.make workers 0 in
          let timed_out = Array.make workers 0 in
          let budget = Array.make workers 0 in
          let started = Array.make workers 0.0 in
          let finished = Array.make workers 0.0 in
          let enter = W.Runner.barrier workers in
          let before = Stats.read () in
          let body i () =
            let rng = Random.State.make [| 0x10ad; i |] in
            enter ();
            started.(i) <- Clock.now_mono ();
            for j = 1 to per do
              let k = Random.State.int rng key_range in
              match
                Stm.atomic ?config
                  ~deadline:(Clock.now_mono () +. deadline_s)
                  ~max_attempts
                  (fun txn ->
                    ignore (m.Proust_structures.Trait.Map.put txn k j))
              with
              | Stm.Outcome.Committed () -> committed.(i) <- committed.(i) + 1
              | Stm.Outcome.Shed -> shed.(i) <- shed.(i) + 1
              | Stm.Outcome.Timed_out -> timed_out.(i) <- timed_out.(i) + 1
              | Stm.Outcome.Budget_exhausted -> budget.(i) <- budget.(i) + 1
            done;
            finished.(i) <- Clock.now_mono ()
          in
          let ds = List.init workers (fun i -> Domain.spawn (body i)) in
          List.iter Domain.join ds;
          let dt_ms =
            (Array.fold_left max neg_infinity finished
            -. Array.fold_left min infinity started)
            *. 1000.0
          in
          let st = Stats.diff before (Stats.read ()) in
          let sum a = Array.fold_left ( + ) 0 a in
          let min_worker = Array.fold_left min max_int committed in
          let total_committed = sum committed in
          let ops_per_s = float_of_int total_committed /. dt_ms *. 1000.0 in
          Printf.printf
            "%-14s %4d %4dx %10.2f %12.0f %9d %9d %6d %6d %6d %6d\n%!" name
            workers mult dt_ms ops_per_s total_committed min_worker (sum shed)
            (sum timed_out) (sum budget) st.Stats.watchdog_kills;
          if json_file <> None then
            cells :=
              Obs.Json.Obj
                [
                  ("impl", Obs.Json.String name);
                  ("u", Obs.Json.Float 1.0);
                  ("o", Obs.Json.Int 1);
                  ("threads", Obs.Json.Int workers);
                  ("oversubscription", Obs.Json.Int mult);
                  ("base_domains", Obs.Json.Int base);
                  ("key_range", Obs.Json.Int key_range);
                  ("ops_per_worker", Obs.Json.Int per);
                  ("deadline_s", Obs.Json.Float deadline_s);
                  ("max_attempts", Obs.Json.Int max_attempts);
                  ("mean_ms", Obs.Json.Float dt_ms);
                  ("ops_per_s", Obs.Json.Float ops_per_s);
                  ("committed_total", Obs.Json.Int total_committed);
                  ("committed_min_worker", Obs.Json.Int min_worker);
                  ("shed", Obs.Json.Int (sum shed));
                  ("timed_out", Obs.Json.Int (sum timed_out));
                  ("budget_exhausted", Obs.Json.Int (sum budget));
                  ( "qos_state",
                    Obs.Json.String (Qos.Hysteresis.state_name (Qos.Shedder.state ())) );
                  ( "stats",
                    Obs.Json.Obj
                      (List.map
                         (fun (k, v) -> (k, Obs.Json.Int v))
                         (Stats.to_assoc st)) );
                ]
              :: !cells)
        [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* DURABILITY: redo-log encoding size and group-commit throughput.     *)

module D = Proust_durable

(* Two studies behind `main.exe durability`:

   1. bytes/commit for value vs intent records on a lazy map and on the
      COW pqueue — the paper-motivated claim that logging Proustian
      intents is cheaper than logging the value write set, most
      dramatically where the write set is the whole structure (COW).
   2. committed txns/s against the group-commit linger window, with
      every transaction fsync-waited: the batching knob trades commit
      latency for fsync amortization (visible in fsync_batch_size
      p50/p99). *)
let durability () =
  let commits = if quick then 300 else 1_000 in
  W.Report.section
    (Printf.sprintf "DURABILITY: record formats and group commit (%d commits)"
       commits);
  Printf.printf "%-22s %-7s %9s %9s %12s\n" "structure" "format" "commits"
    "bytes" "bytes/commit";
  Printf.printf "%s\n" (String.make 64 '-');
  let bytes_cell ~structure ~fmt ~drive =
    D.Temp.with_file (fun path ->
        let log = D.Redo_log.create ~path () in
        drive log;
        let bytes = D.Redo_log.bytes_appended log in
        let appends = D.Redo_log.appends log in
        D.Redo_log.close log;
        let per = float_of_int bytes /. float_of_int (max 1 appends) in
        Printf.printf "%-22s %-7s %9d %9d %12.1f\n%!" structure
          (D.Frame.format_name fmt) appends bytes per;
        if json_file <> None then
          cells :=
            Obs.Json.Obj
              [
                ("kind", Obs.Json.String "durable-bytes");
                ("structure", Obs.Json.String structure);
                ("format", Obs.Json.String (D.Frame.format_name fmt));
                ("commits", Obs.Json.Int appends);
                ("bytes", Obs.Json.Int bytes);
                ("bytes_per_commit", Obs.Json.Float per);
              ]
            :: !cells)
  in
  List.iter
    (fun fmt ->
      bytes_cell ~structure:"lazy-hashmap" ~fmt ~drive:(fun log ->
          let m =
            D.Durable_map.ops
              (D.Durable_map.wrap ~fmt ~log
                 (S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ())))
          in
          for i = 1 to commits do
            Stm.atomically (fun txn ->
                ignore (m.S.Trait.Map.put txn (i mod 256) i))
          done))
    [ D.Frame.Value; D.Frame.Intent ];
  List.iter
    (fun fmt ->
      bytes_cell ~structure:"cow-pqueue" ~fmt ~drive:(fun log ->
          let pq = D.Durable_pqueue.create ~fmt ~log ~cmp:compare () in
          let ops = D.Durable_pqueue.ops pq in
          for i = 1 to commits do
            Stm.atomically (fun txn ->
                if i mod 4 = 0 then ignore (ops.S.Trait.Pqueue.remove_min txn)
                else ops.S.Trait.Pqueue.insert txn (i * 37 mod 1009))
          done))
    [ D.Frame.Value; D.Frame.Intent ];
  (* Part 2: throughput vs the group-commit linger window. *)
  let workers = env_int "PROUST_DOMAINS" (max 2 (min 4 (Domain.recommended_domain_count ()))) in
  let per = max 50 (commits / workers) in
  Printf.printf "\n%-14s %4s %10s %12s %8s %8s %8s\n" "linger" "t" "mean(ms)"
    "commits/s" "fsyncs" "batchp50" "batchp99";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun batch_delay ->
      D.Temp.with_file (fun path ->
          let log = D.Redo_log.create ~batch_delay ~path () in
          let base = S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ()) in
          let enter = W.Runner.barrier workers in
          let before = Stats.read () in
          let t0 = ref 0.0 and t1 = ref 0.0 in
          let ds =
            List.init workers (fun d ->
                Domain.spawn (fun () ->
                    let m =
                      D.Durable_map.ops (D.Durable_map.wrap ~fmt:D.Frame.Intent ~log base)
                    in
                    enter ();
                    if d = 0 then t0 := Clock.now_mono ();
                    for i = 1 to per do
                      Stm.atomically (fun txn ->
                          ignore (m.S.Trait.Map.put txn ((d * per) + i) i))
                    done;
                    if d = 0 then t1 := Clock.now_mono ()))
          in
          List.iter Domain.join ds;
          D.Redo_log.close log;
          let st = Stats.diff before (Stats.read ()) in
          let dt_ms = (!t1 -. !t0) *. 1000.0 in
          let total = workers * per in
          let per_s = float_of_int total /. dt_ms *. 1000.0 in
          let name = Printf.sprintf "linger=%gus" (batch_delay *. 1e6) in
          Printf.printf "%-14s %4d %10.2f %12.0f %8d %8d %8d\n%!" name workers
            dt_ms per_s st.Stats.fsync_batches st.Stats.fsync_batch_size_p50
            st.Stats.fsync_batch_size_p99;
          if json_file <> None then
            cells :=
              Obs.Json.Obj
                [
                  ("kind", Obs.Json.String "durable-fsync");
                  ("batch_delay_s", Obs.Json.Float batch_delay);
                  ("threads", Obs.Json.Int workers);
                  ("commits", Obs.Json.Int total);
                  ("mean_ms", Obs.Json.Float dt_ms);
                  ("commits_per_s", Obs.Json.Float per_s);
                  ( "stats",
                    Obs.Json.Obj
                      (List.map
                         (fun (k, v) -> (k, Obs.Json.Int v))
                         (Stats.to_assoc st)) );
                ]
              :: !cells))
    (if quick then [ 0.; 0.001 ] else [ 0.; 0.0002; 0.001; 0.005 ])

(* ------------------------------------------------------------------ *)
(* PARKING: parked retry vs busy-poll on a blocking channel.           *)

module Y = Proust_sync

(* One producer feeds [consumers] blocking receivers through a small
   channel, pausing between bursts so the consumers genuinely wait for
   data rather than streaming it.  The same workload runs once per
   retry mode: Park should show parks > 0 and retry_polls = 0, Poll
   the reverse — that contrast is what CI gates on over
   BENCH_parking.json. *)
let parking () =
  let consumers =
    env_int "PROUST_DOMAINS"
      (max 2 (min 4 (Domain.recommended_domain_count ())))
  in
  let msgs = max 200 (min 2_000 (total_ops / 10)) in
  W.Report.section
    (Printf.sprintf "PARKING: blocked retry vs busy-poll (%d msgs, %d consumers)"
       msgs consumers);
  Printf.printf "%-6s %8s %10s %8s %8s %9s %12s %9s\n" "mode" "recv"
    "mean(ms)" "parks" "wakeups" "spurious" "retry_polls" "maxwaitq";
  Printf.printf "%s\n" (String.make 78 '-');
  let run_mode mode name =
    Stm.set_retry_mode mode;
    let ch = Y.Channel.make ~capacity:8 () in
    let received = Atomic.make 0 in
    let enter = W.Runner.barrier (consumers + 1) in
    let before = Stats.read () in
    let t0 = ref 0.0 in
    let cs =
      List.init consumers (fun _ ->
          Domain.spawn (fun () ->
              enter ();
              let rec loop () =
                match Stm.atomically (fun txn -> Y.Channel.recv_opt txn ch) with
                | Some _ ->
                    Atomic.incr received;
                    loop ()
                | None -> ()
              in
              loop ()))
    in
    let p =
      Domain.spawn (fun () ->
          enter ();
          t0 := Clock.now_mono ();
          for i = 1 to msgs do
            Stm.atomically (fun txn -> Y.Channel.send txn ch i);
            (* Idle gaps let consumers drain the channel and block on
               empty: the waiting, not the throughput, is under test. *)
            if i mod 16 = 0 then Unix.sleepf 0.002
          done;
          Stm.atomically (fun txn -> Y.Channel.close txn ch))
    in
    Domain.join p;
    List.iter Domain.join cs;
    let dt_ms = (Clock.now_mono () -. !t0) *. 1000.0 in
    let st = Stats.diff before (Stats.read ()) in
    Printf.printf "%-6s %8d %10.2f %8d %8d %9d %12d %9d\n%!" name
      (Atomic.get received) dt_ms st.Stats.parks st.Stats.wakeups
      st.Stats.spurious_wakeups st.Stats.retry_polls st.Stats.wait_list_max;
    if json_file <> None then
      cells :=
        Obs.Json.Obj
          [
            ("kind", Obs.Json.String "parking");
            ("retry_mode", Obs.Json.String name);
            ("threads", Obs.Json.Int consumers);
            ("msgs", Obs.Json.Int msgs);
            ("received", Obs.Json.Int (Atomic.get received));
            ("mean_ms", Obs.Json.Float dt_ms);
            ("parks", Obs.Json.Int st.Stats.parks);
            ("wakeups", Obs.Json.Int st.Stats.wakeups);
            ("spurious_wakeups", Obs.Json.Int st.Stats.spurious_wakeups);
            ("retry_polls", Obs.Json.Int st.Stats.retry_polls);
            ("wait_list_max", Obs.Json.Int st.Stats.wait_list_max);
            ( "stats",
              Obs.Json.Obj
                (List.map
                   (fun (k, v) -> (k, Obs.Json.Int v))
                   (Stats.to_assoc st)) );
          ]
        :: !cells
  in
  Fun.protect
    ~finally:(fun () -> Stm.set_retry_mode Stm.Park)
    (fun () ->
      run_mode Stm.Park "park";
      run_mode Stm.Poll "poll")

(* ------------------------------------------------------------------ *)
(* COMBINING: flat-combining group commit vs inline publication.       *)

(* Write-heavy durable cells under Serial_commit: every commit appends
   to the redo log and waits for its fsync, so the device round-trip —
   not the sub-microsecond gate hold — is the cost the publisher can
   amortize.  The grouped side's combiner drains the whole publication
   list in one gate acquisition and lands the batch's appends as one
   burst, which the flusher serves in one cycle; inline commits trickle
   appends through the gate one by one and fragment across cycles.
   Ratios are medians over paired A/B trials because real fsync cost on
   a shared filesystem drifts run to run; the publication economy
   (gate acquisitions per commit) is scheduling-independent. *)
let combining () =
  let domains = env_int "PROUST_DOMAINS" 8 in
  let iters = if quick then 200 else env_int "PROUST_COMBINE_ITERS" 500 in
  let pairs = if quick then 3 else env_int "PROUST_COMBINE_TRIALS" 5 in
  let linger = 1.5e-3 in
  let fsync_delay =
    match Sys.getenv_opt "PROUST_FSYNC_DELAY" with
    | Some s -> (match float_of_string_opt s with Some f -> f | None -> 0.)
    | None -> 0.
  in
  W.Report.section
    (Printf.sprintf
       "COMBINING: grouped vs inline publication (%d domains x %d durable \
        puts, %d paired trials)"
       domains iters pairs);
  let side grouped =
    D.Temp.with_file (fun path ->
        let log = D.Redo_log.create ~fsync_delay ~path () in
        let base = S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ()) in
        let m =
          D.Durable_map.ops (D.Durable_map.wrap ~fmt:D.Frame.Value ~log base)
        in
        Stm.set_combining grouped;
        Stm.set_combine_linger (if grouped then linger else 0.);
        let cfg =
          { (Stm.get_default_config ()) with Stm.mode = Stm.Serial_commit }
        in
        let before = Stats.read () in
        let t0 = Clock.now_mono () in
        let ds =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  let rng = Random.State.make [| 11; d |] in
                  for _ = 1 to iters do
                    Stm.atomically ~config:cfg (fun txn ->
                        let k = (d * 1000) + Random.State.int rng 64 in
                        ignore (m.S.Trait.Map.put txn k d))
                  done))
        in
        List.iter Domain.join ds;
        let dt = Clock.now_mono () -. t0 in
        let st = Stats.diff before (Stats.read ()) in
        D.Redo_log.close log;
        let commits = domains * iters in
        (* Inline publication takes the gate once per commit; a grouped
           session takes it once per election. *)
        let acq = if grouped then st.Stats.combiner_elections else commits in
        (float_of_int commits /. dt, acq, st))
  in
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length l / 2)
  in
  Printf.printf "%-6s %12s %12s %7s %7s %8s %8s\n" "trial" "inline/s"
    "grouped/s" "ratio" "batch" "acq_in" "acq_gr";
  Printf.printf "%s\n" (String.make 66 '-');
  let saved_combining = Stm.combining () in
  let ratios = ref [] and batches = ref [] in
  let ti_all = ref [] and tg_all = ref [] in
  let acq_in = ref 0 and acq_gr = ref 0 in
  let elections = ref 0 and combined = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Stm.set_combine_linger 0.;
      Stm.set_combining saved_combining)
    (fun () ->
      for trial = 1 to pairs do
        let ti, ai, _ = side false in
        let tg, ag, stg = side true in
        let batch =
          if stg.Stats.combiner_elections = 0 then 1.0
          else
            float_of_int stg.Stats.combined_commits
            /. float_of_int stg.Stats.combiner_elections
        in
        ratios := (tg /. ti) :: !ratios;
        batches := batch :: !batches;
        ti_all := ti :: !ti_all;
        tg_all := tg :: !tg_all;
        acq_in := !acq_in + ai;
        acq_gr := !acq_gr + ag;
        elections := !elections + stg.Stats.combiner_elections;
        combined := !combined + stg.Stats.combined_commits;
        Printf.printf "%-6d %12.0f %12.0f %7.2f %7.2f %8d %8d\n%!" trial ti tg
          (tg /. ti) batch ai ag;
        if json_file <> None then
          cells :=
            Obs.Json.Obj
              [
                ("kind", Obs.Json.String "combining-trial");
                ("trial", Obs.Json.Int trial);
                ("threads", Obs.Json.Int domains);
                ("txns", Obs.Json.Int (domains * iters));
                ("inline_commits_per_s", Obs.Json.Float ti);
                ("grouped_commits_per_s", Obs.Json.Float tg);
                ("throughput_ratio", Obs.Json.Float (tg /. ti));
                ("mean_batch", Obs.Json.Float batch);
                ( "stats",
                  Obs.Json.Obj
                    (List.map
                       (fun (k, v) -> (k, Obs.Json.Int v))
                       (Stats.to_assoc stg)) );
              ]
            :: !cells
      done);
  let commits_total = pairs * domains * iters in
  let mean_batch =
    if !elections = 0 then 1.0
    else float_of_int !combined /. float_of_int !elections
  in
  let acq_per_commit_grouped =
    float_of_int !acq_gr /. float_of_int commits_total
  in
  let economy = float_of_int !acq_in /. float_of_int (max 1 !acq_gr) in
  Printf.printf
    "median: ratio=%.2f batch=%.2f | gate acquisitions/commit: inline=1.00 \
     grouped=%.3f (%.1fx fewer)\n%!"
    (median !ratios) mean_batch acq_per_commit_grouped economy;
  if json_file <> None then
    cells :=
      Obs.Json.Obj
        [
          ("kind", Obs.Json.String "combining");
          ("threads", Obs.Json.Int domains);
          ("txns_per_trial", Obs.Json.Int (domains * iters));
          ("pairs", Obs.Json.Int pairs);
          ("fsync_delay_s", Obs.Json.Float fsync_delay);
          ("linger_s", Obs.Json.Float linger);
          ("inline_commits_per_s", Obs.Json.Float (median !ti_all));
          ("grouped_commits_per_s", Obs.Json.Float (median !tg_all));
          ("throughput_ratio", Obs.Json.Float (median !ratios));
          ("mean_batch", Obs.Json.Float mean_batch);
          ("gate_acq_per_commit_inline", Obs.Json.Float 1.0);
          ("gate_acq_per_commit_grouped", Obs.Json.Float acq_per_commit_grouped);
          ("gate_economy", Obs.Json.Float economy);
        ]
      :: !cells

(* ------------------------------------------------------------------ *)
(* Open-system overload: Poisson/bursty tenants issuing at fixed
   intended arrival times (coordinated-omission-correct latency),
   per-tenant QoS classes, brownout on/off A/B per structure, and the
   gold-isolation gate the CI opensystem-smoke job enforces. *)

let env_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

(* Set when PROUST_OS_GATE=1 and the isolation gate fails; main exits
   nonzero after the JSON report is written. *)
let gate_failed = ref false

let opensystem () =
  let duration = env_float "PROUST_OS_DURATION" (if quick then 1.2 else 2.5) in
  let warmup = env_float "PROUST_OS_WARMUP" (min 0.6 (duration /. 4.0)) in
  (* Pool size defaults to the machine: oversubscribing domains on a
     small box turns scheduler timeslices into a double-digit-ms
     latency floor that no admission controller can see past. *)
  let os_workers =
    env_int "PROUST_OS_WORKERS"
      (max 1 (min 4 (Domain.recommended_domain_count () - 1)))
  in
  let deadline = env_float "PROUST_OS_DEADLINE_MS" 50.0 *. 1e-3 in
  let keys = env_int "PROUST_OS_KEYS" 1_000_000 in
  let hot = env_int "PROUST_OS_HOT" 8 in
  (* Offered intensity as a fraction of calibrated capacity.  Above
     1.0 on purpose: bursty duty-cycle variance over a short window
     realizes below the configured figure, and the gate's claim needs
     sustained >= 80% realized utilization with bursts well past
     capacity. *)
  let util = env_float "PROUST_OS_UTIL" 1.1 in
  let bound_ns =
    int_of_float (env_float "PROUST_OS_P999_BOUND_MS" 25.0 *. 1e6)
  in
  let entry_names =
    String.split_on_char ','
      (Option.value
         (Sys.getenv_opt "PROUST_OS_ENTRIES")
         ~default:
           (if quick then "omap-snap,eager-opt-hotgate"
            else "omap-snap,stm-map,eager-opt,eager-opt-hotgate"))
  in
  let gate_entry =
    Option.value (Sys.getenv_opt "PROUST_OS_GATE_ENTRY") ~default:"omap-snap"
  in
  let mvcc_config =
    { (Stm.get_default_config ()) with mode = Stm.Multi_version }
  in
  (* Encounter-time entries keep their derived eager config (RO routing
     is then a no-op and the hot gate is the mitigation story);
     any-mode entries run under MVCC so brownout can route reads onto
     the abort-free snapshot path. *)
  let config_for (e : W.Registry.entry) =
    match e.W.Registry.config with Some c -> c | None -> mvcc_config
  in
  let gold_dist = W.Arrivals.Zipf { s = 0.9; scramble = true } in
  let bronze_dist = W.Arrivals.Hotset { hot; fraction = 0.9 } in
  (* Closed-loop capacity of the contended mix (half the domains on the
     gold profile, half on the antagonist's): open-system rates scale
     off this, so utilization is machine-independent. *)
  let calibrate (e : W.Registry.entry) ~config =
    let make =
      match e.W.Registry.target with
      | W.Registry.Map m -> m
      | _ -> invalid_arg "opensystem: map entries only"
    in
    let ops = make () in
    let config = Some config in
    for k = 0 to 9_999 do
      Stm.atomically ?config (fun txn ->
          ignore (ops.Proust_structures.Trait.Map.put txn k k))
    done;
    let stop = Atomic.make false in
    let counts = Array.init os_workers (fun _ -> Atomic.make 0) in
    let seconds = env_float "PROUST_OS_CAL_S" 0.4 in
    let ds =
      List.init os_workers (fun i ->
          Domain.spawn (fun () ->
              let rng = W.Arrivals.rng ~salt:[ 0x05; i ] () in
              let goldish = i < os_workers / 2 in
              let kg =
                W.Arrivals.keygen
                  (if goldish then gold_dist else bronze_dist)
                  ~keys
              in
              let wf = if goldish then 0.0 else 0.8 in
              while not (Atomic.get stop) do
                let arr = W.Arrivals.ops rng kg ~write_fraction:wf ~count:2 in
                match
                  Stm.atomic ?config
                    ~deadline:(Clock.now_mono () +. deadline)
                    (fun txn -> Array.iter (W.Workload.apply_op ops txn) arr)
                with
                | Stm.Outcome.Committed () -> Atomic.incr counts.(i)
                | _ -> ()
              done))
    in
    Unix.sleepf seconds;
    Atomic.set stop true;
    List.iter Domain.join ds;
    let total = Array.fold_left (fun a c -> a + Atomic.get c) 0 counts in
    float_of_int total /. seconds
  in
  let gold_of (r : W.Open_runner.result) =
    List.find
      (fun tr -> tr.W.Open_runner.tr_name = "gold")
      r.W.Open_runner.o_tenants
  in
  let bronze_of (r : W.Open_runner.result) =
    List.find
      (fun tr -> tr.W.Open_runner.tr_name = "bronze")
      r.W.Open_runner.o_tenants
  in
  let p999_intended (tr : W.Open_runner.tenant_result) =
    match tr.W.Open_runner.tr_latency with
    | Some s -> s.Obs.Metrics.intended.Obs.Histogram.p999
    | None -> 0
  in
  let run_cell (e : W.Registry.entry) ~config ~capacity ~brownout_on =
    let gold =
      W.Open_runner.tenant_spec ~name:"gold" ~klass:Qos.Tenant.Gold
        ~dist:gold_dist ~keys ~write_fraction:0.0 ~ops_per_txn:2 ~deadline
        (W.Arrivals.Poisson { rate = 0.4 *. util *. capacity })
    in
    (* Bronze gets a tight retry budget: a thrashing antagonist fails
       fast instead of occupying a pool worker for its whole deadline
       (which is what gold would otherwise queue behind). *)
    let bronze =
      W.Open_runner.tenant_spec ~name:"bronze" ~klass:Qos.Tenant.Bronze
        ~dist:bronze_dist ~keys ~write_fraction:0.8 ~ops_per_txn:2 ~deadline
        ~max_attempts:(env_int "PROUST_OS_BRONZE_ATTEMPTS" 2)
        (W.Arrivals.Bursty
           {
             rate_on = 1.1 *. util *. capacity;
             rate_off = 0.1 *. util *. capacity;
             (* Short dwells: many on/off cycles per run window, so
                the realized duty cycle concentrates near 50% instead
                of riding one seed's coin-flip, and every run
                exercises several burst onsets. *)
             mean_on = 0.1;
             mean_off = 0.1;
           })
    in
    (* Fast controller cadence for short bench windows; escalation is
       capped at [Shed_bronze]: gold admission is contractual. *)
    let brownout =
      if brownout_on then
        Some
          (Qos.Brownout.make
             ~config:
               {
                 (* Clamp bursts fast: at 27% excess rate the fluid
                    transient is (detection + ladder) * excess, so a
                    2 ms lag budget, a fast EWMA and a 1-sample dwell
                    keep the gold tail to a few ms of spike while the
                    probe waves the short dwell re-admits fail fast
                    under the bronze retry budget. *)
                 sample_window = 0.005;
                 lag_budget = 0.002;
                 alpha = 0.35;
                 ladder =
                   {
                     Qos.Brownout.Ladder.default_config with
                     dwell = 1;
                     max_level = Qos.Brownout.Shed_bronze;
                   };
               }
             ())
      else None
    in
    (* The brownout-off comparison runs the naive alternative — the
       class-blind global shedder — which is exactly what the gate
       shows failing: it sheds gold. *)
    if not brownout_on then
      Qos.Shedder.enable
        ~config:{ Qos.Shedder.default_config with sample_window = 0.02 }
        ();
    Fun.protect
      ~finally:(fun () -> if not brownout_on then Qos.Shedder.disable ())
      (fun () ->
        W.Open_runner.run ?brownout ~config ~workers:os_workers ~warmup
          ~duration ~entry:e [ gold; bronze ])
  in
  W.Report.section
    (Printf.sprintf
       "OPENSYSTEM: open-loop tenants at %.0f%% utilization, %.1fs/cell \
        (deadline %.0f ms, gate entry %s)"
       (util *. 100.0) duration (deadline *. 1000.0) gate_entry);
  Printf.printf "%-18s %-4s %9s %6s %11s %11s %8s %8s %-11s\n" "impl" "brn"
    "cap/s" "util" "gold-p999" "gold-shed" "gold/s" "brz-shed" "peak";
  Printf.printf "%s\n" (String.make 94 '-');
  let gate_cells = ref [] in
  List.iter
    (fun name ->
      match W.Registry.find name with
      | None -> Printf.printf "%-18s (unknown entry, skipped)\n%!" name
      | Some e ->
          let config = config_for e in
          let capacity = calibrate e ~config in
          List.iter
            (fun brownout_on ->
              let r = run_cell e ~config ~capacity ~brownout_on in
              let g = gold_of r and b = bronze_of r in
              let gp999 = p999_intended g in
              Printf.printf
                "%-18s %-4s %9.0f %6.2f %9.2fms %11d %8.0f %8d %-11s\n%!"
                name
                (if brownout_on then "on" else "off")
                capacity
                (r.W.Open_runner.o_offered /. capacity)
                (float_of_int gp999 /. 1e6)
                g.W.Open_runner.tr_stats.Qos.Tenant.s_shed
                g.W.Open_runner.tr_goodput
                b.W.Open_runner.tr_stats.Qos.Tenant.s_shed
                (match r.W.Open_runner.o_brownout_peak with
                | Some l -> Qos.Brownout.level_name l
                | None -> "-");
              if name = gate_entry then
                gate_cells := (brownout_on, r) :: !gate_cells;
              if json_file <> None then
                cells :=
                  Obs.Json.Obj
                    [
                      ("kind", Obs.Json.String "opensystem");
                      ("entry", Obs.Json.String name);
                      ("stm_mode", Obs.Json.String (Stm.mode_name config.Stm.mode));
                      ("brownout", Obs.Json.Bool brownout_on);
                      ("capacity_tps", Obs.Json.Float capacity);
                      ( "utilization",
                        Obs.Json.Float (r.W.Open_runner.o_offered /. capacity)
                      );
                      ("gold_p999_intended_ns", Obs.Json.Int gp999);
                      ("report", W.Open_runner.to_json r);
                    ]
                  :: !cells)
            [ true; false ])
    entry_names;
  (* The isolation gate: with brownout on, gold p999 stays under the
     bound and gold sheds are zero; the brownout-off cell must violate
     at least one of the two. *)
  (match
     ( List.assoc_opt true !gate_cells,
       List.assoc_opt false !gate_cells )
   with
  | Some on, Some off ->
      let g_on = gold_of on and g_off = gold_of off in
      let on_p999 = p999_intended g_on and off_p999 = p999_intended g_off in
      let on_sheds = g_on.W.Open_runner.tr_stats.Qos.Tenant.s_shed in
      let off_sheds = g_off.W.Open_runner.tr_stats.Qos.Tenant.s_shed in
      let on_ok = on_p999 <= bound_ns && on_sheds = 0 in
      let off_violates = off_p999 > bound_ns || off_sheds > 0 in
      let pass = on_ok && off_violates in
      Printf.printf
        "gate[%s]: on(p999=%.2fms sheds=%d) off(p999=%.2fms sheds=%d) \
         bound=%.0fms -> %s\n%!"
        gate_entry
        (float_of_int on_p999 /. 1e6)
        on_sheds
        (float_of_int off_p999 /. 1e6)
        off_sheds
        (float_of_int bound_ns /. 1e6)
        (if pass then "PASS" else "FAIL");
      if json_file <> None then
        cells :=
          Obs.Json.Obj
            [
              ("kind", Obs.Json.String "opensystem-gate");
              ("entry", Obs.Json.String gate_entry);
              ("bound_ns", Obs.Json.Int bound_ns);
              ("gold_p999_on_ns", Obs.Json.Int on_p999);
              ("gold_p999_off_ns", Obs.Json.Int off_p999);
              ("gold_sheds_on", Obs.Json.Int on_sheds);
              ("gold_sheds_off", Obs.Json.Int off_sheds);
              ("brownout_on_ok", Obs.Json.Bool on_ok);
              ("brownout_off_violates", Obs.Json.Bool off_violates);
              ("pass", Obs.Json.Bool pass);
            ]
          :: !cells;
      if (not pass) && Sys.getenv_opt "PROUST_OS_GATE" = Some "1" then
        gate_failed := true
  | _ ->
      Printf.printf "gate[%s]: entry not in PROUST_OS_ENTRIES, skipped\n%!"
        gate_entry)

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe \
     [fig1|fig4|fig4-memo|micro|ablation-m|ablation-cm|ablation-mode|\
     ablation-zipf|ablation-combine|mvcc|pqueue|queue|structures|compose|\
     overload|opensystem|durability|parking|combining|obs-overhead|all] \
     [--json FILE] [--trace FILE]"

let () =
  (* First non-flag argument is the command; --json/--trace (and their
     values) are consumed by [flag_val]. *)
  let cmd =
    let rec go = function
      | ("--json" | "--trace") :: _ :: rest -> go rest
      | c :: _ -> c
      | [] -> "all"
    in
    go (List.tl (Array.to_list Sys.argv))
  in
  if json_file <> None then Obs.Metrics.enable ();
  if trace_file <> None then Obs.Trace.enable ();
  (match cmd with
  | "fig1" -> fig1 ()
  | "fig4" -> fig4 ()
  | "fig4-memo" -> fig4_memo ()
  | "micro" -> micro ()
  | "ablation-m" -> ablation_m ()
  | "ablation-cm" -> ablation_cm ()
  | "ablation-mode" -> ablation_mode ()
  | "ablation-zipf" -> ablation_zipf ()
  | "ablation-combine" -> ablation_combine ()
  | "mvcc" -> mvcc_bench ()
  | "pqueue" -> pqueue_bench ()
  | "queue" -> queue_bench ()
  | "structures" -> structures_bench ()
  | "compose" -> compose_bench ()
  | "overload" -> overload ()
  | "opensystem" -> opensystem ()
  | "durability" -> durability ()
  | "parking" -> parking ()
  | "combining" -> combining ()
  | "obs-overhead" -> obs_overhead ()
  | "all" ->
      fig1 ();
      micro ();
      fig4 ();
      fig4_memo ();
      ablation_m ();
      ablation_cm ();
      ablation_mode ();
      ablation_zipf ();
      ablation_combine ();
      mvcc_bench ();
      pqueue_bench ();
      queue_bench ();
      structures_bench ();
      compose_bench ();
      overload ();
      opensystem ();
      durability ();
      parking ();
      combining ()
  | _ -> usage ());
  Option.iter
    (fun file ->
      let config =
        [
          ("command", Obs.Json.String cmd);
          ("total_ops", Obs.Json.Int total_ops);
          ( "threads",
            Obs.Json.List (List.map (fun t -> Obs.Json.Int t) threads_list) );
          ("trials", Obs.Json.Int trials);
          ("quick", Obs.Json.Bool quick);
          ( "default_mode",
            Obs.Json.String (Stm.mode_name (Stm.get_default_config ()).Stm.mode)
          );
          ("ocaml", Obs.Json.String Sys.ocaml_version);
          ("unix_time", Obs.Json.Float (Unix.gettimeofday ()));
        ]
      in
      W.Report.write_json ~file ~config (List.rev !cells);
      Printf.printf "wrote JSON report: %s (%d cells)\n%!" file
        (List.length !cells))
    json_file;
  Option.iter
    (fun file ->
      Obs.Trace.dump_chrome_file file;
      Printf.printf "wrote Chrome trace: %s (%d events, %d dropped)\n%!" file
        (Obs.Trace.emitted ()) (Obs.Trace.dropped ()))
    trace_file;
  if !gate_failed then exit 1
