(* Command-line benchmark driver for custom parameter sweeps.

     proust_bench --impl lazy-memo,fifo-lazy --threads 1,2,4 --u 0.5 \
                  --o 16 --ops 100000 --mode eager-lazy --cm karma \
                  --csv out.csv --json report.json --trace trace.json

   The `bench/main.exe` harness regenerates the paper's fixed grids;
   this tool explores arbitrary points of the space.  Implementations
   are enumerated from the workload registry, so maps, FIFO queues and
   priority queues are all benchable; an entry whose trait header
   requires encounter-time conflict detection is upgraded to
   eager-lazy if the requested mode cannot host it (Figure 1).

   --json writes a "proust-bench/v1" report (and enables metrics, so
   cells carry commit/abort-retry/lock-wait latency percentiles);
   --trace enables tracing and writes a Chrome trace_event file
   loadable in Perfetto. *)

module W = Proust_workload
module S = Proust_structures
module Obs = Proust_obs

(* Spellings accepted for entries that were renamed when the registry
   replaced the hand-written implementation list. *)
let canonical = function
  | "eager-pess" -> "pessimistic"
  | "lazy-memo-nocombine" -> "lazy-memo"
  | "lazy-triemap" -> "lazy-snap"
  | other -> other

let mode_of_string = Stm.Mode.of_string

let cm_of_string = function
  | "passive" -> Proust_stm.Contention.passive ()
  | "polite" -> Proust_stm.Contention.polite ()
  | "karma" -> Proust_stm.Contention.karma ()
  | "timestamp" -> Proust_stm.Contention.timestamp ()
  | other -> invalid_arg ("unknown contention manager: " ^ other)

let run impls threads_list u o ops key_range trials slots mode cm csv json
    trace =
  let config =
    {
      (Stm.get_default_config ()) with
      Stm.mode = mode_of_string mode;
      cm = cm_of_string cm;
    }
  in
  let spec =
    { W.Workload.key_range; write_fraction = u; ops_per_txn = o; total_ops = ops }
  in
  if json <> None then Obs.Metrics.enable ();
  if trace <> None then Obs.Trace.enable ();
  let cells = ref [] in
  let csv_oc = Option.map open_out csv in
  Option.iter W.Report.csv_header csv_oc;
  W.Report.header ();
  List.iter
    (fun raw_name ->
      let name = canonical raw_name in
      let e =
        match W.Registry.find ~slots name with
        | Some e -> e
        | None ->
            invalid_arg
              (Printf.sprintf "unknown impl %s (known: %s)" raw_name
                 (String.concat ", " (W.Registry.names ())))
      in
      (* Honour the requested mode unless the entry's trait header
         rules it out (Theorem 5.2); then upgrade to eager-lazy, as
         the registry would. *)
      let config =
        if S.Trait.mode_ok e.W.Registry.meta.S.Trait.mode_req config.Stm.mode
        then config
        else { config with Stm.mode = Stm.Eager_lazy }
      in
      List.iter
        (fun threads ->
          let r =
            match e.W.Registry.target with
            | W.Registry.Map make ->
                W.Runner.run ~config ~label:name ~trials ~warmup:1 ~threads
                  ~spec make
            | W.Registry.Queue make ->
                W.Runner.run_queue ~config ~label:name ~trials ~warmup:1
                  ~threads ~spec make
            | W.Registry.Pqueue make ->
                W.Runner.run_pqueue ~config ~label:name ~trials ~warmup:1
                  ~threads ~spec make
            | W.Registry.Counter make ->
                W.Runner.run_counter ~config ~label:name ~trials ~warmup:1
                  ~threads ~spec make
          in
          W.Report.row ~name r;
          Option.iter (fun oc -> W.Report.csv_row oc ~name r) csv_oc;
          if json <> None then cells := W.Report.json_cell ~name r :: !cells)
        threads_list)
    impls;
  Option.iter close_out csv_oc;
  Option.iter
    (fun file ->
      let jstr s = Obs.Json.String s in
      let config_fields =
        [
          ("impls", Obs.Json.List (List.map jstr impls));
          ( "threads",
            Obs.Json.List (List.map (fun t -> Obs.Json.Int t) threads_list) );
          ("u", Obs.Json.Float u);
          ("o", Obs.Json.Int o);
          ("ops", Obs.Json.Int ops);
          ("key_range", Obs.Json.Int key_range);
          ("trials", Obs.Json.Int trials);
          ("slots", Obs.Json.Int slots);
          ("mode", jstr mode);
          ("cm", jstr cm);
          ("ocaml", jstr Sys.ocaml_version);
          ("unix_time", Obs.Json.Float (Unix.gettimeofday ()));
        ]
      in
      W.Report.write_json ~file ~config:config_fields (List.rev !cells);
      Printf.printf "wrote JSON report: %s (%d cells)\n%!" file
        (List.length !cells))
    json;
  Option.iter
    (fun file ->
      Obs.Trace.dump_chrome_file file;
      Printf.printf "wrote Chrome trace: %s (%d events, %d dropped)\n%!" file
        (Obs.Trace.emitted ()) (Obs.Trace.dropped ()))
    trace

open Cmdliner

let impls_arg =
  let doc =
    "Comma-separated implementations from the registry: "
    ^ String.concat ", " (W.Registry.names ())
  in
  Arg.(value & opt (list string) [ "lazy-memo" ] & info [ "impl" ] ~doc)

let threads_arg =
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads"; "t" ] ~doc:"Thread counts")

let u_arg =
  Arg.(value & opt float 0.5 & info [ "u" ] ~doc:"Write fraction in [0,1]")

let o_arg = Arg.(value & opt int 16 & info [ "o" ] ~doc:"Operations per transaction")

let ops_arg =
  Arg.(value & opt int 50_000 & info [ "ops" ] ~doc:"Total operations per cell")

let keys_arg =
  Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Key range")

let trials_arg = Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Measured trials")

let slots_arg =
  Arg.(value & opt int 1024 & info [ "slots"; "M" ] ~doc:"Conflict-abstraction region size")

let mode_arg =
  Arg.(
    value
    & opt string "lazy-lazy"
    & info [ "mode" ]
        ~doc:
          (Printf.sprintf "STM conflict detection: %s"
             (String.concat ", " (Stm.Mode.names ()))))

let cm_arg =
  Arg.(
    value
    & opt string "passive"
    & info [ "cm" ] ~doc:"Contention manager: passive, polite, karma, timestamp")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write CSV to $(docv)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:
          "Write a proust-bench/v1 JSON report (with latency percentiles) to \
           $(docv)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Record a Chrome trace_event file (Perfetto-loadable) to $(docv)")

let cmd =
  let doc = "Proust structure-throughput benchmark (custom sweeps)" in
  Cmd.v
    (Cmd.info "proust_bench" ~doc)
    Term.(
      const run $ impls_arg $ threads_arg $ u_arg $ o_arg $ ops_arg $ keys_arg
      $ trials_arg $ slots_arg $ mode_arg $ cm_arg $ csv_arg $ json_arg
      $ trace_arg)

let () = exit (Cmd.eval cmd)
