(* Command-line benchmark driver for custom parameter sweeps.

     proust_bench --impl lazy-memo --threads 1,2,4 --u 0.5 --o 16 \
                  --ops 100000 --mode eager-lazy --cm karma --csv out.csv

   The `bench/main.exe` harness regenerates the paper's fixed grids;
   this tool explores arbitrary points of the space. *)

module W = Proust_workload
module S = Proust_structures
module B = Proust_baselines

let impl_names =
  [
    "stm-map";
    "predication";
    "eager-opt";
    "eager-pess";
    "lazy-memo";
    "lazy-memo-nocombine";
    "lazy-snap";
    "lazy-triemap";
    "boosted";
    "coarse";
  ]

let make_impl ~slots = function
  | "stm-map" -> fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ())
  | "predication" -> fun () -> B.Predication_map.ops (B.Predication_map.make ())
  | "eager-opt" -> fun () -> S.P_hashmap.ops (S.P_hashmap.make ~slots ())
  | "eager-pess" ->
      fun () ->
        S.P_hashmap.ops (S.P_hashmap.make ~slots ~lap:S.Map_intf.Pessimistic ())
  | "lazy-memo" -> fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ())
  | "lazy-memo-nocombine" ->
      fun () ->
        S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:false ())
  | "lazy-snap" | "lazy-triemap" ->
      fun () -> S.P_lazy_triemap.ops (S.P_lazy_triemap.make ~slots ())
  | "boosted" -> fun () -> B.Boosted_map.ops (B.Boosted_map.make ~slots ())
  | "coarse" -> fun () -> B.Coarse_map.ops (B.Coarse_map.make ())
  | other -> invalid_arg ("unknown impl: " ^ other)

let mode_of_string = function
  | "lazy-lazy" -> Stm.Lazy_lazy
  | "eager-lazy" -> Stm.Eager_lazy
  | "eager-eager" -> Stm.Eager_eager
  | "serial-commit" -> Stm.Serial_commit
  | other -> invalid_arg ("unknown mode: " ^ other)

let cm_of_string = function
  | "passive" -> Proust_stm.Contention.passive ()
  | "polite" -> Proust_stm.Contention.polite ()
  | "karma" -> Proust_stm.Contention.karma ()
  | "timestamp" -> Proust_stm.Contention.timestamp ()
  | other -> invalid_arg ("unknown contention manager: " ^ other)

let run impls threads_list u o ops key_range trials slots mode cm csv =
  let config =
    {
      (Stm.get_default_config ()) with
      Stm.mode = mode_of_string mode;
      cm = cm_of_string cm;
    }
  in
  (* Eager-optimistic structures require encounter-time detection. *)
  let config_for name =
    if name = "eager-opt" && config.Stm.mode = Stm.Lazy_lazy then
      { config with Stm.mode = Stm.Eager_lazy }
    else config
  in
  let spec =
    { W.Workload.key_range; write_fraction = u; ops_per_txn = o; total_ops = ops }
  in
  let csv_oc = Option.map open_out csv in
  Option.iter W.Report.csv_header csv_oc;
  W.Report.header ();
  List.iter
    (fun name ->
      let make = make_impl ~slots name in
      List.iter
        (fun threads ->
          let r =
            W.Runner.run ~config:(config_for name) ~trials ~warmup:1 ~threads
              ~spec make
          in
          W.Report.row ~name r;
          Option.iter (fun oc -> W.Report.csv_row oc ~name r) csv_oc)
        threads_list)
    impls;
  Option.iter close_out csv_oc

open Cmdliner

let impls_arg =
  let doc =
    "Comma-separated implementations: " ^ String.concat ", " impl_names
  in
  Arg.(value & opt (list string) [ "lazy-memo" ] & info [ "impl" ] ~doc)

let threads_arg =
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads"; "t" ] ~doc:"Thread counts")

let u_arg =
  Arg.(value & opt float 0.5 & info [ "u" ] ~doc:"Write fraction in [0,1]")

let o_arg = Arg.(value & opt int 16 & info [ "o" ] ~doc:"Operations per transaction")

let ops_arg =
  Arg.(value & opt int 50_000 & info [ "ops" ] ~doc:"Total operations per cell")

let keys_arg =
  Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Key range")

let trials_arg = Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Measured trials")

let slots_arg =
  Arg.(value & opt int 1024 & info [ "slots"; "M" ] ~doc:"Conflict-abstraction region size")

let mode_arg =
  Arg.(
    value
    & opt string "lazy-lazy"
    & info [ "mode" ]
        ~doc:"STM conflict detection: lazy-lazy, eager-lazy, eager-eager, serial-commit")

let cm_arg =
  Arg.(
    value
    & opt string "passive"
    & info [ "cm" ] ~doc:"Contention manager: passive, polite, karma, timestamp")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write CSV to $(docv)")

let cmd =
  let doc = "Proust map-throughput benchmark (custom sweeps)" in
  Cmd.v
    (Cmd.info "proust_bench" ~doc)
    Term.(
      const run $ impls_arg $ threads_arg $ u_arg $ o_arg $ ops_arg $ keys_arg
      $ trials_arg $ slots_arg $ mode_arg $ cm_arg $ csv_arg)

let () = exit (Cmd.eval cmd)
