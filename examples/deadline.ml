(* Bounded transactions: [Stm.atomic ~deadline] instead of open-ended
   retry.

   A dashboard wants a consistent snapshot of a hot counter map, but
   would rather serve slightly stale data than stall: it gives the
   transactional read a 2 ms deadline and falls back to a lock-free
   dirty read ([Tvar.peek]) when the STM can't deliver in time.

   Run with: dune exec examples/deadline.exe *)

let cells = Array.init 8 (fun _ -> Tvar.make 0)

let () =
  (* Background writers keep the cells hot. *)
  let stop = Atomic.make false in
  let writers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Stm.atomically (fun txn ->
                  Array.iter
                    (fun c -> Stm.write txn c (Stm.read txn c + 1))
                    cells)
            done))
  in
  for tick = 1 to 5 do
    let deadline = Clock.now_mono () +. 2e-3 in
    (match
       Stm.atomic ~deadline (fun txn ->
           Array.map (fun c -> Stm.read txn c) cells)
     with
    | Stm.Outcome.Committed snap ->
        Printf.printf "tick %d: consistent snapshot, sum=%d\n%!" tick
          (Array.fold_left ( + ) 0 snap)
    | Stm.Outcome.Timed_out ->
        (* Degrade gracefully: per-cell dirty reads, no retry loop. *)
        let dirty = Array.map Tvar.peek cells in
        Printf.printf "tick %d: timed out, dirty sum=%d\n%!" tick
          (Array.fold_left ( + ) 0 dirty)
    | o -> Printf.printf "tick %d: %s\n%!" tick (Stm.Outcome.name o));
    Unix.sleepf 1e-3
  done;
  Atomic.set stop true;
  List.iter Domain.join writers
