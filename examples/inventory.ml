(* A warehouse built from three Proustian objects — a set of known
   SKUs (wrapping a lock-free list), a stock-level map, and the §3
   counter — exercised identically under two design-space points:

     eager updates + pessimistic locks  (boosting's corner)
     lazy updates + optimistic locks    (predication's corner)

   The same application code runs against both; only the constructors
   change.  That is the paper's central usability claim.

   Run with: dune exec examples/inventory.exe *)

module S = Proust_structures

type shop = {
  skus : string S.P_set.t;
  stock : (string, int) S.Trait.Map.ops;
  distinct : S.P_counter.t;
  config : Stm.config option;
}

let eager_pessimistic () =
  {
    skus = S.P_set.make ~lap:S.Trait.Pessimistic ();
    stock = S.P_hashmap.ops (S.P_hashmap.make ~lap:S.Trait.Pessimistic ());
    distinct = S.P_counter.make ~lap:S.Trait.Pessimistic ();
    config = None;
  }

let lazy_optimistic () =
  {
    skus = S.P_set.make ~lap:S.Trait.Optimistic ();
    stock = S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ());
    distinct = S.P_counter.make ~lap:S.Trait.Optimistic ();
    config =
      (* the eager counter needs encounter-time conflict detection *)
      Some { (Stm.get_default_config ()) with Stm.mode = Stm.Eager_lazy };
  }

let restock shop sku qty =
  Stm.atomically ?config:shop.config (fun txn ->
      if S.P_set.add shop.skus txn sku then S.P_counter.incr shop.distinct txn;
      let current =
        Option.value ~default:0 (shop.stock.S.Trait.Map.get txn sku)
      in
      ignore (shop.stock.S.Trait.Map.put txn sku (current + qty)))

let sell shop sku qty =
  Stm.atomically ?config:shop.config (fun txn ->
      match shop.stock.S.Trait.Map.get txn sku with
      | Some n when n >= qty ->
          ignore (shop.stock.S.Trait.Map.put txn sku (n - qty));
          true
      | _ -> false)

let drive name shop =
  let skus = [| "lamp"; "chair"; "desk"; "rug" |] in
  let workers = 4 and rounds = 250 in
  let sold = Atomic.make 0 in
  let ds =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| w |] in
            for _ = 1 to rounds do
              let sku = skus.(Random.State.int rng (Array.length skus)) in
              if Random.State.bool rng then restock shop sku 3
              else if sell shop sku 2 then
                ignore (Atomic.fetch_and_add sold 2)
            done))
  in
  List.iter Domain.join ds;
  let in_stock =
    Stm.atomically ?config:shop.config (fun txn ->
        Array.fold_left
          (fun acc sku ->
            acc + Option.value ~default:0 (shop.stock.S.Trait.Map.get txn sku))
          0 skus)
  in
  Printf.printf "%-20s distinct-skus=%d in-stock=%d sold=%d\n" name
    (S.P_counter.peek shop.distinct)
    in_stock (Atomic.get sold)

let () =
  drive "eager/pessimistic" (eager_pessimistic ());
  drive "lazy/optimistic" (lazy_optimistic ())
