(* Blocking coordination: a multi-stage pipeline wired from the
   transactional sync family.

   Stage 1 (parsers) turn raw strings into ints and send them down a
   bounded channel; stage 2 (squarers) read that channel and emit to a
   second one; a single folder sums stage-2 output and fulfils a
   promise with the total.  A counting semaphore rate-limits how many
   raw items may be in flight at once, and the folder uses [select] to
   multiplex the data channel against a quit channel.

   Every wait here — full channel, empty channel, unfulfilled promise,
   exhausted semaphore — is [Stm.retry] parking the domain on the
   tvars it read; no stage busy-polls.

   Run with: dune exec examples/pipeline.exe *)

module Y = Proust_sync

let in_flight_limit = 4
let items = 32

let () =
  let raw : string Y.Channel.t = Y.Channel.make ~capacity:8 () in
  let parsed : int Y.Channel.t = Y.Channel.make ~capacity:8 () in
  let squared : int Y.Channel.t = Y.Channel.make ~capacity:8 () in
  let quit : unit Y.Channel.t = Y.Channel.make ~capacity:1 () in
  let tickets = Y.Semaphore.make ~cap:in_flight_limit in_flight_limit in
  let total : int Y.Promise.t = Y.Promise.make () in

  (* Stage 1: two parsers.  recv_opt returns None once [raw] is closed
     and drained, which is how the stage learns to shut down. *)
  let parsers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match
                Stm.atomically (fun txn ->
                    match Y.Channel.recv_opt txn raw with
                    | None -> None
                    | Some s ->
                        Y.Channel.send txn parsed (int_of_string s);
                        Some ())
              with
              | Some () -> loop ()
              | None -> ()
            in
            loop ()))
  in

  (* Stage 2: two squarers.  Each consumed item releases its
     admission ticket — the semaphore caps pipeline occupancy. *)
  let squarers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match
                Stm.atomically (fun txn ->
                    match Y.Channel.recv_opt txn parsed with
                    | None -> None
                    | Some n ->
                        Y.Channel.send txn squared (n * n);
                        Y.Semaphore.release txn tickets;
                        Some ())
              with
              | Some () -> loop ()
              | None -> ()
            in
            loop ()))
  in

  (* Folder: select multiplexes data against the quit signal.  The
     rotation in [select] keeps a busy data channel from starving the
     quit case, and when both block the domain parks once on the union
     of their read sets. *)
  let folder =
    Domain.spawn (fun () ->
        let rec loop acc =
          match
            Stm.atomically (fun txn ->
                Y.Select.select txn
                  [
                    Y.Select.recv squared (fun n -> `Item n);
                    Y.Select.recv quit (fun () -> `Quit);
                  ])
          with
          | `Item n -> loop (acc + n)
          | `Quit ->
              (* The rotation means quit can win while squares are
                 still buffered: drain them non-blockingly first. *)
              let acc =
                Stm.atomically (fun txn ->
                    let rec drain acc =
                      match Y.Channel.try_recv txn squared with
                      | Some n -> drain (acc + n)
                      | None -> acc
                    in
                    drain acc)
              in
              Stm.atomically (fun txn -> Y.Promise.fulfil txn total acc)
        in
        loop 0)
  in

  (* Feed the pipeline: acquire a ticket per item, so at most
     [in_flight_limit] items occupy stages 1–2 at once. *)
  for i = 1 to items do
    Stm.atomically (fun txn ->
        Y.Semaphore.acquire txn tickets;
        Y.Channel.send txn raw (string_of_int i))
  done;
  Stm.atomically (fun txn -> Y.Channel.close txn raw);
  List.iter Domain.join parsers;
  Stm.atomically (fun txn -> Y.Channel.close txn parsed);
  List.iter Domain.join squarers;

  (* All squares delivered: tell the folder to wrap up, then block on
     the promise for the final figure. *)
  Stm.atomically (fun txn -> Y.Channel.send txn quit ());
  let sum = Stm.atomically (fun txn -> Y.Promise.await txn total) in
  Domain.join folder;
  let expect = items * (items + 1) * ((2 * items) + 1) / 6 in
  Printf.printf "pipeline sum of squares 1..%d = %d (expected %d)\n%!" items
    sum expect;
  Printf.printf "tickets back home: %d/%d, parked waiters: %d\n%!"
    (Y.Semaphore.peek tickets) in_flight_limit (Stm.parked_waiters ());
  assert (sum = expect);
  assert (Y.Semaphore.peek tickets = in_flight_limit)
