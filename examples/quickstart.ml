(* Quickstart: wrap existing thread-safe structures, compose them in
   one atomic block, pick a design-space point per structure.

   Run with: dune exec examples/quickstart.exe *)

module S = Proust_structures

let () =
  (* A lazy Proustian map (snapshot shadow copies over a concurrent
     trie) and the §3 non-negative counter, wrapped eagerly.  Both use
     optimistic lock-allocator policies, so conflicts are detected by
     the STM through their conflict abstractions. *)
  let inventory : (string, int) S.P_lazy_triemap.t = S.P_lazy_triemap.make () in
  let total_items = S.P_counter.make ~observable:true () in

  (* One transaction touching both objects: either the item is added
     AND counted, or neither. *)
  let add_item name qty =
    Stm.atomically (fun txn ->
        (match S.P_lazy_triemap.put inventory txn name qty with
        | Some _ -> ()  (* restock: item already counted *)
        | None -> S.P_counter.incr total_items txn);
        S.P_lazy_triemap.size inventory txn)
  in

  let n = add_item "madeleine" 12 in
  let n' = add_item "tea" 3 in
  let _ = add_item "madeleine" 24 in

  Printf.printf "sizes seen: %d then %d\n" n n';
  Printf.printf "distinct items: %d\n" (S.P_counter.peek total_items);
  Stm.atomically (fun txn ->
      match S.P_lazy_triemap.get inventory txn "madeleine" with
      | Some qty -> Printf.printf "madeleines in stock: %d\n" qty
      | None -> print_endline "no madeleines!");

  (* The same wrapper, switched to a pessimistic LAP (boosting-style
     two-phase abstract locks) — one constructor argument. *)
  let boosted : (string, int) S.P_hashmap.t =
    S.P_hashmap.make ~lap:S.Trait.Pessimistic ()
  in
  Stm.atomically (fun txn -> ignore (S.P_hashmap.put boosted txn "swann" 1));
  Printf.printf "boosted map size: %d\n"
    (Stm.atomically (fun txn -> S.P_hashmap.size boosted txn))
