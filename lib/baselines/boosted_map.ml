(** Classic transactional boosting (Herlihy & Koskinen, PPoPP 2008) as
    a named preset: pessimistic abstract locks + eager updates with
    inverses.  In the Proust design space this is exactly the
    pessimistic/eager point, so the preset simply instantiates the
    eager wrapper with a pessimistic LAP. *)

type ('k, 'v) t = ('k, 'v) Proust_structures.P_hashmap.t

let make ?slots ?size_mode () =
  Proust_structures.P_hashmap.make ?slots ~lap:Proust_structures.Trait.Pessimistic
    ?size_mode ()

let get = Proust_structures.P_hashmap.get
let put = Proust_structures.P_hashmap.put
let remove = Proust_structures.P_hashmap.remove
let contains = Proust_structures.P_hashmap.contains
let size = Proust_structures.P_hashmap.size
let ops t =
  let o = Proust_structures.P_hashmap.ops t in
  {
    o with
    Proust_structures.Trait.Map.meta =
      { o.Proust_structures.Trait.Map.meta with name = "boosted" };
  }
