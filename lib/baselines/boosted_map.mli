(** Classic transactional boosting (Herlihy & Koskinen, PPoPP 2008) as
    a named preset: the pessimistic/eager point of the Proust design
    space, instantiated over the concurrent hash map. *)

type ('k, 'v) t = ('k, 'v) Proust_structures.P_hashmap.t

val make :
  ?slots:int -> ?size_mode:[ `Counter | `Transactional ] -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val ops : ('k, 'v) t -> ('k, 'v) Proust_structures.Trait.Map.ops
