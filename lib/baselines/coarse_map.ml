(** Sanity baseline: two-phase locking behind a single global
    read/write lock — the coarse conflict abstraction with a
    pessimistic LAP.  Every writer serializes; readers share. *)

type ('k, 'v) t = ('k, 'v) Proust_structures.P_hashmap.t

let make ?size_mode () =
  let ca = Conflict_abstraction.coarse () in
  let lap = Lock_allocator.pessimistic ~ca () in
  Proust_structures.P_hashmap.make_custom ~lap ?size_mode ()

let get = Proust_structures.P_hashmap.get
let put = Proust_structures.P_hashmap.put
let remove = Proust_structures.P_hashmap.remove
let contains = Proust_structures.P_hashmap.contains
let size = Proust_structures.P_hashmap.size
let ops t =
  let o = Proust_structures.P_hashmap.ops t in
  {
    o with
    Proust_structures.Trait.Map.meta =
      { o.Proust_structures.Trait.Map.meta with name = "coarse" };
  }
