(** Sanity baseline: two-phase locking behind a single global
    read/write lock — the coarse conflict abstraction with a
    pessimistic LAP.  Writers serialize; readers share. *)

type ('k, 'v) t = ('k, 'v) Proust_structures.P_hashmap.t

val make : ?size_mode:[ `Counter | `Transactional ] -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val ops : ('k, 'v) t -> ('k, 'v) Proust_structures.Trait.Map.ops
