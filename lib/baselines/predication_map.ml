(** Transactional predication (Bronson et al., PODC 2010) — the
    specialised competitor the paper is consistently outperformed by on
    raw map throughput (§7).

    A non-transactional concurrent map associates each key with a
    {e predicate}: one STM reference holding the key's value (or
    [None]).  Map operations become single STM reads/writes of the
    predicate, so the STM sees exactly one location per key and
    state modification is delegated to the STM itself — unlike Proust,
    which uses the STM only for synchronization (§2).

    Predicates are allocated on demand and never reclaimed; the paper
    sidesteps predicate GC the same way (§7). *)

type ('k, 'v) t = {
  preds : ('k, 'v option Tvar.t) Proust_concurrent.Chashmap.t;
  csize : Committed_size.t;
}

let make ?size_mode:(mode = `Counter) () =
  { preds = Proust_concurrent.Chashmap.create (); csize = Committed_size.create mode }

let predicate t k =
  match Proust_concurrent.Chashmap.get t.preds k with
  | Some tv -> tv
  | None -> (
      let fresh = Tvar.make None in
      match Proust_concurrent.Chashmap.put_if_absent t.preds k fresh with
      | Some existing -> existing
      | None -> fresh)

let get t txn k = Stm.read txn (predicate t k)
let contains t txn k = get t txn k <> None

let put t txn k v =
  let tv = predicate t k in
  let old = Stm.read txn tv in
  Stm.write txn tv (Some v);
  if old = None then Committed_size.add t.csize txn 1;
  old

let remove t txn k =
  let tv = predicate t k in
  let old = Stm.read txn tv in
  if old <> None then begin
    Stm.write txn tv None;
    Committed_size.add t.csize txn (-1)
  end;
  old

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : ('k, 'v) Proust_structures.Trait.Map.ops =
  {
    meta =
      Proust_structures.Trait.meta ~name:"predication"
        ~strategy:Update_strategy.Lazy ();
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
