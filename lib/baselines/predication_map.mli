(** Transactional predication (Bronson et al., PODC 2010) — the
    specialised competitor of §7: a non-transactional concurrent map
    associates each key with one STM reference holding its value;
    map operations become single STM accesses of that predicate.
    Predicates are allocated on demand and never reclaimed, as in the
    paper's evaluation setup. *)

type ('k, 'v) t

val make : ?size_mode:[ `Counter | `Transactional ] -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val ops : ('k, 'v) t -> ('k, 'v) Proust_structures.Trait.Map.ops
