(** The "traditional STM" map the paper benchmarks against: the whole
    structure lives in STM-managed memory, so conflict detection is the
    STM's plain read-set/write-set tracking.

    Buckets are tvars holding association lists: any two operations
    that hash to the same bucket conflict even on distinct keys — the
    false conflicts §1 attributes to read/write-set STMs.
    [track_size] additionally keeps the size in one tvar, serializing
    every insert/remove (off by default, as the throughput benchmark
    never calls [size]). *)

type ('k, 'v) t = {
  buckets : ('k * 'v) list Tvar.t array;
  hash : 'k -> int;
  size : int Tvar.t option;
}

let make ?(buckets = 1024) ?(hash = Hashtbl.hash) ?(track_size = false) () =
  {
    buckets = Array.init buckets (fun _ -> Tvar.make []);
    hash;
    size = (if track_size then Some (Tvar.make 0) else None);
  }

let bucket t k = t.buckets.(t.hash k land max_int mod Array.length t.buckets)

let bump t txn d =
  Option.iter (fun r -> Stm.Ref.modify txn r (fun n -> n + d)) t.size

let get t txn k = List.assoc_opt k (Stm.read txn (bucket t k))
let contains t txn k = get t txn k <> None

let put t txn k v =
  let b = bucket t k in
  let l = Stm.read txn b in
  let old = List.assoc_opt k l in
  Stm.write txn b ((k, v) :: List.remove_assoc k l);
  if old = None then bump t txn 1;
  old

let remove t txn k =
  let b = bucket t k in
  let l = Stm.read txn b in
  let old = List.assoc_opt k l in
  if old <> None then begin
    Stm.write txn b (List.remove_assoc k l);
    bump t txn (-1)
  end;
  old

let size t txn =
  match t.size with
  | Some r -> Stm.read txn r
  | None ->
      Array.fold_left (fun acc b -> acc + List.length (Stm.read txn b)) 0
        t.buckets

let ops t : ('k, 'v) Proust_structures.Trait.Map.ops =
  {
    meta =
      Proust_structures.Trait.meta ~name:"stm-hashmap"
        ~strategy:Update_strategy.Lazy ();
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
