(** The "traditional STM" map the paper benchmarks against: buckets of
    tvars managed wholly by the STM, so conflict detection is plain
    read/write-set tracking — including the false conflicts between
    distinct keys sharing a bucket that motivate Proust (§1).
    [track_size] keeps the size in one tvar, serializing every
    insert/remove. *)

type ('k, 'v) t

val make :
  ?buckets:int -> ?hash:('k -> int) -> ?track_size:bool -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool

(** O(buckets) scan unless [track_size] was set. *)
val size : ('k, 'v) t -> Stm.txn -> int

val ops : ('k, 'v) t -> ('k, 'v) Proust_structures.Trait.Map.ops
