type t = {
  m : Mutex.t;
  readers : (int, int) Hashtbl.t;  (* owner -> reentrancy count *)
  mutable writer : int option;
  mutable writer_depth : int;
}

let create () =
  { m = Mutex.create (); readers = Hashtbl.create 4; writer = None; writer_depth = 0 }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Deadlines are monotonic seconds, same time base as the STM's
   [Clock.now_mono]: an NTP step moving the wall clock must not fire
   (or indefinitely postpone) lock timeouts. *)
let now_mono () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Deadline-bounded acquisition polls rather than using condition
   variables: waiters are transactions that will abort on timeout, so
   the wait is short-lived by construction and a micro-sleep poll keeps
   the implementation obviously deadlock-free. *)
let poll_until ~deadline attempt =
  let rec loop () =
    if attempt () then true
    else if now_mono () > deadline then false
    else begin
      Unix.sleepf 20e-6;
      loop ()
    end
  in
  loop ()

let try_acquire_read t ~owner ~deadline =
  let attempt () =
    with_lock t (fun () ->
        match t.writer with
        | Some w when w <> owner -> false
        | _ ->
            let n = Option.value ~default:0 (Hashtbl.find_opt t.readers owner) in
            Hashtbl.replace t.readers owner (n + 1);
            true)
  in
  poll_until ~deadline attempt

let try_acquire_write t ~owner ~deadline =
  let attempt () =
    with_lock t (fun () ->
        let others_reading =
          Hashtbl.fold (fun o _ acc -> acc || o <> owner) t.readers false
        in
        match t.writer with
        | Some w when w <> owner -> false
        | _ when others_reading -> false
        | _ ->
            t.writer <- Some owner;
            t.writer_depth <- t.writer_depth + 1;
            true)
  in
  poll_until ~deadline attempt

let release_all t ~owner =
  with_lock t (fun () ->
      Hashtbl.remove t.readers owner;
      match t.writer with
      | Some w when w = owner ->
          t.writer <- None;
          t.writer_depth <- 0
      | _ -> ())

let reader_count t = with_lock t (fun () -> Hashtbl.length t.readers)
let writer t = with_lock t (fun () -> t.writer)

let holds t ~owner =
  with_lock t (fun () ->
      t.writer = Some owner || Hashtbl.mem t.readers owner)
