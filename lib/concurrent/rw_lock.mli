(** Reentrant read/write locks with deadline-bounded acquisition.

    These are the "standard re-entrant read-write locks" a pessimistic
    lock-allocator policy hands out (§2).  Owners are identified by an
    integer token (the Proust layer passes the transaction id), so a
    lock can be held across arbitrary domain scheduling and released by
    whichever code runs the owner's commit/abort handlers.

    Acquisition is deadline-bounded rather than blocking: transactional
    two-phase locking resolves deadlock by timing out and aborting the
    transaction, which then backs off and retries. *)

type t

val create : unit -> t

(** [try_acquire_read t ~owner ~deadline] acquires (or re-acquires) the
    lock in shared mode.  Succeeds immediately when [owner] already
    holds the write lock.  Returns [false] if the deadline — an
    absolute {e monotonic} time in seconds, same base as the STM's
    [Clock.now_mono] — passes first.  (Monotonic, not wall-clock: an
    NTP step must not fire or postpone lock timeouts.) *)
val try_acquire_read : t -> owner:int -> deadline:float -> bool

(** Exclusive-mode acquisition; supports upgrade when [owner] is the
    sole reader. *)
val try_acquire_write : t -> owner:int -> deadline:float -> bool

(** Release every hold [owner] has on this lock (both modes, all
    reentrant levels).  Safe to call when [owner] holds nothing. *)
val release_all : t -> owner:int -> unit

(** Diagnostics: number of distinct reader owners / current writer. *)
val reader_count : t -> int

val writer : t -> int option

(** [holds t ~owner] — does [owner] hold this lock in either mode?
    Used by the STM leak auditor. *)
val holds : t -> owner:int -> bool
