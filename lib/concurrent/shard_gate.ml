(* Key-sharded best-effort serial gates for hot-key mitigation.

   A gate is an array of single-owner slots; a transaction about to
   mutate a hot key tries to take the key's shard so that conflicting
   transactions serialize *before* burning optimistic attempts against
   each other.  Acquisition is strictly best effort: a bounded spin,
   then bypass — the caller proceeds without the shard and the STM's
   own conflict detection remains the sole correctness mechanism, so
   the gate can never deadlock or add a blocking edge.  Contended
   acquisitions bump a per-shard heat counter, which is both the
   observability story and the A/B evidence that a workload actually
   has hot shards. *)

type t = {
  slots : bool Atomic.t array;  (* true = held *)
  heat : int Atomic.t array;  (* failed-first-try count per shard *)
  bypasses : int Atomic.t;
  mask : int;
  spin : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 64) ?(spin = 512) () =
  let n = pow2_at_least (max 1 shards) 1 in
  {
    slots = Array.init n (fun _ -> Atomic.make false);
    heat = Array.init n (fun _ -> Atomic.make 0);
    bypasses = Atomic.make 0;
    mask = n - 1;
    spin;
  }

let shards t = t.mask + 1
let shard_of t hash = hash land t.mask

(* [true] = acquired (caller must [release]); [false] = bypassed after
   the spin budget.  One heat tick per contended call, not per spin. *)
let try_acquire t shard =
  let slot = t.slots.(shard) in
  if Atomic.compare_and_set slot false true then true
  else begin
    Atomic.incr t.heat.(shard);
    let rec spin budget =
      if budget = 0 then begin
        Atomic.incr t.bypasses;
        false
      end
      else if
        (not (Atomic.get slot)) && Atomic.compare_and_set slot false true
      then true
      else begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
    in
    spin t.spin
  end

let release t shard = Atomic.set t.slots.(shard) false
let heat t shard = Atomic.get t.heat.(shard)
let bypasses t = Atomic.get t.bypasses

let total_heat t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.heat

let hottest t =
  let best = ref 0 and best_heat = ref (-1) in
  Array.iteri
    (fun i c ->
      let h = Atomic.get c in
      if h > !best_heat then begin
        best := i;
        best_heat := h
      end)
    t.heat;
  (!best, max 0 !best_heat)
