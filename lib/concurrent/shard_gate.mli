(** Key-sharded best-effort serial gates for hot-key mitigation.

    Transactions about to mutate a hot key serialize through the key's
    shard instead of burning optimistic attempts against each other.
    Strictly best effort: bounded spin, then bypass — the STM's own
    conflict detection remains the sole correctness mechanism, so a
    gate can never deadlock.  Contended acquisitions are counted per
    shard ({!heat}), exhausted spins globally ({!bypasses}). *)

type t

(** [shards] is rounded up to a power of two; [spin] is the bounded
    spin budget (iterations) before a contended acquire bypasses. *)
val create : ?shards:int -> ?spin:int -> unit -> t

val shards : t -> int

(** Shard index for a key hash. *)
val shard_of : t -> int -> int

(** [true] = acquired (caller must {!release}); [false] = bypassed.
    Not reentrant — callers track what they already hold. *)
val try_acquire : t -> int -> bool

val release : t -> int -> unit

(** Contended-acquisition count for one shard / across all shards. *)
val heat : t -> int -> int

val total_heat : t -> int

(** [(shard, heat)] of the hottest shard. *)
val hottest : t -> int * int

(** Acquisitions that exhausted their spin budget and proceeded
    gateless. *)
val bypasses : t -> int
