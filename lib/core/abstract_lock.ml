type 'k t = { lap : 'k Lock_allocator.t; strategy : Update_strategy.t }

let make ~lap ~strategy = { lap; strategy }
let strategy t = t.strategy
let lap_kind t = t.lap.Lock_allocator.kind

(* Trace tap: one atomic load when tracing is off. *)
let obs_acquire txn intents =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    Proust_obs.Trace.emit
      ~tick:(Clock.now Clock.global)
      ~txn:(Stm.desc txn).Txn_desc.id
      (Proust_obs.Trace.Alock_acquire { intents = List.length intents })

let apply t txn intents ?inverse f =
  t.lap.Lock_allocator.acquire txn intents;
  obs_acquire txn intents;
  Stm.chaos_point txn Fault.Abstract_lock_acquire;
  let z = f () in
  (match (t.strategy, inverse) with
  | Update_strategy.Eager, Some inv -> Stm.on_abort txn (fun () -> inv z)
  | Update_strategy.Eager, None -> ()  (* read-only operation *)
  | Update_strategy.Lazy, _ -> ());
  z

let covers acquired intent =
  List.exists
    (fun held ->
      Intent.key held = Intent.key intent
      && (Intent.is_write held || not (Intent.is_write intent)))
    acquired

let acquire_stable t txn compute =
  let rec go acquired =
    let missing =
      List.filter (fun i -> not (covers acquired i)) (compute ())
    in
    if missing <> [] then begin
      t.lap.Lock_allocator.acquire txn missing;
      obs_acquire txn missing;
      Stm.chaos_point txn Fault.Abstract_lock_acquire;
      go (missing @ acquired)
    end
  in
  go []
