type kind = Optimistic | Pessimistic

type 'k t = {
  kind : kind;
  name : string;
  acquire : Stm.txn -> 'k Intent.t list -> unit;
}

(* -------------------------------------------------------------------- *)
(* Pessimistic: striped re-entrant read/write locks, two-phase.          *)

let pessimistic ?(timeout = 5e-3) ~ca () =
  let locks =
    Array.init ca.Conflict_abstraction.slots (fun _ ->
        Proust_concurrent.Rw_lock.create ())
  in
  (* Let the chaos harness audit this allocator's striped locks.  Only
     registered while auditing is on, so ordinary runs never grow the
     global checker list (each check is O(slots) per finished attempt). *)
  if Stm.leak_audit_enabled () then
    Stm.register_leak_check (fun ~owner ->
        let leaked = ref None in
        Array.iteri
          (fun slot l ->
            if !leaked = None && Proust_concurrent.Rw_lock.holds l ~owner then
              leaked := Some (Printf.sprintf "pessimistic rw-lock slot %d" slot))
          locks;
        !leaked);
  (* Per-transaction set of slot indices acquired, so commit/abort can
     release exactly once.  The key's initializer registers the release
     hooks on first acquisition in each transaction. *)
  let held_key =
    Stm.Local.key (fun txn ->
        let held : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        let owner = (Stm.desc txn).Txn_desc.id in
        let release () =
          Hashtbl.iter
            (fun slot () ->
              Proust_concurrent.Rw_lock.release_all locks.(slot) ~owner)
            held;
          if
            Hashtbl.length held > 0
            && Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0
          then
            Proust_obs.Trace.emit
              ~tick:(Clock.now Clock.global)
              ~txn:owner Proust_obs.Trace.Alock_release
        in
        Stm.after_commit txn release;
        Stm.on_abort txn release;
        held)
  in
  let acquire txn intents =
    let held = Stm.Local.get txn held_key in
    let owner = (Stm.desc txn).Txn_desc.id in
    let accesses = Conflict_abstraction.accesses_for ca ~stripe:owner intents in
    (* The acquisition deadline is monotonic ([Rw_lock] polls against
       the same base) and clamped by the episode's own QoS deadline, if
       any: a transaction whose time is nearly up should spend what is
       left of it failing fast, not queueing for its full [timeout]. *)
    let episode_deadline = Stm.deadline txn in
    List.iter
      (fun { Conflict_abstraction.slot; write } ->
        let deadline =
          let d = Clock.now_mono () +. timeout in
          match episode_deadline with
          | Some e -> Float.min d e
          | None -> d
        in
        let lock = locks.(slot) in
        let ok =
          if write then
            Proust_concurrent.Rw_lock.try_acquire_write lock ~owner ~deadline
          else
            Proust_concurrent.Rw_lock.try_acquire_read lock ~owner ~deadline
        in
        if ok then Hashtbl.replace held slot ()
        else begin
          (* Deadline expired: presume deadlock or livelock, abort and
             retry under backoff (the boosting recipe). *)
          Stats.record_lock_wait ();
          ignore (Stm.restart txn)
        end)
      accesses
  in
  { kind = Pessimistic; name = "pessimistic"; acquire }

(* -------------------------------------------------------------------- *)
(* Optimistic: conflict-abstraction slots are STM locations.             *)

let token = Atomic.make 1

let optimistic ?(validate_writes = true) ~ca () =
  let region =
    Array.init ca.Conflict_abstraction.slots (fun _ -> Tvar.make 0)
  in
  let acquire txn intents =
    let stripe = (Stm.desc txn).Txn_desc.id in
    let accesses = Conflict_abstraction.accesses_for ca ~stripe intents in
    List.iter
      (fun { Conflict_abstraction.slot; write } ->
        let tv = region.(slot) in
        if write then begin
          if validate_writes then ignore (Stm.read txn tv);
          Stm.write txn tv (Atomic.fetch_and_add token 1)
        end
        else ignore (Stm.read txn tv))
      accesses
  in
  let name =
    if validate_writes then "optimistic" else "optimistic-unvalidated"
  in
  { kind = Optimistic; name; acquire }
