type point = {
  lap : Lock_allocator.kind;
  strategy : Update_strategy.t;
}

let all_points =
  [
    { lap = Lock_allocator.Pessimistic; strategy = Update_strategy.Eager };
    { lap = Lock_allocator.Pessimistic; strategy = Update_strategy.Lazy };
    { lap = Lock_allocator.Optimistic; strategy = Update_strategy.Eager };
    { lap = Lock_allocator.Optimistic; strategy = Update_strategy.Lazy };
  ]

let point_name p =
  let lap =
    match p.lap with
    | Lock_allocator.Pessimistic -> "pessimistic"
    | Lock_allocator.Optimistic -> "optimistic"
  in
  Printf.sprintf "%s/%s" lap (Update_strategy.name p.strategy)

let prior_work p =
  match (p.lap, p.strategy) with
  | Lock_allocator.Pessimistic, Update_strategy.Eager ->
      "transactional boosting (Herlihy & Koskinen)"
  | Lock_allocator.Pessimistic, Update_strategy.Lazy ->
      "(novel in Proust)"
  | Lock_allocator.Optimistic, Update_strategy.Eager ->
      "optimistic transactional boosting (Hassan et al.)"
  | Lock_allocator.Optimistic, Update_strategy.Lazy ->
      "transactional predication (Bronson et al.)"

let compatible p (mode : Stm.mode) =
  match (p.lap, p.strategy, mode) with
  (* Pessimistic synchronization does not rely on the STM to detect
     object conflicts at all; opaque under any mode (Theorem 5.1). *)
  | Lock_allocator.Pessimistic, _, _ -> true
  (* Lazy/optimistic is opaque under any mode thanks to the
     write-CA/op/read-CA bracket around each operation (Theorem 5.3). *)
  | Lock_allocator.Optimistic, Update_strategy.Lazy, _ -> true
  (* Eager/optimistic mutates the shared base before commit; it is only
     opaque when the STM surfaces both conflict classes at encounter
     time (Theorem 5.2).  This is the figure's "empty quarter" under a
     fully lazy STM. *)
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Lazy_lazy -> false
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Serial_commit ->
      false
  (* Multi-version snapshots hide in-flight eager mutations from
     read-only transactions but detect object conflicts no earlier than
     lazy/lazy; encounter-time requirements remain unmet. *)
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Multi_version ->
      false
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Eager_lazy -> true
  | Lock_allocator.Optimistic, Update_strategy.Eager, Stm.Eager_eager -> true

let verdict p mode =
  if compatible p mode then "opaque"
  else "unsound (needs eager conflict detection)"

let pp_design_space fmt () =
  (* One column per STM mode, driven off [Stm.Mode.all] so new modes
     appear here without touching this table. *)
  let row fmt left mid cells =
    Format.fprintf fmt "%-20s | %-42s" left mid;
    List.iter (fun c -> Format.fprintf fmt " | %-13s" c) cells;
    Format.fprintf fmt "@."
  in
  row fmt "design point" "closest prior work"
    (List.map Stm.mode_name Stm.Mode.all);
  Format.fprintf fmt "%s@."
    (String.make (66 + (16 * List.length Stm.Mode.all)) '-');
  List.iter
    (fun p ->
      let cell mode = if compatible p mode then "opaque" else "UNSOUND" in
      row fmt (point_name p) (prior_work p) (List.map cell Stm.Mode.all))
    all_points
