(* Trace tap shared by both log flavours: replay runs inside the commit
   locked phase, so the transaction id is not in scope — 0 marks the
   event as structural rather than attributable. *)
let obs_replay ops =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    Proust_obs.Trace.emit
      ~tick:(Clock.now Clock.global)
      ~txn:0
      (Proust_obs.Trace.Replay_apply { ops })

(* Cross-transaction log combining (both modules below): when a replay
   finds itself running inside a combiner drain ([Stm.Combine.session]
   returns the drain's generation), it does not touch the base
   structure at all.  Instead it folds its net effect into a [shared]
   accumulator attached to the structure and registers — once per
   session — a flush with [Stm.Combine.defer_flush].  The combiner runs
   the flush after draining every entry and before releasing the serial
   gate, so one base pass publishes the whole batch's effects in
   linearization order.

   Soundness leans on the gate and on STM validation, not on the
   structure: the shared accumulator is only ever touched gate-held
   (replay hooks run in the commit locked phase, and a combine session
   exists only while the combiner owns the gate), and an
   acked-but-unflushed effect is invisible to later transactions
   because every conflict-abstraction stripe the effect covered was
   published with a version above any gate-free read snapshot — a later
   reader of the same stripe aborts at read or validation time before
   it could observe the stale base.  That argument needs the validated
   optimistic LAP; wrappers over pessimistic (or unvalidated) LAPs must
   not pass [shared] (see e.g. {!Memo_map.make}). *)

module Memo = struct
  type ('k, 'v) base = {
    base_get : 'k -> 'v option;
    base_put : 'k -> 'v -> unit;
    base_remove : 'k -> unit;
  }

  type ('k, 'v) op = Put of 'k * 'v | Remove of 'k

  (* Net effect on one key accumulated across a combine session:
     [p_rem] — some transaction removed the key before the (current)
     final binding was written, so the flush must replay the removal
     even when a binding follows; [p_put] — the last-write-wins final
     binding, [None] when the key ends the session absent. *)
  type 'v pending = { mutable p_rem : bool; mutable p_put : 'v option }

  type ('k, 'v) shared = {
    mutable sh_gen : int;  (* combine session the pending set belongs to *)
    sh_pending : ('k, 'v pending) Hashtbl.t;
  }

  let make_shared () = { sh_gen = 0; sh_pending = Hashtbl.create 32 }

  type ('k, 'v) t = {
    base : ('k, 'v) base;
    combine : bool;
    shared : ('k, 'v) shared option;
    (* Transaction-local view: for every key consulted or written, the
       value this transaction would observe.  Doubles as the synthetic
       final state when [combine] is set. *)
    view : ('k, 'v option) Hashtbl.t;
    (* Dirty keys, flagged [true] when a remove preceded the key's
       final put in this transaction — combined replay must then
       replay [base_remove; base_put] instead of an overwrite, for
       bases where removal is not subsumed by insertion. *)
    dirty : ('k, bool) Hashtbl.t;
    mutable ops : ('k, 'v) op list;  (* newest first *)
    mutable op_count : int;
    mutable registered : bool;
  }

  let create ?(combine = true) ?shared ~base _txn =
    {
      base;
      combine;
      shared = (if combine then shared else None);
      view = Hashtbl.create 16;
      dirty = Hashtbl.create 16;
      ops = [];
      op_count = 0;
      registered = false;
    }

  let get t k =
    match Hashtbl.find_opt t.view k with
    | Some v -> v
    | None ->
        let v = t.base.base_get k in
        Hashtbl.replace t.view k v;
        v

  (* Apply one dirty key's final state straight to the base. *)
  let apply_key t k rem_before_put =
    match Hashtbl.find_opt t.view k with
    | Some (Some v) ->
        if rem_before_put then t.base.base_remove k;
        t.base.base_put k v
    | Some None -> t.base.base_remove k
    | None -> ()

  let flush_shared t sh () =
    Hashtbl.iter
      (fun k p ->
        if p.p_rem then t.base.base_remove k;
        Option.iter (t.base.base_put k) p.p_put)
      sh.sh_pending;
    Hashtbl.reset sh.sh_pending

  (* Compose this transaction's per-key finals onto the session's
     pending set.  Last write wins on the binding; [p_rem] is sticky —
     once any transaction in the session removed the key, the flush
     replays the removal before whatever binding ends the session. *)
  let merge_into t sh =
    Hashtbl.iter
      (fun k rem_before_put ->
        let p =
          match Hashtbl.find_opt sh.sh_pending k with
          | Some p -> p
          | None ->
              let p = { p_rem = false; p_put = None } in
              Hashtbl.add sh.sh_pending k p;
              p
        in
        match Hashtbl.find_opt t.view k with
        | Some (Some v) ->
            p.p_put <- Some v;
            p.p_rem <- p.p_rem || rem_before_put
        | Some None ->
            p.p_rem <- true;
            p.p_put <- None
        | None -> ())
      t.dirty

  let replay t () =
    (* Chaos hook: replay runs post-linearization, so only delays. *)
    Fault.delay_only Fault.Replay_apply;
    obs_replay (if t.combine then Hashtbl.length t.dirty else t.op_count);
    let merged =
      match t.shared with
      | Some sh -> (
          match Stm.Combine.session () with
          | Some gen ->
              if sh.sh_gen <> gen then begin
                sh.sh_gen <- gen;
                (* Defensive: a failed flush may have left residue. *)
                Hashtbl.reset sh.sh_pending;
                Stm.Combine.defer_flush (flush_shared t sh)
              end;
              merge_into t sh;
              true
          | None -> false)
      | None -> false
    in
    if not merged then
      if t.combine then Hashtbl.iter (apply_key t) t.dirty
      else
        List.iter
          (function
            | Put (k, v) -> t.base.base_put k v
            | Remove k -> t.base.base_remove k)
          (List.rev t.ops)

  let ensure_registered t txn =
    if not t.registered then begin
      t.registered <- true;
      Stm.on_commit_locked txn (replay t)
    end

  let log t txn op =
    ensure_registered t txn;
    if not t.combine then begin
      t.ops <- op :: t.ops;
      t.op_count <- t.op_count + 1
    end

  let put t txn k v =
    let old = get t k in
    Hashtbl.replace t.view k (Some v);
    (* Preserve an existing remove-before-put flag; first touch is a
       plain overwrite. *)
    if not (Hashtbl.mem t.dirty k) then Hashtbl.replace t.dirty k false;
    log t txn (Put (k, v));
    old

  let remove t txn k =
    let old = get t k in
    if old <> None then begin
      Hashtbl.replace t.view k None;
      Hashtbl.replace t.dirty k true;
      log t txn (Remove k)
    end;
    old

  let size_delta t =
    Hashtbl.fold
      (fun k _flag acc ->
        let now = Option.join (Hashtbl.find_opt t.view k) in
        let before = t.base.base_get k in
        match (before, now) with
        | None, Some _ -> acc + 1
        | Some _, None -> acc - 1
        | _ -> acc)
      t.dirty 0

  let pending_ops t =
    if t.combine then Hashtbl.length t.dirty else t.op_count
end

module Snapshot = struct
  (* Merge thunks accumulated across a combine session, oldest last
     (newest first, like every log in this file); the flush reverses
     into batch linearization order. *)
  type 's shared = {
    mutable sn_gen : int;
    mutable sn_merges : ('s -> 's) list;
  }

  let make_shared () = { sn_gen = 0; sn_merges = [] }

  type 's t = {
    snapshot : unit -> 's;
    install : (expected:'s -> desired:'s -> bool) option;
    shared : 's shared option;
    mutable base_snapshot : 's option;  (* the state the shadow grew from *)
    mutable shadow : 's option;
    mutable replays : (unit -> unit) list;  (* newest first *)
    mutable merges : ('s -> 's) list;  (* newest first *)
    mutable op_count : int;
    mutable merge_count : int;
    mutable registered : bool;
  }

  let create ~snapshot ?install ?shared _txn =
    {
      snapshot;
      install;
      (* Session merging flushes through the install CAS; without one
         the log can never be batch-merged. *)
      shared = (match install with None -> None | Some _ -> shared);
      base_snapshot = None;
      shadow = None;
      replays = [];
      merges = [];
      op_count = 0;
      merge_count = 0;
      registered = false;
    }

  let read_only t ~shadow ~direct =
    match t.shadow with Some s -> shadow s | None -> direct ()

  (* An entry can join the session merge only when every one of its
     operations supplied a merge thunk: one state-independent op
     without one (a dequeue, say) pins the whole entry to the direct
     path, because its return value was computed against this
     transaction's own shadow and cannot be recomputed on the batch
     state. *)
  let mergeable t =
    (match t.install with Some _ -> true | None -> false)
    && t.op_count > 0
    && t.merge_count = t.op_count

  let flush_shared t sh () =
    match sh.sn_merges with
    | [] -> ()
    | ms -> (
        sh.sn_merges <- [];
        let ms = List.rev ms in
        match t.install with
        | None -> ()
        | Some install ->
            (* Under the serial gate no other committer mutates the
               base, so the CAS loop is one iteration in practice; the
               loop guards hypothetical non-transactional writers. *)
            let rec apply () =
              let expected = t.snapshot () in
              let desired = List.fold_left (fun s m -> m s) expected ms in
              if not (install ~expected ~desired) then apply ()
            in
            apply ())

  (* Log combining for snapshot replays (§9 future work): if the shared
     structure has not changed since the shadow was taken, install the
     shadow wholesale with one CAS; a failed CAS means commuting
     transactions committed in between, so fall back to replaying the
     per-operation log on top of their effects. *)
  let replay t () =
    Fault.delay_only Fault.Replay_apply;
    obs_replay t.op_count;
    let parked =
      match t.shared with
      | Some sh -> (
          match Stm.Combine.session () with
          | Some gen ->
              if mergeable t then begin
                if sh.sn_gen <> gen then begin
                  sh.sn_gen <- gen;
                  sh.sn_merges <- [];
                  Stm.Combine.defer_flush (flush_shared t sh)
                end;
                sh.sn_merges <- t.merges @ sh.sn_merges;
                true
              end
              else begin
                (* A non-mergeable entry linearizes after the parked
                   merges of the same session: land them first, then
                   replay directly (the wholesale CAS below then fails
                   against the freshly-flushed base and the entry falls
                   back to its per-operation log, which is correct). *)
                if sh.sn_gen = gen then flush_shared t sh ();
                false
              end
          | None -> false)
      | None -> false
    in
    if not parked then begin
      let combined =
        match (t.install, t.base_snapshot, t.shadow) with
        | Some install, Some expected, Some desired ->
            install ~expected ~desired
        | _ -> false
      in
      if not combined then List.iter (fun f -> f ()) (List.rev t.replays)
    end

  let update txn t ?merge f ~replay:r =
    let s =
      match t.shadow with
      | Some s -> s
      | None ->
          let s = t.snapshot () in
          t.base_snapshot <- Some s;
          s
    in
    let s', z = f s in
    t.shadow <- Some s';
    t.replays <- r :: t.replays;
    (match merge with
    | Some m ->
        t.merges <- m :: t.merges;
        t.merge_count <- t.merge_count + 1
    | None -> ());
    t.op_count <- t.op_count + 1;
    if not t.registered then begin
      t.registered <- true;
      Stm.on_commit_locked txn (replay t)
    end;
    z

  let pending_ops t = t.op_count
end
