(* Trace tap shared by both log flavours: replay runs inside the commit
   locked phase, so the transaction id is not in scope — 0 marks the
   event as structural rather than attributable. *)
let obs_replay ops =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    Proust_obs.Trace.emit
      ~tick:(Clock.now Clock.global)
      ~txn:0
      (Proust_obs.Trace.Replay_apply { ops })

module Memo = struct
  type ('k, 'v) base = {
    base_get : 'k -> 'v option;
    base_put : 'k -> 'v -> unit;
    base_remove : 'k -> unit;
  }

  type ('k, 'v) op = Put of 'k * 'v | Remove of 'k

  type ('k, 'v) t = {
    base : ('k, 'v) base;
    combine : bool;
    (* Transaction-local view: for every key consulted or written, the
       value this transaction would observe.  Doubles as the synthetic
       final state when [combine] is set. *)
    view : ('k, 'v option) Hashtbl.t;
    dirty : ('k, unit) Hashtbl.t;
    mutable ops : ('k, 'v) op list;  (* newest first *)
    mutable op_count : int;
    mutable registered : bool;
  }

  let create ?(combine = true) ~base _txn =
    {
      base;
      combine;
      view = Hashtbl.create 16;
      dirty = Hashtbl.create 16;
      ops = [];
      op_count = 0;
      registered = false;
    }

  let get t k =
    match Hashtbl.find_opt t.view k with
    | Some v -> v
    | None ->
        let v = t.base.base_get k in
        Hashtbl.replace t.view k v;
        v

  let replay t () =
    (* Chaos hook: replay runs post-linearization, so only delays. *)
    Fault.delay_only Fault.Replay_apply;
    obs_replay (if t.combine then Hashtbl.length t.dirty else t.op_count);
    if t.combine then
      Hashtbl.iter
        (fun k () ->
          match Hashtbl.find_opt t.view k with
          | Some (Some v) -> t.base.base_put k v
          | Some None -> t.base.base_remove k
          | None -> ())
        t.dirty
    else
      List.iter
        (function
          | Put (k, v) -> t.base.base_put k v
          | Remove k -> t.base.base_remove k)
        (List.rev t.ops)

  let ensure_registered t txn =
    if not t.registered then begin
      t.registered <- true;
      Stm.on_commit_locked txn (replay t)
    end

  let log t txn op k =
    ensure_registered t txn;
    Hashtbl.replace t.dirty k ();
    if not t.combine then begin
      t.ops <- op :: t.ops;
      t.op_count <- t.op_count + 1
    end

  let put t txn k v =
    let old = get t k in
    Hashtbl.replace t.view k (Some v);
    log t txn (Put (k, v)) k;
    old

  let remove t txn k =
    let old = get t k in
    if old <> None then begin
      Hashtbl.replace t.view k None;
      log t txn (Remove k) k
    end;
    old

  let size_delta t =
    Hashtbl.fold
      (fun k () acc ->
        let now = Option.join (Hashtbl.find_opt t.view k) in
        let before = t.base.base_get k in
        match (before, now) with
        | None, Some _ -> acc + 1
        | Some _, None -> acc - 1
        | _ -> acc)
      t.dirty 0

  let pending_ops t =
    if t.combine then Hashtbl.length t.dirty else t.op_count
end

module Snapshot = struct
  type 's t = {
    snapshot : unit -> 's;
    install : (expected:'s -> desired:'s -> bool) option;
    mutable base_snapshot : 's option;  (* the state the shadow grew from *)
    mutable shadow : 's option;
    mutable replays : (unit -> unit) list;  (* newest first *)
    mutable op_count : int;
    mutable registered : bool;
  }

  let create ~snapshot ?install _txn =
    {
      snapshot;
      install;
      base_snapshot = None;
      shadow = None;
      replays = [];
      op_count = 0;
      registered = false;
    }

  let read_only t ~shadow ~direct =
    match t.shadow with Some s -> shadow s | None -> direct ()

  (* Log combining for snapshot replays (§9 future work): if the shared
     structure has not changed since the shadow was taken, install the
     shadow wholesale with one CAS; a failed CAS means commuting
     transactions committed in between, so fall back to replaying the
     per-operation log on top of their effects. *)
  let replay t () =
    Fault.delay_only Fault.Replay_apply;
    obs_replay t.op_count;
    let combined =
      match (t.install, t.base_snapshot, t.shadow) with
      | Some install, Some expected, Some desired ->
          install ~expected ~desired
      | _ -> false
    in
    if not combined then List.iter (fun f -> f ()) (List.rev t.replays)

  let update txn t f ~replay:r =
    let s =
      match t.shadow with
      | Some s -> s
      | None ->
          let s = t.snapshot () in
          t.base_snapshot <- Some s;
          s
    in
    let s', z = f s in
    t.shadow <- Some s';
    t.replays <- r :: t.replays;
    t.op_count <- t.op_count + 1;
    if not t.registered then begin
      t.registered <- true;
      Stm.on_commit_locked txn (replay t)
    end;
    z

  let pending_ops t = t.op_count
end
