(** Replay wrappers and shadow copies (§4).

    Under the lazy update strategy, pending ADT operations are
    channelled into a per-transaction log.  Each operation's return
    value is computed at execution time against a {e shadow copy}; the
    log is applied to the shared base structure atomically when the
    transaction is known to commit (inside the STM's locked commit
    phase, via [Stm.on_commit_locked]), or dropped on abort.

    Two shadow-copy strategies are provided, matching the paper:

    - {!Memo}: memoized shadow copies, for structures whose operation
      results are computable from the initial backing state plus the
      pending operations on the same key (sets, maps).  Supports the
      paper's log-combining optimisation: replay only the final state
      of each abstract-state element instead of every logged operation.
    - {!Snapshot}: snapshot shadow copies, for structures offering
      fast point-in-time snapshots (the Ctrie, the COW priority
      queue).

    {2 Cross-transaction combining}

    Both flavours additionally support {e cross-transaction} log
    combining under the flat-combining group commit
    ([Stm.Combine]): a structure-level [shared] accumulator, created
    once with [make_shared] and passed to every per-transaction log,
    lets replays running inside one combiner drain merge their net
    effects and publish them in a single base pass just before the
    serial gate releases.  This is only sound for wrappers over the
    {e validated optimistic} LAP — deferred effects stay invisible
    because every covered conflict-abstraction stripe was published
    with a version no concurrent snapshot can validate against;
    pessimistic wrappers must not pass [shared]. *)

module Memo : sig
  (** Accessors onto the shared base structure.  [base_get] is used to
      fault unknown keys into the memo table; the other two replay the
      final state at commit. *)
  type ('k, 'v) base = {
    base_get : 'k -> 'v option;
    base_put : 'k -> 'v -> unit;
    base_remove : 'k -> unit;
  }

  type ('k, 'v) t

  (** Structure-level accumulator for cross-transaction combining: the
      per-key last-write-wins net effect of every transaction drained
      so far in the current combine session. *)
  type ('k, 'v) shared

  val make_shared : unit -> ('k, 'v) shared

  (** One log per transaction; create inside an [Stm.Local] key
      initializer.  [combine = false] replays every logged operation in
      order; [true] (the default) replays one synthetic update per
      dirty key — the optimisation evaluated at the bottom of the
      paper's Figure 4.  [shared] (only honoured with [combine])
      additionally merges the per-key finals across the transactions of
      one combiner drain; see the module preamble for the LAP
      soundness requirement. *)
  val create :
    ?combine:bool ->
    ?shared:('k, 'v) shared ->
    base:('k, 'v) base ->
    Stm.txn ->
    ('k, 'v) t

  (** Current value of [k] as seen by this transaction (pending
      operations included), faulting from the base on a miss. *)
  val get : ('k, 'v) t -> 'k -> 'v option

  (** [put t txn k v] logs the update and returns the previous binding
      as seen by this transaction. *)
  val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option

  (** [remove t txn k] logs the removal.  Combined replay preserves
      remove-then-put ordering per key: when a remove preceded the
      final put, the replay is [base_remove] followed by [base_put],
      not a bare overwrite. *)
  val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option

  (** Net change to the structure's cardinality from pending ops. *)
  val size_delta : ('k, 'v) t -> int

  (** Number of logged operations (diagnostics/tests). *)
  val pending_ops : ('k, 'v) t -> int
end

module Snapshot : sig
  (** A log over a shadow snapshot of type ['s].  The snapshot is taken
      lazily, at the first mutating operation ("readOnly provides an
      optimization to avoid initializing the log until it is known that
      a replay is actually necessary", Fig. 2b). *)
  type 's t

  (** Structure-level accumulator for cross-transaction combining: the
      merge thunks of every fully-mergeable transaction drained so far
      in the current combine session, flushed in linearization order
      through one install CAS. *)
  type 's shared

  val make_shared : unit -> 's shared

  (** [install] enables log combining for snapshot replays (§9 future
      work): at commit, if the shared structure still equals the state
      the shadow was taken from, the shadow is installed wholesale
      (e.g. one root CAS); otherwise the per-operation log replays on
      top of the commuting updates that landed in between.  [shared]
      (requires [install]) extends the combining across the
      transactions of one combiner drain; see the module preamble for
      the LAP soundness requirement. *)
  val create :
    snapshot:(unit -> 's) ->
    ?install:(expected:'s -> desired:'s -> bool) ->
    ?shared:'s shared ->
    Stm.txn ->
    's t

  (** [read_only t ~shadow ~direct] computes a result from the shadow
      copy when one exists, else straight from the base structure. *)
  val read_only : 's t -> shadow:('s -> 'z) -> direct:(unit -> 'z) -> 'z

  (** [update txn t f ?merge ~replay] applies [f] to the shadow copy,
      logs [replay] for commit-time application to the base, and
      returns [f]'s result.  [merge], when given, re-expresses the
      operation as a state transformer applicable to {e any} base
      state (an insert, say — not a dequeue, whose result depends on
      the state it ran against); an entry whose every operation carries
      one can be folded into the session's batch flush instead of
      replaying directly. *)
  val update :
    Stm.txn ->
    's t ->
    ?merge:('s -> 's) ->
    ('s -> 's * 'z) ->
    replay:(unit -> unit) ->
    'z

  val pending_ops : 's t -> int
end
