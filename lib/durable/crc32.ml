(* Standard reflected CRC-32: the state is kept bit-inverted between
   [update] calls (the usual trick), so [empty] is the final XOR of the
   zero-length message and chaining updates composes correctly. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let empty = 0l

let update crc buf ~pos ~len =
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let bytes buf ~pos ~len = update empty buf ~pos ~len
let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
