(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) for redo-log
    frame checksums.  Table-driven, allocation-free per byte. *)

(** [update crc buf ~pos ~len] folds [len] bytes of [buf] starting at
    [pos] into a running checksum.  Start from [empty]. *)
val update : int32 -> Bytes.t -> pos:int -> len:int -> int32

(** The checksum of zero bytes — the seed for [update] chains. *)
val empty : int32

(** [bytes buf ~pos ~len] is [update empty buf ~pos ~len]. *)
val bytes : Bytes.t -> pos:int -> len:int -> int32

val string : string -> int32
