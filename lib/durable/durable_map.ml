module Trait = Proust_structures.Trait

(* Intent payload: the operation sequence, Replay_log-memo style. *)
type ('k, 'v) op = Put of 'k * 'v | Remove of 'k

type ('k, 'v) buf = {
  mutable ops : ('k, 'v) op list;  (* reverse chronological *)
  mutable registered : bool;
}

type ('k, 'v) t = {
  base : ('k, 'v) Trait.Map.ops;
  log : Redo_log.t;
  fmt : Frame.format;
  on_commit : (lsn:int -> acked:bool -> unit) option;
  buf_key : ('k, 'v) buf Stm.Local.key;
}

let wrap ?on_commit ~fmt ~log base =
  {
    base;
    log;
    fmt;
    on_commit;
    buf_key = Stm.Local.key (fun _ -> { ops = []; registered = false });
  }

(* Value payload: last write wins per key; replay order across keys is
   immaterial because a single transaction's write set is applied
   atomically. *)
let net_effect ops =
  List.fold_left
    (fun acc op ->
      let k, v = match op with Put (k, v) -> (k, Some v) | Remove k -> (k, None) in
      (k, v) :: List.remove_assoc k acc)
    [] ops

let notify t ~lsn ~acked =
  match t.on_commit with None -> () | Some f -> f ~lsn ~acked

let track t txn op =
  let b = Stm.Local.get txn t.buf_key in
  b.ops <- op :: b.ops;
  if not b.registered then begin
    b.registered <- true;
    let deadline = Stm.deadline txn in
    Stm.on_commit_durable txn (fun lsn ->
        let ops = List.rev b.ops in
        let payload =
          match t.fmt with
          | Frame.Value -> Marshal.to_string (net_effect ops) []
          | Frame.Intent -> Marshal.to_string ops []
        in
        match Redo_log.append t.log ~fmt:t.fmt ~lsn payload with
        | None ->
            notify t ~lsn ~acked:false;
            None
        | Some ticket ->
            Some
              (fun () ->
                let acked = Redo_log.wait_durable ?deadline t.log ticket in
                notify t ~lsn ~acked))
  end

let ops t =
  let base = t.base in
  {
    base with
    Trait.Map.meta =
      {
        base.Trait.Map.meta with
        Trait.name =
          base.Trait.Map.meta.Trait.name ^ "+durable-"
          ^ Frame.format_name t.fmt;
      };
    put =
      (fun txn k v ->
        track t txn (Put (k, v));
        base.Trait.Map.put txn k v);
    remove =
      (fun txn k ->
        track t txn (Remove k);
        base.Trait.Map.remove txn k);
  }

let apply_record (base : _ Trait.Map.ops) txn (r : Frame.record) =
  match r.Frame.fmt with
  | Frame.Value ->
      List.iter
        (fun (k, vo) ->
          match vo with
          | Some v -> ignore (base.Trait.Map.put txn k v)
          | None -> ignore (base.Trait.Map.remove txn k))
        (Marshal.from_string r.Frame.payload 0 : _ list)
  | Frame.Intent ->
      List.iter
        (function
          | Put (k, v) -> ignore (base.Trait.Map.put txn k v)
          | Remove k -> ignore (base.Trait.Map.remove txn k))
        (Marshal.from_string r.Frame.payload 0 : _ op list)

let replay (report : Recovery.report) (base : _ Trait.Map.ops) =
  (match report.Recovery.snapshot with
  | None -> ()
  | Some s ->
      Stm.atomically (fun txn ->
          List.iter
            (fun (k, v) -> ignore (base.Trait.Map.put txn k v))
            (Marshal.from_string s 0 : _ list)));
  List.iter
    (fun r -> Stm.atomically (fun txn -> apply_record base txn r))
    report.Recovery.records

let snapshot_payload (bindings : ('k * 'v) list) = Marshal.to_string bindings []
