(** Durability wrapper for any {!Proust_structures.Trait.Map.ops}.

    [wrap] intercepts the mutating operations: the first one in a
    transaction registers an {!Stm.on_commit_durable} hook, which — in
    the commit locked phase, with the commit version as LSN — encodes
    the transaction's effect on this map and appends it to the redo
    log, then waits (after locks are released, bounded by the
    transaction's {!Stm.atomic} deadline) for the group-commit fsync.

    Two encodings, one interface:
    - [Frame.Value]: the net write set — the final [(key, value
      option)] per touched key.  Works for every structure.
    - [Frame.Intent]: the operation sequence in execution order, the
      {!Replay_log}-style intent encoding.  For lazy Proustian
      structures this is what the replay log already materializes, and
      it is measurably smaller whenever an operation's effect is
      cheaper to name than to state. *)

type ('k, 'v) t

(** [wrap ~fmt ~log base] layers durability over [base].  [on_commit]
    (optional) observes every durable commit with its LSN and whether
    the flush was acknowledged before return — the chaos harness's
    bookkeeping tap. *)
val wrap :
  ?on_commit:(lsn:int -> acked:bool -> unit) ->
  fmt:Frame.format ->
  log:Redo_log.t ->
  ('k, 'v) Proust_structures.Trait.Map.ops ->
  ('k, 'v) t

(** The wrapped trait record: mutating ops are logged, reads pass
    through. *)
val ops : ('k, 'v) t -> ('k, 'v) Proust_structures.Trait.Map.ops

(** [replay report base] reloads the snapshot (if any) and applies the
    surviving records to [base] in LSN order, one transaction per
    record.  Safe to run on a freshly-built empty [base]; running it on
    the result of a previous identical replay is a no-op state-wise
    (value records overwrite, intent records re-execute to the same
    bindings). *)
val replay :
  Recovery.report -> ('k, 'v) Proust_structures.Trait.Map.ops -> unit

(** [snapshot_payload bindings] encodes a full-state snapshot for
    {!Redo_log.compact} (the caller reads the bindings out under its
    own quiesced transaction). *)
val snapshot_payload : ('k * 'v) list -> string
