module Trait = Proust_structures.Trait
module Update_strategy = Proust_core.Update_strategy

type 'v pop = Insert of 'v | Remove_min

type 'v buf = {
  mutable pops : 'v pop list;  (* reverse chronological *)
  mutable final : 'v list;  (* the multiset version this txn installs *)
  mutable registered : bool;
}

type 'v t = {
  tv : 'v list Tvar.t;
  cmp : 'v -> 'v -> int;
  log : Redo_log.t;
  fmt : Frame.format;
  on_commit : (lsn:int -> acked:bool -> unit) option;
  buf_key : 'v buf Stm.Local.key;
}

let create ?on_commit ~fmt ~log ~cmp () =
  {
    tv = Tvar.make [];
    cmp;
    log;
    fmt;
    on_commit;
    buf_key =
      Stm.Local.key (fun _ -> { pops = []; final = []; registered = false });
  }

let notify t ~lsn ~acked =
  match t.on_commit with None -> () | Some f -> f ~lsn ~acked

let track t txn op final =
  let b = Stm.Local.get txn t.buf_key in
  b.pops <- op :: b.pops;
  b.final <- final;
  if not b.registered then begin
    b.registered <- true;
    let deadline = Stm.deadline txn in
    Stm.on_commit_durable txn (fun lsn ->
        let payload =
          match t.fmt with
          | Frame.Value ->
              (* The COW write set: the whole new multiset version. *)
              Marshal.to_string b.final []
          | Frame.Intent -> Marshal.to_string (List.rev b.pops) []
        in
        match Redo_log.append t.log ~fmt:t.fmt ~lsn payload with
        | None ->
            notify t ~lsn ~acked:false;
            None
        | Some ticket ->
            Some
              (fun () ->
                let acked = Redo_log.wait_durable ?deadline t.log ticket in
                notify t ~lsn ~acked))
  end

let rec insert_sorted cmp v = function
  | [] -> [ v ]
  | x :: rest when cmp v x <= 0 -> v :: x :: rest
  | x :: rest -> x :: insert_sorted cmp v rest

let insert t txn v =
  let l = Stm.read txn t.tv in
  let nl = insert_sorted t.cmp v l in
  Stm.write txn t.tv nl;
  track t txn (Insert v) nl

let remove_min t txn =
  match Stm.read txn t.tv with
  | [] -> None
  | x :: rest ->
      Stm.write txn t.tv rest;
      track t txn Remove_min rest;
      Some x

let min_ t txn =
  match Stm.read txn t.tv with [] -> None | x :: _ -> Some x

let contains t txn v = List.exists (fun y -> t.cmp y v = 0) (Stm.read txn t.tv)
let size t txn = List.length (Stm.read txn t.tv)

let ops t =
  {
    Trait.Pqueue.meta =
      Trait.meta
        ~name:("durable-cow-pqueue-" ^ Frame.format_name t.fmt)
        ~strategy:Update_strategy.Lazy ();
    insert = (fun txn v -> insert t txn v);
    remove_min = (fun txn -> remove_min t txn);
    min = (fun txn -> min_ t txn);
    contains = (fun txn v -> contains t txn v);
    size = (fun txn -> size t txn);
  }

let to_list t = Stm.atomically (fun txn -> Stm.read txn t.tv)

let apply_record t txn (r : Frame.record) =
  match r.Frame.fmt with
  | Frame.Value ->
      Stm.write txn t.tv (Marshal.from_string r.Frame.payload 0 : _ list)
  | Frame.Intent ->
      List.iter
        (function
          | Insert v ->
              Stm.write txn t.tv
                (insert_sorted t.cmp v (Stm.read txn t.tv))
          | Remove_min -> (
              match Stm.read txn t.tv with
              | [] -> ()
              | _ :: rest -> Stm.write txn t.tv rest))
        (Marshal.from_string r.Frame.payload 0 : _ pop list)

let replay (report : Recovery.report) t =
  (match report.Recovery.snapshot with
  | None -> ()
  | Some s ->
      Stm.atomically (fun txn ->
          Stm.write txn t.tv (Marshal.from_string s 0 : _ list)));
  List.iter
    (fun r -> Stm.atomically (fun txn -> apply_record t txn r))
    report.Recovery.records

let snapshot_payload t = Marshal.to_string (to_list t) []
