(** A durable copy-on-write priority queue — the structure where the
    value-log vs intent-log gap is widest.

    The queue is Proust's value-based COW shape reduced to its essence:
    the whole multiset lives in one tvar as a sorted list, and every
    mutation installs a fresh version.  A value-format record therefore
    marshals the {e entire} multiset per commit (that genuinely is the
    tvar write set), while an intent-format record marshals just the
    operations ([Insert x] / [Remove_min]) — constant-size per op.
    Bytes-per-commit between the two formats is the paper-motivated
    comparison `bench durability` reports. *)

type 'v t

(** [create ?on_commit ~fmt ~log ~cmp ()] builds an empty durable COW
    pqueue logging to [log] in format [fmt]. *)
val create :
  ?on_commit:(lsn:int -> acked:bool -> unit) ->
  fmt:Frame.format ->
  log:Redo_log.t ->
  cmp:('v -> 'v -> int) ->
  unit ->
  'v t

val ops : 'v t -> 'v Proust_structures.Trait.Pqueue.ops

(** Current multiset, smallest first (runs its own transaction). *)
val to_list : 'v t -> 'v list

(** [replay report t] reloads the snapshot and surviving records into
    [t] in LSN order.  Value records install the recorded multiset
    wholesale; intent records re-execute their operations. *)
val replay : Recovery.report -> 'v t -> unit

(** Full-state snapshot payload for {!Redo_log.compact}. *)
val snapshot_payload : 'v t -> string
