type format = Value | Intent

let format_name = function Value -> "value" | Intent -> "intent"

type record = { fmt : format; lsn : int; payload : string }

let file_header = "PROUST-REDO1"
let file_header_len = String.length file_header
let frame_magic = "PRRC"
let magic_len = 4

(* magic(4) fmt(1) lsn(8) len(4) payload crc(4); the CRC covers
   fmt..payload, i.e. everything after the magic and before itself. *)
let fixed_len = magic_len + 1 + 8 + 4
let trailer_len = 4

let fmt_tag = function Value -> '\000' | Intent -> '\001'

let fmt_of_tag = function
  | '\000' -> Some Value
  | '\001' -> Some Intent
  | _ -> None

let encode { fmt; lsn; payload } =
  let plen = String.length payload in
  let buf = Bytes.create (fixed_len + plen + trailer_len) in
  Bytes.blit_string frame_magic 0 buf 0 magic_len;
  Bytes.set buf magic_len (fmt_tag fmt);
  Bytes.set_int64_le buf (magic_len + 1) (Int64.of_int lsn);
  Bytes.set_int32_le buf (magic_len + 9) (Int32.of_int plen);
  Bytes.blit_string payload 0 buf fixed_len plen;
  let crc = Crc32.bytes buf ~pos:magic_len ~len:(1 + 8 + 4 + plen) in
  Bytes.set_int32_le buf (fixed_len + plen) crc;
  buf

type read_result = Record of record * int | Torn | Eof

let read buf ~pos =
  let total = Bytes.length buf in
  if pos >= total then Eof
  else if pos + fixed_len + trailer_len > total then Torn
  else if not (String.equal (Bytes.sub_string buf pos magic_len) frame_magic)
  then Torn
  else
    match fmt_of_tag (Bytes.get buf (pos + magic_len)) with
    | None -> Torn
    | Some fmt ->
        let lsn = Int64.to_int (Bytes.get_int64_le buf (pos + magic_len + 1)) in
        let plen = Int32.to_int (Bytes.get_int32_le buf (pos + magic_len + 9)) in
        if plen < 0 || pos + fixed_len + plen + trailer_len > total then Torn
        else
          let crc = Crc32.bytes buf ~pos:(pos + magic_len) ~len:(1 + 8 + 4 + plen) in
          let stored = Bytes.get_int32_le buf (pos + fixed_len + plen) in
          if not (Int32.equal crc stored) then Torn
          else
            let payload = Bytes.sub_string buf (pos + fixed_len) plen in
            Record ({ fmt; lsn; payload }, pos + fixed_len + plen + trailer_len)

let check_header buf =
  Bytes.length buf >= file_header_len
  && String.equal (Bytes.sub_string buf 0 file_header_len) file_header
