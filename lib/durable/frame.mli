(** On-disk framing for the redo log.

    A log file is a fixed header followed by records.  Each record is
    independently framed so recovery can detect exactly where a torn
    write begins:

    {v
    +-------+-----+---------+---------+---------+-------+
    | magic | fmt | lsn (8) | len (4) | payload | crc32 |
    +-------+-----+---------+---------+---------+-------+
    v}

    The CRC covers fmt, lsn, len and the payload — everything except
    the frame magic — so a frame whose tail was cut off by a crash
    fails its checksum rather than decoding as garbage. *)

(** Record payload encoding.  [Value] frames carry the committed write
    set's final values; [Intent] frames carry the Proustian operation
    sequence ({!Replay_log}-style) that produced them. *)
type format = Value | Intent

val format_name : format -> string

type record = { fmt : format; lsn : int; payload : string }

(** The file header every redo log starts with (magic + version). *)
val file_header : string

val file_header_len : int

(** [encode r] is the complete on-disk frame for [r]. *)
val encode : record -> Bytes.t

(** One scan step over a log image. *)
type read_result =
  | Record of record * int  (** decoded record and the next frame's offset *)
  | Torn  (** bytes remain but no complete, checksummed frame *)
  | Eof  (** clean end of log *)

(** [read buf ~pos] decodes the frame starting at [pos] in the full log
    image [buf] (header included; start scanning at
    [file_header_len]). *)
val read : Bytes.t -> pos:int -> read_result

(** [check_header buf] is true when [buf] begins with a valid redo-log
    file header. *)
val check_header : Bytes.t -> bool
