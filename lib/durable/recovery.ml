exception Corrupt_header of string

type report = {
  records : Frame.record list;
  last_lsn : int;
  truncated_tail : bool;
  snapshot : string option;
  snapshot_lsn : int;
}

let replayed_lsns r = List.map (fun rec_ -> rec_.Frame.lsn) r.records

let read_file path =
  if not (Sys.file_exists path) then Bytes.create 0
  else begin
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    let size = (Unix.fstat fd).Unix.st_size in
    let buf = Bytes.create size in
    let rec fill off =
      if off < size then
        match Unix.read fd buf off (size - off) with
        | 0 -> ()
        | n -> fill (off + n)
    in
    fill 0;
    Unix.close fd;
    buf
  end

(* The snapshot is one CRC frame behind its own header; a torn or
   corrupt snapshot is treated as absent (compaction renames it into
   place atomically, so a half-written snapshot can only be a stray
   [.tmp] that never made it). *)
let load_snapshot log_path =
  let buf = read_file (Redo_log.snap_path log_path) in
  let hlen = String.length Redo_log.snap_header in
  if
    Bytes.length buf < hlen
    || not (String.equal (Bytes.sub_string buf 0 hlen) Redo_log.snap_header)
  then (None, 0)
  else
    match Frame.read buf ~pos:hlen with
    | Frame.Record (r, _) -> (Some r.Frame.payload, r.Frame.lsn)
    | Frame.Torn | Frame.Eof -> (None, 0)

let run ?(truncate = true) path =
  let buf = read_file path in
  if Bytes.length buf > 0 && not (Frame.check_header buf) then
    raise (Corrupt_header path);
  let snapshot, snapshot_lsn = load_snapshot path in
  let records = ref [] in
  let torn = ref false in
  let good_end = ref (min (Bytes.length buf) Frame.file_header_len) in
  (* [buf] is now either empty (missing/fresh file) or starts with a
     full valid header, so scanning from the header end is safe. *)
  if Bytes.length buf >= Frame.file_header_len then begin
    let rec go pos =
      match Frame.read buf ~pos with
      | Frame.Record (r, next) ->
          records := r :: !records;
          good_end := next;
          go next
      | Frame.Torn -> torn := true
      | Frame.Eof -> ()
    in
    go Frame.file_header_len
  end;
  if !torn && truncate then begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd !good_end;
    Unix.close fd;
    Stats.record_torn_tail_truncation ()
  end;
  Stats.record_recovery ();
  let records =
    List.filter (fun r -> r.Frame.lsn > snapshot_lsn) !records
    |> List.sort (fun a b -> compare a.Frame.lsn b.Frame.lsn)
  in
  let last_lsn =
    List.fold_left (fun m r -> max m r.Frame.lsn) snapshot_lsn records
  in
  { records; last_lsn; truncated_tail = !torn; snapshot; snapshot_lsn }
