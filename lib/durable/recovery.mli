(** Crash recovery: scan a redo log (and its snapshot sibling), truncate
    the torn tail, and hand back the records to replay.

    The contract the chaos harness checks:
    - every record that was fsynced before the crash survives (the
      flusher publishes acknowledgements only after the fsync, so
      "acknowledged" implies "fsynced");
    - a partially-written frame is never decoded — the CRC rejects it —
      and with [truncate] (the default) it is physically cut off so a
      second recovery sees a clean log;
    - records at or below the snapshot's LSN are skipped, which makes
      recovery idempotent across a crash that interrupted compaction
      between the snapshot rename and the log rewrite;
    - running recovery twice in a row yields the same report. *)

(** The log file exists, is non-empty, and does not start with the redo
    header — someone else's file; refuse rather than truncate it. *)
exception Corrupt_header of string

type report = {
  records : Frame.record list;
      (** surviving records with LSN > [snapshot_lsn], sorted by LSN *)
  last_lsn : int;  (** highest surviving LSN, [snapshot_lsn] if none *)
  truncated_tail : bool;  (** a torn tail was found (and cut, if asked) *)
  snapshot : string option;  (** snapshot payload to reload first *)
  snapshot_lsn : int;  (** fold point of the snapshot, 0 if none *)
}

(** LSNs of [records] — what the harness intersects with its
    acknowledged set. *)
val replayed_lsns : report -> int list

(** [run path] scans the log at [path] (missing or empty file: an empty
    report).  [truncate] (default [true]) physically truncates a torn
    tail.  Bumps the [recoveries] (and, when a tail was torn,
    [torn_tail_truncations]) counters in {!Stats}. *)
val run : ?truncate:bool -> string -> report
