(* Group-commit redo log: producers buffer framed records under a
   mutex and signal a dedicated flusher domain, which takes the whole
   buffer, writes it in LSN order and fsyncs once per batch.  Producer
   waits are backoff polls on the [flushed] ticket watermark — stdlib
   [Condition] has no timed wait, and flush waits carry transaction
   deadlines. *)

let snap_path p = Filename.remove_extension p ^ ".snap"
let snap_header = "PROUST-SNAP1"

type t = {
  log_path : string;
  batch_delay : float;
  fsync_delay : float;
  buf_lock : Mutex.t;
  cond : Condition.t;
  mutable pending : (int * Bytes.t * int) list;  (* ticket, frame, lsn; LIFO *)
  mutable next_ticket : int;
  mutable stopping : bool;
  flushed : int Atomic.t;  (* every ticket <= this is on disk *)
  halted_flag : bool Atomic.t;
  io_lock : Mutex.t;  (* file writes: flusher batches vs. compaction *)
  mutable fd : Unix.file_descr;
  mutable flusher : unit Domain.t option;
  bytes_acc : int Atomic.t;
  appends_acc : int Atomic.t;
  mutable batch_sizes : int list;  (* flusher-private percentile window *)
}

let path t = t.log_path
let halted t = Atomic.get t.halted_flag
let bytes_appended t = Atomic.get t.bytes_acc
let appends t = Atomic.get t.appends_acc

let halt t =
  if not (Atomic.get t.halted_flag) then begin
    Atomic.set t.halted_flag true;
    Mutex.lock t.buf_lock;
    t.pending <- [];
    Condition.broadcast t.cond;
    Mutex.unlock t.buf_lock
  end

let write_all fd buf pos len =
  let off = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n -> sorted.(min (n - 1) (p * n / 100))

(* One flusher round: wait for work, linger for the group-commit
   window, take the whole buffer, write it LSN-sorted, fsync once. *)
let rec flusher_loop t =
  Mutex.lock t.buf_lock;
  while t.pending = [] && not t.stopping && not (Atomic.get t.halted_flag) do
    Condition.wait t.cond t.buf_lock
  done;
  let stop = (t.stopping && t.pending = []) || Atomic.get t.halted_flag in
  Mutex.unlock t.buf_lock;
  if not stop then begin
    if t.batch_delay > 0. then Unix.sleepf t.batch_delay;
    Mutex.lock t.buf_lock;
    let batch = t.pending in
    t.pending <- [];
    Mutex.unlock t.buf_lock;
    (match batch with
    | [] -> ()
    | batch ->
        let batch =
          List.sort (fun (_, _, l1) (_, _, l2) -> compare l1 l2) batch
        in
        let max_ticket =
          List.fold_left (fun m (tk, _, _) -> max m tk) 0 batch
        in
        let image =
          Bytes.concat Bytes.empty (List.map (fun (_, f, _) -> f) batch)
        in
        Mutex.lock t.io_lock;
        let crashed =
          match Fault.check Fault.Durable_mid_fsync with
          | Some Fault.Crash ->
              (* Power fails inside the batch write: a strict byte
                 prefix reaches the file, so the last frame of the
                 prefix is genuinely torn.  Everything already fsynced
                 (and hence acknowledged) is untouched. *)
              let cut = Bytes.length image - 1 in
              if cut > 0 then write_all t.fd image 0 cut;
              true
          | Some (Fault.Delay n) ->
              Fault.spin n;
              false
          | _ -> false
        in
        if crashed then begin
          Mutex.unlock t.io_lock;
          halt t
        end
        else begin
          write_all t.fd image 0 (Bytes.length image);
          (* Simulated device latency: spent inside the flush cycle, so
             appends arriving mid-sync wait for the next batch — the
             dynamic that makes real storage reward bigger batches. *)
          if t.fsync_delay > 0. then Unix.sleepf t.fsync_delay;
          Unix.fsync t.fd;
          Mutex.unlock t.io_lock;
          (* Publish after the fsync: a ticket is durable only once its
             whole batch is on disk. *)
          Atomic.set t.flushed max_ticket;
          Stats.record_fsync_batch ();
          t.batch_sizes <- List.length batch :: t.batch_sizes;
          (match t.batch_sizes with
          | sizes when List.length sizes > 1024 ->
              t.batch_sizes <- List.filteri (fun i _ -> i < 1024) sizes
          | _ -> ());
          let sorted = Array.of_list t.batch_sizes in
          Array.sort compare sorted;
          Stats.set_fsync_batch_percentiles ~p50:(percentile sorted 50)
            ~p99:(percentile sorted 99)
        end);
    flusher_loop t
  end

let create ?(batch_delay = 0.) ?(fsync_delay = 0.) ~path:log_path () =
  let fd =
    Unix.openfile log_path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size = 0 then begin
    let h = Bytes.of_string Frame.file_header in
    write_all fd h 0 (Bytes.length h);
    Unix.fsync fd
  end
  else begin
    let h = Bytes.create Frame.file_header_len in
    let n = Unix.read fd h 0 Frame.file_header_len in
    if n < Frame.file_header_len || not (Frame.check_header h) then begin
      Unix.close fd;
      invalid_arg (Printf.sprintf "Redo_log.create: %s is not a redo log" log_path)
    end
  end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let t =
    {
      log_path;
      batch_delay;
      fsync_delay;
      buf_lock = Mutex.create ();
      cond = Condition.create ();
      pending = [];
      next_ticket = 1;
      stopping = false;
      flushed = Atomic.make 0;
      halted_flag = Atomic.make false;
      io_lock = Mutex.create ();
      fd;
      flusher = None;
      bytes_acc = Atomic.make 0;
      appends_acc = Atomic.make 0;
      batch_sizes = [];
    }
  in
  t.flusher <- Some (Domain.spawn (fun () -> flusher_loop t));
  t

let append t ~fmt ~lsn payload =
  if Atomic.get t.halted_flag then None
  else
    match Fault.check Fault.Durable_pre_append with
    | Some Fault.Crash ->
        halt t;
        None
    | other -> (
        (match other with Some (Fault.Delay n) -> Fault.spin n | _ -> ());
        let frame = Frame.encode { Frame.fmt; lsn; payload } in
        Mutex.lock t.buf_lock;
        if Atomic.get t.halted_flag || t.stopping then begin
          Mutex.unlock t.buf_lock;
          None
        end
        else begin
          let ticket = t.next_ticket in
          t.next_ticket <- ticket + 1;
          t.pending <- (ticket, frame, lsn) :: t.pending;
          Condition.signal t.cond;
          Mutex.unlock t.buf_lock;
          ignore (Atomic.fetch_and_add t.bytes_acc (Bytes.length frame));
          ignore (Atomic.fetch_and_add t.appends_acc 1);
          Stats.record_log_append ();
          match Fault.check Fault.Durable_post_append with
          | Some Fault.Crash ->
              (* The record is buffered but unflushed: halting drops it,
                 which is exactly the appended-but-unacknowledged loss
                 this point exists to model. *)
              halt t;
              None
          | other ->
              (match other with
              | Some (Fault.Delay n) -> Fault.spin n
              | _ -> ());
              Some ticket
        end)

let wait_durable ?deadline t ticket =
  if Atomic.get t.flushed >= ticket then true
  else begin
    let b = Backoff.create ~ceiling:8 () in
    let until_ns =
      match deadline with
      | None -> 0
      | Some d -> int_of_float (d *. 1e9)
    in
    let rec loop () =
      if Atomic.get t.flushed >= ticket then true
      else if Atomic.get t.halted_flag then false
      else if
        match deadline with
        | Some d -> Clock.now_mono () >= d
        | None -> false
      then false
      else begin
        Backoff.once ~until_ns b;
        loop ()
      end
    in
    loop ()
  end

let flush t =
  let target =
    Mutex.lock t.buf_lock;
    let tk = t.next_ticket - 1 in
    Condition.signal t.cond;
    Mutex.unlock t.buf_lock;
    tk
  in
  if target > 0 then ignore (wait_durable t target)

let close t =
  flush t;
  Mutex.lock t.buf_lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.buf_lock;
  (match t.flusher with
  | Some d ->
      Domain.join d;
      t.flusher <- None
  | None -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ())

(* Scan the whole on-disk log, returning the records up to the first
   bad frame.  Compaction-private: recovery has its own scan with
   truncation and stats. *)
let scan_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.create size in
  let rec fill off =
    if off < size then
      match Unix.read fd buf off (size - off) with
      | 0 -> ()
      | n -> fill (off + n)
  in
  fill 0;
  Unix.close fd;
  if not (Frame.check_header buf) then []
  else
    let rec go pos acc =
      match Frame.read buf ~pos with
      | Frame.Record (r, next) -> go next (r :: acc)
      | Frame.Torn | Frame.Eof -> List.rev acc
    in
    go Frame.file_header_len []

let mid_compaction_crash t =
  match Fault.check Fault.Durable_mid_compaction with
  | Some Fault.Crash ->
      halt t;
      true
  | Some (Fault.Delay n) ->
      Fault.spin n;
      false
  | _ -> false

let write_file_atomic ~header ~frames path =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let h = Bytes.of_string header in
  write_all fd h 0 (Bytes.length h);
  List.iter (fun f -> write_all fd f 0 (Bytes.length f)) frames;
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path

let compact t ~snapshot ~upto_lsn =
  flush t;
  if not (Atomic.get t.halted_flag) then
    if not (mid_compaction_crash t) then begin
      (* Step 1: publish the snapshot.  Tmp-write + rename makes it
         atomic: recovery either sees the old snapshot or the new one,
         never a torn one.  The payload rides in an ordinary CRC frame
         whose LSN is the fold point. *)
      write_file_atomic ~header:snap_header
        ~frames:[ Frame.encode { Frame.fmt = Frame.Value; lsn = upto_lsn; payload = snapshot } ]
        (snap_path t.log_path);
      if not (mid_compaction_crash t) then begin
        (* Step 2: drop the folded prefix from the log.  A crash
           between the steps leaves the new snapshot plus the full log,
           which recovery handles by skipping records <= the snapshot
           LSN. *)
        (* The io lock covers the scan as well as the rewrite: a flusher
           batch landing between the two would be dropped by the
           rename.  Appends arriving meanwhile just buffer; the flusher
           re-reads [t.fd] under this lock, so they drain into the
           rewritten file. *)
        Mutex.lock t.io_lock;
        let keep =
          List.filter
            (fun r -> r.Frame.lsn > upto_lsn)
            (scan_file t.log_path)
        in
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        write_file_atomic ~header:Frame.file_header
          ~frames:(List.map Frame.encode keep)
          t.log_path;
        t.fd <- Unix.openfile t.log_path [ Unix.O_RDWR ] 0o644;
        ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
        Mutex.unlock t.io_lock
      end
    end
