(** The append-only redo log with group-commit fsync batching.

    The commit ladder's durability hooks feed this module: an append
    happens in the commit locked phase (so append order agrees with
    conflict order) and returns a {e ticket}; the flush wait — run by
    the ladder only after every lock and gate is released — blocks on
    that ticket until a dedicated flusher domain has written and
    fsynced the batch containing it.  Tickets order appends; LSNs
    (commit versions) order replay.  The two differ: non-conflicting
    transactions on different domains can append out of LSN order, and
    the flusher sorts each batch by LSN before writing so on-disk order
    is as close to replay order as batching allows.

    Crash injection: the {!Fault} durability points are consulted
    inside [append], the flusher's batch write, and [compact].  A drawn
    [Crash] {!halt}s the log — pending appends are dropped, subsequent
    appends are refused, flush waits return [false] — while the file
    keeps whatever had already been written, including (at
    [Durable_mid_fsync]) a deliberate byte-prefix of the in-flight
    batch that tears its last frame exactly as a power failure
    would. *)

type t

(** [create ~path ()] opens (or creates) the log at [path], validating
    or writing the file header, and starts the flusher domain.
    [batch_delay] seconds (default 0) makes the flusher linger after
    waking so concurrent committers accumulate into one fsync — the
    group-commit knob the durability bench sweeps.  [fsync_delay]
    seconds (default 0) simulates device latency: the flusher sleeps
    that long inside each flush cycle, after taking the buffer, so
    appends arriving mid-sync wait for the next batch — the dynamic
    that makes real storage reward bigger batches.  The combining
    bench uses it to model a disk whose sync round-trip dwarfs the
    in-memory commit path. *)
val create :
  ?batch_delay:float -> ?fsync_delay:float -> path:string -> unit -> t

val path : t -> string

(** [append t ~fmt ~lsn payload] frames and buffers one record, waking
    the flusher.  Returns the append ticket, or [None] when the log has
    halted (the record is dropped; the commit stays in memory but will
    not survive recovery). *)
val append : t -> fmt:Frame.format -> lsn:int -> string -> int option

(** [wait_durable t ?deadline ticket] blocks until the batch containing
    [ticket] is fsynced.  [deadline] is an absolute {!Clock.now_mono}
    point in seconds ({!Stm.atomic}-style); returns [false] on deadline
    expiry or when the log halts first. *)
val wait_durable : ?deadline:float -> t -> int -> bool

(** Drain and fsync everything currently buffered (no-op when halted). *)
val flush : t -> unit

(** Simulated power failure: drop pending appends, refuse new ones,
    fail all flush waits, stop the flusher.  Idempotent.  The file is
    left exactly as the flusher last wrote it. *)
val halt : t -> unit

val halted : t -> bool

(** [compact t ~snapshot ~upto_lsn] folds the log's prefix into a
    snapshot file: writes [snapshot] (an opaque payload the owning
    structure knows how to reload) tagged with [upto_lsn] to a
    temporary file, fsyncs, atomically renames it over [path]'s [.snap]
    sibling, then rewrites the log keeping only records with
    LSN > [upto_lsn].  The caller must quiesce committers first — no
    concurrent [append] may run.  Consults [Durable_mid_compaction]
    between the steps; a drawn [Crash] halts with either the old
    snapshot + full log or the new snapshot + untruncated log on disk,
    both of which recovery handles (records ≤ the snapshot LSN are
    skipped). *)
val compact : t -> snapshot:string -> upto_lsn:int -> unit

(** Stop the flusher (flushing what is buffered) and close the file. *)
val close : t -> unit

(** Framed bytes accepted by [append] since [create] (halted-dropped
    appends excluded); with the append count this gives the
    bytes-per-commit figure the durability bench reports. *)
val bytes_appended : t -> int

val appends : t -> int

(** The [.snap] sibling of a log path ([foo.redo] → [foo.snap]). *)
val snap_path : string -> string

(** Header written at the start of snapshot files. *)
val snap_header : string
