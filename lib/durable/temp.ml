let file ?(suffix = ".redo") () = Filename.temp_file "proust" suffix

let remove_if_exists p = try Sys.remove p with Sys_error _ -> ()

let cleanup path =
  let snap = Redo_log.snap_path path in
  List.iter remove_if_exists
    [ path; path ^ ".tmp"; snap; snap ^ ".tmp" ]

let with_file ?suffix f =
  let path = file ?suffix () in
  Fun.protect ~finally:(fun () -> cleanup path) (fun () -> f path)
