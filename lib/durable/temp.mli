(** The one temp-file helper for durability tests and benchmarks.

    Redo logs spawn sibling files ([.snap] snapshots and [.tmp]
    staging); ad-hoc [Filename.temp_file] calls leave those behind.
    Every bench/test log path should come from here so cleanup removes
    the whole family. *)

(** [file ?suffix ()] is a fresh path under the system temp directory
    (created empty, [Filename.temp_file]-style; default suffix
    [".redo"]). *)
val file : ?suffix:string -> unit -> string

(** [cleanup path] removes [path] and its derived siblings: the
    [.snap] snapshot and any [.tmp] staging leftovers.  Missing files
    are ignored. *)
val cleanup : string -> unit

(** [with_file ?suffix f] runs [f path] and always cleans up after. *)
val with_file : ?suffix:string -> (string -> 'a) -> 'a
