let trace_bit = 1
let metrics_bit = 2
let state = Atomic.make 0
let get () = Atomic.get state

let rec set bit ~on =
  let cur = Atomic.get state in
  let next = if on then cur lor bit else cur land lnot bit in
  if not (Atomic.compare_and_set state cur next) then set bit ~on
