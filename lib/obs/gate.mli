(** The master observability gate.

    Every instrumentation site in the STM and the Proust core is
    guarded by a single load of {!get}: when the returned word is [0]
    (nothing enabled), the site costs exactly that one atomic load and
    touches nothing else.  {!Trace} and {!Metrics} flip their own bit
    on enable/disable; sites test the bits they care about on the value
    they already loaded, so enabling tracing does not tax metrics-only
    sites and vice versa. *)

val trace_bit : int
val metrics_bit : int

(** Current gate word; [0] means all observability is off. *)
val get : unit -> int

val set : int -> on:bool -> unit
