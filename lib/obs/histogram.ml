(* 16 linear sub-buckets per power of two.  Values below 16 get exact
   unit buckets; a value v >= 16 with top bit at position [top] lands
   in block (top - 3), sub-bucket (v >> (top - 4)) land 15.  Blocks
   are laid out contiguously: index = block * 16 + sub. *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits

(* Top bit position can reach 61 on 63-bit ints we care about; block =
   top - sub_bits + 1 <= 58, so 59 blocks of 16 plus the unit block. *)
let n_buckets = 60 * sub_count

type t = {
  counts : int Atomic.t array;
  maxv : int Atomic.t;
}

let create () =
  { counts = Array.init n_buckets (fun _ -> Atomic.make 0); maxv = Atomic.make 0 }

let top_bit v =
  (* position of the most significant set bit; v > 0 *)
  let r = ref 0 in
  let v = ref v in
  if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_index v =
  if v < sub_count then max v 0
  else
    let top = top_bit v in
    let block = top - sub_bits + 1 in
    let sub = (v lsr (top - sub_bits)) land (sub_count - 1) in
    min ((block * sub_count) + sub) (n_buckets - 1)

let bucket_lower idx =
  let block = idx lsr sub_bits in
  let sub = idx land (sub_count - 1) in
  if block = 0 then sub else (sub_count + sub) lsl (block - 1)

let record t v =
  let v = max v 0 in
  Atomic.incr t.counts.(bucket_index v);
  let rec bump () =
    let cur = Atomic.get t.maxv in
    if v > cur && not (Atomic.compare_and_set t.maxv cur v) then bump ()
  in
  bump ()

let count t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts

let max_value t = Atomic.get t.maxv

let mean t =
  let total = ref 0 and sum = ref 0.0 in
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n > 0 then begin
        total := !total + n;
        let lo = bucket_lower i in
        let width = if i lsr sub_bits = 0 then 0 else 1 lsl ((i lsr sub_bits) - 1) in
        sum := !sum +. (float_of_int n *. (float_of_int lo +. (float_of_int width /. 2.0)))
      end)
    t.counts;
  if !total = 0 then 0.0 else !sum /. float_of_int !total

let percentile t p =
  let total = count t in
  if total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      min (max r 1) total
    in
    let seen = ref 0 in
    let result = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + Atomic.get c;
           if !seen >= rank then begin
             result := bucket_lower i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

let merge a b =
  let t = create () in
  Array.iteri
    (fun i c -> Atomic.set t.counts.(i) (Atomic.get c + Atomic.get b.counts.(i)))
    a.counts;
  Atomic.set t.maxv (max (Atomic.get a.maxv) (Atomic.get b.maxv));
  t

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.maxv 0

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    let n = Atomic.get t.counts.(i) in
    if n > 0 then acc := (bucket_lower i, n) :: !acc
  done;
  !acc

type summary = {
  count : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
  mean : float;
}

let summarize t =
  {
    count = count t;
    p50 = percentile t 50.0;
    p90 = percentile t 90.0;
    p99 = percentile t 99.0;
    p999 = percentile t 99.9;
    max = max_value t;
    mean = mean t;
  }

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("p50", Json.Int s.p50);
      ("p90", Json.Int s.p90);
      ("p99", Json.Int s.p99);
      ("p999", Json.Int s.p999);
      ("max", Json.Int s.max);
      ("mean", Json.Float s.mean);
    ]
