(** HDR-style log-bucketed concurrent histogram.

    Values (typically nanosecond durations) are bucketed by the
    position of their most significant bit with 16 linear sub-buckets
    per power of two, so relative error is bounded by 1/16 (~6%)
    across the whole [0, 2^62) range while the table stays under 1000
    atomic counters.  [record] is one atomic increment plus a handful
    of bit operations; histograms may be recorded into from any number
    of domains concurrently and merged pointwise afterwards. *)

type t

val create : unit -> t
val record : t -> int -> unit

(** Total recorded samples. *)
val count : t -> int

(** Largest value recorded, exactly (not bucket-rounded). *)
val max_value : t -> int

(** Bucket-midpoint approximation of the arithmetic mean. *)
val mean : t -> float

(** [percentile t p] for [p] in [0.0, 100.0]: the lower bound of the
    bucket containing the p-th percentile sample (0 when empty). *)
val percentile : t -> float -> int

(** Pointwise sum; inputs are unchanged.  Merge is associative and
    commutative (bucket counts simply add). *)
val merge : t -> t -> t

val reset : t -> unit

(** Raw (bucket lower bound, count) pairs for non-empty buckets. *)
val buckets : t -> (int * int) list

type summary = {
  count : int;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
  mean : float;
}

val summarize : t -> summary
val summary_to_json : summary -> Json.t

(** Exposed for tests: [bucket_index] and its inverse lower bound. *)
val bucket_index : int -> int

val bucket_lower : int -> int
