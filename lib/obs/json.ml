type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_str f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit ~indent ~level b t =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string b "\n" in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | String s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_char b '[';
      sep ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            sep ()
          end;
          pad (level + 1);
          emit ~indent ~level:(level + 1) b item)
        items;
      sep ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      sep ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            sep ()
          end;
          pad (level + 1);
          escape b k;
          Buffer.add_string b (if indent then ": " else ":");
          emit ~indent ~level:(level + 1) b v)
        fields;
      sep ();
      pad level;
      Buffer.add_char b '}'

let to_buffer ~indent t =
  let b = Buffer.create 4096 in
  emit ~indent ~level:0 b t;
  b

let to_string t = Buffer.contents (to_buffer ~indent:false t)
let to_string_pretty t = Buffer.contents (to_buffer ~indent:true t)
let output oc t = Buffer.output_buffer oc (to_buffer ~indent:false t)

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Buffer.output_buffer oc (to_buffer ~indent:true t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the string.                         *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "short \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Keep it simple: escapes below 0x80 decode exactly;
                 higher code points round-trip as '?' (we never emit
                 them). *)
              Buffer.add_char b
                (if code < 0x80 then Char.chr code else '?');
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("bad number: " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
