(** A minimal JSON representation: enough to emit the bench reports and
    Chrome traces, and to re-parse them in tests, without pulling a
    JSON package into the dependency cone. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Pretty-printed with two-space indentation (reports stay diffable). *)
val to_string_pretty : t -> string

val output : out_channel -> t -> unit
val write_file : string -> t -> unit

(** Strict parser for the subset we emit (no trailing garbage).
    Returns [Error msg] with a character offset on malformed input. *)
val parse : string -> (t, string) result

val member : string -> t -> t option
