type scope = {
  s_label : string;
  commit_h : Histogram.t;
  abort_retry_h : Histogram.t;
  lock_wait_h : Histogram.t;
  wakeup_h : Histogram.t;
  combine_h : Histogram.t;
  intended_h : Histogram.t;
  service_h : Histogram.t;
}

let table : (string, scope) Hashtbl.t = Hashtbl.create 8
let table_lock = Mutex.create ()

let scope_of label =
  Mutex.lock table_lock;
  let s =
    match Hashtbl.find_opt table label with
    | Some s -> s
    | None ->
        let s =
          {
            s_label = label;
            commit_h = Histogram.create ();
            abort_retry_h = Histogram.create ();
            lock_wait_h = Histogram.create ();
            wakeup_h = Histogram.create ();
            combine_h = Histogram.create ();
            intended_h = Histogram.create ();
            service_h = Histogram.create ();
          }
        in
        Hashtbl.add table label s;
        s
  in
  Mutex.unlock table_lock;
  s

(* Domain-local: current scope plus the in-flight timestamps.  The STM
   runs one root attempt per domain at a time, so per-domain stamps
   suffice; nested [atomically] joins the root and never re-stamps. *)
type ctx = {
  mutable scope : scope option;
  mutable label : string;
  mutable attempt_ns : int;
  mutable abort_ns : int;
}

let ctx_key : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { scope = None; label = "main"; attempt_ns = 0; abort_ns = 0 })

let my_scope ctx =
  match ctx.scope with
  | Some s -> s
  | None ->
      let s = scope_of ctx.label in
      ctx.scope <- Some s;
      s

let enable () = Gate.set Gate.metrics_bit ~on:true
let disable () = Gate.set Gate.metrics_bit ~on:false
let enabled () = Gate.get () land Gate.metrics_bit <> 0

let set_label label =
  let ctx = Domain.DLS.get ctx_key in
  ctx.label <- label;
  ctx.scope <- None;
  ctx.attempt_ns <- 0;
  ctx.abort_ns <- 0

let reset () =
  Mutex.lock table_lock;
  Hashtbl.reset table;
  Mutex.unlock table_lock

let reset_scope label =
  Mutex.lock table_lock;
  (match Hashtbl.find_opt table label with
  | Some s ->
      Histogram.reset s.commit_h;
      Histogram.reset s.abort_retry_h;
      Histogram.reset s.lock_wait_h;
      Histogram.reset s.wakeup_h;
      Histogram.reset s.combine_h;
      Histogram.reset s.intended_h;
      Histogram.reset s.service_h
  | None -> ());
  Mutex.unlock table_lock

type scope_summary = {
  label : string;
  commit : Histogram.summary;
  abort_to_retry : Histogram.summary;
  lock_wait : Histogram.summary;
  wakeup : Histogram.summary;
  combine_batch : Histogram.summary;
  intended : Histogram.summary;
  service : Histogram.summary;
}

let summarize (s : scope) =
  {
    label = s.s_label;
    commit = Histogram.summarize s.commit_h;
    abort_to_retry = Histogram.summarize s.abort_retry_h;
    lock_wait = Histogram.summarize s.lock_wait_h;
    wakeup = Histogram.summarize s.wakeup_h;
    combine_batch = Histogram.summarize s.combine_h;
    intended = Histogram.summarize s.intended_h;
    service = Histogram.summarize s.service_h;
  }

let read_scope label =
  Mutex.lock table_lock;
  let s = Hashtbl.find_opt table label in
  Mutex.unlock table_lock;
  Option.map summarize s

let scopes () =
  Mutex.lock table_lock;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) table [] in
  Mutex.unlock table_lock;
  List.map summarize
    (List.sort (fun a b -> compare a.s_label b.s_label) all)

let scope_summary_to_json (s : scope_summary) =
  Json.Obj
    [
      ("label", Json.String s.label);
      ("commit", Histogram.summary_to_json s.commit);
      ("abort_to_retry", Histogram.summary_to_json s.abort_to_retry);
      ("lock_wait", Histogram.summary_to_json s.lock_wait);
      ("wakeup", Histogram.summary_to_json s.wakeup);
      ("combine_batch", Histogram.summary_to_json s.combine_batch);
      ("intended", Histogram.summary_to_json s.intended);
      ("service", Histogram.summary_to_json s.service);
    ]

(* ------------------------------------------------------------------ *)
(* Named gauges                                                        *)

(* Last-write-wins integer gauges for slowly-changing control state
   (the QoS shedder publishes its admission state and abort-rate EWMA
   here).  Unlike the histograms these are not gated: writers are rare
   control-plane transitions, not hot-path STM sites. *)
let gauge_table : (string, int) Hashtbl.t = Hashtbl.create 8
let gauge_lock = Mutex.create ()

let set_gauge name v =
  Mutex.lock gauge_lock;
  Hashtbl.replace gauge_table name v;
  Mutex.unlock gauge_lock

let gauge name =
  Mutex.lock gauge_lock;
  let v = Hashtbl.find_opt gauge_table name in
  Mutex.unlock gauge_lock;
  v

let gauges () =
  Mutex.lock gauge_lock;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_table [] in
  Mutex.unlock gauge_lock;
  List.sort compare all

(* ------------------------------------------------------------------ *)
(* STM entry points                                                    *)

(* Each entry point re-checks the gate so it is a no-op when metrics
   are off even if called directly; the STM's sites test the gate
   before calling, so the disabled fast path never reaches here. *)

let on_attempt_start () =
  if enabled () then begin
    let ctx = Domain.DLS.get ctx_key in
    let now = Trace.now_ns () in
    if ctx.abort_ns > 0 then begin
      Histogram.record (my_scope ctx).abort_retry_h (now - ctx.abort_ns);
      ctx.abort_ns <- 0
    end;
    ctx.attempt_ns <- now
  end

let on_commit () =
  if enabled () then begin
    let ctx = Domain.DLS.get ctx_key in
    if ctx.attempt_ns > 0 then begin
      Histogram.record (my_scope ctx).commit_h
        (Trace.now_ns () - ctx.attempt_ns);
      ctx.attempt_ns <- 0
    end
  end

let on_abort () =
  if enabled () then begin
    let ctx = Domain.DLS.get ctx_key in
    ctx.abort_ns <- Trace.now_ns ();
    ctx.attempt_ns <- 0
  end

let add_lock_wait ns =
  if enabled () then
    let ctx = Domain.DLS.get ctx_key in
    Histogram.record (my_scope ctx).lock_wait_h ns

(* Parking wakeup latency: wake publication (the committer's stamp on
   the waiter, see Waitq.wake) to the parked domain's resume.  Recorded
   by the resuming domain, so it lands in that domain's scope. *)
let add_wakeup_latency ns =
  if enabled () && ns >= 0 then
    let ctx = Domain.DLS.get ctx_key in
    Histogram.record (my_scope ctx).wakeup_h ns

(* Flat-combining batch size: commits published per combiner drain,
   recorded by the combiner in its own scope.  A count, not a latency,
   but the log-bucketed histogram serves both; mean batch size is the
   summary's [mean]. *)
let add_combiner_batch n =
  if enabled () && n >= 1 then
    let ctx = Domain.DLS.get ctx_key in
    Histogram.record (my_scope ctx).combine_h n

(* Open-system (coordinated-omission-correct) latency pair, recorded by
   the open runner once per completed request.  [intended] measures
   from the request's scheduled arrival time — queueing delay a
   closed-loop harness would silently swallow stays in the number —
   while [service] measures from actual admission, so their divergence
   *is* the backlog.  Negative samples (clock skew) are dropped. *)
let add_intended_latency ns =
  if enabled () && ns >= 0 then
    let ctx = Domain.DLS.get ctx_key in
    Histogram.record (my_scope ctx).intended_h ns

let add_service_latency ns =
  if enabled () && ns >= 0 then
    let ctx = Domain.DLS.get ctx_key in
    Histogram.record (my_scope ctx).service_h ns
