(** Per-scope latency histograms.

    A {e scope} is a string label — the bench harness uses
    ["<impl>/<mode>"] — holding three log-bucketed histograms:

    - [commit]: attempt-start → successful commit, nanoseconds;
    - [abort_to_retry]: abort → next attempt start on the same domain
      (the backoff/contention-manager stall the paper's §7 abort
      analysis needs);
    - [lock_wait]: time spent inside a single bounded wait on a held
      version-lock, the serial commit gate, or the quiesce token;
    - [wakeup]: parking wakeup latency — a committer's wake
      publication on a parked [retry] waiter to that domain's actual
      resume (recorded by the resuming domain; timer expiries are not
      counted);
    - [combine_batch]: commits published per flat-combining drain (a
      count, not a latency — mean batch size is the summary's
      [mean]);
    - [intended]/[service]: open-system request latency from the
      request's {e intended} arrival time vs from actual admission —
      the coordinated-omission-correct pair fed by the open runner
      (one scope per tenant), not by the STM.

    The calling domain's current scope is domain-local state set with
    {!set_label}; histograms themselves are shared across domains and
    merged by label, so every worker benching the same implementation
    lands in one scope.  All entry points are no-ops (beyond the
    {!Gate} load their callers already did) while metrics are off. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Set the calling domain's scope label (default ["main"]). *)
val set_label : string -> unit

(** Drop all scopes and their histograms. *)
val reset : unit -> unit

(** Reset one scope's histograms, keeping the scope registered. *)
val reset_scope : string -> unit

type scope_summary = {
  label : string;
  commit : Histogram.summary;
  abort_to_retry : Histogram.summary;
  lock_wait : Histogram.summary;
  wakeup : Histogram.summary;
  combine_batch : Histogram.summary;
  intended : Histogram.summary;
      (** open-system request latency from {e intended} arrival time
          (coordinated-omission-correct: queueing delay included) *)
  service : Histogram.summary;
      (** open-system request latency from actual admission; the gap
          to [intended] is the backlog under overload *)
}

val read_scope : string -> scope_summary option
val scopes : unit -> scope_summary list
val scope_summary_to_json : scope_summary -> Json.t

(** {2 Named gauges}

    Last-write-wins integer gauges for slowly-changing control state
    (e.g. the QoS shedder's admission state and abort-rate EWMA in
    basis points).  Not gated by {!enabled}: writes are rare
    control-plane transitions, never hot-path STM sites. *)

val set_gauge : string -> int -> unit
val gauge : string -> int option

(** All gauges, sorted by name. *)
val gauges : unit -> (string * int) list

(** Instrumentation entry points (called from the STM). *)

val on_attempt_start : unit -> unit

val on_commit : unit -> unit
val on_abort : unit -> unit
val add_lock_wait : int -> unit

(** Record one parking wakeup latency (wake publication → resume),
    nanoseconds; negative samples are dropped. *)
val add_wakeup_latency : int -> unit

(** Record one flat-combining drain of [n] commits ([n < 1] dropped). *)
val add_combiner_batch : int -> unit

(** Record one open-system request latency measured from its intended
    arrival time, nanoseconds (negative samples dropped).  Recorded by
    the open runner, not the STM. *)
val add_intended_latency : int -> unit

(** Record one open-system request latency measured from actual
    admission (service start), nanoseconds. *)
val add_service_latency : int -> unit
