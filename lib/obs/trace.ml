type kind =
  | Attempt_start of { attempt : int }
  | Commit
  | Abort of { reason : string }
  | Lock_wait of { held_by : int }
  | Validate of { ok : bool }
  | Extend of { ok : bool }
  | Alock_acquire of { intents : int }
  | Alock_release
  | Replay_apply of { ops : int }
  | Cm_decide of { other : int; decision : string; manager : string }
  | Fallback of { token : int }

type event = { ns : int; tick : int; dom : int; txn : int; kind : kind }

let kind_name = function
  | Attempt_start _ -> "attempt"
  | Commit -> "commit"
  | Abort _ -> "abort"
  | Lock_wait _ -> "lock-wait"
  | Validate _ -> "validate"
  | Extend _ -> "extend"
  | Alock_acquire _ -> "alock-acquire"
  | Alock_release -> "alock-release"
  | Replay_apply _ -> "replay-apply"
  | Cm_decide _ -> "cm-decide"
  | Fallback _ -> "fallback"

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* ------------------------------------------------------------------ *)
(* Per-domain rings                                                    *)

let default_capacity = 1 lsl 16
let capacity = Atomic.make default_capacity

let dummy = { ns = 0; tick = 0; dom = -1; txn = 0; kind = Commit }

type ring = {
  r_dom : int;
  buf : event array;
  written : int Atomic.t;  (* monotone; the writer is the owning domain *)
}

let rings : ring list Atomic.t = Atomic.make []

let rec register r =
  let cur = Atomic.get rings in
  if not (Atomic.compare_and_set rings cur (r :: cur)) then register r

let my_ring : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_dom = (Domain.self () :> int);
          buf = Array.make (Atomic.get capacity) dummy;
          written = Atomic.make 0;
        }
      in
      register r;
      r)

let enabled () = Gate.get () land Gate.trace_bit <> 0

let clear () =
  List.iter
    (fun r ->
      Atomic.set r.written 0;
      Array.fill r.buf 0 (Array.length r.buf) dummy)
    (Atomic.get rings)

(* Rings allocated before a capacity change keep their old size;
   tracing sessions normally set capacity once, up front. *)
let enable ?capacity:(cap = default_capacity) () =
  Atomic.set capacity cap;
  clear ();
  Gate.set Gate.trace_bit ~on:true

let disable () = Gate.set Gate.trace_bit ~on:false

(* The gate check makes [emit] safe to call unconditionally; the STM's
   instrumentation sites still test the gate themselves so the disabled
   path stays at one atomic load without a call. *)
let emit ~tick ~txn kind =
  if enabled () then begin
    let r = Domain.DLS.get my_ring in
    let i = Atomic.fetch_and_add r.written 1 in
    r.buf.(i mod Array.length r.buf) <-
      { ns = now_ns (); tick; dom = r.r_dom; txn; kind }
  end

let per_ring_retained r =
  let w = Atomic.get r.written in
  let cap = Array.length r.buf in
  let n = min w cap in
  List.init n (fun i ->
      (* oldest-first: when wrapped, start after the write cursor *)
      let idx = if w <= cap then i else (w + i) mod cap in
      r.buf.(idx))

let events () =
  Atomic.get rings
  |> List.concat_map per_ring_retained
  |> List.filter (fun e -> e.dom >= 0)
  |> List.stable_sort (fun a b -> compare a.ns b.ns)

let emitted () =
  List.fold_left (fun acc r -> acc + Atomic.get r.written) 0 (Atomic.get rings)

let dropped () =
  List.fold_left
    (fun acc r -> acc + max 0 (Atomic.get r.written - Array.length r.buf))
    0 (Atomic.get rings)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let args_of = function
  | Attempt_start { attempt } -> [ ("attempt", Json.Int attempt) ]
  | Commit -> []
  | Abort { reason } -> [ ("reason", Json.String reason) ]
  | Lock_wait { held_by } -> [ ("held_by", Json.Int held_by) ]
  | Validate { ok } -> [ ("ok", Json.Bool ok) ]
  | Extend { ok } -> [ ("ok", Json.Bool ok) ]
  | Alock_acquire { intents } -> [ ("intents", Json.Int intents) ]
  | Alock_release -> []
  | Replay_apply { ops } -> [ ("ops", Json.Int ops) ]
  | Cm_decide { other; decision; manager } ->
      [
        ("other", Json.Int other);
        ("decision", Json.String decision);
        ("manager", Json.String manager);
      ]
  | Fallback { token } -> [ ("token", Json.Int token) ]

let to_chrome () =
  let evs = events () in
  let base = match evs with [] -> 0 | e :: _ -> e.ns in
  let us ns = Json.Float (float_of_int (ns - base) /. 1e3) in
  let common e name ph =
    [
      ("name", Json.String name);
      ("ph", Json.String ph);
      ("ts", us e.ns);
      ("pid", Json.Int 0);
      ("tid", Json.Int e.dom);
    ]
  in
  let full_args e =
    ("args", Json.Obj (("txn", Json.Int e.txn) :: ("tick", Json.Int e.tick) :: args_of e.kind))
  in
  let out = ref [] in
  let push j = out := j :: !out in
  (* Metadata: name each domain's track. *)
  let doms =
    List.sort_uniq compare (List.map (fun e -> e.dom) evs)
  in
  List.iter
    (fun d ->
      push
        (Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 0);
             ("tid", Json.Int d);
             ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain %d" d)) ]);
           ]))
    doms;
  (* Per-domain pass: pair Attempt_start with the next Commit/Abort on
     the same track into an "X" complete span; tie each Abort to the
     following Attempt_start with an s/f flow edge (the retry path). *)
  let flow_id = ref 0 in
  List.iter
    (fun d ->
      let track = List.filter (fun e -> e.dom = d) evs in
      let open_attempt = ref None in
      let pending_flow = ref None in
      List.iter
        (fun e ->
          match e.kind with
          | Attempt_start _ ->
              open_attempt := Some e;
              (match !pending_flow with
              | Some (id, _) ->
                  push
                    (Json.Obj
                       (common e "retry" "f"
                       @ [ ("id", Json.Int id); ("bp", Json.String "e") ]));
                  pending_flow := None
              | None -> ())
          | Commit | Abort _ ->
              let name, extra =
                match e.kind with
                | Abort { reason } -> ("attempt/" ^ reason, args_of e.kind)
                | _ -> ("attempt/commit", [])
              in
              (match !open_attempt with
              | Some s ->
                  push
                    (Json.Obj
                       (common s name "X"
                       @ [
                           ("dur", Json.Float (float_of_int (max 1 (e.ns - s.ns)) /. 1e3));
                           ( "args",
                             Json.Obj
                               (("txn", Json.Int s.txn)
                               :: ("tick", Json.Int s.tick)
                               :: extra) );
                         ]));
                  open_attempt := None
              | None -> push (Json.Obj (common e (kind_name e.kind) "i" @ [ full_args e ])));
              (match e.kind with
              | Abort _ ->
                  incr flow_id;
                  push
                    (Json.Obj
                       (common e "retry" "s" @ [ ("id", Json.Int !flow_id) ]));
                  pending_flow := Some (!flow_id, e)
              | _ -> ())
          | _ ->
              push
                (Json.Obj
                   (common e (kind_name e.kind) "i"
                   @ [ ("s", Json.String "t"); full_args e ])))
        track)
    doms;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("emitted", Json.Int (emitted ()));
            ("dropped", Json.Int (dropped ()));
          ] );
    ]

let dump_chrome oc = Json.output oc (to_chrome ())

let dump_chrome_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump_chrome oc)
