(** Low-overhead transaction tracing.

    Each domain records typed events into its own ring buffer (single
    writer, no locks, no allocation beyond the event itself); a full
    ring overwrites its oldest events and counts them as dropped, so
    tracing never blocks the traced workload.  Events are stamped with
    the caller-supplied STM {!Clock} tick and monotonic nanoseconds.

    When tracing is disabled the instrumentation sites throughout the
    STM cost a single atomic load (the {!Gate} word) and nothing
    else — the budget the overhead microbench enforces. *)

type kind =
  | Attempt_start of { attempt : int }
  | Commit
  | Abort of { reason : string }
  | Lock_wait of { held_by : int }
  | Validate of { ok : bool }
  | Extend of { ok : bool }
  | Alock_acquire of { intents : int }
  | Alock_release
  | Replay_apply of { ops : int }
  | Cm_decide of { other : int; decision : string; manager : string }
  | Fallback of { token : int }

type event = {
  ns : int;  (** monotonic nanoseconds *)
  tick : int;  (** STM global-clock value at emission *)
  dom : int;  (** recording domain *)
  txn : int;  (** transaction id, 0 when not attributable *)
  kind : kind;
}

val kind_name : kind -> string

(** Monotonic nanosecond clock shared by tracing and metrics. *)
val now_ns : unit -> int

val enabled : unit -> bool

(** [enable ()] clears previously retained events and opens the gate.
    [capacity] is the per-domain ring size (default 65536 events). *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val clear : unit -> unit

(** Record an event on the calling domain.  No-op when disabled (but
    callers are expected to check {!Gate.get} first). *)
val emit : tick:int -> txn:int -> kind -> unit

(** Events still retained in the rings, in timestamp order. *)
val events : unit -> event list

(** Total events emitted / overwritten-by-wraparound since [enable]. *)
val emitted : unit -> int

val dropped : unit -> int

(** Chrome [trace_event] JSON: one thread track per domain, attempts
    as complete ("X") spans, point events as instants, abort→retry
    edges as flow events.  Loadable in Perfetto / chrome://tracing. *)
val to_chrome : unit -> Json.t

val dump_chrome : out_channel -> unit
val dump_chrome_file : string -> unit
