let next_seed = Atomic.make 0x9e3779b9

type t = {
  mutable attempts : int;
  mutable ceiling : int;
  mutable sleep_after : int;
  mutable sleep : float;
  mutable slept_ns : int;
  rng : Random.State.t;
}

let create ?(ceiling = 14) ?(sleep_after = 6) ?(sleep = 1e-6) () =
  let seed =
    (Domain.self () :> int) lxor Atomic.fetch_and_add next_seed 0x61c88647
  in
  {
    attempts = 0;
    ceiling;
    sleep_after;
    sleep;
    slept_ns = 0;
    rng = Random.State.make [| seed |];
  }

(* Reconfiguring instead of recreating keeps the [Random.State]
   allocation (the expensive part of [create]) out of per-transaction
   paths: pooled backoffs are retuned to the episode's config and their
   contention history forgotten. *)
let reconfigure ?(ceiling = 14) ?(sleep_after = 6) ?(sleep = 1e-6) t =
  t.attempts <- 0;
  t.ceiling <- ceiling;
  t.sleep_after <- sleep_after;
  t.sleep <- sleep;
  t.slept_ns <- 0

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* When there are more runnable domains than cores, pure spinning can
   starve whichever domain holds the contended resource, so persistent
   contention degrades to a short OS sleep.  Sleep accounting rides on
   the monotonic clock ([Clock.now_mono_ns]) so a deadline-bounded
   caller can pass [until_ns] and never oversleep its deadline — and an
   NTP step cannot inflate the recorded stall. *)
let once ?(until_ns = 0) t =
  let e = min t.attempts t.ceiling in
  let window = 1 lsl e in
  spin (1 + Random.State.int t.rng window);
  t.attempts <- t.attempts + 1;
  if t.attempts > t.sleep_after then begin
    let d =
      if until_ns = 0 then t.sleep
      else
        (* Clamp the degraded sleep so it ends at the caller's
           monotonic deadline; a deadline already past sleeps 0. *)
        Float.min t.sleep
          (Float.max 0.0 (float_of_int (until_ns - Clock.now_mono_ns ()) *. 1e-9))
    in
    if d > 0.0 then begin
      let t0 = Clock.now_mono_ns () in
      Unix.sleepf d;
      t.slept_ns <- t.slept_ns + (Clock.now_mono_ns () - t0)
    end
  end

let reset t = t.attempts <- 0
let rounds t = t.attempts
let slept_ns t = t.slept_ns
