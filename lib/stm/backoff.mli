(** Bounded randomized exponential backoff for contended retry loops. *)

type t

(** [create ()] makes a fresh backoff state.  [ceiling] bounds the
    exponent of the spin window (default [14], i.e. at most [2^14]
    relaxation steps per round).  After [sleep_after] rounds (default
    [6]) each further round additionally sleeps for [sleep] seconds
    (default [1e-6]) so oversubscribed domains yield the core; chaos
    tests tighten both to keep hostile schedules hot. *)
val create : ?ceiling:int -> ?sleep_after:int -> ?sleep:float -> unit -> t

(** [reconfigure t] retunes an existing backoff to new knobs and forgets
    its contention history, without re-seeding the RNG.  Used by the
    descriptor pool to reuse one backoff across transaction attempts
    instead of paying [create]'s [Random.State] allocation each time. *)
val reconfigure : ?ceiling:int -> ?sleep_after:int -> ?sleep:float -> t -> unit

(** [once t] spins for a randomized duration that grows exponentially
    with the number of preceding [once] calls since the last [reset].
    [until_ns], when nonzero, is an absolute {!Clock.now_mono_ns}
    deadline: any degraded-mode OS sleep is clamped so it never runs
    past it (a deadline already in the past sleeps not at all). *)
val once : ?until_ns:int -> t -> unit

(** Forget accumulated contention history. *)
val reset : t -> unit

(** Number of [once] calls since the last reset. *)
val rounds : t -> int

(** Total monotonic nanoseconds spent in degraded-mode sleeps since the
    last {!reconfigure} (monotonic accounting: immune to clock steps). *)
val slept_ns : t -> int
