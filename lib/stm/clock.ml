type t = int Atomic.t

let create () = Atomic.make 0
let now t = Atomic.get t
let tick t = 1 + Atomic.fetch_and_add t 1
let global = create ()

(* ------------------------------------------------------------------ *)
(* Monotonic wall time                                                  *)

(* All deadline arithmetic in the system (transaction deadlines,
   rw-lock acquisition bounds, watchdog age checks) uses this clock,
   never [Unix.gettimeofday]: an NTP step would otherwise fire or
   stretch every pending deadline at once. *)

let now_mono_ns () = Proust_obs.Trace.now_ns ()
let now_mono () = float_of_int (now_mono_ns ()) *. 1e-9
