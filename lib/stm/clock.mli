(** Global version clock, in the style of TL2.

    Every committed read-write transaction advances the clock by one and
    stamps its write set with the new value.  Readers sample the clock at
    transaction start and use the sample to decide whether an observed
    location version is consistent with their snapshot. *)

type t

val create : unit -> t

(** [now t] is the current clock value.  Monotone, starts at [0]. *)
val now : t -> int

(** [tick t] atomically advances the clock and returns the new value.
    Each returned value is unique across all callers. *)
val tick : t -> int

(** The process-wide clock used by the default STM instance. *)
val global : t

(** {2 Monotonic wall time}

    Deadlines across the system (transaction deadlines, rw-lock
    acquisition bounds, watchdog age checks) are absolute points on
    this clock, never [Unix.gettimeofday]: an NTP step must not fire or
    stretch every pending deadline at once. *)

(** Monotonic nanoseconds since an arbitrary epoch. *)
val now_mono_ns : unit -> int

(** [now_mono ()] is {!now_mono_ns} in seconds. *)
val now_mono : unit -> float
