(* The attempt driver: commit/abort execution, the serial-irrevocable
   quiesce protocol, and the starvation-proof escalation ladder that
   [Stm.atomically] runs root transactions through. *)

open Txn_state

let run_hooks = Publisher.run_hooks

let do_abort t reason =
  ignore (Txn_desc.try_abort t.tdesc);
  Stats.record_abort ();
  (match reason with
  | Conflict -> Stats.record_conflict ()
  | Killed -> Stats.record_killed_abort ()
  | Explicit -> Stats.record_explicit_abort ()
  | Timed_out ->
      (* The per-attempt abort is counted above; the episode-level
         [timeouts] counter is bumped once by [Stm.atomic] when the
         whole episode resolves to [Timed_out]. *)
      ());
  obs_abort t reason;
  (* LIFO: inverses registered after an operation run before the
     abstract-lock releases registered when the lock was acquired. *)
  let hooks = t.abort_hooks in
  t.abort_hooks <- [];
  t.finished <- true;
  Fun.protect ~finally:(fun () -> release_locks t) (fun () -> run_hooks hooks)

(* ------------------------------------------------------------------ *)
(* Serial-irrevocable quiescing                                         *)

(* [quiesce] holds the token of the transaction currently running in
   serial-irrevocable fallback mode (0 = none).  While it is set, every
   other *writing* commit aborts itself instead of proceeding, so
   nothing can invalidate the fallback transaction's reads or contend
   for its write set; [writers_in_flight] lets the fallback drain the
   writers that passed the check before the token appeared.

   Ordering argument (OCaml atomics are SC): a writer increments
   [writers_in_flight] *before* loading [quiesce]; the fallback sets
   [quiesce] *before* loading [writers_in_flight].  If the writer's
   load saw 0 then its increment precedes the fallback's load, so the
   fallback waits for it; otherwise the writer aborts. *)
let quiesce = Atomic.make 0
let writers_in_flight = Atomic.make 0
let fallback_token = Atomic.make 1

let enter_writer_commit t =
  Atomic.incr writers_in_flight;
  if Atomic.get quiesce <> 0 && not t.tdesc.Txn_desc.irrevocable then begin
    Atomic.decr writers_in_flight;
    raise (Abort_exn Conflict)
  end

let exit_writer_commit () = Atomic.decr writers_in_flight

let acquire_quiesce ~backoff =
  let token = Atomic.fetch_and_add fallback_token 1 in
  while not (Atomic.compare_and_set quiesce 0 token) do
    Stats.record_lock_wait ();
    obs_wait ~txn:0 ~held_by:(Atomic.get quiesce) backoff
  done;
  while Atomic.get writers_in_flight > 0 do
    Domain.cpu_relax ()
  done;
  token

let release_quiesce token = ignore (Atomic.compare_and_set quiesce token 0)

(* ------------------------------------------------------------------ *)
(* Commit                                                               *)

(* Wake [retry] waiters parked on tvars this commit wrote.  Runs after
   the plan is published and every lock and gate is released (a woken
   domain re-reads immediately; waking under the locks would only
   convoy it), which still satisfies the no-lost-wakeup order: publish
   strictly precedes the wait-list detach (see Parking).  The fast
   path — nobody parked anywhere — is one atomic load.

   [Commit_wake] is the broken-waker chaos point: a [Kill]/[Crash]
   draw drops the wakeup entirely (safety is untouched — the commit is
   already published — but liveness now rests on waiter deadlines),
   which is the bug class the lost-wakeup regression suite must
   catch. *)
let wake_written t =
  if Parking.have_waiters () then begin
    match Fault.check Fault.Commit_wake with
    | Some (Fault.Kill | Fault.Crash) -> ()
    | draw ->
        (match draw with
        | Some (Fault.Delay n) -> Fault.spin n
        | Some (Fault.Abort | Fault.Wedge) -> Fault.spin 64
        | _ -> ());
        Rwset.Wlog.plan_iter_tv t.wset Parking.wake_tvar
  end

let do_commit t =
  check_alive t;
  chaos_point t Fault.Pre_commit;
  let has_writes = not (Rwset.Wlog.is_empty t.wset) in
  (* Phase 0: writing commits announce themselves so a concurrent
     serial-irrevocable fallback can drain or turn them away; this must
     precede any clock tick so that once the fallback has quiesced, no
     other transaction can advance the clock.  Grouped publications
     keep [writers_in_flight] held while parked on the publication
     list — the quiesce drain waits for them, and they always make
     progress (the combiner serves them, or they elect themselves). *)
  if has_writes then begin
    Rwset.Wlog.build_plan t.wset;
    enter_writer_commit t
  end;
  Fun.protect
    ~finally:(fun () -> if has_writes then exit_writer_commit ())
    (fun () ->
      (* Acquisition, validation, linearization and publication now
         live in the publication layer (inline or flat-combining group
         commit, per [proto.p_stage]); what comes back is the
         owner-side tail: the wake scan, the after-commit hooks, the
         durable flush waits, and any captured locked-phase hook
         failure — earliest failure wins and re-raises once hygiene is
         restored. *)
      let d = Publisher.publish t ~has_writes in
      if d.Publisher.pd_wrote then wake_written t;
      let failure = ref d.Publisher.pd_failure in
      (match run_hooks d.Publisher.pd_after with
      | () -> ()
      | exception e -> if !failure = None then failure := Some e);
      (match run_hooks d.Publisher.pd_waits with
      | () -> ()
      | exception e -> if !failure = None then failure := Some e);
      match !failure with None -> () | Some e -> raise e)

(* ------------------------------------------------------------------ *)
(* Retry blocking                                                       *)

(* Block until a watched tvar changes (or the episode deadline
   passes): real parking on the read set's wait lists, or the legacy
   busy-poll under [Parking.Poll].  A retry that read nothing can
   never be woken, which the ladder turns into [Retry_no_reads] before
   reaching here. *)
let wait_for_change ~deadline_ns watch = Parking.await ~deadline_ns watch

(* ------------------------------------------------------------------ *)
(* The escalation ladder                                                *)

(* Starvation-proof commit:

   1. attempts [1 .. abort_budget]: plain optimistic retries;
   2. attempts (abort_budget ..]: each retry additionally boosts the
      descriptor's priority, so karma-style contention managers start
      killing our adversaries, and the first attempt's birth timestamp
      is retained so age-based managers rank us as the elder;
   3. attempts (fallback_after ..] (when [serial_fallback]): take the
      global quiesce token, drain in-flight writing commits and re-run
      irrevocably — no remote kill, contention-manager defeat or
      injected fault can abort the attempt, so it commits and
      [Too_many_attempts] is unreachable under the default config. *)
let priority_boost = 1_000

(* QoS episode failures, raised between attempts (never mid-attempt —
   mid-attempt deadline hits surface as [Abort_exn Timed_out], unwind
   through the ordinary abort path, and are converted here at the next
   attempt boundary).  [Stm.atomic] translates both into outcomes. *)
exception Deadline_exceeded
exception Out_of_budget

let run ?(deadline_ns = 0) ?(attempt_budget = 0) cfg f =
  let proto = Protocol.select cfg.mode in
  let ep = begin_episode cfg in
  Fun.protect ~finally:end_episode @@ fun () ->
  let backoff = ep.ep_backoff in
  (* Attempt-boundary QoS gate: fail the episode before sinking work
     into an attempt it can no longer afford. *)
  let check_episode n =
    if attempt_budget > 0 && n > attempt_budget then raise Out_of_budget;
    if deadline_ns <> 0 && Clock.now_mono_ns () >= deadline_ns then
      raise Deadline_exceeded
  in
  (* End an attempt: audit external resources while the logs still
     exist, then scrub the record for the pool. *)
  let finish_attempt t =
    Domain.DLS.set current_txn None;
    maybe_audit t;
    retire t
  in
  (* Abort an attempt, guarding against abort hooks that raise: the
     locks are already released by [do_abort]'s own protect, but the
     pooled record must still be scrubbed before the hook's exception
     escapes the episode. *)
  let abort_and_scrub t reason =
    match do_abort t reason with
    | () -> ()
    | exception e ->
        maybe_audit t;
        retire t;
        raise e
  in
  (* Exception firewall for non-[Abort_exn] escapes out of [do_commit]
     (a raising commit hook, or chaos surfacing as an arbitrary
     exception): release everything, scrub the record, re-raise.  An
     attempt that already linearized ([t.finished]) must not run abort
     hooks — its effects are published; only the residue is cleaned. *)
  let commit_firewall t e =
    Domain.DLS.set current_txn None;
    if not t.finished then (try do_abort t Explicit with _ -> ());
    release_locks t;
    maybe_audit t;
    retire t;
    raise e
  in
  let rec attempt n ~priority ~birth =
    if n > cfg.max_attempts then raise (Too_many_attempts n);
    check_episode n;
    if cfg.serial_fallback && n > cfg.fallback_after then
      fallback_attempt n ~priority ~birth
    else begin
      let priority =
        if n > cfg.abort_budget then priority + priority_boost else priority
      in
      Stats.record_start ();
      let t = attempt_txn ep cfg ~proto ~priority ?birth ~deadline_ns () in
      obs_attempt_start t ~n;
      let birth = Some t.tdesc.Txn_desc.birth in
      Domain.DLS.set current_txn (Some t);
      let retry_after_abort ?watch reason =
        Domain.DLS.set current_txn None;
        abort_and_scrub t reason;
        let next_priority = t.tdesc.Txn_desc.priority in
        maybe_audit t;
        (match watch with
        | Some ws -> wait_for_change ~deadline_ns ws
        | None -> Backoff.once ~until_ns:deadline_ns backoff);
        retire t;
        attempt (n + 1) ~priority:next_priority ~birth
      in
      match f t with
      | result -> (
          match do_commit t with
          | () ->
              finish_attempt t;
              result
          | exception Abort_exn reason -> retry_after_abort reason
          | exception e -> commit_firewall t e)
      | exception Abort_exn reason -> retry_after_abort reason
      | exception Retry_exn ->
          let watch = read_watch_entries t in
          if watch = [] then begin
            (* An empty read set can never be woken: fail the episode
               with the typed error, with pool hygiene restored. *)
            Domain.DLS.set current_txn None;
            abort_and_scrub t Explicit;
            maybe_audit t;
            retire t;
            raise Retry_no_reads
          end;
          retry_after_abort ~watch Explicit
      | exception e ->
          (* A user exception observed in an inconsistent (zombie) state is
             an artifact of late conflict detection, not a real error:
             abort and re-run, as ScalaSTM does (§7).  In a consistent
             state, abort and propagate. *)
          Domain.DLS.set current_txn None;
          let consistent = Protocol.reads_valid t in
          abort_and_scrub t Explicit;
          let next_priority = t.tdesc.Txn_desc.priority in
          maybe_audit t;
          retire t;
          if consistent then raise e
          else begin
            Backoff.once ~until_ns:deadline_ns backoff;
            attempt (n + 1) ~priority:next_priority ~birth
          end
    end
  and fallback_attempt n ~priority ~birth =
    let token = acquire_quiesce ~backoff in
    Stats.record_fallback ();
    obs_fallback ~token;
    Fun.protect
      ~finally:(fun () ->
        release_quiesce token;
        if leak_audit_enabled () && Atomic.get quiesce = token then
          raise (Lock_leak "quiesce token survived its fallback episode"))
      (fun () ->
        (* Retries inside the episode keep the token: an abort here can
           only come from a bounded abstract-lock timeout against a
           pre-quiesce holder, which must itself drain shortly. *)
        let rec go n ~priority =
          if n > cfg.max_attempts then raise (Too_many_attempts n);
          check_episode n;
          Stats.record_start ();
          let t =
            attempt_txn ep cfg ~proto ~priority ?birth ~irrevocable:true
              ~deadline_ns ()
          in
          obs_attempt_start t ~n;
          Domain.DLS.set current_txn (Some t);
          let retry_irrevocable reason =
            Domain.DLS.set current_txn None;
            abort_and_scrub t reason;
            let next_priority = t.tdesc.Txn_desc.priority in
            maybe_audit t;
            retire t;
            Backoff.once ~until_ns:deadline_ns backoff;
            go (n + 1) ~priority:next_priority
          in
          match f t with
          | result -> (
              match do_commit t with
              | () ->
                  finish_attempt t;
                  result
              | exception Abort_exn reason -> retry_irrevocable reason
              | exception e -> commit_firewall t e)
          | exception Abort_exn reason -> retry_irrevocable reason
          | exception Retry_exn ->
              (* [retry] waits for another transaction to change the
                 read set, which can never happen while we quiesce the
                 writers: hand the token back, park, and re-enter the
                 ladder at the boosted rung. *)
              let watch = read_watch_entries t in
              Domain.DLS.set current_txn None;
              abort_and_scrub t Explicit;
              let next_priority = t.tdesc.Txn_desc.priority in
              let fallback_birth =
                Some (Option.value birth ~default:t.tdesc.Txn_desc.birth)
              in
              maybe_audit t;
              retire t;
              if watch = [] then raise Retry_no_reads;
              release_quiesce token;
              wait_for_change ~deadline_ns watch;
              attempt (n + 1) ~priority:next_priority ~birth:fallback_birth
          | exception e ->
              (* Irrevocable reads are consistent by construction, so a
                 user exception is a real error: abort and propagate. *)
              Domain.DLS.set current_txn None;
              abort_and_scrub t Explicit;
              maybe_audit t;
              retire t;
              raise e
        in
        go n ~priority)
  in
  attempt 1 ~priority:0 ~birth:None

(* ------------------------------------------------------------------ *)
(* The read-only snapshot path (Multi_version)                          *)

(* Run a root read-only transaction against a registered consistent
   snapshot.  Reads dispatch through [Protocol.read_only_proto]
   straight into the version chains: no read log, no validation, no
   locks — and, absent user exceptions or an armed watchdog, no
   aborts, no matter how write-heavy the concurrency.

   Snapshot adoption is the heart of the abort-free guarantee:

   1. Register this domain's snapshot slot with a clock sample BEFORE
      adopting the final timestamp.  A committing writer trims version
      chains after ticking the clock; if its floor scan missed our
      registration, our later sample is >= its commit version, so the
      head it installed already serves our reads — the trimmed tail
      was never ours to need.  If the scan saw us, it kept every
      version at or below our timestamp that we can reach.

   2. Adopt [rv] from a plain clock sample, then drain the serial
      commit gate once.  In-flight lock-mode commits need no global
      wait: a commit at or below [rv] still holds every written
      tvar's version-lock until its publish lands, and [read_ro]
      waits a held lock out before walking that tvar's chain — while
      a commit that takes a lock after our sample ticks strictly
      above [rv] and is invisible to the snapshot either way.
      Serial-gate commits hold no per-tvar locks, but hold the gate
      exclusively from before their tick to after their publish, so
      one free observation of the gate retires every serial commit
      the snapshot could see.  Hence every version <= rv is reachable
      and every read is of a committed, complete state: consistent by
      construction. *)
let run_read_only ?(deadline_ns = 0) ?(attempt_budget = 0) cfg f =
  (* Arm chain maintenance even if no read-write block selected
     Multi_version yet: snapshots need history to exist. *)
  Snapshots.ensure_armed ();
  let proto = Protocol.read_only_proto in
  let ep = begin_episode cfg in
  Fun.protect ~finally:end_episode @@ fun () ->
  let backoff = ep.ep_backoff in
  let check_episode n =
    if attempt_budget > 0 && n > attempt_budget then raise Out_of_budget;
    if deadline_ns <> 0 && Clock.now_mono_ns () >= deadline_ns then
      raise Deadline_exceeded
  in
  let settle_rv () =
    let v = Clock.now Clock.global in
    while not (Protocol.commit_gate_free ()) do
      if deadline_ns <> 0 && Clock.now_mono_ns () >= deadline_ns then
        raise Deadline_exceeded;
      Domain.cpu_relax ()
    done;
    v
  in
  let finish_attempt t =
    Domain.DLS.set current_txn None;
    maybe_audit t;
    retire t
  in
  let abort_and_scrub t reason =
    Domain.DLS.set current_txn None;
    (match do_abort t reason with
    | () -> ()
    | exception e ->
        maybe_audit t;
        retire t;
        raise e);
    maybe_audit t;
    retire t
  in
  let rec attempt n =
    if n > cfg.max_attempts then raise (Too_many_attempts n);
    check_episode n;
    Stats.record_start ();
    let t = attempt_txn ep cfg ~proto ~priority:0 ~deadline_ns ~ro:true () in
    obs_attempt_start t ~n;
    Snapshots.register (Clock.now Clock.global);
    (* Every branch below deregisters the snapshot slot first thing —
       spelled out instead of a [Fun.protect] to keep the per-attempt
       hot path allocation-free.  Deregistering before [do_commit] is
       fine: a read-only commit touches no version chain. *)
    let outcome =
      match
        t.rv <- settle_rv ();
        Domain.DLS.set current_txn (Some t);
        f t
      with
      | result -> (
          Snapshots.deregister ();
          Stats.add_ro_snapshot_reads t.ro_reads;
          match do_commit t with
          | () ->
              Stats.record_ro_commit ();
              finish_attempt t;
              `Done result
          | exception Abort_exn reason ->
              (* Unreachable from snapshot reads; only a remote kill
                 (armed watchdog) can land here.  Counted so the
                 abort-free gate sees any protocol regression. *)
              Stats.record_ro_abort ();
              abort_and_scrub t reason;
              `Retry
          | exception e ->
              Domain.DLS.set current_txn None;
              if not t.finished then (try do_abort t Explicit with _ -> ());
              release_locks t;
              maybe_audit t;
              retire t;
              raise e)
      | exception Abort_exn reason ->
          Snapshots.deregister ();
          Stats.record_ro_abort ();
          abort_and_scrub t reason;
          `Retry
      | exception Retry_exn ->
          (* Snapshot reads record no watch entries, so a [retry] here
             could never be woken: fail the episode typed, like an
             empty-read-set retry. *)
          Snapshots.deregister ();
          abort_and_scrub t Explicit;
          raise Retry_no_reads
      | exception e ->
          (* Snapshot reads are consistent by construction — there are
             no zombies to forgive; a user exception is a real error. *)
          Snapshots.deregister ();
          abort_and_scrub t Explicit;
          raise e
    in
    match outcome with
    | `Done r -> r
    | `Retry ->
        Backoff.once ~until_ns:deadline_ns backoff;
        attempt (n + 1)
  in
  attempt 1
