(** The attempt driver: commit/abort execution, the serial-irrevocable
    quiesce protocol, and the starvation-proof escalation ladder
    (plain retries → priority boost → serial-irrevocable fallback)
    that {!Stm.atomically} runs root transactions through. *)

(** Run one root atomic block to a committed result, retrying through
    the ladder.  Selects the commit protocol once, pools the attempt
    record via {!Txn_state.begin_episode}, and audits/retires every
    attempt. *)
val run : Txn_state.config -> (Txn_state.t -> 'a) -> 'a

(** Abort the attempt: record stats, run abort hooks (LIFO), release
    per-location locks.  Exposed for the façade's zombie-exception
    handling. *)
val do_abort : Txn_state.t -> Txn_state.abort_reason -> unit

(** Commit the attempt (exposed for tests that drive single attempts;
    [run] is the normal entry). *)
val do_commit : Txn_state.t -> unit
