(** The attempt driver: commit/abort execution, the serial-irrevocable
    quiesce protocol, and the starvation-proof escalation ladder
    (plain retries → priority boost → serial-irrevocable fallback)
    that {!Stm.atomically} runs root transactions through. *)

(** Episode-level QoS failures, raised only at attempt boundaries (a
    mid-attempt deadline hit aborts the attempt with
    [Abort_exn Timed_out] and is converted at the next boundary).
    {!Stm.atomic} translates both into outcome values; they only escape
    to user code through the façade's outcome-free entry points, which
    never set a deadline or budget. *)
exception Deadline_exceeded

exception Out_of_budget

(** Run one root atomic block to a committed result, retrying through
    the ladder.  Selects the commit protocol once, pools the attempt
    record via {!Txn_state.begin_episode}, and audits/retires every
    attempt.

    [deadline_ns] (absolute {!Clock.now_mono_ns}; 0 = none) bounds the
    episode: checked before every attempt, at validation, and inside
    lock-wait polls; backoff sleeps are clamped to it.
    [attempt_budget] (0 = unlimited) bounds the number of attempts the
    episode may start, independently of [cfg.max_attempts]. *)
val run :
  ?deadline_ns:int ->
  ?attempt_budget:int ->
  Txn_state.config ->
  (Txn_state.t -> 'a) ->
  'a

(** Run one root {e read-only} transaction against a consistent
    registered snapshot ({!Protocol.read_only_proto}): reads come from
    the tvar version chains at the snapshot timestamp, nothing is
    logged, validated or locked, and — absent user exceptions or an
    armed watchdog — the transaction never aborts regardless of
    concurrent writers.  Arms {!Snapshots} on entry.  [deadline_ns]
    and [attempt_budget] as in {!run}. *)
val run_read_only :
  ?deadline_ns:int ->
  ?attempt_budget:int ->
  Txn_state.config ->
  (Txn_state.t -> 'a) ->
  'a

(** Abort the attempt: record stats, run abort hooks (LIFO), release
    per-location locks.  Exposed for the façade's zombie-exception
    handling. *)
val do_abort : Txn_state.t -> Txn_state.abort_reason -> unit

(** Commit the attempt (exposed for tests that drive single attempts;
    [run] is the normal entry). *)
val do_commit : Txn_state.t -> unit
