type decision = Wait | Restart_self | Abort_other

type t = {
  name : string;
  decide : self:Txn_desc.t -> other:Txn_desc.t -> attempt:int -> decision;
}

let decision_name = function
  | Wait -> "wait"
  | Restart_self -> "restart-self"
  | Abort_other -> "abort-other"

(* Every manager's [decide] is wrapped so arbitration outcomes show up
   as trace events; with tracing off the wrapper adds one atomic load
   (the obs gate) per decision. *)
let observed name decide ~self ~other ~attempt =
  let d = decide ~self ~other ~attempt in
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    Proust_obs.Trace.emit
      ~tick:(Clock.now Clock.global)
      ~txn:self.Txn_desc.id
      (Proust_obs.Trace.Cm_decide
         {
           other = other.Txn_desc.id;
           decision = decision_name d;
           manager = name;
         });
  d

let make name decide = { name; decide = observed name decide }

let passive ?(patience = 8) () =
  make "passive" (fun ~self:_ ~other:_ ~attempt ->
      if attempt < patience then Wait else Restart_self)

let polite ?(patience = 16) () =
  make "polite" (fun ~self:_ ~other:_ ~attempt ->
      if attempt < patience then begin
        (* Unlike [passive], each successive wait doubles its courtesy
           window (capped) before re-attempting, so a polite loser
           spends exponentially longer out of the owner's way. *)
        for _ = 1 to 1 lsl min attempt 12 do
          Domain.cpu_relax ()
        done;
        Wait
      end
      else Restart_self)

let karma ?(patience = 4) () =
  make "karma" (fun ~self ~other ~attempt ->
      if self.Txn_desc.priority > other.Txn_desc.priority then
        if attempt < patience then Wait else Abort_other
      else if attempt < patience * 2 then Wait
      else Restart_self)

let timestamp () =
  make "timestamp" (fun ~self ~other ~attempt ->
      let older =
        self.Txn_desc.birth < other.Txn_desc.birth
        || (self.birth = other.birth && self.id < other.id)
      in
      if older then if attempt < 2 then Wait else Abort_other
      else if attempt < 8 then Wait
      else Restart_self)

let deadline_first ?(patience = 4) () =
  make "deadline-first" (fun ~self ~other ~attempt ->
      (* EDF arbitration: the transaction with the earlier absolute
         deadline wins; no deadline (0) ranks latest.  Ties fall back
         to age then id so the order is total and livelock-free. *)
      let key (d : Txn_desc.t) =
        if d.Txn_desc.deadline_ns = 0 then max_int else d.Txn_desc.deadline_ns
      in
      let sd = key self and od = key other in
      let winner =
        sd < od
        || (sd = od
           && (self.Txn_desc.birth < other.Txn_desc.birth
              || (self.Txn_desc.birth = other.Txn_desc.birth
                 && self.Txn_desc.id < other.Txn_desc.id)))
      in
      if winner then if attempt < patience then Wait else Abort_other
      else if attempt < patience * 2 then Wait
      else Restart_self)

let all () =
  [ passive (); polite (); karma (); timestamp (); deadline_first () ]
