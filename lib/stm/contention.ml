type decision = Wait | Restart_self | Abort_other

type t = {
  name : string;
  decide : self:Txn_desc.t -> other:Txn_desc.t -> attempt:int -> decision;
}

let passive ?(patience = 8) () =
  {
    name = "passive";
    decide =
      (fun ~self:_ ~other:_ ~attempt ->
        if attempt < patience then Wait else Restart_self);
  }

let polite ?(patience = 16) () =
  {
    name = "polite";
    decide =
      (fun ~self:_ ~other:_ ~attempt ->
        if attempt < patience then begin
          (* Unlike [passive], each successive wait doubles its courtesy
             window (capped) before re-attempting, so a polite loser
             spends exponentially longer out of the owner's way. *)
          for _ = 1 to 1 lsl min attempt 12 do
            Domain.cpu_relax ()
          done;
          Wait
        end
        else Restart_self);
  }

let karma ?(patience = 4) () =
  {
    name = "karma";
    decide =
      (fun ~self ~other ~attempt ->
        if self.Txn_desc.priority > other.Txn_desc.priority then
          if attempt < patience then Wait else Abort_other
        else if attempt < patience * 2 then Wait
        else Restart_self);
  }

let timestamp () =
  {
    name = "timestamp";
    decide =
      (fun ~self ~other ~attempt ->
        let older =
          self.Txn_desc.birth < other.Txn_desc.birth
          || (self.birth = other.birth && self.id < other.id)
        in
        if older then if attempt < 2 then Wait else Abort_other
        else if attempt < 8 then Wait
        else Restart_self);
  }

let all () = [ passive (); polite (); karma (); timestamp () ]
