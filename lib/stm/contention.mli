(** Contention managers.

    When transaction [self] finds a resource held by transaction
    [other], the contention manager arbitrates.  The paper's §7 notes
    that exposing the STM's contention management to Proustian objects
    matters in practice (their pessimistic runs livelocked without it);
    every policy here is also consulted by the abstract-lock layer. *)

type decision =
  | Wait  (** back off briefly and re-attempt the acquisition *)
  | Restart_self  (** abort this attempt and retry the atomic block *)
  | Abort_other  (** kill [other] remotely, then re-attempt *)

type t = {
  name : string;
  decide : self:Txn_desc.t -> other:Txn_desc.t -> attempt:int -> decision;
}

val decision_name : decision -> string

(** Always backs off, aborting itself after [patience] failed waits.
    Simple and livelock-prone under high contention; the default. *)
val passive : ?patience:int -> unit -> t

(** Waits with an exponentially growing courtesy window per failed
    attempt (spinning [2^attempt] relaxation steps, capped, before each
    [Wait]), then aborts itself after [patience] attempts. *)
val polite : ?patience:int -> unit -> t

(** Karma: the transaction that has performed more work wins; the
    poorer transaction waits, then aborts itself; a richer transaction
    kills the other after [patience] waits. *)
val karma : ?patience:int -> unit -> t

(** Greedy/timestamp: the older transaction wins unconditionally. *)
val timestamp : unit -> t

(** Earliest-deadline-first: the transaction whose {!Txn_desc} carries
    the earlier absolute deadline wins (no deadline ranks latest; ties
    break by age then id).  Pairs with [Stm.atomic ~deadline] so the
    transactions closest to timing out get the locks first. *)
val deadline_first : ?patience:int -> unit -> t

val all : unit -> t list
