type point =
  | Pre_commit
  | Post_lock_acquire
  | Mid_write_back
  | Pre_validate
  | Abstract_lock_acquire
  | Replay_apply
  | Durable_pre_append
  | Durable_post_append
  | Durable_mid_fsync
  | Durable_mid_compaction
  | Pre_park
  | Post_unpark
  | Commit_wake
  | Version_gc
  | Combine_handoff

let point_name = function
  | Pre_commit -> "pre-commit"
  | Post_lock_acquire -> "post-lock-acquire"
  | Mid_write_back -> "mid-write-back"
  | Pre_validate -> "pre-validate"
  | Abstract_lock_acquire -> "abstract-lock-acquire"
  | Replay_apply -> "replay-apply"
  | Durable_pre_append -> "durable-pre-append"
  | Durable_post_append -> "durable-post-append"
  | Durable_mid_fsync -> "durable-mid-fsync"
  | Durable_mid_compaction -> "durable-mid-compaction"
  | Pre_park -> "pre-park"
  | Post_unpark -> "post-unpark"
  | Commit_wake -> "commit-wake"
  | Version_gc -> "version-gc"
  | Combine_handoff -> "combine-handoff"

let all_points =
  [
    Pre_commit;
    Post_lock_acquire;
    Mid_write_back;
    Pre_validate;
    Abstract_lock_acquire;
    Replay_apply;
    Durable_pre_append;
    Durable_post_append;
    Durable_mid_fsync;
    Durable_mid_compaction;
    Pre_park;
    Post_unpark;
    Commit_wake;
    Version_gc;
    Combine_handoff;
  ]

let point_index = function
  | Pre_commit -> 0
  | Post_lock_acquire -> 1
  | Mid_write_back -> 2
  | Pre_validate -> 3
  | Abstract_lock_acquire -> 4
  | Replay_apply -> 5
  | Durable_pre_append -> 6
  | Durable_post_append -> 7
  | Durable_mid_fsync -> 8
  | Durable_mid_compaction -> 9
  | Pre_park -> 10
  | Post_unpark -> 11
  | Commit_wake -> 12
  | Version_gc -> 13
  | Combine_handoff -> 14

let n_points = 15

type action = Delay of int | Abort | Kill | Wedge | Crash
type site = { prob : float; actions : action list }

type policy = {
  generation : int;
  seed : int;
  sites : site option array;  (* indexed by point_index *)
}

let no_policy = { generation = 0; seed = 0; sites = Array.make n_points None }

(* [on] is the disabled-mode fast path: one atomic load per injection
   point.  [policy] only changes under [configure]/[disable]. *)
let on = Atomic.make false
let policy = Atomic.make no_policy

let configure ?(seed = 0xfa017) sites =
  let arr = Array.make n_points None in
  List.iter (fun (p, s) -> arr.(point_index p) <- Some s) sites;
  let prev = Atomic.get policy in
  Atomic.set policy { generation = prev.generation + 1; seed; sites = arr };
  Atomic.set on true

let uniform ?seed ?(prob = 0.05) ?(actions = [ Delay 200; Abort; Kill ]) points =
  configure ?seed (List.map (fun p -> (p, { prob; actions })) points)

let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* Per-domain PRNG, re-derived whenever the policy generation moves so
   a reconfiguration restarts every domain's schedule from the seed. *)
let dls_rng : (int * Random.State.t) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (0, Random.State.make [| 0 |]))

let domain_rng (p : policy) =
  let cell = Domain.DLS.get dls_rng in
  let gen, st = !cell in
  if gen = p.generation then st
  else begin
    let st =
      Random.State.make [| p.seed; (Domain.self () :> int); 0x9e3779b9 |]
    in
    cell := (p.generation, st);
    st
  end

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let check point =
  if not (Atomic.get on) then None
  else
    let p = Atomic.get policy in
    match p.sites.(point_index point) with
    | None -> None
    | Some { prob; actions } -> (
        let rng = domain_rng p in
        if Random.State.float rng 1.0 >= prob || actions = [] then None
        else
          let a = List.nth actions (Random.State.int rng (List.length actions)) in
          Stats.record_injected_fault ();
          match a with
          | Delay bound when bound > 1 ->
              Some (Delay (1 + Random.State.int rng bound))
          | a -> Some a)

let delay_only point =
  match check point with
  | None -> ()
  | Some (Delay n) -> spin n
  | Some (Abort | Kill | Wedge | Crash) ->
      (* Past the linearization point an abort would tear a committed
         transaction (and a wedge would stall it forever); serve the
         draw as a fixed delay instead.  Crash draws are only meaningful
         at the durability points, whose code consults [check]
         directly. *)
      spin 64
