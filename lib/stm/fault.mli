(** Deterministic fault injection ("chaos") for the STM substrate.

    The opacity arguments for the Proust design points (Theorems
    5.1–5.3) lean on every abort path restoring all tvar version-locks,
    abstract locks and replay state.  Those paths are rare under benign
    schedules, so this module lets tests force them: named injection
    points threaded through the STM and the Proust layers can raise
    spurious aborts, kill the running transaction mid-flight, or insert
    delay windows that widen races.

    Injection is off by default and the disabled fast path is a single
    atomic load per injection point.  When enabled, decisions are drawn
    from a per-domain PRNG derived from the configured seed and the
    domain id, so a given (seed, domain) pair replays the same fault
    schedule. *)

type point =
  | Pre_commit  (** entry of the commit protocol *)
  | Post_lock_acquire  (** just after a tvar version-lock is taken *)
  | Mid_write_back  (** between individual write-set publications *)
  | Pre_validate  (** after locking, before read-set validation *)
  | Abstract_lock_acquire  (** after a Proust abstract lock is taken *)
  | Replay_apply  (** inside a replay-log application *)
  | Durable_pre_append
      (** in {!Redo_log.append}, before the record enters the log's
          in-memory buffer — a crash here loses the record entirely *)
  | Durable_post_append
      (** after the record is buffered but before the flusher has
          written or fsynced it — a crash here loses an appended but
          unacknowledged record *)
  | Durable_mid_fsync
      (** inside the flusher's batch write, between frames — a crash
          here tears the log tail mid-frame *)
  | Durable_mid_compaction
      (** between the steps of snapshot+truncate compaction *)
  | Pre_park
      (** in {!Parking}, after a retrying transaction registered on its
          read-set wait lists and revalidated, just before blocking —
          a disruptive draw here is served as a forced spurious unpark
          (the waiter cancels itself and re-attempts), widening the
          register/park race window *)
  | Post_unpark
      (** after a parked waiter wakes, before it deregisters and
          re-attempts — the wake-to-revalidate window *)
  | Commit_wake
      (** in the commit path, before a writing commit scans the wait
          lists of its written tvars — a [Kill]/[Crash] draw {e drops
          the wakeup entirely} (the deliberately broken waker of the
          lost-wakeup regression suite); only deadline-bounded parks
          survive such a schedule *)
  | Version_gc
      (** in {!Tvar.publish} under the armed [Multi_version] mode,
          between reading the active-snapshot floor and installing the
          trimmed version chain — widens the reclamation race against
          a concurrently registering read-only snapshot (delay-only:
          the publisher is past its linearization point) *)
  | Combine_handoff
      (** in {!Publisher}'s flat-combining drain, drawn per batch entry
          just before the combiner claims the entry's slot — the window
          where a combiner failure could lose another domain's commit.
          [Kill]/[Crash] draws make the combiner abandon the rest of the
          batch (undrained entries are pushed back on the publication
          list and picked up by a self-electing waiter); already-claimed
          entries are always driven to a terminal outcome, so no acked
          commit is lost and no waiter is stranded *)

val point_name : point -> string
val all_points : point list

type action =
  | Delay of int  (** spin for up to this many relaxation steps *)
  | Abort  (** spurious conflict abort of the running transaction *)
  | Kill  (** remote-style kill: CAS own descriptor to [Aborted] *)
  | Wedge
      (** stall the transaction in place until some remote party kills
          it: the victim spins watching its own descriptor and only
          resumes (by raising its kill-abort) once the status word
          flips.  This is the deliberately-stuck transaction the QoS
          watchdog exists to unwedge — without a watchdog (or another
          killer) a wedged attempt never terminates. *)
  | Crash
      (** power-failure simulation at a durability point: the redo log
          halts in place (pending appends are dropped, nothing further
          is written or acknowledged) while the process lives on so the
          harness can recover from the surviving file.  At non-durable
          points {!Txn_state.chaos_point} serves a drawn [Crash] as a
          [Kill]. *)

(** Per-point policy: with probability [prob], draw one of [actions]
    uniformly. *)
type site = { prob : float; actions : action list }

(** [configure ?seed policy] replaces the active policy and enables
    injection.  Points absent from [policy] never fire. *)
val configure : ?seed:int -> (point * site) list -> unit

(** [uniform ?seed ?prob ?actions points] is [configure] with the same
    site at every listed point. *)
val uniform : ?seed:int -> ?prob:float -> ?actions:action list -> point list -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [check p] draws an injection decision for point [p]; [None] when
    disabled, not configured for [p], or the dice say no.  Every
    [Some _] is counted in {!Stats} ([injected_faults]). *)
val check : point -> action option

(** [delay_only p] is [check p] restricted to its disruption-free
    component: any drawn action is served as a bounded spin.  Used at
    points past the transaction's linearization point, where an abort
    would (incorrectly) tear a committed transaction. *)
val delay_only : point -> unit

(** Busy-wait helper for serving [Delay] actions at the call site. *)
val spin : int -> unit
