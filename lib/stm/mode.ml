(* The single mode authority.  Every consumer — [Txn_state.config],
   [Protocol.select], the bench CLIs, the test matrices and the
   [PROUST_MODE] default — enumerates or parses conflict-detection
   modes through this module, so adding a mode is one variant here
   plus the compiler-forced match fixes; no hand-maintained list
   anywhere else can go stale. *)

type t =
  | Lazy_lazy
  | Eager_lazy
  | Eager_eager
  | Serial_commit
  | Multi_version

let all = [ Lazy_lazy; Eager_lazy; Eager_eager; Serial_commit; Multi_version ]

let to_string = function
  | Lazy_lazy -> "lazy-lazy"
  | Eager_lazy -> "eager-lazy"
  | Eager_eager -> "eager-eager"
  | Serial_commit -> "serial-commit"
  | Multi_version -> "multi-version"

let of_string_opt s =
  List.find_opt (fun m -> String.equal (to_string m) s) all

let of_string s =
  match of_string_opt s with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown mode: %s (known: %s)" s
           (String.concat ", " (List.map to_string all)))

let names () = List.map to_string all

(* The process default, consulted once at startup to seed the default
   config.  An unparsable [PROUST_MODE] fails loudly: silently falling
   back would run a whole bench sweep under the wrong mode. *)
let from_env () =
  match Sys.getenv_opt "PROUST_MODE" with
  | None | Some "" -> Lazy_lazy
  | Some s -> of_string s
