(** The single source of truth for STM conflict-detection modes.

    Everything that enumerates or parses modes — {!Txn_state.config},
    {!Protocol.select}, the bench CLIs, [test/util.ml]'s mode matrix,
    the [PROUST_MODE] environment default — goes through this module.
    Adding a mode is one variant plus the exhaustive matches the
    compiler then points at; it appears in every test matrix and bench
    sweep automatically. *)

type t =
  | Lazy_lazy  (** TL2: commit-time locking, lazy validation *)
  | Eager_lazy  (** TinySTM/Ennals: encounter-time write locks *)
  | Eager_eager  (** encounter-time locks + visible readers *)
  | Serial_commit  (** NOrec-style single global commit gate *)
  | Multi_version
      (** MVCC: tvars keep a bounded K-version history so snapshot
          reads can be served below the newest version; read-only
          transactions ({!Stm.read_only}) read a consistent snapshot
          at their start timestamp and never abort.  Read-write
          transactions behave like [Lazy_lazy] with a stale-read
          grace: a read overtaken by a concurrent commit is served
          from the history instead of aborting on the spot (commit
          validation still rejects the transaction if it also
          writes). *)

(** Every mode, in declaration order — the one list tests and benches
    enumerate. *)
val all : t list

val to_string : t -> string

(** Inverse of {!to_string}; [invalid_arg] on unknown names, listing
    the known ones. *)
val of_string : string -> t

val of_string_opt : string -> t option

(** [to_string] of {!all} (CLI help strings). *)
val names : unit -> string list

(** The [PROUST_MODE] environment default ([Lazy_lazy] when unset;
    [invalid_arg] on an unknown name). *)
val from_env : unit -> t
