(* Blocking [retry]: park the domain on its read set instead of
   busy-polling.

   The no-lost-wakeup protocol, against the commit path's
   publish-then-scan order (see [Commit_ladder] and
   [Tvar.take_waiters]):

     waiter                               committer
     ------                               ---------
     register on every read-set tvar      publish new versions
     revalidate recorded versions         detach + wake each list
     park (if still valid)

   Whichever way the race goes, the waiter cannot sleep through the
   commit: if the committer's scan saw the registration, the waiter is
   woken; if it did not, the registration happened after the scan's
   exchange, hence after the publish, and the waiter's revalidation —
   which follows its registration — observes the new version and
   cancels itself instead of parking.  OCaml atomics are SC, so the
   publish/scan and register/revalidate orders cannot invert.

   Deadlines are honored while parked: stdlib [Condition] has no timed
   wait, so a lazily-spawned timer domain holds (deadline, waiter)
   entries and expires them in bounded sleep slices.  A woken-by-timer
   episode re-enters the ladder, whose attempt-boundary check raises
   [Deadline_exceeded] as usual.

   The legacy polling wait survives as the [Poll] mode, switchable at
   runtime, so the parking bench can measure parks against busy-poll
   iterations on the same workload. *)

type retry_mode = Park | Poll

let mode =
  Atomic.make
    (match Sys.getenv_opt "PROUST_RETRY" with
    | Some ("poll" | "POLL") -> Poll
    | _ -> Park)

let set_retry_mode m = Atomic.set mode m
let retry_mode () = Atomic.get mode
let live_waiters = Waitq.live_waiters

(* Commit fast path: one atomic load when nobody is parked. *)
let have_waiters () = Waitq.live_waiters () > 0

type watch = Rwset.packed_tvar * int

let changed ((tv, ver) : watch) = (Tvar.load tv).Tvar.version <> ver

(* ------------------------------------------------------------------ *)
(* The deadline timer                                                   *)

module Timer = struct
  (* One daemon domain servicing every deadline-carrying park in the
     process.  It blocks on its condition while idle, and while armed
     sleeps in bounded slices towards the earliest deadline, so a
     registration that undercuts the current sleep is late by at most
     one slice.  Spawned on first use; [at_exit] stops and joins it so
     the runtime's domain-exit barrier never waits on an infinite
     loop. *)
  let slice = 0.001

  let mu = Mutex.create ()
  let cv = Condition.create ()
  let entries : (int * Waitq.waiter) list ref = ref []
  let running = ref false
  let stopping = ref false

  let rec loop () =
    Mutex.lock mu;
    let action =
      if !stopping then `Stop
      else
        match !entries with
        | [] ->
            Condition.wait cv mu;
            `Again
        | es ->
            let now = Clock.now_mono_ns () in
            let due, later =
              List.partition (fun (d, _) -> d <= now) es
            in
            entries := later;
            if due <> [] then `Expire (List.map snd due)
            else
              let next =
                List.fold_left (fun acc (d, _) -> min acc d) max_int later
              in
              `Sleep (float_of_int (next - now) *. 1e-9)
    in
    Mutex.unlock mu;
    match action with
    | `Stop -> ()
    | `Again -> loop ()
    | `Expire ws ->
        List.iter (fun w -> ignore (Waitq.expire w)) ws;
        loop ()
    | `Sleep dt ->
        Unix.sleepf (Float.min dt slice);
        loop ()

  let ensure_running () =
    if not !running then begin
      running := true;
      let d = Domain.spawn loop in
      at_exit (fun () ->
          Mutex.lock mu;
          stopping := true;
          Condition.broadcast cv;
          Mutex.unlock mu;
          Domain.join d)
    end

  let register w ~deadline_ns =
    Mutex.lock mu;
    ensure_running ();
    entries := (deadline_ns, w) :: !entries;
    Condition.broadcast cv;
    Mutex.unlock mu

  let cancel w =
    Mutex.lock mu;
    entries := List.filter (fun (_, x) -> x != w) !entries;
    Mutex.unlock mu
end

(* ------------------------------------------------------------------ *)
(* The two waits                                                        *)

(* Legacy busy-poll, kept for comparison benches: spin the version
   checks under a private backoff, counting every iteration.  Returns
   on change or (when [deadline_ns] is set) on expiry. *)
let poll_wait ~deadline_ns entries =
  let b = Backoff.create () in
  let rec loop () =
    Stats.record_retry_poll ();
    if List.exists changed entries then ()
    else if deadline_ns <> 0 && Clock.now_mono_ns () >= deadline_ns then ()
    else begin
      Backoff.once ~until_ns:deadline_ns b;
      loop ()
    end
  in
  loop ()

let chaos point =
  if Fault.enabled () then Fault.check point else None

let park_wait ~deadline_ns entries =
  let w = Waitq.make () in
  let longest =
    List.fold_left (fun acc (tv, _) -> max acc (Tvar.add_waiter tv w)) 0 entries
  in
  Waitq.enlist w;
  Stats.note_wait_list_len longest;
  (* Registered on every list: revalidate.  A version that moved since
     the attempt recorded it means the wakeup may already have been
     scanned past us — consume the change and re-attempt instead of
     parking. *)
  if List.exists changed entries then ignore (Waitq.cancel w)
  else begin
    (match chaos Fault.Pre_park with
    | Some (Fault.Delay n) -> Fault.spin n
    | Some (Fault.Abort | Fault.Kill | Fault.Crash | Fault.Wedge) ->
        (* Forced spurious unpark: the waiter must cope with waking for
           no reason at any moment, so serve disruptive draws as a
           self-cancel just before blocking. *)
        ignore (Waitq.cancel w)
    | None -> ());
    if Waitq.is_waiting w then begin
      if deadline_ns <> 0 then Timer.register w ~deadline_ns;
      Stats.record_park ();
      Waitq.park w;
      if deadline_ns <> 0 then Timer.cancel w;
      (* Wakeup latency: commit-side publication stamp (see
         [Waitq.wake]) to this resume.  Timer expiries leave the stamp
         at 0 and are not samples. *)
      if Proust_obs.Metrics.enabled () then begin
        let t0 = Waitq.wake_ns w in
        if t0 > 0 then
          Proust_obs.Metrics.add_wakeup_latency
            (Proust_obs.Trace.now_ns () - t0)
      end
    end;
    (match chaos Fault.Post_unpark with
    | Some (Fault.Delay n) -> Fault.spin n
    | Some _ -> Fault.spin 64
    | None -> ())
  end;
  (* Orphan-freedom: whatever path ended the wait, leave every list we
     joined.  Racing a committer's detach just finds us already gone. *)
  List.iter (fun (tv, _) -> Tvar.remove_waiter tv w) entries

(* [await ~deadline_ns entries] blocks until some watched tvar's
   version moves past its recorded value, the deadline passes, or a
   spurious unpark fires; the caller re-attempts and re-blocks as
   needed.  [entries] must be non-empty. *)
let await ~deadline_ns entries =
  match Atomic.get mode with
  | Poll -> poll_wait ~deadline_ns entries
  | Park -> park_wait ~deadline_ns entries

(* ------------------------------------------------------------------ *)
(* Commit-side wake                                                     *)

(* Wake everything parked on [tv].  The caller (the commit path) has
   already published the new versions, which is what makes the detach
   race-free against registration — see the protocol note above. *)
let wake_tvar tv =
  match Tvar.take_waiters tv with
  | [] -> ()
  | ws -> List.iter (fun w -> ignore (Waitq.wake w)) ws
