(** Blocking [retry]: per-tvar wait lists and real domain parking.

    A retrying transaction registers a {!Waitq.waiter} on every tvar
    in its read set, revalidates the recorded versions, and only then
    parks; the commit path publishes new versions {e before} detaching
    and waking wait lists, so the register/revalidate/park order
    closes the lost-wakeup window (the full argument is in the
    implementation header).  Deadlines are honored while parked via a
    lazily-spawned timer domain.  The legacy busy-poll wait survives
    as a switchable [Poll] mode so benches can compare parks against
    poll iterations on one workload. *)

type retry_mode = Park | Poll

(** Process-wide switch, defaulting to [Park] (the [PROUST_RETRY=poll]
    environment variable selects [Poll] at startup). *)
val set_retry_mode : retry_mode -> unit

val retry_mode : unit -> retry_mode

(** Waiters currently registered and unwoken, process-wide; 0 at
    quiescence (the chaos suite's orphaned-entry audit). *)
val live_waiters : unit -> int

(** Commit fast path: anything parked at all?  One atomic load. *)
val have_waiters : unit -> bool

(** A watched (tvar, recorded-version) pair, from the aborted
    attempt's read log. *)
type watch = Rwset.packed_tvar * int

val changed : watch -> bool

(** Block until a watched version moves, the (absolute, ns, 0 = none)
    deadline passes, or a spurious unpark fires.  [entries] must be
    non-empty; the caller re-attempts and re-blocks as needed. *)
val await : deadline_ns:int -> watch list -> unit

(** Detach and wake everything parked on [tv].  Call only after the
    new version is published. *)
val wake_tvar : Rwset.packed_tvar -> unit
