(* The five conflict-detection modes as first-class commit protocols.

   Each mode of the paper's Figure 1 design space becomes one [proto]
   record (acquire/validate/publish/release plus the encounter-time
   hooks), built here and selected once per atomic block by
   {!select} — the hot paths then dispatch through the record instead
   of re-branching on [cfg.mode] at every read, write and commit. *)

open Txn_state

(* ------------------------------------------------------------------ *)
(* Conflict arbitration                                                 *)

(* Arbitrate against [other]; returns when the caller should re-attempt
   the acquisition, raises [Abort_exn] when the caller must restart. *)
let arbitrate t ~other ~attempt =
  check_alive t;
  (* Lock-wait polls are where an attempt can stall unboundedly, so
     they are a deadline checkpoint: an expired transaction stops
     queueing behind its adversary and aborts with [Timed_out]
     (no-op for irrevocable attempts). *)
  check_deadline t;
  if t.tdesc.Txn_desc.irrevocable then begin
    (* The serial-irrevocable holder always wins: kill the other party
       (it cannot be irrevocable too — there is a single token) and
       wait for it to notice and release. *)
    if Txn_desc.try_kill other then Stats.record_remote_abort ();
    Stats.record_lock_wait ();
    obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
  end
  else
    match t.cfg.cm.Contention.decide ~self:t.tdesc ~other ~attempt with
    | Contention.Wait ->
        Stats.record_lock_wait ();
        obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
    | Contention.Restart_self -> raise (Abort_exn Conflict)
    | Contention.Abort_other ->
        if Txn_desc.try_kill other then Stats.record_remote_abort ();
        (* Give the victim a beat to notice and release its locks. *)
        Backoff.once t.backoff

(* ------------------------------------------------------------------ *)
(* Read validation and timestamp extension                              *)

let reads_valid t = Rwset.Rlog.validate t.rset ~owner:t.tdesc

let try_extend t =
  let now = snapshot_clock ~serial:(t.cfg.mode = Serial_commit) in
  let ok = reads_valid t in
  obs_extend t ~ok;
  if ok then begin
    t.rv <- now;
    Stats.record_extension ();
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Encounter-time locking (eager modes)                                 *)

let rec lock_for_write :
    type a. visible_readers:bool -> t -> a Tvar.t -> attempt:int -> unit =
 fun ~visible_readers t tv ~attempt ->
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire;
      if visible_readers then wait_out_readers t tv ~attempt:0
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_for_write ~visible_readers t tv ~attempt:(attempt + 1)

(* With visible readers, a writer that just locked [tv] must come to an
   agreement with every active reader before proceeding; either the
   readers finish/abort or this transaction restarts (releasing the
   lock on its abort path). *)
and wait_out_readers : type a. t -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.active_readers tv ~except:t.tdesc with
  | [] -> ()
  | other :: _ ->
      arbitrate t ~other ~attempt;
      wait_out_readers t tv ~attempt:(attempt + 1)

(* ------------------------------------------------------------------ *)
(* The committed-state read (slow path: no read-after-write hit)        *)

(* TL2 discipline: a committed version newer than the snapshot either
   extends the snapshot ([extend_reads]) or aborts.  Every successful
   read appends to the read log; duplicate entries are fine (see
   {!Rwset.Rlog}), which is what lets this path skip the old
   Hashtbl-based dedup-and-recheck entirely. *)
let rec read_slow : type a. t -> a Tvar.t -> attempt:int -> a =
 fun t tv ~attempt ->
  t.proto.p_pre_read t tv;
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      arbitrate t ~other:d ~attempt;
      read_slow t tv ~attempt:(attempt + 1)
  | _ ->
      let s = Tvar.load tv in
      if s.Tvar.version > t.rv then
        if t.cfg.extend_reads && try_extend t then
          (* extension succeeded; re-examine under the new timestamp *)
          read_slow t tv ~attempt
        else begin
          Stats.record_conflict ();
          raise (Abort_exn Conflict)
        end
      else begin
        Rwset.Rlog.push t.rset tv s.Tvar.version;
        Txn_desc.earn t.tdesc 1;
        s.Tvar.value
      end

(* ------------------------------------------------------------------ *)
(* Multi-version reads                                                  *)

(* Read-write read under Multi_version: TL2 discipline with a
   stale-read grace.  Where TL2 aborts on a committed version newer
   than the snapshot (and extension is off or fails), this serves the
   newest chain entry at or below [rv] instead.  The chain keeps a
   contiguous newest-first prefix (trim only drops tails), so a found
   entry is the true newest-<=-rv and the whole read set stays a
   consistent rv-snapshot — opaque while executing.  The stale version
   is still pushed to the read log, so a transaction that also writes
   fails commit validation exactly as it must; a pure reader commits
   without validating.  [None] means the chain was reclaimed below
   [rv] (possible here — unlike read-only transactions, plain atomics
   register no snapshot), which falls back to the ordinary conflict
   abort. *)
let rec read_mv : type a. t -> a Tvar.t -> attempt:int -> a =
 fun t tv ~attempt ->
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      arbitrate t ~other:d ~attempt;
      read_mv t tv ~attempt:(attempt + 1)
  | _ ->
      let s = Tvar.load tv in
      if s.Tvar.version <= t.rv then begin
        Rwset.Rlog.push t.rset tv s.Tvar.version;
        Txn_desc.earn t.tdesc 1;
        s.Tvar.value
      end
      else if t.cfg.extend_reads && try_extend t then read_mv t tv ~attempt
      else begin
        match Tvar.read_at tv ~version:t.rv with
        | Some v ->
            Rwset.Rlog.push t.rset tv v.Tvar.version;
            Txn_desc.earn t.tdesc 1;
            v.Tvar.value
        | None ->
            Stats.record_conflict ();
            raise (Abort_exn Conflict)
      end

(* Read-only snapshot read: no read log (nothing to validate — the
   snapshot is consistent by construction, see
   Commit_ladder.run_read_only), but it must wait out a held
   version-lock before walking the chain.  A lock-mode commit holds
   each written tvar's lock from before its clock tick to after its
   publish, so a held lock may hide an unpublished version at or below
   our snapshot; once the lock is free, every commit at or below [rv]
   that touched this tvar is in the chain, and any later lock holder
   ticks strictly above [rv] (its acquisition follows our [rv]
   sample).  The wait never arbitrates: read-only transactions neither
   abort themselves nor kill writers.  Serial-gate commits hold no
   per-tvar locks and are drained once, at snapshot adoption.

   [None] from the chain walk is unreachable when the snapshot was
   registered before [rv] was sampled (Snapshots keeps the GC floor at
   or below every registered timestamp); surfaced as a conflict so a
   protocol bug aborts loudly instead of reading a torn value. *)
let rec ro_wait_out : type a. t -> a Tvar.t -> Backoff.t -> unit =
 fun t tv b ->
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      Backoff.once b;
      ro_wait_out t tv b
  | _ -> ()

let read_ro : type a. t -> a Tvar.t -> a =
 fun t tv ->
  (match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      (* Escalating backoff, not a bare spin: on an oversubscribed
         host the lock holder may be descheduled, and burning our
         quantum only delays its publish further.  Escalate to the OS
         sleep sooner than the configured read-write default — a
         read-only wait cannot arbitrate, so the holder finishing is
         the only way forward and it needs the cpu more than we do.
         The wait loop is a top-level function (not a local closure)
         so the uncontended read path allocates nothing. *)
      Stats.record_lock_wait ();
      ro_wait_out t tv
        (Backoff.create
           ~sleep_after:(min 2 t.cfg.backoff_sleep_after)
           ~sleep:t.cfg.backoff_sleep ())
  | _ -> ());
  (* Fast path: the head itself is within the snapshot — no option,
     no chain walk.  Only overtaken tvars pay for history.  The read
     count lives in the txn record (plain store) and is flushed to the
     striped Stats once at commit. *)
  let s = Tvar.load tv in
  if s.Tvar.version <= t.rv then begin
    t.ro_reads <- t.ro_reads + 1;
    s.Tvar.value
  end
  else
    match Tvar.read_at tv ~version:t.rv with
    | Some v ->
        t.ro_reads <- t.ro_reads + 1;
        v.Tvar.value
    | None ->
        Stats.record_conflict ();
        raise (Abort_exn Conflict)

(* ------------------------------------------------------------------ *)
(* Commit-time lock acquisition                                         *)

let rec lock_entry t tv ~attempt =
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_entry t tv ~attempt:(attempt + 1)

(* Lock the commit plan in uid order (avoids lock-order livelock; the
   eager modes already hold these locks and hit [`Mine]). *)
let acquire_plan_locks t =
  Rwset.Wlog.plan_iter_tv t.wset (fun tv -> lock_entry t tv ~attempt:0)

let acquire_commit_gate t =
  let b = t.gate_backoff in
  Backoff.reset b;
  let rec loop () =
    check_alive t;
    check_deadline t;
    if not (Atomic.compare_and_set commit_gate 0 t.tdesc.Txn_desc.id) then begin
      Stats.record_lock_wait ();
      obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:(Atomic.get commit_gate) b;
      loop ()
    end
  in
  loop ()

let release_commit_gate t =
  if Atomic.get commit_gate = t.tdesc.Txn_desc.id then Atomic.set commit_gate 0

(* One free observation proves every serial-gate commit that ticked at
   or below the observer's snapshot has fully published: the gate is
   held from before the tick until after the publish, exclusively.
   [Commit_ladder.run_read_only] drains on this once at snapshot
   adoption (per-tvar locks are instead waited out per read, in
   [read_ro]). *)
let commit_gate_free () = Atomic.get commit_gate = 0

(* ------------------------------------------------------------------ *)
(* The five protocols                                                   *)

let no_pre_read : 'a. Txn_state.t -> 'a Tvar.t -> unit = fun _ _ -> ()
let no_pre_write : 'a. Txn_state.t -> 'a Tvar.t -> unit = fun _ _ -> ()
let noop (_ : Txn_state.t) = ()
let tl2_read : 'a. Txn_state.t -> 'a Tvar.t -> 'a =
 fun t tv -> read_slow t tv ~attempt:0

(* TL2: both conflict classes detected lazily — writes buffer without
   locking, the write set is locked at commit. *)
let lazy_lazy =
  {
    p_read = tl2_read;
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
    p_stage = Inline_publish;
  }

(* TinySTM/Ennals: encounter-time write locking, lazy read/write. *)
let eager_lazy =
  {
    p_read = tl2_read;
    p_pre_read = no_pre_read;
    p_pre_write =
      (fun t tv -> lock_for_write ~visible_readers:false t tv ~attempt:0);
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
    p_stage = Inline_publish;
  }

(* Eager on both axes: encounter-time write locks plus visible readers
   (the mode Theorem 5.2 requires for eager/optimistic Proustian
   objects to be opaque). *)
let eager_eager =
  {
    p_read = tl2_read;
    p_pre_read = (fun t tv -> Tvar.register_reader tv t.tdesc);
    p_pre_write =
      (fun t tv -> lock_for_write ~visible_readers:true t tv ~attempt:0);
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
    p_stage = Inline_publish;
  }

(* NOrec: no per-location commit locking at all; writing commits
   serialize on the one global gate, released only after publishing
   (failed commits release it in [p_release_fail] since the abort path
   only knows about per-location locks). *)
let serial_commit =
  {
    p_read = tl2_read;
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = acquire_commit_gate;
    p_release_fail = release_commit_gate;
    p_release = release_commit_gate;
    (* The serial gate is the natural combiner election: see
       {!Publisher}. *)
    p_stage = Group_commit;
  }

(* MVCC read-write: lazy_lazy commit machinery (commit-time plan
   locks, read-log validation) with the multi-version read path. *)
let multi_version =
  {
    p_read = (fun t tv -> read_mv t tv ~attempt:0);
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
    p_stage = Inline_publish;
  }

(* The abort-free snapshot protocol for read-only transactions
   (Commit_ladder.run_read_only installs it directly; it is not a
   [mode]).  Writes never reach [p_pre_write] — Stm.write raises
   [Read_only_violation] on the [ro] flag first — and with an empty
   write set the commit path neither acquires nor validates. *)
let read_only_proto =
  {
    p_read = (fun t tv -> read_ro t tv);
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = noop;
    p_release_fail = noop;
    p_release = noop;
    p_stage = Inline_publish;
  }

let select = function
  | Lazy_lazy -> lazy_lazy
  | Eager_lazy -> eager_lazy
  | Eager_eager -> eager_eager
  | Serial_commit -> serial_commit
  | Multi_version ->
      (* Sticky: from here on every publish maintains version chains,
         so snapshots taken later always find history. *)
      Snapshots.ensure_armed ();
      multi_version
