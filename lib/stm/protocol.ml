(* The four conflict-detection modes as first-class commit protocols.

   Each mode of the paper's Figure 1 design space becomes one [proto]
   record (acquire/validate/publish/release plus the encounter-time
   hooks), built here and selected once per atomic block by
   {!select} — the hot paths then dispatch through the record instead
   of re-branching on [cfg.mode] at every read, write and commit. *)

open Txn_state

(* ------------------------------------------------------------------ *)
(* Conflict arbitration                                                 *)

(* Arbitrate against [other]; returns when the caller should re-attempt
   the acquisition, raises [Abort_exn] when the caller must restart. *)
let arbitrate t ~other ~attempt =
  check_alive t;
  (* Lock-wait polls are where an attempt can stall unboundedly, so
     they are a deadline checkpoint: an expired transaction stops
     queueing behind its adversary and aborts with [Timed_out]
     (no-op for irrevocable attempts). *)
  check_deadline t;
  if t.tdesc.Txn_desc.irrevocable then begin
    (* The serial-irrevocable holder always wins: kill the other party
       (it cannot be irrevocable too — there is a single token) and
       wait for it to notice and release. *)
    if Txn_desc.try_kill other then Stats.record_remote_abort ();
    Stats.record_lock_wait ();
    obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
  end
  else
    match t.cfg.cm.Contention.decide ~self:t.tdesc ~other ~attempt with
    | Contention.Wait ->
        Stats.record_lock_wait ();
        obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
    | Contention.Restart_self -> raise (Abort_exn Conflict)
    | Contention.Abort_other ->
        if Txn_desc.try_kill other then Stats.record_remote_abort ();
        (* Give the victim a beat to notice and release its locks. *)
        Backoff.once t.backoff

(* ------------------------------------------------------------------ *)
(* Read validation and timestamp extension                              *)

let reads_valid t = Rwset.Rlog.validate t.rset ~owner:t.tdesc

let try_extend t =
  let now = snapshot_clock ~serial:(t.cfg.mode = Serial_commit) in
  let ok = reads_valid t in
  obs_extend t ~ok;
  if ok then begin
    t.rv <- now;
    Stats.record_extension ();
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Encounter-time locking (eager modes)                                 *)

let rec lock_for_write :
    type a. visible_readers:bool -> t -> a Tvar.t -> attempt:int -> unit =
 fun ~visible_readers t tv ~attempt ->
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire;
      if visible_readers then wait_out_readers t tv ~attempt:0
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_for_write ~visible_readers t tv ~attempt:(attempt + 1)

(* With visible readers, a writer that just locked [tv] must come to an
   agreement with every active reader before proceeding; either the
   readers finish/abort or this transaction restarts (releasing the
   lock on its abort path). *)
and wait_out_readers : type a. t -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.active_readers tv ~except:t.tdesc with
  | [] -> ()
  | other :: _ ->
      arbitrate t ~other ~attempt;
      wait_out_readers t tv ~attempt:(attempt + 1)

(* ------------------------------------------------------------------ *)
(* The committed-state read (slow path: no read-after-write hit)        *)

(* TL2 discipline: a committed version newer than the snapshot either
   extends the snapshot ([extend_reads]) or aborts.  Every successful
   read appends to the read log; duplicate entries are fine (see
   {!Rwset.Rlog}), which is what lets this path skip the old
   Hashtbl-based dedup-and-recheck entirely. *)
let rec read_slow : type a. t -> a Tvar.t -> attempt:int -> a =
 fun t tv ~attempt ->
  t.proto.p_pre_read t tv;
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      arbitrate t ~other:d ~attempt;
      read_slow t tv ~attempt:(attempt + 1)
  | _ ->
      let s = Tvar.load tv in
      if s.Tvar.version > t.rv then
        if t.cfg.extend_reads && try_extend t then
          (* extension succeeded; re-examine under the new timestamp *)
          read_slow t tv ~attempt
        else begin
          Stats.record_conflict ();
          raise (Abort_exn Conflict)
        end
      else begin
        Rwset.Rlog.push t.rset tv s.Tvar.version;
        Txn_desc.earn t.tdesc 1;
        s.Tvar.value
      end

(* ------------------------------------------------------------------ *)
(* Commit-time lock acquisition                                         *)

let rec lock_entry t tv ~attempt =
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_entry t tv ~attempt:(attempt + 1)

(* Lock the commit plan in uid order (avoids lock-order livelock; the
   eager modes already hold these locks and hit [`Mine]). *)
let acquire_plan_locks t =
  Rwset.Wlog.plan_iter_tv t.wset (fun tv -> lock_entry t tv ~attempt:0)

let acquire_commit_gate t =
  let b = t.gate_backoff in
  Backoff.reset b;
  let rec loop () =
    check_alive t;
    check_deadline t;
    if not (Atomic.compare_and_set commit_gate 0 t.tdesc.Txn_desc.id) then begin
      Stats.record_lock_wait ();
      obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:(Atomic.get commit_gate) b;
      loop ()
    end
  in
  loop ()

let release_commit_gate t =
  if Atomic.get commit_gate = t.tdesc.Txn_desc.id then Atomic.set commit_gate 0

(* ------------------------------------------------------------------ *)
(* The four protocols                                                   *)

let no_pre_read : 'a. Txn_state.t -> 'a Tvar.t -> unit = fun _ _ -> ()
let no_pre_write : 'a. Txn_state.t -> 'a Tvar.t -> unit = fun _ _ -> ()
let noop (_ : Txn_state.t) = ()

(* TL2: both conflict classes detected lazily — writes buffer without
   locking, the write set is locked at commit. *)
let lazy_lazy =
  {
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
  }

(* TinySTM/Ennals: encounter-time write locking, lazy read/write. *)
let eager_lazy =
  {
    p_pre_read = no_pre_read;
    p_pre_write =
      (fun t tv -> lock_for_write ~visible_readers:false t tv ~attempt:0);
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
  }

(* Eager on both axes: encounter-time write locks plus visible readers
   (the mode Theorem 5.2 requires for eager/optimistic Proustian
   objects to be opaque). *)
let eager_eager =
  {
    p_pre_read = (fun t tv -> Tvar.register_reader tv t.tdesc);
    p_pre_write =
      (fun t tv -> lock_for_write ~visible_readers:true t tv ~attempt:0);
    p_acquire = acquire_plan_locks;
    p_release_fail = noop;
    p_release = noop;
  }

(* NOrec: no per-location commit locking at all; writing commits
   serialize on the one global gate, released only after publishing
   (failed commits release it in [p_release_fail] since the abort path
   only knows about per-location locks). *)
let serial_commit =
  {
    p_pre_read = no_pre_read;
    p_pre_write = no_pre_write;
    p_acquire = acquire_commit_gate;
    p_release_fail = release_commit_gate;
    p_release = release_commit_gate;
  }

let select = function
  | Lazy_lazy -> lazy_lazy
  | Eager_lazy -> eager_lazy
  | Eager_eager -> eager_eager
  | Serial_commit -> serial_commit
