(** The five conflict-detection modes as first-class commit protocols
    (Figure 1's design-space rows plus the multi-version extension),
    plus the shared machinery they are assembled from: contention
    arbitration, read-log validation and timestamp extension,
    encounter- and commit-time lock acquisition, and the serial commit
    gate. *)

(** Arbitrate with the owner of a contended resource: returns to
    re-attempt, raises [Abort_exn] to restart. *)
val arbitrate :
  Txn_state.t -> other:Txn_desc.t -> attempt:int -> unit

(** The whole read log still validates (see {!Rwset.Rlog.validate}). *)
val reads_valid : Txn_state.t -> bool

(** Revalidate and, on success, advance the snapshot to the present —
    the [extend_reads] alternative to aborting on a newer version. *)
val try_extend : Txn_state.t -> bool

(** Committed-state read under the TL2 snapshot discipline; appends to
    the read log.  The write-set hit is handled by the caller
    ({!Stm.read}). *)
val read_slow : Txn_state.t -> 'a Tvar.t -> attempt:int -> 'a

(** Multi-version read-write read: TL2 with a stale-read grace served
    from the version chain (the recorded stale version still fails
    commit validation if the transaction writes). *)
val read_mv : Txn_state.t -> 'a Tvar.t -> attempt:int -> 'a

(** Snapshot read at the transaction's [rv]: no owner wait, no read
    log.  Conflict-aborts only if the chain was reclaimed below [rv]
    (unreachable for registered snapshots). *)
val read_ro : Txn_state.t -> 'a Tvar.t -> 'a

(** The abort-free protocol {!Commit_ladder.run_read_only} installs
    for read-only snapshot transactions (not reachable via [select]). *)
val read_only_proto : Txn_state.proto

(** Lock the write-set commit plan in uid order. *)
val acquire_plan_locks : Txn_state.t -> unit

val acquire_commit_gate : Txn_state.t -> unit
val release_commit_gate : Txn_state.t -> unit

(** [true] when no serial-gate commit is in flight; one observation at
    snapshot adoption proves every [Serial_commit] writer at or below
    the snapshot has fully published. *)
val commit_gate_free : unit -> bool

(** The protocol record for a mode — called once per atomic block. *)
val select : Txn_state.mode -> Txn_state.proto
