(* The publication layer: how a committed intent reaches the shared
   store.

   Layering (see DESIGN.md): Rwset → Txn_state → Protocol → Publisher →
   Commit_ladder → Stm.  Each protocol names its pipeline via
   [proto.p_stage]; the ladder calls {!publish} once per commit and
   receives a [done_t] describing what is left to run owner-side.

   [Inline_publish] is the classic path, moved verbatim from the old
   [Commit_ladder.do_commit] body: the committing transaction acquires
   its commit locks (or the serial gate), validates, ticks, publishes
   and releases — one transaction, one gate acquisition.

   [Group_commit] is flat-combining group commit for the Serial_commit
   mode.  All writing commits in that mode serialize on the one global
   gate anyway, so the gate doubles as a combiner election: the domain
   that wins it drains a lock-free publication list and commits the
   whole batch of pending intents — each with its own validation,
   durable hooks and outcome — in a single gate acquisition, sharing
   one clock tick across compatible entries.  Losers publish a slot
   and spin locally on its outcome cell instead of fighting for the
   gate, which turns N gate acquisitions (and N cache-line storms)
   into one.

   Correctness notes for the shared batch tick:

   - Every batch entry sampled its snapshot [rv] while the gate was
     observed free ([Txn_state.snapshot_clock ~serial:true]), hence
     strictly before any tick taken under the current gate hold — so
     [wv > rv] for every entry and per-tvar versions move forward.

   - TL2's [rv + 1 = wv] validation fast path is only sound for the
     batch's *first* publisher: once any entry has published, a later
     entry at the same [wv] may have read state the earlier one just
     overwrote, so it must validate ([batch_dirty]).

   - Two batch entries writing the {e same} tvar must not share a
     version: a concurrent reader could then mix their states without
     read-log validation noticing (the recorded version matches either
     value).  The session tracks published tvar uids; an entry whose
     plan overlaps them takes a fresh tick.

   - Durable hooks need distinct LSNs in conflict order, so a durable
     entry always takes a fresh tick — and invalidates the cached
     batch tick, keeping later entries' versions monotone in drain
     order.

   Combiner crash-safety (the [Fault.Combine_handoff] chaos point, see
   test_chaos.ml): a draw fires per entry {e before} its slot is
   claimed.  [Kill]/[Crash] make the combiner abandon the rest of the
   batch: still-[Waiting] slots are pushed back on the publication
   list, and any waiter that observes the gate free with its slot
   undrained elects itself combiner, so no acked commit is lost and no
   waiter is stranded.  The gate-held invariant that makes
   self-election safe: a combiner drives every slot it claims to a
   terminal [Done] before releasing the gate, so a free gate implies
   no slot is [Claimed]. *)

open Txn_state

let run_hooks hooks =
  (* Run every hook even if one raises; re-raise the first failure once
     lock hygiene is restored by the caller. *)
  if hooks <> [] then begin
    let first_exn = ref None in
    List.iter
      (fun f -> try f () with e -> if !first_exn = None then first_exn := Some e)
      hooks;
    match !first_exn with None -> () | Some e -> raise e
  end

(* What the owner still has to do after its intent published: wake
   scans and after-commit hooks must run on the owner's domain (the
   obs metrics pair attempt-start/commit per domain, and after-commit
   callbacks may start new transactions there). *)
type done_t = {
  pd_after : (unit -> unit) list;  (* after-commit hooks, run order *)
  pd_waits : (unit -> unit) list;  (* durable flush waits, run order *)
  pd_failure : exn option;  (* earliest locked-phase hook failure *)
  pd_wrote : bool;  (* tvar writes published: scan wait lists *)
}

type outcome = Committed of done_t | Rejected of abort_reason

(* A waiter's entry on the publication list.  The state cell is the
   handoff protocol: the combiner CASes [Waiting → Claimed] (winning
   the right to commit the entry) and stores [Done]; the owner CASes
   [Waiting → Cancelled] to withdraw (deadline, remote kill,
   self-election). *)
type slot_state = Waiting | Claimed | Done of outcome | Cancelled
type slot = { sl_txn : t; sl_state : slot_state Atomic.t }

(* ------------------------------------------------------------------ *)
(* The combining knob                                                   *)

(* Group commit is on by default for Serial_commit; [PROUST_COMBINE=0]
   (or [off]/[false]/[inline]) keeps the legacy inline publisher, and
   [set_combining] flips it at runtime for A/B benching — mirroring
   the [PROUST_RETRY] pattern. *)
let enabled_v =
  Atomic.make
    (match Sys.getenv_opt "PROUST_COMBINE" with
    | Some ("0" | "off" | "OFF" | "false" | "inline") -> false
    | _ -> true)

let set_combining b = Atomic.set enabled_v b
let combining () = Atomic.get enabled_v

(* Combiner linger, the classic flat-combining tuning knob: after its
   own commit, the gate winner keeps polling the publication list
   before releasing, yielding the processor between polls so
   publishers that have not yet reached their [try_gate] can arrive
   and join the batch.  Without it, batches only form when an arrival
   lands inside the (sub-microsecond) drain window — on a machine with
   fewer cores than domains, effectively never, because a domain must
   be preempted mid-gate for anyone else to run.  The budget (seconds)
   bounds the idle gap between arrivals, not total tenure: a stream of
   arrivals keeps the combiner serving, a gap longer than the budget
   releases the gate, so it only needs to cover scheduling jitter.
   Default off: an uncontended commit pays nothing.
   [PROUST_COMBINE_LINGER] (seconds) or [set_combine_linger] turn it
   on for batching-sensitive workloads and the bench. *)
let linger_ns_v =
  Atomic.make
    (match Sys.getenv_opt "PROUST_COMBINE_LINGER" with
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0. -> int_of_float (f *. 1e9)
        | _ -> 0)
    | None -> 0)

let set_combine_linger s =
  Atomic.set linger_ns_v (if s > 0. then int_of_float (s *. 1e9) else 0)

let combine_linger () = float_of_int (Atomic.get linger_ns_v) *. 1e-9

(* Adaptive linger: arm the configured linger only when the gate has
   recently been contended.  A solo committer that wins the gate on
   arrival has nobody to wait for — lingering would add pure latency —
   so losers stamp [last_contended_ns] when they queue a slot, and the
   combiner consults the stamp: no contention inside the window means
   no dwell.  On by default ([PROUST_COMBINE_LINGER_ADAPTIVE=0] pins
   the legacy always-on behaviour): batches only ever form out of
   contention, so suppressing the linger in its absence costs nothing
   while restoring the uncontended commit's zero-overhead path even
   with a linger budget configured. *)
let adaptive_linger_v =
  Atomic.make
    (match Sys.getenv_opt "PROUST_COMBINE_LINGER_ADAPTIVE" with
    | Some ("0" | "off" | "OFF" | "false") -> false
    | _ -> true)

let set_adaptive_linger b = Atomic.set adaptive_linger_v b
let adaptive_linger () = Atomic.get adaptive_linger_v

(* Monotonic ns of the last observed gate contention (a publisher that
   lost [try_gate] and queued a slot).  Plain store: the stamp is a
   heuristic signal, racing writers all write "now". *)
let last_contended_ns = Atomic.make 0

(* How long one contention observation keeps the linger armed.  Well
   above any scheduling jitter, well below a workload phase change. *)
let contention_window_ns = 50_000_000

let note_gate_contention () =
  Atomic.set last_contended_ns (Clock.now_mono_ns ())

let gate_recently_contended () =
  let last = Atomic.get last_contended_ns in
  last > 0 && Clock.now_mono_ns () - last < contention_window_ns

(* The linger budget a combiner should actually use right now. *)
let effective_linger_ns () =
  let ns = Atomic.get linger_ns_v in
  if ns = 0 then 0
  else if Atomic.get adaptive_linger_v && not (gate_recently_contended ())
  then 0
  else ns

(* ------------------------------------------------------------------ *)
(* The publication list                                                 *)

(* A Treiber stack of slots; the combiner's drain exchanges the whole
   list and reverses it, so service order is FIFO per drain.  Abandoned
   entries are pushed back oldest-first, preserving approximate FIFO
   through the same exchange-and-reverse discipline. *)
let pub_list : slot list Atomic.t = Atomic.make []

let rec push_slot sl =
  let cur = Atomic.get pub_list in
  if not (Atomic.compare_and_set pub_list cur (sl :: cur)) then push_slot sl

(* Undrained entries currently on the list (tests: the orphan audit). *)
let pending_publications () =
  List.fold_left
    (fun n sl -> if Atomic.get sl.sl_state = Waiting then n + 1 else n)
    0 (Atomic.get pub_list)

(* ------------------------------------------------------------------ *)
(* Combine sessions                                                     *)

(* While a combiner drains a batch, structure-level replay logs may
   merge compatible intents across the batch's transactions (see
   Replay_log) instead of replaying each against the base structure.
   The session is the scope of that merging: a generation number the
   logs key their shared pending state by, plus the deferred flush
   thunks that apply the merged state.  Flushes run — in registration
   order — before the gate releases on every exit path, so an acked
   merged replay is never lost, even when chaos abandons the batch. *)
type session = { s_gen : int; mutable s_flushes : (unit -> unit) list }

let session_gen = Atomic.make 1

let session_key : session option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* The current combine session's generation, [None] outside a drain.
   Replay logs call this from locked-phase hooks, which the combiner
   runs on its own domain — domain-local state needs no fencing. *)
let session () =
  match Domain.DLS.get session_key with
  | None -> None
  | Some s -> Some s.s_gen

(* Defer [f] to the end of the current combine session; outside a
   session, run it now (the inline publisher's locked phase). *)
let defer_flush f =
  match Domain.DLS.get session_key with
  | None -> f ()
  | Some s -> s.s_flushes <- f :: s.s_flushes

(* ------------------------------------------------------------------ *)
(* Committing one batch entry (gate held, combiner's domain)            *)

(* Per-session version state: [bs_wv] caches the shared batch tick
   (0 = not yet taken), [bs_dirty] is set once anything has published,
   [bs_published] records published tvar uids for the same-tvar
   overlap check. *)
type batch_state = {
  mutable bs_wv : int;
  mutable bs_dirty : bool;
  bs_published : (int, unit) Hashtbl.t;
}

let fresh_batch_state () =
  { bs_wv = 0; bs_dirty = false; bs_published = Hashtbl.create 16 }

let plan_overlaps bs t =
  let hit = ref false in
  Rwset.Wlog.plan_iter_tv t.wset (fun tv ->
      if Hashtbl.mem bs.bs_published tv.Tvar.uid then hit := true);
  !hit

let note_published bs t =
  Rwset.Wlog.plan_iter_tv t.wset (fun tv ->
      Hashtbl.replace bs.bs_published tv.Tvar.uid ())

(* Commit one entry of the batch: the inline publisher's validate /
   linearize / hook / publish phases, minus acquisition and release
   (the combiner owns the gate) and minus the owner-side tail ([Done]
   hands that back through the slot).  Never raises: hook failures are
   captured into [pd_failure], everything else is a typed rejection
   the owner converts back into its normal abort path. *)
let commit_entry bs t =
  if Txn_desc.is_aborted t.tdesc then Rejected Killed
  else if (not t.tdesc.Txn_desc.irrevocable) && deadline_expired t then
    Rejected Timed_out
  else begin
    let has_durable = t.durable_hooks <> [] in
    let wv =
      if has_durable then begin
        (* Distinct LSNs in drain (= conflict) order; invalidate the
           cached tick so later entries re-tick and per-tvar versions
           stay monotone. *)
        let v = Clock.tick Clock.global in
        bs.bs_wv <- 0;
        v
      end
      else if plan_overlaps bs t then begin
        (* Same tvar already published this batch: sharing its version
           would let a concurrent reader mix the two states without
           validation noticing.  Fresh tick, and later entries adopt
           it. *)
        let v = Clock.tick Clock.global in
        bs.bs_wv <- v;
        v
      end
      else begin
        if bs.bs_wv = 0 then bs.bs_wv <- Clock.tick Clock.global;
        bs.bs_wv
      end
    in
    let valid =
      (* TL2 fast path only for the batch's first publisher — see the
         header note on [batch_dirty]. *)
      if wv > t.rv + 1 || bs.bs_dirty then begin
        let ok = Protocol.reads_valid t in
        obs_validate t ~ok;
        ok
      end
      else true
    in
    if not valid then Rejected Conflict
    else if not (Txn_desc.try_commit t.tdesc) then Rejected Killed
    else begin
      (* Linearized.  [Stats.record_commit] is striped and safe from
         the combiner's domain; the paired [Metrics.on_commit] runs
         owner-side when the outcome is consumed. *)
      Stats.record_commit ();
      t.finished <- true;
      let locked_hooks = List.rev t.commit_locked_hooks in
      let after_hooks = List.rev t.after_commit_hooks in
      let durable_hooks = List.rev t.durable_hooks in
      t.commit_locked_hooks <- [];
      t.after_commit_hooks <- [];
      t.abort_hooks <- [];
      t.durable_hooks <- [];
      let failure =
        match run_hooks locked_hooks with
        | () -> None
        | exception e -> Some e
      in
      let failure = ref failure in
      let waits = ref [] in
      List.iter
        (fun h ->
          match h wv with
          | None -> ()
          | Some wait -> waits := wait :: !waits
          | exception e -> if !failure = None then failure := Some e)
        durable_hooks;
      Rwset.Wlog.publish_plan t.wset ~version:wv;
      note_published bs t;
      release_locks t;
      bs.bs_dirty <- true;
      Committed
        {
          pd_after = after_hooks;
          pd_waits = List.rev !waits;
          pd_failure = !failure;
          pd_wrote = true;
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* The combiner                                                         *)

(* Bound the drain: a round is one exchange of the publication list,
   and a combiner serves at most this many before handing the gate
   back — fresh arrivals should not convoy behind one domain
   forever. *)
let drain_rounds = 4

(* Drain one batch (oldest first).  Returns [true] if a chaos draw
   abandoned the drain mid-batch — the remaining slots have been
   pushed back for a self-electing waiter. *)
let rec drain_batch bs ~committed = function
  | [] -> false
  | sl :: rest as remaining -> (
      (* The handoff chaos point, drawn before the claim — the window
         where a dying combiner could strand another domain's commit. *)
      match Fault.check Fault.Combine_handoff with
      | Some (Fault.Kill | Fault.Crash) ->
          (* Abandon: hand every undrained entry back to the list.
             Pushing oldest-first preserves FIFO through the next
             drain's exchange-and-reverse. *)
          List.iter push_slot remaining;
          true
      | draw ->
          (match draw with
          | Some (Fault.Delay n) -> Fault.spin n
          | Some Fault.Wedge ->
              (* A gate holder cannot wedge awaiting a remote kill —
                 it would deadlock the whole mode; serve as a delay. *)
              Fault.spin 64
          | _ -> ());
          let spurious = draw = Some Fault.Abort in
          if Atomic.compare_and_set sl.sl_state Waiting Claimed then begin
            let oc =
              if spurious then Rejected Conflict
              else
                match commit_entry bs sl.sl_txn with
                | oc -> oc
                | exception _ ->
                    (* [commit_entry] is non-raising by construction;
                       belt-and-braces so a bug rejects the entry
                       instead of stranding it in [Claimed]. *)
                    Rejected Conflict
            in
            (match oc with Committed _ -> incr committed | Rejected _ -> ());
            Atomic.set sl.sl_state (Done oc)
          end;
          (* CAS failure: the owner cancelled (deadline, kill, or it
             self-elected earlier) — nothing to do. *)
          drain_batch bs ~committed rest)

(* Commit [t] as the combiner (gate held on entry; released here).
   Returns [t]'s own [done_t] or raises its [Abort_exn] — exactly the
   inline publisher's contract — after draining the batch. *)
let combiner_commit t =
  Stats.record_combiner_election ();
  let sess =
    { s_gen = Atomic.fetch_and_add session_gen 1; s_flushes = [] }
  in
  Domain.DLS.set session_key (Some sess);
  let bs = fresh_batch_state () in
  let committed = ref 0 in
  let flush_failure = ref None in
  let own = ref (Rejected Killed) in
  Fun.protect
    ~finally:(fun () ->
      (* Merged replay flushes must land before the gate releases:
         once it is free, a new transaction may read the base
         structures, and acked entries' effects must be there. *)
      (match run_hooks (List.rev sess.s_flushes) with
      | () -> ()
      | exception e -> flush_failure := Some e);
      Domain.DLS.set session_key None;
      Atomic.set gate_quiescent false;
      Protocol.release_commit_gate t;
      if !committed > 0 then begin
        Stats.add_combined_commits !committed;
        if
          Proust_obs.Gate.get () land Proust_obs.Gate.metrics_bit <> 0
        then Proust_obs.Metrics.add_combiner_batch !committed
      end)
    (fun () ->
      own := commit_entry bs t;
      (match !own with Committed _ -> incr committed | Rejected _ -> ());
      let linger_ns = effective_linger_ns () in
      (* The budget bounds the gap between arrivals, not total tenure:
         it resets after every drain, so a busy combiner keeps serving
         while an idle one releases within one budget of its last
         batch.  Total tenure stays bounded by [drain_rounds]. *)
      let linger_until =
        ref (if linger_ns = 0 then 0 else Clock.now_mono_ns () + linger_ns)
      in
      let rounds = ref 0 in
      let abandoned = ref false in
      let serving = ref true in
      while !serving && (not !abandoned) && !rounds < drain_rounds do
        match Atomic.get pub_list with
        | [] ->
            (* Linger polls are not drain rounds: keep yielding until
               the budget runs out or an arrival starts a real round.
               The sleep is the point — on an oversubscribed machine
               it is what lets a would-be batch member run at all.
               Every tick taken so far has published, so advertise the
               gate as quiescent: transaction starts may sample their
               snapshots through the linger instead of serializing
               behind it (see [Txn_state.snapshot_clock]). *)
            if !linger_until <> 0 && Clock.now_mono_ns () < !linger_until
            then begin
              Atomic.set gate_quiescent true;
              Unix.sleepf 1e-6
            end
            else serving := false
        | _ ->
            Atomic.set gate_quiescent false;
            incr rounds;
            let batch = List.rev (Atomic.exchange pub_list []) in
            abandoned := drain_batch bs ~committed batch;
            (* A batch drained means the gate *is* contended: re-read
               the effective budget so an adaptive combiner that
               started solo lingers once arrivals materialize. *)
            let linger_ns = effective_linger_ns () in
            if linger_ns <> 0 then
              linger_until := Clock.now_mono_ns () + linger_ns
      done);
  match !own with
  | Committed d -> (
      match (d.pd_failure, !flush_failure) with
      | None, (Some _ as f) -> { d with pd_failure = f }
      | _ -> d)
  | Rejected r -> (
      (* A flush failure with our own entry rejected has no commit to
         ride back on; it is a real error and must surface rather than
         be swallowed by a silent retry. *)
      match !flush_failure with
      | Some e -> raise e
      | None -> raise (Abort_exn r))

(* ------------------------------------------------------------------ *)
(* The grouped publish (waiter side)                                    *)

let try_gate t = Atomic.compare_and_set commit_gate 0 t.tdesc.Txn_desc.id

(* Hand an outcome to its owner: the ladder's abort machinery expects
   [Abort_exn]; a commit finishes the owner-side metrics pairing. *)
let consume t = function
  | Committed d ->
      obs_commit t;
      d
  | Rejected r -> raise (Abort_exn r)

let publish_grouped t =
  chaos_point t Fault.Pre_validate;
  check_deadline t;
  if try_gate t then consume t (Committed (combiner_commit t))
  else begin
    (* Losing the gate is the observed-contention signal the adaptive
       linger arms on. *)
    note_gate_contention ();
    let sl = { sl_txn = t; sl_state = Atomic.make Waiting } in
    push_slot sl;
    Backoff.reset t.gate_backoff;
    let rec wait () =
      match Atomic.get sl.sl_state with
      | Done oc -> consume t oc
      | Claimed ->
          (* The combiner is committing us right now. *)
          Domain.cpu_relax ();
          wait ()
      | Cancelled ->
          (* Only this domain cancels, and it returns when it does. *)
          assert false
      | Waiting ->
          if Txn_desc.is_aborted t.tdesc then withdraw Killed
          else if (not t.tdesc.Txn_desc.irrevocable) && deadline_expired t
          then withdraw Timed_out
          else if Atomic.get commit_gate = 0 && try_gate t then begin
            (* Self-election: the gate is free yet our slot is
               undrained — the previous combiner finished between our
               push and its exchange, or chaos abandoned the batch.
               Re-examine the slot under the gate: a free gate means
               no claim was in flight, so it is [Waiting] or already
               [Done]. *)
            match Atomic.get sl.sl_state with
            | Done oc ->
                Protocol.release_commit_gate t;
                consume t oc
            | _ ->
                (* Withdraw the slot (a later drain must skip it) and
                   commit ourselves as the combiner. *)
                ignore (Atomic.compare_and_set sl.sl_state Waiting Cancelled);
                consume t (Committed (combiner_commit t))
          end
          else begin
            obs_wait ~txn:t.tdesc.Txn_desc.id
              ~held_by:(Atomic.get commit_gate) t.gate_backoff;
            wait ()
          end
    and withdraw reason =
      if Atomic.compare_and_set sl.sl_state Waiting Cancelled then
        raise (Abort_exn reason)
      else wait () (* lost the race: the combiner claimed us *)
    in
    wait ()
  end

(* ------------------------------------------------------------------ *)
(* The inline publish (the classic path, ex-[Commit_ladder.do_commit])  *)

let publish_inline t ~has_writes =
  (* Phase 1: the protocol takes its commit locks — the plan in uid
     order, or the one global gate (Serial_commit). *)
  if has_writes then t.proto.p_acquire t;
  let fail reason =
    t.proto.p_release_fail t;
    raise (Abort_exn reason)
  in
  (match chaos_point t Fault.Pre_validate with
  | () -> ()
  | exception Abort_exn reason -> fail reason);
  (* Deadline check at the head of validation: a commit that locked
     its plan but whose deadline passed releases everything here
     rather than paying for validation it no longer wants.
     [check_deadline] is a no-op for irrevocable attempts. *)
  (match check_deadline t with
  | () -> ()
  | exception Abort_exn reason -> fail reason);
  (* Phase 2: validate the read set against the snapshot timestamp.
     A transaction whose writes immediately follow its snapshot
     (rv+1 = wv) cannot have missed a concurrent commit, per TL2.
     Durable transactions tick even without tvar writes: their
     redo-log records need distinct LSNs (a pessimistic lazy-map op
     can commit with an empty tvar write set yet still log). *)
  let has_durable = t.durable_hooks <> [] in
  let wv =
    if has_writes || has_durable then Clock.tick Clock.global else t.rv
  in
  if has_writes && wv > t.rv + 1 then begin
    let ok = Protocol.reads_valid t in
    obs_validate t ~ok;
    if not ok then fail Conflict
  end;
  (* Phase 3: linearize. *)
  if not (Txn_desc.try_commit t.tdesc) then fail Killed;
  Stats.record_commit ();
  obs_commit t;
  (* Phase 4: locked-phase handlers (replay logs), then publish. *)
  t.finished <- true;
  let locked_hooks = List.rev t.commit_locked_hooks in
  let after_hooks = List.rev t.after_commit_hooks in
  let durable_hooks = List.rev t.durable_hooks in
  t.commit_locked_hooks <- [];
  t.after_commit_hooks <- [];
  t.durable_hooks <- [];
  (* The attempt has linearized: whatever the locked-phase hooks do,
     the write set publishes, the locks release, and the after-commit
     hooks still run — structure residue cleanup (e.g. pessimistic
     abstract-lock release) rides on the latter, so a raising locked
     hook must not starve them.  The earliest hook failure wins and
     re-raises once hygiene is restored (in the ladder). *)
  let locked_failure =
    match run_hooks locked_hooks with () -> None | exception e -> Some e
  in
  (* Durable hooks run while the write locks are still held: the
     redo-log append for a conflicting successor cannot be ordered
     before ours, so append order agrees with conflict order.  Each
     hook gets the commit version as its LSN and may hand back a
     flush-wait thunk, deferred until every lock and gate is
     released — group commit means the wait spans other domains'
     appends and must not extend the locked window. *)
  let locked_failure = ref locked_failure in
  let waits = ref [] in
  List.iter
    (fun h ->
      match h wv with
      | None -> ()
      | Some wait -> waits := wait :: !waits
      | exception e -> if !locked_failure = None then locked_failure := Some e)
    durable_hooks;
  Rwset.Wlog.publish_plan t.wset ~version:wv;
  release_locks t;
  t.proto.p_release t;
  {
    pd_after = after_hooks;
    pd_waits = List.rev !waits;
    pd_failure = !locked_failure;
    pd_wrote = has_writes;
  }

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)

(* Irrevocable (serial-fallback) attempts never group: the quiesce
   token has already turned every other writer away, so there is no
   batch to join — and nothing may reject an irrevocable commit. *)
let publish t ~has_writes =
  if
    has_writes
    && t.proto.p_stage = Group_commit
    && (not t.tdesc.Txn_desc.irrevocable)
    && combining ()
  then publish_grouped t
  else publish_inline t ~has_writes
