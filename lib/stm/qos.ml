(* Transaction quality-of-service: overload shedding and the
   stuck-transaction watchdog.

   Deadlines and retry budgets live in the attempt machinery itself
   (Txn_desc carries the deadline; Commit_ladder enforces both at
   attempt boundaries); this module holds the two control loops that
   sit *outside* any one transaction:

   - [Shedder]: an admission controller that watches the process-wide
     abort rate and, when the system is thrashing, turns new optional
     work away at the door instead of letting it pile onto the
     contention that is causing the thrashing;
   - [Watchdog]: a supervisor that scans the per-domain watch slots
     ({!Txn_state.watch_list}) for attempts that have been running far
     longer than the observed p99 commit latency and kills them through
     the ordinary remote-kill path, escalating to breaking the serial
     commit gate when the gate holder itself is the stuck party.

   Both are off by default and their disabled fast paths are single
   atomic loads, per the repo-wide observability budget. *)

(* ------------------------------------------------------------------ *)
(* Hysteresis                                                           *)

(* The admission state machine, kept pure (no clocks, no atomics) so
   qcheck can drive it through arbitrary rate sequences and assert the
   no-flapping property directly. *)
module Hysteresis = struct
  type state = Normal | Degraded

  let state_name = function Normal -> "normal" | Degraded -> "degraded"

  (* [step] returns the successor state and whether a transition
     happened.  The two thresholds deliberately straddle a dead band
     ([recover_below < degrade_above]): a rate wandering inside the
     band never flips the state, which is the anti-flapping property
     the qcheck suite pins down. *)
  let step ~degrade_above ~recover_below state rate =
    match state with
    | Normal -> if rate > degrade_above then (Degraded, true) else (Normal, false)
    | Degraded ->
        if rate < recover_below then (Normal, true) else (Degraded, false)
end

(* ------------------------------------------------------------------ *)
(* The overload shedder                                                 *)

module Shedder = struct
  type config = {
    sample_window : float;
        (* seconds between abort-rate samples of the Stats counters *)
    alpha : float;  (* EWMA weight of the newest window *)
    degrade_above : float;  (* EWMA abort rate that enters Degraded *)
    recover_below : float;  (* EWMA abort rate that re-enters Normal *)
    min_window_attempts : int;
        (* windows with fewer attempt starts than this are discarded:
           a near-idle window's rate is mostly noise *)
    bucket_capacity : float;  (* token bucket burst size *)
    refill_per_s : float;  (* tokens per second while Degraded *)
  }

  let default_config =
    {
      sample_window = 0.01;
      alpha = 0.3;
      degrade_above = 0.7;
      recover_below = 0.4;
      min_window_attempts = 32;
      bucket_capacity = 64.0;
      refill_per_s = 2000.0;
    }

  (* Fast-path state: both words are read on every [admit] while
     enabled, written only on control-plane transitions. *)
  let on = Atomic.make false
  let degraded = Atomic.make false

  (* Time gate for sampling: the next [Clock.now_mono_ns] at which some
     admitting domain should take a sample.  Claimed by CAS so exactly
     one domain pays for each window's bookkeeping. *)
  let next_sample_ns = Atomic.make 0

  (* Control block, mutated only under [lock] by the domain that won
     the sample CAS (or by tests via [inject_sample]). *)
  type ctl = {
    mutable cfg : config;
    mutable ewma : float;
    mutable have_ewma : bool;
    mutable last : Stats.snapshot;
    mutable state : Hysteresis.state;
    mutable tokens : float;
    mutable last_refill_ns : int;
  }

  let lock = Mutex.create ()

  let ctl =
    {
      cfg = default_config;
      ewma = 0.0;
      have_ewma = false;
      last = Stats.read ();
      state = Hysteresis.Normal;
      tokens = default_config.bucket_capacity;
      last_refill_ns = 0;
    }

  let publish_gauges () =
    Proust_obs.Metrics.set_gauge "qos_state"
      (match ctl.state with Hysteresis.Normal -> 0 | Hysteresis.Degraded -> 1);
    Proust_obs.Metrics.set_gauge "qos_abort_ewma_bp"
      (int_of_float (ctl.ewma *. 10_000.0))

  (* Apply one abort-rate observation to the EWMA and the hysteresis
     machine; caller holds [lock]. *)
  let apply_rate rate =
    ctl.ewma <-
      (if ctl.have_ewma then
         (ctl.cfg.alpha *. rate) +. ((1.0 -. ctl.cfg.alpha) *. ctl.ewma)
       else rate);
    ctl.have_ewma <- true;
    let state', transitioned =
      Hysteresis.step ~degrade_above:ctl.cfg.degrade_above
        ~recover_below:ctl.cfg.recover_below ctl.state ctl.ewma
    in
    if transitioned then begin
      ctl.state <- state';
      Atomic.set degraded (state' = Hysteresis.Degraded);
      Stats.record_degraded_transition ()
    end;
    publish_gauges ()

  let sample_now () =
    Mutex.lock lock;
    let now = Stats.read () in
    let w = Stats.diff ctl.last now in
    ctl.last <- now;
    if w.Stats.starts >= ctl.cfg.min_window_attempts then
      apply_rate (float_of_int w.Stats.aborts /. float_of_int w.Stats.starts);
    Mutex.unlock lock

  let maybe_sample () =
    let due = Atomic.get next_sample_ns in
    let now = Clock.now_mono_ns () in
    if
      now >= due
      && Atomic.compare_and_set next_sample_ns due
           (now + int_of_float (ctl.cfg.sample_window *. 1e9))
    then sample_now ()

  (* Token bucket, consulted only while Degraded: shaped trickle of
     admissions so the system keeps making progress (and keeps
     producing rate samples to recover with) instead of slamming shut. *)
  let take_token () =
    Mutex.lock lock;
    let now = Clock.now_mono_ns () in
    let dt = float_of_int (now - ctl.last_refill_ns) *. 1e-9 in
    ctl.last_refill_ns <- now;
    ctl.tokens <-
      Float.min ctl.cfg.bucket_capacity
        (ctl.tokens +. (Float.max 0.0 dt *. ctl.cfg.refill_per_s));
    let ok = ctl.tokens >= 1.0 in
    if ok then ctl.tokens <- ctl.tokens -. 1.0;
    Mutex.unlock lock;
    ok

  let admit () =
    if not (Atomic.get on) then true
    else begin
      maybe_sample ();
      if not (Atomic.get degraded) then true else take_token ()
    end

  let enable ?(config = default_config) () =
    Mutex.lock lock;
    ctl.cfg <- config;
    ctl.ewma <- 0.0;
    ctl.have_ewma <- false;
    ctl.last <- Stats.read ();
    ctl.state <- Hysteresis.Normal;
    ctl.tokens <- config.bucket_capacity;
    ctl.last_refill_ns <- Clock.now_mono_ns ();
    Atomic.set degraded false;
    publish_gauges ();
    Mutex.unlock lock;
    Atomic.set next_sample_ns
      (Clock.now_mono_ns () + int_of_float (config.sample_window *. 1e9));
    Atomic.set on true

  let disable () =
    Atomic.set on false;
    Atomic.set degraded false

  let enabled () = Atomic.get on
  let state () = ctl.state
  let abort_ewma () = if ctl.have_ewma then Some ctl.ewma else None

  (* Test hook: feed one observation straight into the EWMA/hysteresis
     without waiting for a real Stats window. *)
  let inject_sample rate =
    Mutex.lock lock;
    apply_rate rate;
    Mutex.unlock lock
end

(* ------------------------------------------------------------------ *)
(* The stuck-transaction watchdog                                       *)

module Watchdog = struct
  type config = {
    interval : float;  (* seconds between scans *)
    p99_multiple : float;
        (* kill threshold as a multiple of the observed p99 commit
           latency (max across Metrics scopes) *)
    min_age : float;
        (* seconds: floor under the kill threshold, and the whole
           threshold when no commit latency has been observed yet *)
    breaker_multiple : float;
        (* gate-breaker threshold as a multiple of the kill threshold *)
  }

  let default_config =
    { interval = 0.01; p99_multiple = 16.0; min_age = 0.05; breaker_multiple = 4.0 }

  let kills_c = Atomic.make 0
  let breaks_c = Atomic.make 0
  let kills () = Atomic.get kills_c
  let breaks () = Atomic.get breaks_c

  (* The kill threshold adapts to the workload: a healthy long-running
     analytics transaction under a slow protocol is not "stuck" if
     commits of its ilk routinely take that long.  With metrics off (no
     samples) the static [min_age] floor is the whole threshold. *)
  let threshold_ns cfg =
    let floor_ns = int_of_float (cfg.min_age *. 1e9) in
    let p99 =
      List.fold_left
        (fun acc (s : Proust_obs.Metrics.scope_summary) ->
          if s.commit.Proust_obs.Histogram.count > 0 then
            max acc s.commit.Proust_obs.Histogram.p99
          else acc)
        0
        (Proust_obs.Metrics.scopes ())
    in
    if p99 = 0 then floor_ns
    else max floor_ns (int_of_float (cfg.p99_multiple *. float_of_int p99))

  (* One pass over the watch slots.  Escalation ladder:

     1. an attempt older than the threshold is killed through
        [Txn_desc.try_kill] — the same CAS a contention manager uses,
        so the victim unwinds through the ordinary abort path with all
        its lock hygiene.  [try_kill] refuses irrevocable descriptors,
        which is what keeps healthy serial-fallback attempts safe from
        false kills by construction;
     2. if the stuck attempt holds the serial commit gate and has aged
        past [breaker_multiple] thresholds, the kill evidently did not
        free the gate (e.g. the holder is wedged past its last liveness
        check, or died mid-publish): break the gate by force so the
        rest of the system stops convoying behind it.  This is a
        last-resort availability-over-purity move and is counted
        separately in [breaks]. *)
  let scan_once ?(config = default_config) () =
    let thr = threshold_ns config in
    let brk = int_of_float (config.breaker_multiple *. float_of_int thr) in
    let now = Clock.now_mono_ns () in
    List.iter
      (fun (ws : Txn_state.watch_slot) ->
        match Atomic.get ws.Txn_state.ws_desc with
        | None -> ()
        | Some d ->
            let age = now - Atomic.get ws.Txn_state.ws_start_ns in
            if age > thr && Txn_desc.is_active d then begin
              if Txn_desc.try_kill d then begin
                Stats.record_watchdog_kill ();
                Atomic.incr kills_c
              end
            end;
            if
              age > brk
              && (not d.Txn_desc.irrevocable)
              && Atomic.get Txn_state.commit_gate = d.Txn_desc.id
            then
              if Atomic.compare_and_set Txn_state.commit_gate d.Txn_desc.id 0
              then begin
                Stats.record_watchdog_kill ();
                Atomic.incr breaks_c
              end)
      (Txn_state.watch_list ())

  type t = { stop_flag : bool Atomic.t; dom : unit Domain.t }

  let start ?(config = default_config) () =
    Txn_state.set_watchdog true;
    let stop_flag = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          while not (Atomic.get stop_flag) do
            scan_once ~config ();
            Unix.sleepf config.interval
          done)
    in
    { stop_flag; dom }

  let stop t =
    Atomic.set t.stop_flag true;
    Domain.join t.dom;
    Txn_state.set_watchdog false
end
