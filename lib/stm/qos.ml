(* Transaction quality-of-service: overload shedding and the
   stuck-transaction watchdog.

   Deadlines and retry budgets live in the attempt machinery itself
   (Txn_desc carries the deadline; Commit_ladder enforces both at
   attempt boundaries); this module holds the two control loops that
   sit *outside* any one transaction:

   - [Shedder]: an admission controller that watches the process-wide
     abort rate and, when the system is thrashing, turns new optional
     work away at the door instead of letting it pile onto the
     contention that is causing the thrashing;
   - [Watchdog]: a supervisor that scans the per-domain watch slots
     ({!Txn_state.watch_list}) for attempts that have been running far
     longer than the observed p99 commit latency and kills them through
     the ordinary remote-kill path, escalating to breaking the serial
     commit gate when the gate holder itself is the stuck party.

   Both are off by default and their disabled fast paths are single
   atomic loads, per the repo-wide observability budget. *)

(* ------------------------------------------------------------------ *)
(* Hysteresis                                                           *)

(* The admission state machine, kept pure (no clocks, no atomics) so
   qcheck can drive it through arbitrary rate sequences and assert the
   no-flapping property directly. *)
module Hysteresis = struct
  type state = Normal | Degraded

  let state_name = function Normal -> "normal" | Degraded -> "degraded"

  (* [step] returns the successor state and whether a transition
     happened.  The two thresholds deliberately straddle a dead band
     ([recover_below < degrade_above]): a rate wandering inside the
     band never flips the state, which is the anti-flapping property
     the qcheck suite pins down. *)
  let step ~degrade_above ~recover_below state rate =
    match state with
    | Normal -> if rate > degrade_above then (Degraded, true) else (Normal, false)
    | Degraded ->
        if rate < recover_below then (Normal, true) else (Degraded, false)
end

(* ------------------------------------------------------------------ *)
(* The overload shedder                                                 *)

module Shedder = struct
  type config = {
    sample_window : float;
        (* seconds between abort-rate samples of the Stats counters *)
    alpha : float;  (* EWMA weight of the newest window *)
    degrade_above : float;  (* EWMA abort rate that enters Degraded *)
    recover_below : float;  (* EWMA abort rate that re-enters Normal *)
    min_window_attempts : int;
        (* windows with fewer attempt starts than this are discarded:
           a near-idle window's rate is mostly noise *)
    bucket_capacity : float;  (* token bucket burst size *)
    refill_per_s : float;  (* tokens per second while Degraded *)
  }

  let default_config =
    {
      sample_window = 0.01;
      alpha = 0.3;
      degrade_above = 0.7;
      recover_below = 0.4;
      min_window_attempts = 32;
      bucket_capacity = 64.0;
      refill_per_s = 2000.0;
    }

  (* Fast-path state: both words are read on every [admit] while
     enabled, written only on control-plane transitions. *)
  let on = Atomic.make false
  let degraded = Atomic.make false

  (* Time gate for sampling: the next [Clock.now_mono_ns] at which some
     admitting domain should take a sample.  Claimed by CAS so exactly
     one domain pays for each window's bookkeeping. *)
  let next_sample_ns = Atomic.make 0

  (* Control block, mutated only under [lock] by the domain that won
     the sample CAS (or by tests via [inject_sample]). *)
  type ctl = {
    mutable cfg : config;
    mutable ewma : float;
    mutable have_ewma : bool;
    mutable last : Stats.snapshot;
    mutable state : Hysteresis.state;
    mutable tokens : float;
    mutable last_refill_ns : int;
  }

  let lock = Mutex.create ()

  let ctl =
    {
      cfg = default_config;
      ewma = 0.0;
      have_ewma = false;
      last = Stats.read ();
      state = Hysteresis.Normal;
      tokens = default_config.bucket_capacity;
      last_refill_ns = 0;
    }

  let publish_gauges () =
    Proust_obs.Metrics.set_gauge "qos_state"
      (match ctl.state with Hysteresis.Normal -> 0 | Hysteresis.Degraded -> 1);
    Proust_obs.Metrics.set_gauge "qos_abort_ewma_bp"
      (int_of_float (ctl.ewma *. 10_000.0))

  (* Apply one abort-rate observation to the EWMA and the hysteresis
     machine; caller holds [lock]. *)
  let apply_rate rate =
    ctl.ewma <-
      (if ctl.have_ewma then
         (ctl.cfg.alpha *. rate) +. ((1.0 -. ctl.cfg.alpha) *. ctl.ewma)
       else rate);
    ctl.have_ewma <- true;
    let state', transitioned =
      Hysteresis.step ~degrade_above:ctl.cfg.degrade_above
        ~recover_below:ctl.cfg.recover_below ctl.state ctl.ewma
    in
    if transitioned then begin
      ctl.state <- state';
      Atomic.set degraded (state' = Hysteresis.Degraded);
      Stats.record_degraded_transition ()
    end;
    publish_gauges ()

  let sample_now () =
    Mutex.lock lock;
    let now = Stats.read () in
    let w = Stats.diff ctl.last now in
    ctl.last <- now;
    if w.Stats.starts >= ctl.cfg.min_window_attempts then
      apply_rate (float_of_int w.Stats.aborts /. float_of_int w.Stats.starts);
    Mutex.unlock lock

  let maybe_sample () =
    let due = Atomic.get next_sample_ns in
    let now = Clock.now_mono_ns () in
    if
      now >= due
      && Atomic.compare_and_set next_sample_ns due
           (now + int_of_float (ctl.cfg.sample_window *. 1e9))
    then sample_now ()

  (* Token bucket, consulted only while Degraded: shaped trickle of
     admissions so the system keeps making progress (and keeps
     producing rate samples to recover with) instead of slamming shut. *)
  let take_token () =
    Mutex.lock lock;
    let now = Clock.now_mono_ns () in
    let dt = float_of_int (now - ctl.last_refill_ns) *. 1e-9 in
    ctl.last_refill_ns <- now;
    ctl.tokens <-
      Float.min ctl.cfg.bucket_capacity
        (ctl.tokens +. (Float.max 0.0 dt *. ctl.cfg.refill_per_s));
    let ok = ctl.tokens >= 1.0 in
    if ok then ctl.tokens <- ctl.tokens -. 1.0;
    Mutex.unlock lock;
    ok

  let admit () =
    if not (Atomic.get on) then true
    else begin
      maybe_sample ();
      if not (Atomic.get degraded) then true else take_token ()
    end

  let enable ?(config = default_config) () =
    Mutex.lock lock;
    ctl.cfg <- config;
    ctl.ewma <- 0.0;
    ctl.have_ewma <- false;
    ctl.last <- Stats.read ();
    ctl.state <- Hysteresis.Normal;
    ctl.tokens <- config.bucket_capacity;
    ctl.last_refill_ns <- Clock.now_mono_ns ();
    Atomic.set degraded false;
    publish_gauges ();
    Mutex.unlock lock;
    Atomic.set next_sample_ns
      (Clock.now_mono_ns () + int_of_float (config.sample_window *. 1e9));
    Atomic.set on true

  let disable () =
    Atomic.set on false;
    Atomic.set degraded false

  let enabled () = Atomic.get on
  let state () = ctl.state
  let abort_ewma () = if ctl.have_ewma then Some ctl.ewma else None

  (* Test hook: feed one observation straight into the EWMA/hysteresis
     without waiting for a real Stats window. *)
  let inject_sample rate =
    Mutex.lock lock;
    apply_rate rate;
    Mutex.unlock lock
end

(* ------------------------------------------------------------------ *)
(* Per-tenant QoS classes                                               *)

(* The shedder above is class-blind: one process-wide EWMA, one token
   bucket, every caller equal at the door.  Multi-tenant service needs
   the opposite: each tenant carries its own admission bucket and its
   own abort/read-mix EWMAs, so an antagonist's thrashing is charged
   to the antagonist — the primitive the brownout controller's
   class-aware degradation is built from. *)
module Tenant = struct
  type klass = Gold | Bronze

  let klass_name = function Gold -> "gold" | Bronze -> "bronze"

  type config = {
    rate : float;
        (* sustained admissions per second; <= 0 means uncapped *)
    burst : float;  (* token-bucket capacity *)
    alpha : float;  (* EWMA weight for the abort-rate/read-mix samples *)
    read_dominated_above : float;
        (* read-mix EWMA at or above which the tenant counts as
           read-dominated (eligible for RO routing under brownout) *)
  }

  let default_config =
    { rate = 0.0; burst = 32.0; alpha = 0.05; read_dominated_above = 0.75 }

  (* Monotonically increasing event counters, one cell each: tenants
     are few and their counters are bumped once per request, so the
     16-way striping Stats uses would be overkill here. *)
  type counters = {
    arrivals : int Atomic.t;
    admitted : int Atomic.t;
    committed : int Atomic.t;
    shed : int Atomic.t;
    timed_out : int Atomic.t;
    budget_exhausted : int Atomic.t;
    ro_routed : int Atomic.t;
    aborts : int Atomic.t;
  }

  type t = {
    name : string;
    klass : klass;
    cfg : config;
    c : counters;
    mu : Mutex.t;
    mutable tokens : float;
    mutable last_refill_ns : int;
    mutable abort_ewma : float;
    mutable read_ewma : float;
    mutable have_sample : bool;
  }

  let make ?(config = default_config) ~name ~klass () =
    {
      name;
      klass;
      cfg = config;
      c =
        {
          arrivals = Atomic.make 0;
          admitted = Atomic.make 0;
          committed = Atomic.make 0;
          shed = Atomic.make 0;
          timed_out = Atomic.make 0;
          budget_exhausted = Atomic.make 0;
          ro_routed = Atomic.make 0;
          aborts = Atomic.make 0;
        };
      mu = Mutex.create ();
      tokens = config.burst;
      last_refill_ns = Clock.now_mono_ns ();
      abort_ewma = 0.0;
      read_ewma = 0.0;
      have_sample = false;
    }

  let name t = t.name
  let klass t = t.klass

  (* Token-bucket admission; one call per arriving request.  A refusal
     is the caller's cue to count a shed — the bucket itself stays
     outcome-agnostic. *)
  let admit t =
    Atomic.incr t.c.arrivals;
    if t.cfg.rate <= 0.0 then begin
      Atomic.incr t.c.admitted;
      true
    end
    else begin
      Mutex.lock t.mu;
      let now = Clock.now_mono_ns () in
      let dt = float_of_int (now - t.last_refill_ns) *. 1e-9 in
      t.last_refill_ns <- now;
      t.tokens <-
        Float.min t.cfg.burst
          (t.tokens +. (Float.max 0.0 dt *. t.cfg.rate));
      let ok = t.tokens >= 1.0 in
      if ok then t.tokens <- t.tokens -. 1.0;
      Mutex.unlock t.mu;
      if ok then Atomic.incr t.c.admitted;
      ok
    end

  (* One finished episode's observations: the abort-rate sample is the
     episode's wasted-attempt share (a clean first-attempt commit is
     0.0; a deadline/budget failure is 1.0 — everything it did was
     waste), the read-mix sample is 1.0 for a pure-read episode. *)
  type outcome_kind = Committed | Shed | Timed_out | Budget_exhausted

  let ewma_update t ~abort_sample ~read_sample =
    Mutex.lock t.mu;
    if t.have_sample then begin
      t.abort_ewma <-
        (t.cfg.alpha *. abort_sample)
        +. ((1.0 -. t.cfg.alpha) *. t.abort_ewma);
      t.read_ewma <-
        (t.cfg.alpha *. read_sample) +. ((1.0 -. t.cfg.alpha) *. t.read_ewma)
    end
    else begin
      t.abort_ewma <- abort_sample;
      t.read_ewma <- read_sample;
      t.have_sample <- true
    end;
    Mutex.unlock t.mu

  let note_outcome t kind ~read ~aborts =
    if aborts > 0 then ignore (Atomic.fetch_and_add t.c.aborts aborts);
    let read_sample = if read then 1.0 else 0.0 in
    match kind with
    | Committed ->
        Atomic.incr t.c.committed;
        ewma_update t
          ~abort_sample:
            (float_of_int aborts /. float_of_int (aborts + 1))
          ~read_sample
    | Shed -> Atomic.incr t.c.shed
    | Timed_out ->
        Atomic.incr t.c.timed_out;
        ewma_update t ~abort_sample:1.0 ~read_sample
    | Budget_exhausted ->
        Atomic.incr t.c.budget_exhausted;
        ewma_update t ~abort_sample:1.0 ~read_sample

  let note_ro_routed t = Atomic.incr t.c.ro_routed

  let abort_ewma t = if t.have_sample then Some t.abort_ewma else None
  let read_fraction t = if t.have_sample then Some t.read_ewma else None

  let read_dominated t =
    t.have_sample && t.read_ewma >= t.cfg.read_dominated_above

  type stats = {
    s_arrivals : int;
    s_admitted : int;
    s_committed : int;
    s_shed : int;
    s_timed_out : int;
    s_budget_exhausted : int;
    s_ro_routed : int;
    s_aborts : int;
    s_abort_ewma : float;
    s_read_fraction : float;
  }

  let stats t =
    {
      s_arrivals = Atomic.get t.c.arrivals;
      s_admitted = Atomic.get t.c.admitted;
      s_committed = Atomic.get t.c.committed;
      s_shed = Atomic.get t.c.shed;
      s_timed_out = Atomic.get t.c.timed_out;
      s_budget_exhausted = Atomic.get t.c.budget_exhausted;
      s_ro_routed = Atomic.get t.c.ro_routed;
      s_aborts = Atomic.get t.c.aborts;
      s_abort_ewma = t.abort_ewma;
      s_read_fraction = t.read_ewma;
    }
end

(* ------------------------------------------------------------------ *)
(* The brownout controller                                              *)

(* Stepwise graceful degradation under sustained overload.  The ladder
   is a pure state machine (qcheck drives it like Hysteresis): pressure
   above [enter_above] for [dwell] consecutive samples climbs one
   level, below [exit_below] for [dwell] samples descends one level,
   and the dead band between them holds — so recovery is stable and
   the system never jumps levels.

   The levels, in escalation order:

   - [Normal]: no interference;
   - [Route_ro]: read-dominated tenants' pure-read requests are routed
     onto the abort-free [Stm.read_only] MVCC path — they stop
     competing for write locks entirely, at zero shed cost;
   - [Shed_bronze]: bronze tenants are turned away at the door; gold
     keeps its full service (and its RO routing);
   - [Shed_gold]: everything is turned away — the last-resort level.
     Deployments that treat gold admission as contractual cap the
     ladder at [Shed_bronze] via [max_level] (the opensystem bench
     does), which is exactly "shed bronze before gold, never gold".

   Pressure is fed by the open runner as admission lag — how far
   behind its *intended* arrival time a request started — normalized
   by [lag_budget].  Lag is the honest open-system overload signal:
   abort storms, convoys and parked queues all surface as lag, and it
   goes to zero as soon as degradation actually relieves the system. *)
module Brownout = struct
  type level = Normal | Route_ro | Shed_bronze | Shed_gold

  let level_index = function
    | Normal -> 0
    | Route_ro -> 1
    | Shed_bronze -> 2
    | Shed_gold -> 3

  let level_of_index = function
    | 0 -> Normal
    | 1 -> Route_ro
    | 2 -> Shed_bronze
    | _ -> Shed_gold

  let level_name = function
    | Normal -> "normal"
    | Route_ro -> "route-ro"
    | Shed_bronze -> "shed-bronze"
    | Shed_gold -> "shed-gold"

  module Ladder = struct
    type config = {
      enter_above : float;  (* pressure climbing one level *)
      exit_below : float;  (* pressure descending one level *)
      dwell : int;  (* consecutive samples before a move *)
      max_level : level;  (* escalation ceiling *)
    }

    let default_config =
      { enter_above = 1.0; exit_below = 0.4; dwell = 3; max_level = Shed_gold }

    type t = { level : level; up_streak : int; down_streak : int }

    let initial = { level = Normal; up_streak = 0; down_streak = 0 }

    (* One pressure observation.  Streaks reset whenever the sample
       falls outside their side of the band, so [dwell] means [dwell]
       *consecutive* samples — a flapping signal never moves the
       ladder.  Returns the successor and whether a level changed. *)
    let step cfg st ~pressure =
      if pressure > cfg.enter_above then begin
        let streak = st.up_streak + 1 in
        if
          streak >= cfg.dwell
          && level_index st.level < level_index cfg.max_level
        then
          ( {
              level = level_of_index (level_index st.level + 1);
              up_streak = 0;
              down_streak = 0;
            },
            true )
        else ({ st with up_streak = streak; down_streak = 0 }, false)
      end
      else if pressure < cfg.exit_below then begin
        let streak = st.down_streak + 1 in
        if streak >= cfg.dwell && level_index st.level > 0 then
          ( {
              level = level_of_index (level_index st.level - 1);
              up_streak = 0;
              down_streak = 0;
            },
            true )
        else ({ st with down_streak = streak; up_streak = 0 }, false)
      end
      else ({ st with up_streak = 0; down_streak = 0 }, false)
  end

  type config = {
    ladder : Ladder.config;
    alpha : float;  (* EWMA weight of the newest lag observation *)
    sample_window : float;  (* min seconds between ladder steps *)
    lag_budget : float;
        (* seconds of admission lag that count as pressure 1.0 *)
  }

  let default_config =
    {
      ladder = Ladder.default_config;
      alpha = 0.2;
      sample_window = 0.01;
      lag_budget = 0.005;
    }

  type t = {
    cfg : config;
    mu : Mutex.t;
    mutable ladder : Ladder.t;
    mutable ewma : float;
    mutable have : bool;
    mutable transitions : int;
    mutable peak : int;
    next_step_ns : int Atomic.t;
    level_v : int Atomic.t;  (* fast-path mirror of [ladder.level] *)
  }

  let make ?(config = default_config) () =
    {
      cfg = config;
      mu = Mutex.create ();
      ladder = Ladder.initial;
      ewma = 0.0;
      have = false;
      transitions = 0;
      peak = 0;
      next_step_ns = Atomic.make 0;
      level_v = Atomic.make 0;
    }

  let level t = level_of_index (Atomic.get t.level_v)
  let transitions t = t.transitions
  let peak_level t = level_of_index t.peak
  let pressure t = if t.have then Some t.ewma else None

  (* Apply one ladder observation; caller holds [mu]. *)
  let step_locked t =
    let ladder', changed = Ladder.step t.cfg.ladder t.ladder ~pressure:t.ewma in
    t.ladder <- ladder';
    if changed then begin
      let idx = level_index ladder'.Ladder.level in
      Atomic.set t.level_v idx;
      t.transitions <- t.transitions + 1;
      if idx > t.peak then t.peak <- idx;
      Proust_obs.Metrics.set_gauge "brownout_level" idx
    end

  (* One admission-lag observation (seconds), typically once per
     request.  The EWMA updates every call; the ladder only steps once
     per [sample_window], claimed by CAS so one caller pays. *)
  let note_lag t ~lag =
    Mutex.lock t.mu;
    let p = Float.max 0.0 lag /. t.cfg.lag_budget in
    t.ewma <-
      (if t.have then (t.cfg.alpha *. p) +. ((1.0 -. t.cfg.alpha) *. t.ewma)
       else p);
    t.have <- true;
    Mutex.unlock t.mu;
    let due = Atomic.get t.next_step_ns in
    let now = Clock.now_mono_ns () in
    if
      now >= due
      && Atomic.compare_and_set t.next_step_ns due
           (now + int_of_float (t.cfg.sample_window *. 1e9))
    then begin
      Mutex.lock t.mu;
      step_locked t;
      Mutex.unlock t.mu
    end

  (* Test hook: one pressure observation straight into the ladder,
     bypassing the EWMA and the time gate. *)
  let inject_pressure t p =
    Mutex.lock t.mu;
    t.ewma <- p;
    t.have <- true;
    step_locked t;
    Mutex.unlock t.mu

  type decision = Admit | Admit_ro | Shed

  let decision_name = function
    | Admit -> "admit"
    | Admit_ro -> "admit-ro"
    | Shed -> "shed"

  (* Class-aware routing for one admitted request.  [read_txn] says the
     request's transaction body is pure reads (the only shape the
     abort-free RO path can run). *)
  let plan t tenant ~read_txn =
    let route_ro () =
      if read_txn && Tenant.read_dominated tenant then Admit_ro else Admit
    in
    match level t with
    | Normal -> Admit
    | Route_ro -> route_ro ()
    | Shed_bronze ->
        if Tenant.klass tenant = Tenant.Bronze then Shed else route_ro ()
    | Shed_gold -> Shed
end

(* ------------------------------------------------------------------ *)
(* The stuck-transaction watchdog                                       *)

module Watchdog = struct
  type config = {
    interval : float;  (* seconds between scans *)
    p99_multiple : float;
        (* kill threshold as a multiple of the observed p99 commit
           latency (max across Metrics scopes) *)
    min_age : float;
        (* seconds: floor under the kill threshold, and the whole
           threshold when no commit latency has been observed yet *)
    breaker_multiple : float;
        (* gate-breaker threshold as a multiple of the kill threshold *)
  }

  let default_config =
    { interval = 0.01; p99_multiple = 16.0; min_age = 0.05; breaker_multiple = 4.0 }

  let kills_c = Atomic.make 0
  let breaks_c = Atomic.make 0
  let kills () = Atomic.get kills_c
  let breaks () = Atomic.get breaks_c

  (* The kill threshold adapts to the workload: a healthy long-running
     analytics transaction under a slow protocol is not "stuck" if
     commits of its ilk routinely take that long.  With metrics off (no
     samples) the static [min_age] floor is the whole threshold. *)
  let threshold_ns cfg =
    let floor_ns = int_of_float (cfg.min_age *. 1e9) in
    let p99 =
      List.fold_left
        (fun acc (s : Proust_obs.Metrics.scope_summary) ->
          if s.commit.Proust_obs.Histogram.count > 0 then
            max acc s.commit.Proust_obs.Histogram.p99
          else acc)
        0
        (Proust_obs.Metrics.scopes ())
    in
    if p99 = 0 then floor_ns
    else max floor_ns (int_of_float (cfg.p99_multiple *. float_of_int p99))

  (* One pass over the watch slots.  Escalation ladder:

     1. an attempt older than the threshold is killed through
        [Txn_desc.try_kill] — the same CAS a contention manager uses,
        so the victim unwinds through the ordinary abort path with all
        its lock hygiene.  [try_kill] refuses irrevocable descriptors,
        which is what keeps healthy serial-fallback attempts safe from
        false kills by construction;
     2. if the stuck attempt holds the serial commit gate and has aged
        past [breaker_multiple] thresholds, the kill evidently did not
        free the gate (e.g. the holder is wedged past its last liveness
        check, or died mid-publish): break the gate by force so the
        rest of the system stops convoying behind it.  This is a
        last-resort availability-over-purity move and is counted
        separately in [breaks]. *)
  let scan_once ?(config = default_config) () =
    let thr = threshold_ns config in
    let brk = int_of_float (config.breaker_multiple *. float_of_int thr) in
    let now = Clock.now_mono_ns () in
    List.iter
      (fun (ws : Txn_state.watch_slot) ->
        match Atomic.get ws.Txn_state.ws_desc with
        | None -> ()
        | Some d ->
            let age = now - Atomic.get ws.Txn_state.ws_start_ns in
            if age > thr && Txn_desc.is_active d then begin
              if Txn_desc.try_kill d then begin
                Stats.record_watchdog_kill ();
                Atomic.incr kills_c
              end
            end;
            if
              age > brk
              && (not d.Txn_desc.irrevocable)
              && Atomic.get Txn_state.commit_gate = d.Txn_desc.id
            then
              if Atomic.compare_and_set Txn_state.commit_gate d.Txn_desc.id 0
              then begin
                Stats.record_watchdog_kill ();
                Atomic.incr breaks_c
              end)
      (Txn_state.watch_list ())

  type t = { stop_flag : bool Atomic.t; dom : unit Domain.t }

  let start ?(config = default_config) () =
    Txn_state.set_watchdog true;
    let stop_flag = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          while not (Atomic.get stop_flag) do
            scan_once ~config ();
            Unix.sleepf config.interval
          done)
    in
    { stop_flag; dom }

  let stop t =
    Atomic.set t.stop_flag true;
    Domain.join t.dom;
    Txn_state.set_watchdog false
end
