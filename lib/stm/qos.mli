(** Transaction quality-of-service: overload shedding and the
    stuck-transaction watchdog.

    Deadlines and retry budgets are enforced inside the attempt
    machinery ({!Txn_desc} carries the deadline, {!Commit_ladder}
    checks both at attempt boundaries); this module holds the control
    loops that sit outside any one transaction.  Both are off by
    default; their disabled fast paths are single atomic loads. *)

(** The admission state machine, pure so property tests can drive it
    through arbitrary abort-rate sequences. *)
module Hysteresis : sig
  type state = Normal | Degraded

  val state_name : state -> string

  (** [step ~degrade_above ~recover_below state rate] is the successor
      state and whether a transition happened.  Rates inside the dead
      band [(recover_below, degrade_above)] never flip the state. *)
  val step :
    degrade_above:float ->
    recover_below:float ->
    state ->
    float ->
    state * bool
end

(** Admission control: tracks the process-wide abort rate as an EWMA
    over {!Stats} windows; past [degrade_above] the shedder enters
    [Degraded] and {!admit} only lets a token-bucket-shaped trickle of
    new episodes through until the rate falls below [recover_below].
    State and EWMA are published as {!Proust_obs.Metrics} gauges
    (["qos_state"], ["qos_abort_ewma_bp"]). *)
module Shedder : sig
  type config = {
    sample_window : float;  (** seconds between abort-rate samples *)
    alpha : float;  (** EWMA weight of the newest window *)
    degrade_above : float;  (** EWMA abort rate entering [Degraded] *)
    recover_below : float;  (** EWMA abort rate re-entering [Normal] *)
    min_window_attempts : int;
        (** discard windows with fewer attempt starts (noise) *)
    bucket_capacity : float;  (** token-bucket burst size *)
    refill_per_s : float;  (** admissions per second while degraded *)
  }

  val default_config : config
  val enable : ?config:config -> unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool

  (** Admission check for one episode; [true] when disabled.  Called by
      {!Stm.atomic}, which turns a refusal into the [Shed] outcome. *)
  val admit : unit -> bool

  val state : unit -> Hysteresis.state

  (** Current abort-rate EWMA; [None] before the first valid window. *)
  val abort_ewma : unit -> float option

  (** Test hook: feed one abort-rate observation directly into the
      EWMA/hysteresis, bypassing the {!Stats} window sampler. *)
  val inject_sample : float -> unit
end

(** Per-tenant QoS state: a token-bucket admission gate plus abort-rate
    and read-mix EWMAs per tenant, so an antagonist's thrashing is
    charged to the antagonist.  The class ([Gold]/[Bronze]) is what the
    {!Brownout} controller degrades by. *)
module Tenant : sig
  type klass = Gold | Bronze

  val klass_name : klass -> string

  type config = {
    rate : float;  (** sustained admissions/s; [<= 0] means uncapped *)
    burst : float;  (** token-bucket capacity *)
    alpha : float;  (** EWMA weight of the newest episode sample *)
    read_dominated_above : float;
        (** read-mix EWMA at or above which the tenant is
            read-dominated (eligible for brownout RO routing) *)
  }

  val default_config : config

  type t

  val make : ?config:config -> name:string -> klass:klass -> unit -> t
  val name : t -> string
  val klass : t -> klass

  (** Token-bucket admission for one arriving request; also counts the
      arrival.  A refusal is the caller's cue to shed. *)
  val admit : t -> bool

  (** One finished episode: [aborts] is its wasted attempt count,
      [read] whether the body was pure reads.  Feeds the EWMAs and the
      per-tenant counters. *)
  type outcome_kind = Committed | Shed | Timed_out | Budget_exhausted

  val note_outcome : t -> outcome_kind -> read:bool -> aborts:int -> unit

  (** Count one request routed onto the abort-free RO path. *)
  val note_ro_routed : t -> unit

  val abort_ewma : t -> float option
  val read_fraction : t -> float option
  val read_dominated : t -> bool

  type stats = {
    s_arrivals : int;
    s_admitted : int;
    s_committed : int;
    s_shed : int;
    s_timed_out : int;
    s_budget_exhausted : int;
    s_ro_routed : int;
    s_aborts : int;
    s_abort_ewma : float;
    s_read_fraction : float;
  }

  val stats : t -> stats
end

(** Stepwise graceful degradation under sustained overload, driven by
    admission lag (how far behind its {e intended} arrival a request
    started).  Escalation order: [Normal] → [Route_ro] (read-dominated
    tenants' pure-read requests take the abort-free [Stm.read_only]
    path) → [Shed_bronze] → [Shed_gold]; the pure {!Ladder} state
    machine moves one level at a time with a hysteresis dead band and a
    dwell requirement, so recovery is stable and flapping signals never
    move it.  The current level is published as the
    ["brownout_level"] metrics gauge. *)
module Brownout : sig
  type level = Normal | Route_ro | Shed_bronze | Shed_gold

  val level_index : level -> int
  val level_of_index : int -> level
  val level_name : level -> string

  (** The pure escalation state machine (qcheck-able like
      {!Hysteresis}). *)
  module Ladder : sig
    type config = {
      enter_above : float;  (** pressure climbing one level *)
      exit_below : float;  (** pressure descending one level *)
      dwell : int;  (** consecutive samples required for a move *)
      max_level : level;  (** escalation ceiling; deployments with
          contractual gold admission cap at [Shed_bronze] *)
    }

    val default_config : config

    type t = { level : level; up_streak : int; down_streak : int }

    val initial : t

    (** One pressure observation: the successor state and whether the
        level changed.  Samples inside the dead band
        [(exit_below, enter_above)] reset both streaks and never move
        the ladder. *)
    val step : config -> t -> pressure:float -> t * bool
  end

  type config = {
    ladder : Ladder.config;
    alpha : float;  (** EWMA weight of the newest lag observation *)
    sample_window : float;  (** min seconds between ladder steps *)
    lag_budget : float;
        (** seconds of admission lag counting as pressure 1.0 *)
  }

  val default_config : config

  type t

  val make : ?config:config -> unit -> t
  val level : t -> level

  (** Level changes since creation. *)
  val transitions : t -> int

  (** Highest level reached since creation. *)
  val peak_level : t -> level

  (** Current pressure EWMA; [None] before the first observation. *)
  val pressure : t -> float option

  (** One admission-lag observation in seconds (typically once per
      request): updates the EWMA always, steps the ladder at most once
      per [sample_window]. *)
  val note_lag : t -> lag:float -> unit

  (** Test hook: one pressure observation straight into the ladder,
      bypassing the EWMA and the time gate. *)
  val inject_pressure : t -> float -> unit

  type decision = Admit | Admit_ro | Shed

  val decision_name : decision -> string

  (** Routing for one admitted request of [tenant]; [read_txn] marks a
      pure-read transaction body (the only shape the RO path runs). *)
  val plan : t -> Tenant.t -> read_txn:bool -> decision
end

(** Supervisor domain that scans {!Txn_state.watch_list} for attempts
    running far longer than the observed p99 commit latency and kills
    them via {!Txn_desc.try_kill} (which refuses irrevocable attempts,
    so healthy serial-fallback work is safe by construction).  A stuck
    serial-commit-gate holder aged past [breaker_multiple] thresholds
    gets the gate broken by force — the last rung of the escalation
    ladder. *)
module Watchdog : sig
  type config = {
    interval : float;  (** seconds between scans *)
    p99_multiple : float;
        (** kill threshold as a multiple of observed p99 commit
            latency (max over metrics scopes) *)
    min_age : float;
        (** threshold floor in seconds; the whole threshold when no
            commit latency has been observed *)
    breaker_multiple : float;
        (** gate-breaker threshold, in kill thresholds *)
  }

  val default_config : config

  (** Stuck-attempt kills performed since program start. *)
  val kills : unit -> int

  (** Serial-gate breaks performed since program start. *)
  val breaks : unit -> int

  (** The adaptive kill threshold in nanoseconds (exposed for tests). *)
  val threshold_ns : config -> int

  (** One synchronous pass over the watch slots (exposed for tests;
      {!start} runs this in a loop).  Requires stamping to be armed
      via {!Txn_state.set_watchdog} to observe anything. *)
  val scan_once : ?config:config -> unit -> unit

  type t

  (** Arm watch-slot stamping and spawn the supervisor domain. *)
  val start : ?config:config -> unit -> t

  (** Stop and join the supervisor, disarm stamping. *)
  val stop : t -> unit
end
