(** Transaction quality-of-service: overload shedding and the
    stuck-transaction watchdog.

    Deadlines and retry budgets are enforced inside the attempt
    machinery ({!Txn_desc} carries the deadline, {!Commit_ladder}
    checks both at attempt boundaries); this module holds the control
    loops that sit outside any one transaction.  Both are off by
    default; their disabled fast paths are single atomic loads. *)

(** The admission state machine, pure so property tests can drive it
    through arbitrary abort-rate sequences. *)
module Hysteresis : sig
  type state = Normal | Degraded

  val state_name : state -> string

  (** [step ~degrade_above ~recover_below state rate] is the successor
      state and whether a transition happened.  Rates inside the dead
      band [(recover_below, degrade_above)] never flip the state. *)
  val step :
    degrade_above:float ->
    recover_below:float ->
    state ->
    float ->
    state * bool
end

(** Admission control: tracks the process-wide abort rate as an EWMA
    over {!Stats} windows; past [degrade_above] the shedder enters
    [Degraded] and {!admit} only lets a token-bucket-shaped trickle of
    new episodes through until the rate falls below [recover_below].
    State and EWMA are published as {!Proust_obs.Metrics} gauges
    (["qos_state"], ["qos_abort_ewma_bp"]). *)
module Shedder : sig
  type config = {
    sample_window : float;  (** seconds between abort-rate samples *)
    alpha : float;  (** EWMA weight of the newest window *)
    degrade_above : float;  (** EWMA abort rate entering [Degraded] *)
    recover_below : float;  (** EWMA abort rate re-entering [Normal] *)
    min_window_attempts : int;
        (** discard windows with fewer attempt starts (noise) *)
    bucket_capacity : float;  (** token-bucket burst size *)
    refill_per_s : float;  (** admissions per second while degraded *)
  }

  val default_config : config
  val enable : ?config:config -> unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool

  (** Admission check for one episode; [true] when disabled.  Called by
      {!Stm.atomic}, which turns a refusal into the [Shed] outcome. *)
  val admit : unit -> bool

  val state : unit -> Hysteresis.state

  (** Current abort-rate EWMA; [None] before the first valid window. *)
  val abort_ewma : unit -> float option

  (** Test hook: feed one abort-rate observation directly into the
      EWMA/hysteresis, bypassing the {!Stats} window sampler. *)
  val inject_sample : float -> unit
end

(** Supervisor domain that scans {!Txn_state.watch_list} for attempts
    running far longer than the observed p99 commit latency and kills
    them via {!Txn_desc.try_kill} (which refuses irrevocable attempts,
    so healthy serial-fallback work is safe by construction).  A stuck
    serial-commit-gate holder aged past [breaker_multiple] thresholds
    gets the gate broken by force — the last rung of the escalation
    ladder. *)
module Watchdog : sig
  type config = {
    interval : float;  (** seconds between scans *)
    p99_multiple : float;
        (** kill threshold as a multiple of observed p99 commit
            latency (max over metrics scopes) *)
    min_age : float;
        (** threshold floor in seconds; the whole threshold when no
            commit latency has been observed *)
    breaker_multiple : float;
        (** gate-breaker threshold, in kill thresholds *)
  }

  val default_config : config

  (** Stuck-attempt kills performed since program start. *)
  val kills : unit -> int

  (** Serial-gate breaks performed since program start. *)
  val breaks : unit -> int

  (** The adaptive kill threshold in nanoseconds (exposed for tests). *)
  val threshold_ns : config -> int

  (** One synchronous pass over the watch slots (exposed for tests;
      {!start} runs this in a loop).  Requires stamping to be armed
      via {!Txn_state.set_watchdog} to observe anything. *)
  val scan_once : ?config:config -> unit -> unit

  type t

  (** Arm watch-slot stamping and spawn the supervisor domain. *)
  val start : ?config:config -> unit -> t

  (** Stop and join the supervisor, disarm stamping. *)
  val stop : t -> unit
end
