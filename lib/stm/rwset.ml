(* Log-structured transaction read/write/local sets.

   All three logs use the same uniform-representation trick the old
   Hashtbl-of-existentials used: entries erase their value type to
   [Obj.t] (reads/writes) or [exn] (locals), and the original type is
   re-established by the caller under the uid-uniqueness argument —
   equal tvar uid implies physically the same tvar, hence the same type
   parameter.  [unit Tvar.t] is the uniform *view* of a tvar whose
   value type has been erased; only type-agnostic fields (uid, version,
   owner) are touched through it.

   Representation hazard: an [Obj.t array] must never be created from a
   float initializer, or the runtime builds a flat [Double_array] and
   subsequent non-float stores corrupt it.  Every array below is
   created with [dummy] (an immediate int), so the arrays are ordinary
   boxed arrays and the generic (tag-dispatching) access primitives
   handle any later element, boxed floats included. *)

let dummy : Obj.t = Obj.repr 0

(* A tvar with its value type forgotten. *)
type packed_tvar = unit Tvar.t

let pack (type a) (tv : a Tvar.t) : packed_tvar = Obj.magic tv

(* ------------------------------------------------------------------ *)
(* Read log                                                             *)

(* Append-only chunked log of (tvar, observed version) pairs.
   Validation walks flat arrays chunk by chunk — no Hashtbl.fold, no
   iteration allocation.  Duplicate entries for the same tvar are
   permitted: a duplicate only makes validation stricter (each recorded
   version is checked), and the TL2 snapshot check in the read path
   ([version > rv] aborts or extends) already rejects the only schedule
   where two reads of one tvar could disagree.  Chunking keeps growth
   O(chunk) — the directory doubles, full chunks are never copied. *)
module Rlog = struct
  let chunk_bits = 8
  let chunk_size = 1 lsl chunk_bits
  let chunk_mask = chunk_size - 1

  type t = {
    mutable tvs : Obj.t array array;
    mutable vers : int array array;
    mutable len : int;
  }

  let create () = { tvs = [||]; vers = [||]; len = 0 }
  let size t = t.len

  let grow_dir t =
    let n = Array.length t.tvs in
    let n' = if n = 0 then 4 else 2 * n in
    let tvs = Array.make n' [||] and vers = Array.make n' [||] in
    Array.blit t.tvs 0 tvs 0 n;
    Array.blit t.vers 0 vers 0 n;
    t.tvs <- tvs;
    t.vers <- vers

  let push (type a) t (tv : a Tvar.t) ver =
    let i = t.len in
    let c = i lsr chunk_bits in
    if c >= Array.length t.tvs then grow_dir t;
    if Array.length (Array.unsafe_get t.tvs c) = 0 then begin
      Array.unsafe_set t.tvs c (Array.make chunk_size dummy);
      Array.unsafe_set t.vers c (Array.make chunk_size 0)
    end;
    let s = i land chunk_mask in
    Array.unsafe_set (Array.unsafe_get t.tvs c) s (Obj.repr tv);
    Array.unsafe_set (Array.unsafe_get t.vers c) s ver;
    t.len <- i + 1

  let iter t f =
    let i = ref 0 and c = ref 0 in
    while !i < t.len do
      let tvs = Array.unsafe_get t.tvs !c
      and vers = Array.unsafe_get t.vers !c in
      let stop = min chunk_size (t.len - !i) in
      for s = 0 to stop - 1 do
        f
          (Obj.obj (Array.unsafe_get tvs s) : packed_tvar)
          (Array.unsafe_get vers s)
      done;
      i := !i + stop;
      incr c
    done

  (* An entry is valid when the tvar still carries the recorded version
     and is not locked by anyone else (a foreign owner may be halfway
     through publishing). *)
  let validate t ~(owner : Txn_desc.t) =
    let ok = ref true in
    (try
       iter t (fun tv ver ->
           if (Tvar.load tv).Tvar.version <> ver then raise_notrace Exit;
           match Tvar.current_owner tv with
           | None -> ()
           | Some d -> if d != owner then raise_notrace Exit)
     with Exit -> ok := false);
    !ok

  (* Scrub the tvar pointers so a pooled log does not keep dead tvars
     (and whatever they reference) reachable across transactions. *)
  let clear t =
    let i = ref 0 and c = ref 0 in
    while !i < t.len do
      let tvs = Array.unsafe_get t.tvs !c in
      let stop = min chunk_size (t.len - !i) in
      Array.fill tvs 0 stop dummy;
      i := !i + stop;
      incr c
    done;
    t.len <- 0
end

(* ------------------------------------------------------------------ *)
(* Write log                                                            *)

(* Adaptive last-wins write set.  Entries live in parallel append-only
   arrays; lookup is a 62-bit summary filter (almost always rules the
   uid out in one [land]), then a backward linear scan while the set is
   small, escalating to a uid→index Hashtbl past [small_limit].

   or_else watermarks: [floor] marks the innermost open alternative.  A
   write to a tvar already present at index ≥ floor updates in place
   (so hot tvars do not grow the log); a write to one recorded below
   the floor appends a shadowing entry instead, because truncating back
   to the watermark must restore the pre-branch value exactly.  The
   newest entry for a uid always wins ([find_idx] scans backward; the
   hash index tracks the newest). *)
module Wlog = struct
  let small_limit = 12
  let initial_cap = 16

  type t = {
    mutable uids : int array;
    mutable fbits : int array;
    mutable tvs : Obj.t array;
    mutable vals : Obj.t array;
    mutable len : int;
    mutable summary : int;
    mutable floor : int;
    mutable indexed : bool;
    index : (int, int) Hashtbl.t;
    (* Commit plan: indices of the winning (newest-per-uid) entries in
       ascending uid order, reused across commits of a pooled txn. *)
    mutable plan : int array;
    mutable plan_len : int;
  }

  let create () =
    {
      uids = Array.make initial_cap 0;
      fbits = Array.make initial_cap 0;
      tvs = Array.make initial_cap dummy;
      vals = Array.make initial_cap dummy;
      len = 0;
      summary = 0;
      floor = 0;
      indexed = false;
      index = Hashtbl.create 32;
      plan = Array.make initial_cap 0;
      plan_len = 0;
    }

  let size t = t.len
  let is_empty t = t.len = 0

  let build_index t =
    Hashtbl.reset t.index;
    for i = 0 to t.len - 1 do
      Hashtbl.replace t.index (Array.unsafe_get t.uids i) i
    done;
    t.indexed <- true

  let drop_index t =
    Hashtbl.reset t.index;
    t.indexed <- false

  (* Index of the newest entry for [tv], or -1.  The summary filter
     makes the common miss (reading a tvar never written) one load and
     one [land]. *)
  let find_idx (type a) t (tv : a Tvar.t) =
    if t.summary land tv.Tvar.fbit = 0 then -1
    else if t.indexed then
      match Hashtbl.find_opt t.index tv.Tvar.uid with
      | Some i -> i
      | None -> -1
    else begin
      let uid = tv.Tvar.uid in
      let i = ref (t.len - 1) in
      while !i >= 0 && Array.unsafe_get t.uids !i <> uid do
        decr i
      done;
      !i
    end

  (* Sound for the same reason the packed existential was: the entry at
     [i] was stored through a tvar with this uid, and uid determines
     the value type. *)
  let value (type a) t i : a = Obj.magic (Array.unsafe_get t.vals i)

  let grow t =
    let cap = 2 * Array.length t.uids in
    let resize_int a = Array.append a (Array.make (cap - Array.length a) 0) in
    let resize_obj a =
      Array.append a (Array.make (cap - Array.length a) dummy)
    in
    t.uids <- resize_int t.uids;
    t.fbits <- resize_int t.fbits;
    t.tvs <- resize_obj t.tvs;
    t.vals <- resize_obj t.vals

  let write (type a) t (tv : a Tvar.t) (v : a) =
    let i = find_idx t tv in
    if i >= t.floor then Array.unsafe_set t.vals i (Obj.repr v)
    else begin
      let n = t.len in
      if n = Array.length t.uids then grow t;
      Array.unsafe_set t.uids n tv.Tvar.uid;
      Array.unsafe_set t.fbits n tv.Tvar.fbit;
      Array.unsafe_set t.tvs n (Obj.repr tv);
      Array.unsafe_set t.vals n (Obj.repr v);
      t.len <- n + 1;
      t.summary <- t.summary lor tv.Tvar.fbit;
      if t.indexed then Hashtbl.replace t.index tv.Tvar.uid n
      else if n + 1 > small_limit then build_index t
    end

  (* --- or_else watermarks ------------------------------------------ *)

  let mark t = t.len
  let floor t = t.floor
  let set_floor t f = t.floor <- f

  let truncate t mark =
    if mark < t.len then begin
      for i = mark to t.len - 1 do
        Array.unsafe_set t.tvs i dummy;
        Array.unsafe_set t.vals i dummy;
        Array.unsafe_set t.uids i 0;
        Array.unsafe_set t.fbits i 0
      done;
      t.len <- mark;
      let s = ref 0 in
      for i = 0 to mark - 1 do
        s := !s lor Array.unsafe_get t.fbits i
      done;
      t.summary <- !s;
      if t.indexed then
        if t.len > small_limit then build_index t else drop_index t
    end

  (* --- commit plan -------------------------------------------------- *)

  (* Winning entries (newest per uid) sorted by uid, so commit-time
     locking has a canonical global order.  Shell sort keeps it in
     place and allocation-free; write sets are small in the common
     case and nearly sorted when tvars were written in creation order. *)
  let sort_plan t =
    let a = t.plan and uids = t.uids in
    let m = t.plan_len in
    let gap = ref 1 in
    while !gap < m / 3 do
      gap := (3 * !gap) + 1
    done;
    while !gap >= 1 do
      for i = !gap to m - 1 do
        let v = Array.unsafe_get a i in
        let kv = Array.unsafe_get uids v in
        let j = ref i in
        while
          !j >= !gap
          && Array.unsafe_get uids (Array.unsafe_get a (!j - !gap)) > kv
        do
          Array.unsafe_set a !j (Array.unsafe_get a (!j - !gap));
          j := !j - !gap
        done;
        Array.unsafe_set a !j v
      done;
      gap := !gap / 3
    done

  let build_plan t =
    if Array.length t.plan < t.len then t.plan <- Array.make (Array.length t.uids) 0;
    let m = ref 0 in
    for i = 0 to t.len - 1 do
      (* Keep [i] iff it is the newest entry for its uid. *)
      if find_idx t (Obj.obj (Array.unsafe_get t.tvs i) : packed_tvar) = i
      then begin
        Array.unsafe_set t.plan !m i;
        incr m
      end
    done;
    t.plan_len <- !m;
    sort_plan t

  let plan_iter_tv t f =
    for i = 0 to t.plan_len - 1 do
      f (Obj.obj (Array.unsafe_get t.tvs (Array.unsafe_get t.plan i)) : packed_tvar)
    done

  let publish_plan t ~version =
    for i = 0 to t.plan_len - 1 do
      let e = Array.unsafe_get t.plan i in
      (* The packed view has type [unit Tvar.t]; re-type it to match
         the erased value so [publish] stores the right word. *)
      let tv : Obj.t Tvar.t = Obj.magic (Array.unsafe_get t.tvs e) in
      Tvar.publish tv (Array.unsafe_get t.vals e) ~version
    done

  (* All entries, shadowed ones included (leak audit checks each). *)
  let iter_tvs t f =
    for i = 0 to t.len - 1 do
      f
        (Array.unsafe_get t.uids i)
        (Obj.obj (Array.unsafe_get t.tvs i) : packed_tvar)
    done

  let clear t =
    Array.fill t.tvs 0 t.len dummy;
    Array.fill t.vals 0 t.len dummy;
    Array.fill t.uids 0 t.len 0;
    Array.fill t.fbits 0 t.len 0;
    t.len <- 0;
    t.summary <- 0;
    t.floor <- 0;
    t.plan_len <- 0;
    if t.indexed then drop_index t
end

(* ------------------------------------------------------------------ *)
(* Transaction-local log                                                *)

(* Locals use the [exn] packing the old Hashtbl did (each key carries
   its own injection/projection constructor).  Same last-wins /
   watermark discipline as the write log, without the summary filter —
   locals are few and cold. *)
module Llog = struct
  let initial_cap = 8
  let no_value : exn = Not_found

  type t = {
    mutable kuids : int array;
    mutable vals : exn array;
    mutable len : int;
    mutable floor : int;
  }

  let create () =
    {
      kuids = Array.make initial_cap 0;
      vals = Array.make initial_cap no_value;
      len = 0;
      floor = 0;
    }

  let size t = t.len

  let find_idx t kuid =
    let i = ref (t.len - 1) in
    while !i >= 0 && Array.unsafe_get t.kuids !i <> kuid do
      decr i
    done;
    !i

  let find t kuid =
    let i = find_idx t kuid in
    if i < 0 then None else Some (Array.unsafe_get t.vals i)

  let grow t =
    let cap = 2 * Array.length t.kuids in
    t.kuids <- Array.append t.kuids (Array.make (cap - Array.length t.kuids) 0);
    t.vals <-
      Array.append t.vals (Array.make (cap - Array.length t.vals) no_value)

  let set t kuid v =
    let i = find_idx t kuid in
    if i >= t.floor then Array.unsafe_set t.vals i v
    else begin
      let n = t.len in
      if n = Array.length t.kuids then grow t;
      Array.unsafe_set t.kuids n kuid;
      Array.unsafe_set t.vals n v;
      t.len <- n + 1
    end

  let mark t = t.len
  let floor t = t.floor
  let set_floor t f = t.floor <- f

  let truncate t mark =
    if mark < t.len then begin
      for i = mark to t.len - 1 do
        Array.unsafe_set t.kuids i 0;
        Array.unsafe_set t.vals i no_value
      done;
      t.len <- mark
    end

  let clear t =
    Array.fill t.kuids 0 t.len 0;
    Array.fill t.vals 0 t.len no_value;
    t.len <- 0;
    t.floor <- 0
end
