(** Log-structured transaction read/write/local sets.

    Flat-array logs replacing the per-attempt [Hashtbl]s of the
    original monolithic STM: validation walks arrays, [or_else] rolls
    back by truncating to a watermark, and a pooled transaction clears
    and reuses the same buffers across attempts (zero steady-state
    allocation on the read/write hot paths).

    Value types are erased internally ([Obj.t] parallel arrays) and
    re-established at the boundary under the uid-uniqueness argument:
    equal tvar uid implies physically the same tvar, hence the same
    value type.  [packed_tvar] is the type-erased view of a tvar; only
    type-agnostic fields are accessed through it. *)

type packed_tvar = unit Tvar.t

val pack : 'a Tvar.t -> packed_tvar

(** Append-only chunked read log of (tvar, observed version) pairs.
    Duplicates are allowed — they only make validation stricter. *)
module Rlog : sig
  type t

  val create : unit -> t
  val size : t -> int

  (** Record that the tvar was read at the given committed version. *)
  val push : t -> 'a Tvar.t -> int -> unit

  val iter : t -> (packed_tvar -> int -> unit) -> unit

  (** Every recorded version is still current and no entry is locked by
      a foreign transaction ([owner] is the auditing transaction's own
      descriptor, whose locks are fine). *)
  val validate : t -> owner:Txn_desc.t -> bool

  (** Empty the log, scrubbing tvar pointers (pool hygiene). *)
  val clear : t -> unit
end

(** Adaptive last-wins write set: parallel append-only arrays, a 62-bit
    summary filter for fast read-after-write misses, backward scan
    while small, uid→index hash once large.  Watermarks ([mark] /
    [floor] / [truncate]) give [or_else] exact rollback by truncation:
    writes at or above the floor update in place, writes shadowing a
    pre-branch entry append. *)
module Wlog : sig
  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool

  (** Index of the newest entry for the tvar, or -1. *)
  val find_idx : t -> 'a Tvar.t -> int

  (** Buffered value at an index returned by [find_idx].  Only sound
      with an index obtained for a tvar of matching value type. *)
  val value : t -> int -> 'a

  val write : t -> 'a Tvar.t -> 'a -> unit
  val mark : t -> int
  val floor : t -> int
  val set_floor : t -> int -> unit
  val truncate : t -> int -> unit

  (** Compute the winning (newest-per-uid) entries in ascending uid
      order into a reused internal buffer.  Call before [plan_iter_tv]
      / [publish_plan]. *)
  val build_plan : t -> unit

  (** Winning entries in uid order — the commit lock order. *)
  val plan_iter_tv : t -> (packed_tvar -> unit) -> unit

  (** Write every winning entry back at [version].  Caller holds the
      required locks/gate. *)
  val publish_plan : t -> version:int -> unit

  (** All entries, shadowed ones included (leak audit). *)
  val iter_tvs : t -> (int -> packed_tvar -> unit) -> unit

  val clear : t -> unit
end

(** Transaction-local values, packed as [exn] by the keys that own
    them; same last-wins / watermark discipline as {!Wlog}. *)
module Llog : sig
  type t

  val create : unit -> t
  val size : t -> int
  val find : t -> int -> exn option
  val set : t -> int -> exn -> unit
  val mark : t -> int
  val floor : t -> int
  val set_floor : t -> int -> unit
  val truncate : t -> int -> unit
  val clear : t -> unit
end
