(* Active-snapshot registry for the Multi_version mode.

   Read-only transactions register their start timestamp here before
   sampling it; committers consult [floor] while trimming a tvar's
   version chain so no version still visible to an active snapshot is
   reclaimed.  The registry is a lock-free grow-only list of
   per-domain slots: a domain has at most one active root read-only
   transaction (nested ones join it), so one slot per domain suffices
   and [register]/[deregister] are a single atomic store each.

   The ordering contract that makes GC safe (all atomics are SC):

   - [register ts] publishes a timestamp <= the snapshot the RO txn
     will actually adopt (it re-samples the clock after registering).
   - A committer trims AFTER ticking the clock to obtain its commit
     version wv.  If the committer's floor scan missed a concurrent
     registration, the registration's clock sample happened after the
     committer's tick, so the RO snapshot rv >= wv and the freshly
     installed head itself satisfies the read - the trimmed tail was
     never needed.  If the scan saw it, the floor is <= the registered
     timestamp and the trim keeps every version the snapshot can
     reach (see Tvar.publish). *)

(* Sticky flag: set the first time Multi_version is selected, never
   cleared.  [Tvar.publish] checks it so the four single-version modes
   keep their original one-store hot path in processes that never arm
   MVCC. *)
let armed_flag = Atomic.make false
let ensure_armed () = if not (Atomic.get armed_flag) then Atomic.set armed_flag true
let armed () = Atomic.get armed_flag

(* Bounded history depth K: versions beyond the newest K are eligible
   for reclamation once no active snapshot can reach them. *)
let max_versions_v = Atomic.make 8
let set_max_versions k = if k >= 1 then Atomic.set max_versions_v k
let max_versions () = Atomic.get max_versions_v

type slot = int Atomic.t
(* 0 = no active snapshot on this domain. *)

(* Grow-only list of all slots ever created (one per domain that ran a
   read-only transaction); traversed in full by [floor]. *)
let slots : slot list Atomic.t = Atomic.make []

let rec push_slot s =
  let cur = Atomic.get slots in
  if not (Atomic.compare_and_set slots cur (s :: cur)) then push_slot s

let my_slot : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = Atomic.make 0 in
      push_slot s;
      s)

let register ts = Atomic.set (Domain.DLS.get my_slot) ts
let deregister () = Atomic.set (Domain.DLS.get my_slot) 0

let active () = Atomic.get (Domain.DLS.get my_slot)

let floor () =
  List.fold_left
    (fun acc s ->
      let ts = Atomic.get s in
      if ts > 0 && ts < acc then ts else acc)
    max_int (Atomic.get slots)
