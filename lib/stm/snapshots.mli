(** Active-snapshot registry for the [Multi_version] mode.

    Read-only transactions register their start timestamp before
    adopting it; committers consult {!floor} when trimming a tvar's
    version chain so garbage collection never reclaims a version still
    visible to an active snapshot.  One slot per domain: a domain has
    at most one root read-only transaction (nested ones join it). *)

(** [true] once {!ensure_armed} has run — i.e. once the process has
    selected [Multi_version] at least once.  Sticky: never cleared.
    While unarmed, {!Tvar.publish} keeps the single-version one-store
    hot path and builds no version chains. *)
val armed : unit -> bool

val ensure_armed : unit -> unit

(** Bounded history depth K (default 8): a tvar keeps its newest K
    versions unconditionally; older ones survive only while an active
    snapshot may need them. *)
val max_versions : unit -> int

(** No-op for [k < 1]. *)
val set_max_versions : int -> unit

(** Publish this domain's active snapshot timestamp (must run {e
    before} the transaction samples the clock value it will read at,
    so a concurrent committer either sees the registration or is
    provably newer than the snapshot). *)
val register : int -> unit

val deregister : unit -> unit

(** This domain's registered timestamp, 0 if none (for tests). *)
val active : unit -> int

(** Minimum registered timestamp across all domains, [max_int] when no
    snapshot is active — the GC may reclaim versions a reader at this
    timestamp can no longer need. *)
val floor : unit -> int
