type snapshot = {
  starts : int;
  commits : int;
  aborts : int;
  conflicts : int;
  remote_aborts : int;
  lock_waits : int;
  extensions : int;
  killed_aborts : int;
  explicit_aborts : int;
  fallbacks : int;
  injected_faults : int;
  timeouts : int;
  budget_exhausted : int;
  shed : int;
  watchdog_kills : int;
  degraded_transitions : int;
  minor_words : int;
  log_appends : int;
  fsync_batches : int;
  fsync_batch_size_p50 : int;
  fsync_batch_size_p99 : int;
  recoveries : int;
  torn_tail_truncations : int;
  parks : int;
  wakeups : int;
  spurious_wakeups : int;
  retry_polls : int;
  wait_list_max : int;
  versions_installed : int;
  versions_gced : int;
  ro_snapshot_reads : int;
  ro_commits : int;
  ro_aborts : int;
  version_chain_max : int;
  combined_commits : int;
  combiner_elections : int;
}

(* Counters are striped across a fixed number of slots to avoid making
   the stats themselves a contention hot spot; a domain hashes to a slot. *)
let stripes = 16

type cell = {
  starts : int Atomic.t;
  commits : int Atomic.t;
  aborts : int Atomic.t;
  conflicts : int Atomic.t;
  remote_aborts : int Atomic.t;
  lock_waits : int Atomic.t;
  extensions : int Atomic.t;
  killed_aborts : int Atomic.t;
  explicit_aborts : int Atomic.t;
  fallbacks : int Atomic.t;
  injected_faults : int Atomic.t;
  timeouts : int Atomic.t;
  budget_exhausted : int Atomic.t;
  shed : int Atomic.t;
  watchdog_kills : int Atomic.t;
  degraded_transitions : int Atomic.t;
  minor_words : int Atomic.t;
  log_appends : int Atomic.t;
  fsync_batches : int Atomic.t;
  recoveries : int Atomic.t;
  torn_tail_truncations : int Atomic.t;
  parks : int Atomic.t;
  wakeups : int Atomic.t;
  spurious_wakeups : int Atomic.t;
  retry_polls : int Atomic.t;
  versions_installed : int Atomic.t;
  versions_gced : int Atomic.t;
  ro_snapshot_reads : int Atomic.t;
  ro_commits : int Atomic.t;
  ro_aborts : int Atomic.t;
  combined_commits : int Atomic.t;
  combiner_elections : int Atomic.t;
}

let make_cell () =
  {
    starts = Atomic.make 0;
    commits = Atomic.make 0;
    aborts = Atomic.make 0;
    conflicts = Atomic.make 0;
    remote_aborts = Atomic.make 0;
    lock_waits = Atomic.make 0;
    extensions = Atomic.make 0;
    killed_aborts = Atomic.make 0;
    explicit_aborts = Atomic.make 0;
    fallbacks = Atomic.make 0;
    injected_faults = Atomic.make 0;
    timeouts = Atomic.make 0;
    budget_exhausted = Atomic.make 0;
    shed = Atomic.make 0;
    watchdog_kills = Atomic.make 0;
    degraded_transitions = Atomic.make 0;
    minor_words = Atomic.make 0;
    log_appends = Atomic.make 0;
    fsync_batches = Atomic.make 0;
    recoveries = Atomic.make 0;
    torn_tail_truncations = Atomic.make 0;
    parks = Atomic.make 0;
    wakeups = Atomic.make 0;
    spurious_wakeups = Atomic.make 0;
    retry_polls = Atomic.make 0;
    versions_installed = Atomic.make 0;
    versions_gced = Atomic.make 0;
    ro_snapshot_reads = Atomic.make 0;
    ro_commits = Atomic.make 0;
    ro_aborts = Atomic.make 0;
    combined_commits = Atomic.make 0;
    combiner_elections = Atomic.make 0;
  }

(* Set-style gauges, not event counters: the redo-log flusher publishes
   fresh batch-size percentiles after each batch, so the latest value is
   the whole story and striping would only blur it. *)
let fsync_p50 = Atomic.make 0
let fsync_p99 = Atomic.make 0

(* High-water gauge: the longest per-tvar wait list observed since the
   last reset.  A max, not a counter — [diff] carries the later
   reading, like the fsync percentiles. *)
let wait_list_max_v = Atomic.make 0

(* High-water gauge: the longest tvar version chain installed since
   the last reset (Multi_version mode only; stays 0 otherwise). *)
let version_chain_max_v = Atomic.make 0

let cells = Array.init stripes (fun _ -> make_cell ())
let my_cell () = cells.((Domain.self () :> int) land (stripes - 1))
let bump (field : cell -> int Atomic.t) = Atomic.incr (field (my_cell ()))
let record_start () = bump (fun c -> c.starts)
let record_commit () = bump (fun c -> c.commits)
let record_abort () = bump (fun c -> c.aborts)
let record_conflict () = bump (fun c -> c.conflicts)
let record_remote_abort () = bump (fun c -> c.remote_aborts)
let record_lock_wait () = bump (fun c -> c.lock_waits)
let record_extension () = bump (fun c -> c.extensions)
let record_killed_abort () = bump (fun c -> c.killed_aborts)
let record_explicit_abort () = bump (fun c -> c.explicit_aborts)
let record_fallback () = bump (fun c -> c.fallbacks)
let record_injected_fault () = bump (fun c -> c.injected_faults)
let record_timeout () = bump (fun c -> c.timeouts)
let record_budget_exhausted () = bump (fun c -> c.budget_exhausted)
let record_shed () = bump (fun c -> c.shed)
let record_watchdog_kill () = bump (fun c -> c.watchdog_kills)
let record_degraded_transition () = bump (fun c -> c.degraded_transitions)
let record_log_append () = bump (fun c -> c.log_appends)
let record_fsync_batch () = bump (fun c -> c.fsync_batches)
let record_recovery () = bump (fun c -> c.recoveries)
let record_torn_tail_truncation () = bump (fun c -> c.torn_tail_truncations)
let record_park () = bump (fun c -> c.parks)
let record_wakeup () = bump (fun c -> c.wakeups)
let record_spurious_wakeup () = bump (fun c -> c.spurious_wakeups)
let record_retry_poll () = bump (fun c -> c.retry_polls)
let record_version_install () = bump (fun c -> c.versions_installed)
let record_ro_snapshot_read () = bump (fun c -> c.ro_snapshot_reads)
let record_ro_commit () = bump (fun c -> c.ro_commits)
let record_ro_abort () = bump (fun c -> c.ro_aborts)
let record_combiner_election () = bump (fun c -> c.combiner_elections)

(* Bulk add: the combiner reports one count per drained batch, including
   its own commit. *)
let add_combined_commits n =
  if n > 0 then ignore (Atomic.fetch_and_add (my_cell ()).combined_commits n)

(* Bulk add, like [add_minor_words]: one publish can reclaim a whole
   chain tail at once. *)
let add_versions_gced n =
  if n > 0 then ignore (Atomic.fetch_and_add (my_cell ()).versions_gced n)

(* Bulk add: read-only attempts count their snapshot reads in the txn
   record and flush once at commit, keeping the striped RMW off the
   per-read hot path. *)
let add_ro_snapshot_reads n =
  if n > 0 then ignore (Atomic.fetch_and_add (my_cell ()).ro_snapshot_reads n)

let rec note_version_chain_len n =
  let cur = Atomic.get version_chain_max_v in
  if n > cur && not (Atomic.compare_and_set version_chain_max_v cur n) then
    note_version_chain_len n

let rec note_wait_list_len n =
  let cur = Atomic.get wait_list_max_v in
  if n > cur && not (Atomic.compare_and_set wait_list_max_v cur n) then
    note_wait_list_len n

let set_fsync_batch_percentiles ~p50 ~p99 =
  Atomic.set fsync_p50 p50;
  Atomic.set fsync_p99 p99

(* Unlike the event counters this one adds in bulk: workers report one
   [Gc.minor_words] delta per measured stretch, not per allocation. *)
let add_minor_words n =
  if n > 0 then ignore (Atomic.fetch_and_add (my_cell ()).minor_words n)

let fields : (cell -> int Atomic.t) list =
  [
    (fun c -> c.starts);
    (fun c -> c.commits);
    (fun c -> c.aborts);
    (fun c -> c.conflicts);
    (fun c -> c.remote_aborts);
    (fun c -> c.lock_waits);
    (fun c -> c.extensions);
    (fun c -> c.killed_aborts);
    (fun c -> c.explicit_aborts);
    (fun c -> c.fallbacks);
    (fun c -> c.injected_faults);
    (fun c -> c.timeouts);
    (fun c -> c.budget_exhausted);
    (fun c -> c.shed);
    (fun c -> c.watchdog_kills);
    (fun c -> c.degraded_transitions);
    (fun c -> c.minor_words);
    (fun c -> c.log_appends);
    (fun c -> c.fsync_batches);
    (fun c -> c.recoveries);
    (fun c -> c.torn_tail_truncations);
    (fun c -> c.parks);
    (fun c -> c.wakeups);
    (fun c -> c.spurious_wakeups);
    (fun c -> c.retry_polls);
    (fun c -> c.versions_installed);
    (fun c -> c.versions_gced);
    (fun c -> c.ro_snapshot_reads);
    (fun c -> c.ro_commits);
    (fun c -> c.ro_aborts);
    (fun c -> c.combined_commits);
    (fun c -> c.combiner_elections);
  ]

let sum (field : cell -> int Atomic.t) =
  Array.fold_left (fun acc c -> acc + Atomic.get (field c)) 0 cells

let read () : snapshot =
  {
    starts = sum (fun c -> c.starts);
    commits = sum (fun c -> c.commits);
    aborts = sum (fun c -> c.aborts);
    conflicts = sum (fun c -> c.conflicts);
    remote_aborts = sum (fun c -> c.remote_aborts);
    lock_waits = sum (fun c -> c.lock_waits);
    extensions = sum (fun c -> c.extensions);
    killed_aborts = sum (fun c -> c.killed_aborts);
    explicit_aborts = sum (fun c -> c.explicit_aborts);
    fallbacks = sum (fun c -> c.fallbacks);
    injected_faults = sum (fun c -> c.injected_faults);
    timeouts = sum (fun c -> c.timeouts);
    budget_exhausted = sum (fun c -> c.budget_exhausted);
    shed = sum (fun c -> c.shed);
    watchdog_kills = sum (fun c -> c.watchdog_kills);
    degraded_transitions = sum (fun c -> c.degraded_transitions);
    minor_words = sum (fun c -> c.minor_words);
    log_appends = sum (fun c -> c.log_appends);
    fsync_batches = sum (fun c -> c.fsync_batches);
    fsync_batch_size_p50 = Atomic.get fsync_p50;
    fsync_batch_size_p99 = Atomic.get fsync_p99;
    recoveries = sum (fun c -> c.recoveries);
    torn_tail_truncations = sum (fun c -> c.torn_tail_truncations);
    parks = sum (fun c -> c.parks);
    wakeups = sum (fun c -> c.wakeups);
    spurious_wakeups = sum (fun c -> c.spurious_wakeups);
    retry_polls = sum (fun c -> c.retry_polls);
    wait_list_max = Atomic.get wait_list_max_v;
    versions_installed = sum (fun c -> c.versions_installed);
    versions_gced = sum (fun c -> c.versions_gced);
    ro_snapshot_reads = sum (fun c -> c.ro_snapshot_reads);
    ro_commits = sum (fun c -> c.ro_commits);
    ro_aborts = sum (fun c -> c.ro_aborts);
    version_chain_max = Atomic.get version_chain_max_v;
    combined_commits = sum (fun c -> c.combined_commits);
    combiner_elections = sum (fun c -> c.combiner_elections);
  }

let reset () =
  List.iter
    (fun field -> Array.iter (fun c -> Atomic.set (field c) 0) cells)
    fields;
  Atomic.set fsync_p50 0;
  Atomic.set fsync_p99 0;
  Atomic.set wait_list_max_v 0;
  Atomic.set version_chain_max_v 0

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    starts = b.starts - a.starts;
    commits = b.commits - a.commits;
    aborts = b.aborts - a.aborts;
    conflicts = b.conflicts - a.conflicts;
    remote_aborts = b.remote_aborts - a.remote_aborts;
    lock_waits = b.lock_waits - a.lock_waits;
    extensions = b.extensions - a.extensions;
    killed_aborts = b.killed_aborts - a.killed_aborts;
    explicit_aborts = b.explicit_aborts - a.explicit_aborts;
    fallbacks = b.fallbacks - a.fallbacks;
    injected_faults = b.injected_faults - a.injected_faults;
    timeouts = b.timeouts - a.timeouts;
    budget_exhausted = b.budget_exhausted - a.budget_exhausted;
    shed = b.shed - a.shed;
    watchdog_kills = b.watchdog_kills - a.watchdog_kills;
    degraded_transitions = b.degraded_transitions - a.degraded_transitions;
    minor_words = b.minor_words - a.minor_words;
    log_appends = b.log_appends - a.log_appends;
    fsync_batches = b.fsync_batches - a.fsync_batches;
    (* Gauges, not counters: the interval's value is the later reading. *)
    fsync_batch_size_p50 = b.fsync_batch_size_p50;
    fsync_batch_size_p99 = b.fsync_batch_size_p99;
    recoveries = b.recoveries - a.recoveries;
    torn_tail_truncations = b.torn_tail_truncations - a.torn_tail_truncations;
    parks = b.parks - a.parks;
    wakeups = b.wakeups - a.wakeups;
    spurious_wakeups = b.spurious_wakeups - a.spurious_wakeups;
    retry_polls = b.retry_polls - a.retry_polls;
    (* Gauge (high-water mark): the later reading. *)
    wait_list_max = b.wait_list_max;
    versions_installed = b.versions_installed - a.versions_installed;
    versions_gced = b.versions_gced - a.versions_gced;
    ro_snapshot_reads = b.ro_snapshot_reads - a.ro_snapshot_reads;
    ro_commits = b.ro_commits - a.ro_commits;
    ro_aborts = b.ro_aborts - a.ro_aborts;
    (* Gauge (high-water mark): the later reading. *)
    version_chain_max = b.version_chain_max;
    combined_commits = b.combined_commits - a.combined_commits;
    combiner_elections = b.combiner_elections - a.combiner_elections;
  }

let to_assoc (s : snapshot) =
  [
    ("starts", s.starts);
    ("commits", s.commits);
    ("aborts", s.aborts);
    ("conflicts", s.conflicts);
    ("remote_aborts", s.remote_aborts);
    ("lock_waits", s.lock_waits);
    ("extensions", s.extensions);
    ("killed_aborts", s.killed_aborts);
    ("explicit_aborts", s.explicit_aborts);
    ("fallbacks", s.fallbacks);
    ("injected_faults", s.injected_faults);
    ("timeouts", s.timeouts);
    ("budget_exhausted", s.budget_exhausted);
    ("shed", s.shed);
    ("watchdog_kills", s.watchdog_kills);
    ("degraded_transitions", s.degraded_transitions);
    ("minor_words", s.minor_words);
    ("log_appends", s.log_appends);
    ("fsync_batches", s.fsync_batches);
    ("fsync_batch_size_p50", s.fsync_batch_size_p50);
    ("fsync_batch_size_p99", s.fsync_batch_size_p99);
    ("recoveries", s.recoveries);
    ("torn_tail_truncations", s.torn_tail_truncations);
    ("parks", s.parks);
    ("wakeups", s.wakeups);
    ("spurious_wakeups", s.spurious_wakeups);
    ("retry_polls", s.retry_polls);
    ("wait_list_max", s.wait_list_max);
    ("versions_installed", s.versions_installed);
    ("versions_gced", s.versions_gced);
    ("ro_snapshot_reads", s.ro_snapshot_reads);
    ("ro_commits", s.ro_commits);
    ("ro_aborts", s.ro_aborts);
    ("version_chain_max", s.version_chain_max);
    ("combined_commits", s.combined_commits);
    ("combiner_elections", s.combiner_elections);
  ]

let pp fmt (s : snapshot) =
  Format.fprintf fmt
    "starts=%d commits=%d aborts=%d (conflict=%d killed=%d explicit=%d) \
     remote=%d waits=%d ext=%d fallbacks=%d injected=%d timeouts=%d \
     budget=%d shed=%d wd_kills=%d degraded=%d minor_words=%d \
     log_appends=%d fsync_batches=%d fsync_p50=%d fsync_p99=%d \
     recoveries=%d torn_tails=%d parks=%d wakeups=%d spurious=%d \
     retry_polls=%d wait_list_max=%d versions=%d gced=%d ro_reads=%d \
     ro_commits=%d ro_aborts=%d chain_max=%d combined=%d elections=%d"
    s.starts s.commits s.aborts s.conflicts s.killed_aborts s.explicit_aborts
    s.remote_aborts s.lock_waits s.extensions s.fallbacks s.injected_faults
    s.timeouts s.budget_exhausted s.shed s.watchdog_kills
    s.degraded_transitions s.minor_words s.log_appends s.fsync_batches
    s.fsync_batch_size_p50 s.fsync_batch_size_p99 s.recoveries
    s.torn_tail_truncations s.parks s.wakeups s.spurious_wakeups s.retry_polls
    s.wait_list_max s.versions_installed s.versions_gced s.ro_snapshot_reads
    s.ro_commits s.ro_aborts s.version_chain_max s.combined_commits
    s.combiner_elections
