(** Process-wide STM event counters.

    Used by the benchmark harness to report abort/conflict behaviour
    alongside wall-clock time, and by tests to assert that specific
    schedules did (or did not) conflict. *)

type snapshot = {
  starts : int;  (** transaction attempts begun *)
  commits : int;  (** attempts that committed *)
  aborts : int;  (** attempts that aborted (any reason) *)
  conflicts : int;  (** aborts caused by a detected conflict *)
  remote_aborts : int;  (** transactions killed by a contention manager *)
  lock_waits : int;  (** bounded waits on a held lock or abstract lock *)
  extensions : int;  (** successful read-timestamp extensions *)
  killed_aborts : int;  (** aborts whose attempt was killed remotely *)
  explicit_aborts : int;  (** aborts from [restart]/[retry]/user exns *)
  fallbacks : int;  (** escalations into serial-irrevocable mode *)
  injected_faults : int;  (** faults fired by {!Fault} *)
  timeouts : int;  (** QoS episodes that ended in [Timed_out] *)
  budget_exhausted : int;
      (** QoS episodes that ended in [Budget_exhausted] *)
  shed : int;  (** admissions refused by the overload shedder *)
  watchdog_kills : int;
      (** stuck attempts killed (or gate-broken) by the QoS watchdog *)
  degraded_transitions : int;
      (** shedder state flips (Normal→Degraded and back) *)
  minor_words : int;
      (** minor-heap words allocated inside measured stretches, reported
          in bulk by {!add_minor_words} (the benchmark workers record
          one [Gc.minor_words] delta per trial); divide by [commits]
          for the allocation-per-transaction figure *)
  log_appends : int;  (** records appended to a durable redo log *)
  fsync_batches : int;  (** group-commit fsync batches flushed *)
  fsync_batch_size_p50 : int;
      (** median records per fsync batch — a set-style gauge published
          by the redo-log flusher, so [diff] carries the later reading
          rather than a difference *)
  fsync_batch_size_p99 : int;
      (** 99th-percentile records per fsync batch (gauge, like p50) *)
  recoveries : int;  (** redo-log recovery scans completed *)
  torn_tail_truncations : int;
      (** recoveries that truncated a torn (partially-written) tail *)
  parks : int;  (** domains parked by a blocking [retry] *)
  wakeups : int;
      (** parked waiters woken by a commit to a watched tvar (or by
          the deadline timer) *)
  spurious_wakeups : int;
      (** OS-level condition wakeups that found the waiter still
          registered; the waiter re-blocks *)
  retry_polls : int;
      (** busy-poll iterations spent in the legacy [Poll] retry mode;
          ~0 under [Park], which is the point of parking *)
  wait_list_max : int;
      (** longest per-tvar wait list observed — a high-water gauge
          published by waiter registration, so [diff] carries the
          later reading rather than a difference *)
  versions_installed : int;
      (** version-chain installs by [Multi_version] publishes (0 while
          the mode is unarmed) *)
  versions_gced : int;
      (** chain entries reclaimed by the bounded version GC *)
  ro_snapshot_reads : int;
      (** reads served from a read-only transaction's snapshot *)
  ro_commits : int;  (** read-only transactions completed *)
  ro_aborts : int;
      (** read-only transaction attempts aborted — the abort-free
          guarantee says this stays 0 absent user exceptions; tests
          and the CI mvcc gate assert it *)
  version_chain_max : int;
      (** longest tvar version chain installed — a high-water gauge
          like [wait_list_max] *)
  combined_commits : int;
      (** commits published by a flat-combining batch drain (the
          combiner's own commit included); [combined_commits /
          combiner_elections] is the mean batch size *)
  combiner_elections : int;
      (** gate acquisitions that became a combining drain — one per
          batch *)
}

val record_start : unit -> unit
val record_commit : unit -> unit
val record_abort : unit -> unit
val record_conflict : unit -> unit
val record_remote_abort : unit -> unit
val record_lock_wait : unit -> unit
val record_extension : unit -> unit
val record_killed_abort : unit -> unit
val record_explicit_abort : unit -> unit
val record_fallback : unit -> unit
val record_injected_fault : unit -> unit
val record_timeout : unit -> unit
val record_budget_exhausted : unit -> unit
val record_shed : unit -> unit
val record_watchdog_kill : unit -> unit
val record_degraded_transition : unit -> unit
val record_log_append : unit -> unit
val record_fsync_batch : unit -> unit
val record_recovery : unit -> unit
val record_torn_tail_truncation : unit -> unit
val record_park : unit -> unit
val record_wakeup : unit -> unit
val record_spurious_wakeup : unit -> unit
val record_retry_poll : unit -> unit
val record_version_install : unit -> unit
val record_ro_snapshot_read : unit -> unit

(** [add_ro_snapshot_reads n] adds [n] snapshot reads at once — the
    read-only path batches its count per attempt (no-op for [n <= 0]). *)
val add_ro_snapshot_reads : int -> unit
val record_ro_commit : unit -> unit
val record_ro_abort : unit -> unit

(** [add_versions_gced n] adds [n] reclaimed chain entries (no-op for
    [n <= 0]; one publish can reclaim a whole tail). *)
val add_versions_gced : int -> unit

(** [note_version_chain_len n] raises the version-chain high-water
    gauge to [n] if it exceeds the current reading. *)
val note_version_chain_len : int -> unit

(** [note_wait_list_len n] raises the wait-list high-water gauge to
    [n] if it exceeds the current reading. *)
val note_wait_list_len : int -> unit

(** [set_fsync_batch_percentiles ~p50 ~p99] publishes the redo-log
    flusher's current batch-size percentiles (gauges; see the snapshot
    field docs). *)
val set_fsync_batch_percentiles : p50:int -> p99:int -> unit

(** [add_minor_words n] adds [n] words to the allocation counter
    (no-op for [n <= 0]). *)
val add_minor_words : int -> unit

val record_combiner_election : unit -> unit

(** [add_combined_commits n] counts a drained batch of [n] commits
    (no-op for [n <= 0]). *)
val add_combined_commits : int -> unit

(** Current totals since program start or the last [reset]. *)
val read : unit -> snapshot

val reset : unit -> unit

(** [diff a b] is the per-field difference [b - a]. *)
val diff : snapshot -> snapshot -> snapshot

(** Field-name/value pairs in declaration order — the single source of
    truth for CSV columns and JSON report keys. *)
val to_assoc : snapshot -> (string * int) list

val pp : Format.formatter -> snapshot -> unit
