type mode = Lazy_lazy | Eager_lazy | Eager_eager | Serial_commit

let mode_name = function
  | Lazy_lazy -> "lazy-lazy"
  | Eager_lazy -> "eager-lazy"
  | Eager_eager -> "eager-eager"
  | Serial_commit -> "serial-commit"

type config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
  max_attempts : int;
  abort_budget : int;
  serial_fallback : bool;
  fallback_after : int;
  backoff_sleep_after : int;
  backoff_sleep : float;
}

let default_config_v =
  ref
    {
      mode = Lazy_lazy;
      cm = Contention.passive ();
      extend_reads = false;
      max_attempts = 100_000;
      abort_budget = 16;
      serial_fallback = true;
      fallback_after = 64;
      backoff_sleep_after = 6;
      backoff_sleep = 1e-6;
    }

let set_default_config c = default_config_v := c
let get_default_config () = !default_config_v

(* Packed read-set and write-set entries.  The existential type is
   re-established with [Obj.magic] in [read], justified by the global
   uniqueness of tvar uids: equal uid implies physically the same tvar,
   hence the same value type. *)
type wentry = Wentry : 'a Tvar.t * 'a -> wentry
type rentry = Rentry : 'a Tvar.t * int -> rentry
type locked = Locked : 'a Tvar.t -> locked

type txn = {
  mutable rv : int;
  mutable tdesc : Txn_desc.t;
  cfg : config;
  reads : (int, rentry) Hashtbl.t;
  writes : (int, wentry) Hashtbl.t;
  mutable locked : locked list;
  mutable commit_locked_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable after_commit_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable abort_hooks : (unit -> unit) list;  (* LIFO storage = run order *)
  locals : (int, exn) Hashtbl.t;
  backoff : Backoff.t;
  mutable finished : bool;
}

type abort_reason = Conflict | Killed | Explicit

exception Abort_exn of abort_reason
exception Retry_exn
exception Too_many_attempts of int
exception Not_in_transaction

let desc t = t.tdesc
let config t = t.cfg
let read_version t = t.rv

let check_open t = if t.finished then raise Not_in_transaction

let check_alive t =
  check_open t;
  if Txn_desc.is_aborted t.tdesc then raise (Abort_exn Killed)

(* Hook registration deliberately accepts zombies ([check_open], not
   [check_alive]) on all three phases.  Commit hooks registered by a
   remotely-killed attempt never run (the attempt cannot commit), so
   accepting them is harmless — whereas raising mid-registration tears
   an eager base mutation from the bookkeeping around it: e.g. a
   [Committed_size] local whose init registers its flush via
   [after_commit] would otherwise abort [Eager_map.put] between the
   base insert and the inverse registration, leaking the insert. *)
let on_commit_locked t f =
  check_open t;
  t.commit_locked_hooks <- f :: t.commit_locked_hooks

let after_commit t f =
  check_open t;
  t.after_commit_hooks <- f :: t.after_commit_hooks

(* NB: [check_open], not [check_alive] — a transaction killed remotely
   between a base-structure mutation and this registration is a zombie
   whose effects still need undoing when [do_abort] runs the hooks.
   Raising here instead would drop the inverse on the floor and leak
   the mutation (found by the chaos harness: a [Kill] injected inside
   [Abstract_lock.apply]'s window broke sequential equivalence). *)
let on_abort t f =
  check_open t;
  t.abort_hooks <- f :: t.abort_hooks

(* ------------------------------------------------------------------ *)
(* Observability taps                                                   *)

(* Each site loads the obs gate word exactly once; with tracing and
   metrics both off, nothing else happens — that single load is the
   whole per-site budget the overhead microbench enforces.  Events are
   stamped with the global clock tick inside the already-slow enabled
   path. *)

let reason_name = function
  | Conflict -> "conflict"
  | Killed -> "killed"
  | Explicit -> "explicit"

let obs_emit ~txn kind =
  Proust_obs.Trace.emit ~tick:(Clock.now Clock.global) ~txn kind

let obs_attempt_start t ~n =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id
        (Proust_obs.Trace.Attempt_start { attempt = n });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_attempt_start ()
  end

let obs_commit t =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id Proust_obs.Trace.Commit;
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_commit ()
  end

let obs_abort t reason =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id
        (Proust_obs.Trace.Abort { reason = reason_name reason });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_abort ()
  end

(* A bounded wait on a held resource: time the backoff step and feed
   both the trace and the lock-wait histogram. *)
let obs_wait ~txn ~held_by backoff =
  let g = Proust_obs.Gate.get () in
  if g = 0 then Backoff.once backoff
  else begin
    let t0 = Proust_obs.Trace.now_ns () in
    Backoff.once backoff;
    let dt = Proust_obs.Trace.now_ns () - t0 in
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn (Proust_obs.Trace.Lock_wait { held_by });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.add_lock_wait dt
  end

let obs_validate t ~ok =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:t.tdesc.Txn_desc.id (Proust_obs.Trace.Validate { ok })

let obs_extend t ~ok =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:t.tdesc.Txn_desc.id (Proust_obs.Trace.Extend { ok })

let obs_fallback ~token =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:0 (Proust_obs.Trace.Fallback { token })

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)

(* Interpret a chaos draw for the running transaction.  Irrevocable
   (serial-fallback) attempts only honour the delay component: the
   whole point of the fallback is that nothing can abort it. *)
let chaos_point t point =
  if Fault.enabled () then
    if t.tdesc.Txn_desc.irrevocable then Fault.delay_only point
    else
      match Fault.check point with
      | None -> ()
      | Some (Fault.Delay n) -> Fault.spin n
      | Some Fault.Abort -> raise (Abort_exn Conflict)
      | Some Fault.Kill ->
          (* Simulate a remote kill: the "victim" notices at its next
             liveness check, exactly like a contention-manager abort. *)
          ignore (Txn_desc.try_kill t.tdesc)

(* ------------------------------------------------------------------ *)
(* Conflict arbitration                                                 *)

(* Arbitrate against [other]; returns when the caller should re-attempt
   the acquisition, raises [Abort_exn] when the caller must restart. *)
let arbitrate t ~other ~attempt =
  check_alive t;
  if t.tdesc.Txn_desc.irrevocable then begin
    (* The serial-irrevocable holder always wins: kill the other party
       (it cannot be irrevocable too — there is a single token) and
       wait for it to notice and release. *)
    if Txn_desc.try_kill other then Stats.record_remote_abort ();
    Stats.record_lock_wait ();
    obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
  end
  else
    match t.cfg.cm.Contention.decide ~self:t.tdesc ~other ~attempt with
    | Contention.Wait ->
        Stats.record_lock_wait ();
        obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:other.Txn_desc.id t.backoff
    | Contention.Restart_self -> raise (Abort_exn Conflict)
    | Contention.Abort_other ->
        if Txn_desc.try_kill other then Stats.record_remote_abort ();
        (* Give the victim a beat to notice and release its locks. *)
        Backoff.once t.backoff

(* ------------------------------------------------------------------ *)
(* Read validation and timestamp extension                              *)

(* NOrec-style global commit lock for the Serial_commit mode: all
   writing commits serialize here instead of locking their write sets
   per location.  Declared here because snapshot sampling (below) must
   consult it; acquire/release live with the commit path. *)
let commit_gate = Atomic.make 0

(* In Serial_commit mode a committing writer holds no per-location
   locks while publishing: it ticks the clock under the gate, then
   writes values back.  A clock value sampled inside that window counts
   a tick whose writes are not yet visible, and a transaction adopting
   it as its snapshot can read the stale value yet still pass (or
   fast-path skip) commit validation — a lost update.  So snapshot
   timestamps are sampled seqlock-style against the gate: a clock read
   only becomes a snapshot once the gate is observed free *after* it,
   at which point every serial tick <= the sample has fully published.
   (Non-serial writers publish under per-location version-locks, which
   the read path and [entry_valid] already detect.) *)
let snapshot_clock ~serial =
  if not serial then Clock.now Clock.global
  else
    let rec go () =
      let v = Clock.now Clock.global in
      if Atomic.get commit_gate = 0 then v
      else begin
        Domain.cpu_relax ();
        go ()
      end
    in
    go ()

let entry_valid t (Rentry (tv, ver)) =
  (Tvar.load tv).version = ver
  &&
  match Tvar.current_owner tv with
  | None -> true
  | Some d -> d == t.tdesc

let reads_valid t =
  Hashtbl.fold (fun _ e ok -> ok && entry_valid t e) t.reads true

let try_extend t =
  let now = snapshot_clock ~serial:(t.cfg.mode = Serial_commit) in
  let ok = reads_valid t in
  obs_extend t ~ok;
  if ok then begin
    t.rv <- now;
    Stats.record_extension ();
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Read and write                                                       *)

let rec lock_for_write : type a. txn -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire;
      if t.cfg.mode = Eager_eager then wait_out_readers t tv ~attempt:0
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_for_write t tv ~attempt:(attempt + 1)

(* With visible readers, a writer that just locked [tv] must come to an
   agreement with every active reader before proceeding; either the
   readers finish/abort or this transaction restarts (releasing the
   lock on its abort path). *)
and wait_out_readers : type a. txn -> a Tvar.t -> attempt:int -> unit =
 fun t tv ~attempt ->
  match Tvar.active_readers tv ~except:t.tdesc with
  | [] -> ()
  | other :: _ ->
      arbitrate t ~other ~attempt;
      wait_out_readers t tv ~attempt:(attempt + 1)

let write : type a. txn -> a Tvar.t -> a -> unit =
 fun t tv v ->
  check_alive t;
  (match t.cfg.mode with
  | Lazy_lazy | Serial_commit -> ()
  | Eager_lazy | Eager_eager -> lock_for_write t tv ~attempt:0);
  Hashtbl.replace t.writes tv.Tvar.uid (Wentry (tv, v));
  Txn_desc.earn t.tdesc 1

let rec read : type a. txn -> a Tvar.t -> a =
 fun t tv ->
  check_alive t;
  match Hashtbl.find_opt t.writes tv.Tvar.uid with
  | Some (Wentry (tv', v)) ->
      assert (Obj.repr tv' == Obj.repr tv);
      (* Same uid implies same tvar, hence same type parameter. *)
      (Obj.magic v : a)
  | None -> read_committed t tv ~attempt:0

and read_committed : type a. txn -> a Tvar.t -> attempt:int -> a =
 fun t tv ~attempt ->
  if t.cfg.mode = Eager_eager then Tvar.register_reader tv t.tdesc;
  match Tvar.current_owner tv with
  | Some d when d != t.tdesc ->
      arbitrate t ~other:d ~attempt;
      read_committed t tv ~attempt:(attempt + 1)
  | _ -> (
      let s = Tvar.load tv in
      if s.Tvar.version > t.rv && not (t.cfg.extend_reads && try_extend t)
      then begin
        Stats.record_conflict ();
        raise (Abort_exn Conflict)
      end
      else if s.Tvar.version > t.rv then
        (* extension succeeded; re-examine under the new timestamp *)
        read_committed t tv ~attempt
      else
        match Hashtbl.find_opt t.reads tv.Tvar.uid with
        | Some (Rentry (_, ver)) when ver <> s.Tvar.version ->
            Stats.record_conflict ();
            raise (Abort_exn Conflict)
        | Some _ ->
            Txn_desc.earn t.tdesc 1;
            s.Tvar.value
        | None ->
            Hashtbl.replace t.reads tv.Tvar.uid (Rentry (tv, s.Tvar.version));
            Txn_desc.earn t.tdesc 1;
            s.Tvar.value)

(* ------------------------------------------------------------------ *)
(* Commit and abort                                                     *)

let release_locks t =
  List.iter (fun (Locked tv) -> Tvar.unlock tv t.tdesc) t.locked;
  t.locked <- []

let run_hooks hooks =
  (* Run every hook even if one raises; re-raise the first failure once
     lock hygiene is restored by the caller. *)
  let first_exn = ref None in
  List.iter
    (fun f ->
      try f ()
      with e -> if !first_exn = None then first_exn := Some e)
    hooks;
  match !first_exn with None -> () | Some e -> raise e

let do_abort t reason =
  ignore (Txn_desc.try_abort t.tdesc);
  Stats.record_abort ();
  (match reason with
  | Conflict -> Stats.record_conflict ()
  | Killed -> Stats.record_killed_abort ()
  | Explicit -> Stats.record_explicit_abort ());
  obs_abort t reason;
  (* LIFO: inverses registered after an operation run before the
     abstract-lock releases registered when the lock was acquired. *)
  let hooks = t.abort_hooks in
  t.abort_hooks <- [];
  t.finished <- true;
  Fun.protect ~finally:(fun () -> release_locks t) (fun () -> run_hooks hooks)

let acquire_commit_gate t =
  let b = Backoff.create () in
  let rec loop () =
    check_alive t;
    if not (Atomic.compare_and_set commit_gate 0 t.tdesc.Txn_desc.id) then begin
      Stats.record_lock_wait ();
      obs_wait ~txn:t.tdesc.Txn_desc.id ~held_by:(Atomic.get commit_gate) b;
      loop ()
    end
  in
  loop ()

let release_commit_gate t =
  if Atomic.get commit_gate = t.tdesc.Txn_desc.id then
    Atomic.set commit_gate 0

(* ------------------------------------------------------------------ *)
(* Serial-irrevocable quiescing                                         *)

(* [quiesce] holds the token of the transaction currently running in
   serial-irrevocable fallback mode (0 = none).  While it is set, every
   other *writing* commit aborts itself instead of proceeding, so
   nothing can invalidate the fallback transaction's reads or contend
   for its write set; [writers_in_flight] lets the fallback drain the
   writers that passed the check before the token appeared.

   Ordering argument (OCaml atomics are SC): a writer increments
   [writers_in_flight] *before* loading [quiesce]; the fallback sets
   [quiesce] *before* loading [writers_in_flight].  If the writer's
   load saw 0 then its increment precedes the fallback's load, so the
   fallback waits for it; otherwise the writer aborts. *)
let quiesce = Atomic.make 0
let writers_in_flight = Atomic.make 0
let fallback_token = Atomic.make 1

let enter_writer_commit t =
  Atomic.incr writers_in_flight;
  if Atomic.get quiesce <> 0 && not t.tdesc.Txn_desc.irrevocable then begin
    Atomic.decr writers_in_flight;
    raise (Abort_exn Conflict)
  end

let exit_writer_commit () = Atomic.decr writers_in_flight

let acquire_quiesce ~backoff =
  let token = Atomic.fetch_and_add fallback_token 1 in
  while not (Atomic.compare_and_set quiesce 0 token) do
    Stats.record_lock_wait ();
    obs_wait ~txn:0 ~held_by:(Atomic.get quiesce) backoff
  done;
  while Atomic.get writers_in_flight > 0 do
    Domain.cpu_relax ()
  done;
  token

let release_quiesce token =
  ignore (Atomic.compare_and_set quiesce token 0)

let sorted_writes t =
  let l = Hashtbl.fold (fun _ e acc -> e :: acc) t.writes [] in
  List.sort (fun (Wentry (a, _)) (Wentry (b, _)) -> compare a.Tvar.uid b.Tvar.uid) l

let rec lock_entry t tv ~attempt =
  match Tvar.try_lock tv t.tdesc with
  | `Mine -> ()
  | `Locked ->
      t.locked <- Locked tv :: t.locked;
      chaos_point t Fault.Post_lock_acquire
  | `Held other ->
      arbitrate t ~other ~attempt;
      lock_entry t tv ~attempt:(attempt + 1)

let do_commit t =
  check_alive t;
  chaos_point t Fault.Pre_commit;
  let writes = sorted_writes t in
  let serial = t.cfg.mode = Serial_commit in
  (* Phase 0: writing commits announce themselves so a concurrent
     serial-irrevocable fallback can drain or turn them away; this must
     precede the clock tick below so that once the fallback has
     quiesced, no other transaction can advance the clock. *)
  if writes <> [] then enter_writer_commit t;
  Fun.protect
    ~finally:(fun () -> if writes <> [] then exit_writer_commit ())
    (fun () ->
      (* Phase 1: lock the write set (uid order avoids lock-order
         livelock; eager modes already hold these locks).  The
         Serial_commit mode instead takes the one global commit gate. *)
      if serial then begin
        if writes <> [] then acquire_commit_gate t
      end
      else List.iter (fun (Wentry (tv, _)) -> lock_entry t tv ~attempt:0) writes;
      (* Phase 2: validate the read set against the snapshot timestamp.
         A transaction whose writes immediately follow its snapshot
         (rv+1 = wv) cannot have missed a concurrent commit, per TL2. *)
      let fail reason =
        if serial then release_commit_gate t;
        raise (Abort_exn reason)
      in
      (match chaos_point t Fault.Pre_validate with
      | () -> ()
      | exception Abort_exn reason -> fail reason);
      let wv = if writes = [] then t.rv else Clock.tick Clock.global in
      if writes <> [] && wv > t.rv + 1 then begin
        let ok = reads_valid t in
        obs_validate t ~ok;
        if not ok then fail Conflict
      end;
      (* Phase 3: linearize. *)
      if not (Txn_desc.try_commit t.tdesc) then fail Killed;
      Stats.record_commit ();
      obs_commit t;
      (* Phase 4: locked-phase handlers (replay logs), then publish. *)
      t.finished <- true;
      let locked_hooks = List.rev t.commit_locked_hooks in
      let after_hooks = List.rev t.after_commit_hooks in
      t.commit_locked_hooks <- [];
      t.after_commit_hooks <- [];
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun (Wentry (tv, v)) -> Tvar.publish tv v ~version:wv)
            writes;
          release_locks t;
          if serial then release_commit_gate t)
        (fun () -> run_hooks locked_hooks);
      run_hooks after_hooks)

(* ------------------------------------------------------------------ *)
(* Retry support                                                        *)

let retry t =
  check_alive t;
  raise Retry_exn

let restart t =
  check_alive t;
  raise (Abort_exn Explicit)

(* Build watchers before the txn record is torn down, so [atomically]
   can poll for a change after aborting. *)
let read_watchers t =
  Hashtbl.fold
    (fun _ (Rentry (tv, ver)) acc ->
      (fun () ->
        let s = Tvar.load tv in
        s.Tvar.version <> ver)
      :: acc)
    t.reads []

let wait_for_change watchers =
  if watchers = [] then
    failwith "Stm.retry: transaction read nothing; it would block forever";
  let b = Backoff.create () in
  let rec loop () =
    if List.exists (fun w -> w ()) watchers then () else (Backoff.once b; loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* or_else                                                              *)

let or_else t f g =
  check_alive t;
  let saved_writes = Hashtbl.copy t.writes in
  let saved_locked = t.locked in
  let saved_commit = t.commit_locked_hooks in
  let saved_after = t.after_commit_hooks in
  let saved_abort = t.abort_hooks in
  let saved_locals = Hashtbl.copy t.locals in
  try f t
  with Retry_exn ->
    (* Roll back the first branch's buffered effects.  Locks taken by
       the branch (eager modes) are released; locks predating the
       branch are kept. *)
    let new_locks =
      List.filter (fun l -> not (List.memq l saved_locked)) t.locked
    in
    List.iter (fun (Locked tv) -> Tvar.unlock tv t.tdesc) new_locks;
    t.locked <- saved_locked;
    Hashtbl.reset t.writes;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.writes k v) saved_writes;
    Hashtbl.reset t.locals;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.locals k v) saved_locals;
    t.commit_locked_hooks <- saved_commit;
    t.after_commit_hooks <- saved_after;
    t.abort_hooks <- saved_abort;
    g t

let rec or_else_list t = function
  | [] -> retry t
  | [ f ] -> f t
  | f :: rest -> or_else t f (fun t -> or_else_list t rest)

let guard t cond = if not cond then retry t

(* ------------------------------------------------------------------ *)
(* Transaction-local storage                                            *)

module Local = struct
  type 'a key = {
    kuid : int;
    inject : 'a -> exn;
    project : exn -> 'a option;
    init : txn -> 'a;
  }

  let next_kuid = Atomic.make 1

  let key (type s) (init : txn -> s) : s key =
    let exception E of s in
    {
      kuid = Atomic.fetch_and_add next_kuid 1;
      inject = (fun x -> E x);
      project = (function E x -> Some x | _ -> None);
      init;
    }

  let find t k =
    check_open t;
    match Hashtbl.find_opt t.locals k.kuid with
    | None -> None
    | Some e -> k.project e

  let set t k v =
    check_open t;
    Hashtbl.replace t.locals k.kuid (k.inject v)

  let get t k =
    match find t k with
    | Some v -> v
    | None ->
        let v = k.init t in
        set t k v;
        v
end

(* ------------------------------------------------------------------ *)
(* Leak auditing                                                        *)

exception Lock_leak of string

(* Debug-gated invariant check run after every finished attempt: a
   transaction that has ended — committed or aborted, under any fault
   schedule — must not still own any tvar version-lock, the commit
   gate, or any externally registered resource (abstract locks).  Off
   by default; the disabled fast path is one atomic load. *)
let audit_on = Atomic.make false
let set_leak_audit b = Atomic.set audit_on b
let leak_audit_enabled () = Atomic.get audit_on
let leak_checks : (owner:int -> string option) list Atomic.t = Atomic.make []

let rec register_leak_check f =
  let cur = Atomic.get leak_checks in
  if not (Atomic.compare_and_set leak_checks cur (f :: cur)) then
    register_leak_check f

let audit_txn t =
  let d = t.tdesc in
  let leak fmt = Format.kasprintf (fun s -> raise (Lock_leak s)) fmt in
  if not t.finished then leak "txn#%d audit before the attempt ended" d.Txn_desc.id;
  let check_tvar uid (tv_owner : Txn_desc.t option) =
    match tv_owner with
    | Some o when o == d ->
        leak "txn#%d still owns the version-lock of tvar#%d" d.Txn_desc.id uid
    | _ -> ()
  in
  Hashtbl.iter
    (fun uid (Rentry (tv, _)) -> check_tvar uid (Tvar.current_owner tv))
    t.reads;
  Hashtbl.iter
    (fun uid (Wentry (tv, _)) -> check_tvar uid (Tvar.current_owner tv))
    t.writes;
  (match t.locked with
  | [] -> ()
  | l -> leak "txn#%d retains %d entries in its locked list" d.Txn_desc.id
           (List.length l));
  if Atomic.get commit_gate = d.Txn_desc.id then
    leak "txn#%d still holds the serial commit gate" d.Txn_desc.id;
  List.iter
    (fun check ->
      match check ~owner:d.Txn_desc.id with
      | None -> ()
      | Some what -> leak "txn#%d leaked %s" d.Txn_desc.id what)
    (Atomic.get leak_checks)

let maybe_audit t = if Atomic.get audit_on then audit_txn t

(* ------------------------------------------------------------------ *)
(* The atomic-block driver                                              *)

let make_txn cfg ~priority ?birth ?(irrevocable = false) () =
  let rv = snapshot_clock ~serial:(cfg.mode = Serial_commit) in
  let birth = Option.value birth ~default:rv in
  {
    rv;
    tdesc = Txn_desc.create ~priority ~irrevocable ~birth ();
    cfg;
    reads = Hashtbl.create 16;
    writes = Hashtbl.create 16;
    locked = [];
    commit_locked_hooks = [];
    after_commit_hooks = [];
    abort_hooks = [];
    locals = Hashtbl.create 8;
    backoff =
      Backoff.create ~sleep_after:cfg.backoff_sleep_after
        ~sleep:cfg.backoff_sleep ();
    finished = false;
  }

(* Nesting is flattened: a domain-local slot tracks the transaction an
   [atomically] is currently running on this domain, and nested calls
   join it.  The nested body's effects then commit or abort with the
   outer transaction, which is the composition semantics Proustian
   objects assume. *)
let current_txn : txn option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Escalation ladder (the starvation-proof commit):

   1. attempts [1 .. abort_budget]: plain optimistic retries;
   2. attempts (abort_budget ..]: each retry additionally boosts the
      descriptor's priority, so karma-style contention managers start
      killing our adversaries, and the first attempt's birth timestamp
      is retained so age-based managers rank us as the elder;
   3. attempts (fallback_after ..] (when [serial_fallback]): take the
      global quiesce token, drain in-flight writing commits and re-run
      irrevocably — no remote kill, contention-manager defeat or
      injected fault can abort the attempt, so it commits and
      [Too_many_attempts] is unreachable under the default config. *)
let priority_boost = 1_000

let atomically_root cfg f =
  let backoff =
    Backoff.create ~sleep_after:cfg.backoff_sleep_after
      ~sleep:cfg.backoff_sleep ()
  in
  let rec attempt n ~priority ~birth =
    if n > cfg.max_attempts then raise (Too_many_attempts n);
    if cfg.serial_fallback && n > cfg.fallback_after then
      fallback_attempt n ~priority ~birth
    else begin
      let priority =
        if n > cfg.abort_budget then priority + priority_boost else priority
      in
      Stats.record_start ();
      let t = make_txn cfg ~priority ?birth () in
      obs_attempt_start t ~n;
      let birth = Some t.tdesc.Txn_desc.birth in
      Domain.DLS.set current_txn (Some t);
      let retry_after_abort ?watchers reason =
        Domain.DLS.set current_txn None;
        do_abort t reason;
        maybe_audit t;
        (match watchers with
        | Some ws -> wait_for_change ws
        | None -> Backoff.once backoff);
        attempt (n + 1) ~priority:t.tdesc.Txn_desc.priority ~birth
      in
      match f t with
      | result -> (
          match do_commit t with
          | () ->
              Domain.DLS.set current_txn None;
              maybe_audit t;
              result
          | exception Abort_exn reason -> retry_after_abort reason)
      | exception Abort_exn reason -> retry_after_abort reason
      | exception Retry_exn ->
          let watchers = read_watchers t in
          retry_after_abort ~watchers Explicit
      | exception e ->
          (* A user exception observed in an inconsistent (zombie) state is
             an artifact of late conflict detection, not a real error:
             abort and re-run, as ScalaSTM does (§7).  In a consistent
             state, abort and propagate. *)
          Domain.DLS.set current_txn None;
          let consistent = reads_valid t in
          do_abort t Explicit;
          maybe_audit t;
          if consistent then raise e
          else begin
            Backoff.once backoff;
            attempt (n + 1) ~priority:t.tdesc.Txn_desc.priority ~birth
          end
    end
  and fallback_attempt n ~priority ~birth =
    let token = acquire_quiesce ~backoff in
    Stats.record_fallback ();
    obs_fallback ~token;
    Fun.protect
      ~finally:(fun () ->
        release_quiesce token;
        if Atomic.get audit_on && Atomic.get quiesce = token then
          raise (Lock_leak "quiesce token survived its fallback episode"))
      (fun () ->
        (* Retries inside the episode keep the token: an abort here can
           only come from a bounded abstract-lock timeout against a
           pre-quiesce holder, which must itself drain shortly. *)
        let rec go n ~priority =
          if n > cfg.max_attempts then raise (Too_many_attempts n);
          Stats.record_start ();
          let t = make_txn cfg ~priority ?birth ~irrevocable:true () in
          obs_attempt_start t ~n;
          Domain.DLS.set current_txn (Some t);
          match f t with
          | result -> (
              match do_commit t with
              | () ->
                  Domain.DLS.set current_txn None;
                  maybe_audit t;
                  result
              | exception Abort_exn reason ->
                  Domain.DLS.set current_txn None;
                  do_abort t reason;
                  maybe_audit t;
                  Backoff.once backoff;
                  go (n + 1) ~priority:t.tdesc.Txn_desc.priority)
          | exception Abort_exn reason ->
              Domain.DLS.set current_txn None;
              do_abort t reason;
              maybe_audit t;
              Backoff.once backoff;
              go (n + 1) ~priority:t.tdesc.Txn_desc.priority
          | exception Retry_exn ->
              (* [retry] waits for another transaction to change the
                 read set, which can never happen while we quiesce the
                 writers: hand the token back, wait, and re-enter the
                 ladder at the boosted rung. *)
              let watchers = read_watchers t in
              Domain.DLS.set current_txn None;
              do_abort t Explicit;
              maybe_audit t;
              release_quiesce token;
              wait_for_change watchers;
              attempt (n + 1) ~priority:t.tdesc.Txn_desc.priority
                ~birth:(Some (Option.value birth ~default:t.tdesc.Txn_desc.birth))
          | exception e ->
              (* Irrevocable reads are consistent by construction, so a
                 user exception is a real error: abort and propagate. *)
              Domain.DLS.set current_txn None;
              do_abort t Explicit;
              maybe_audit t;
              raise e
        in
        go n ~priority)
  in
  attempt 1 ~priority:0 ~birth:None

let atomically ?config:(cfg = !default_config_v) f =
  match Domain.DLS.get current_txn with
  | Some outer when not outer.finished -> f outer
  | _ -> atomically_root cfg f

module Ref = struct
  type 'a t = 'a Tvar.t

  let make = Tvar.make
  let get = read
  let set = write
  let modify t r f = write t r (f (read t r))
end
