(* The public STM face.  The implementation lives in the layered
   modules beneath it —

     Rwset         log-structured read/write/local sets
     Txn_state     the pooled attempt record, audit, obs, chaos
     Protocol      the four conflict-detection modes as data
     Commit_ladder commit/abort drivers + the escalation ladder

   — and this façade re-exports the stable [Stm] API on top: the
   read/write hot paths (write-log filter probe, then the protocol's
   slow path), [or_else] by log watermarks, transaction-locals over the
   local log, and [atomically]'s nesting flattening. *)

(* The mode authority, re-exported: [Stm.Mode.all] is the one list
   tests and benches enumerate, [Stm.Mode.of_string] the one parser. *)
module Mode = Mode

type mode = Mode.t =
  | Lazy_lazy
  | Eager_lazy
  | Eager_eager
  | Serial_commit
  | Multi_version

let mode_name = Txn_state.mode_name

type config = Txn_state.config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
  max_attempts : int;
  abort_budget : int;
  serial_fallback : bool;
  fallback_after : int;
  backoff_sleep_after : int;
  backoff_sleep : float;
}

let set_default_config = Txn_state.set_default_config
let get_default_config = Txn_state.get_default_config

type txn = Txn_state.t

exception Too_many_attempts = Txn_state.Too_many_attempts
exception Not_in_transaction = Txn_state.Not_in_transaction
exception Retry_no_reads = Txn_state.Retry_no_reads
exception Read_only_violation = Txn_state.Read_only_violation
exception Lock_leak = Txn_state.Lock_leak

let desc = Txn_state.desc
let config = Txn_state.config
let read_version = Txn_state.read_version
let on_commit_locked = Txn_state.on_commit_locked
let after_commit = Txn_state.after_commit
let on_commit_durable = Txn_state.on_commit_durable
let on_abort = Txn_state.on_abort
let chaos_point = Txn_state.chaos_point
let set_leak_audit = Txn_state.set_leak_audit
let leak_audit_enabled = Txn_state.leak_audit_enabled
let register_leak_check = Txn_state.register_leak_check
let descriptor_pool_check = Txn_state.descriptor_pool_check
let pool_reuses = Txn_state.pool_reuses

(* ------------------------------------------------------------------ *)
(* Read and write                                                       *)

let read : type a. txn -> a Tvar.t -> a =
 fun t tv ->
  Txn_state.check_alive t;
  (* Read-after-write: one summary-filter probe; almost every read of a
     never-written tvar falls through in two loads and a [land]. *)
  let i = Rwset.Wlog.find_idx t.Txn_state.wset tv in
  if i >= 0 then Rwset.Wlog.value t.Txn_state.wset i
  else t.Txn_state.proto.Txn_state.p_read t tv

let write : type a. txn -> a Tvar.t -> a -> unit =
 fun t tv v ->
  Txn_state.check_alive t;
  if t.Txn_state.ro then raise Txn_state.Read_only_violation;
  t.Txn_state.proto.Txn_state.p_pre_write t tv;
  Rwset.Wlog.write t.Txn_state.wset tv v;
  Txn_desc.earn t.Txn_state.tdesc 1

(* ------------------------------------------------------------------ *)
(* Retry support                                                        *)

let retry t =
  Txn_state.check_alive t;
  raise Txn_state.Retry_exn

type retry_mode = Parking.retry_mode = Park | Poll

let set_retry_mode = Parking.set_retry_mode
let retry_mode = Parking.retry_mode
let parked_waiters = Parking.live_waiters

(* ------------------------------------------------------------------ *)
(* Publication pipeline knobs                                           *)

let set_combining = Publisher.set_combining
let combining = Publisher.combining
let set_combine_linger = Publisher.set_combine_linger
let combine_linger = Publisher.combine_linger
let set_adaptive_linger = Publisher.set_adaptive_linger
let adaptive_linger = Publisher.adaptive_linger
let pending_publications = Publisher.pending_publications

(* The combine-session face the replay logs (lib/core) build their
   cross-transaction merging on: [session] identifies the combiner's
   current drain, [defer_flush] parks a merged-state writeback until
   just before the gate releases. *)
module Combine = struct
  let session = Publisher.session
  let defer_flush = Publisher.defer_flush
end

let restart t =
  Txn_state.check_alive t;
  raise (Txn_state.Abort_exn Txn_state.Explicit)

(* ------------------------------------------------------------------ *)
(* or_else                                                              *)

(* Alternatives roll back by truncation: entering a branch records the
   write/local log watermarks and raises the floors to them, so the
   branch's rewrites of its *own* writes stay in place while writes
   shadowing pre-branch entries append (see {!Rwset.Wlog}); a [retry]
   truncates back to the watermarks — O(branch), not a Hashtbl copy of
   the whole transaction.  Read-log entries from the first branch are
   deliberately kept: the composed transaction waits on the union of
   both branches' read sets, and extra entries only make validation
   stricter. *)
let or_else t f g =
  Txn_state.check_alive t;
  let w = t.Txn_state.wset and l = t.Txn_state.locals in
  let wmark = Rwset.Wlog.mark w and wfloor = Rwset.Wlog.floor w in
  let lmark = Rwset.Llog.mark l and lfloor = Rwset.Llog.floor l in
  Rwset.Wlog.set_floor w wmark;
  Rwset.Llog.set_floor l lmark;
  let saved_locked = t.Txn_state.locked in
  let saved_commit = t.Txn_state.commit_locked_hooks in
  let saved_after = t.Txn_state.after_commit_hooks in
  let saved_abort = t.Txn_state.abort_hooks in
  let saved_durable = t.Txn_state.durable_hooks in
  match f t with
  | v ->
      Rwset.Wlog.set_floor w wfloor;
      Rwset.Llog.set_floor l lfloor;
      v
  | exception Txn_state.Retry_exn ->
      (* Roll back the first branch's buffered effects.  Locks taken by
         the branch (eager modes) are released; locks predating the
         branch are kept. *)
      let new_locks =
        List.filter
          (fun lk -> not (List.memq lk saved_locked))
          t.Txn_state.locked
      in
      List.iter
        (fun (Txn_state.Locked tv) -> Tvar.unlock tv t.Txn_state.tdesc)
        new_locks;
      t.Txn_state.locked <- saved_locked;
      Rwset.Wlog.truncate w wmark;
      Rwset.Wlog.set_floor w wfloor;
      Rwset.Llog.truncate l lmark;
      Rwset.Llog.set_floor l lfloor;
      t.Txn_state.commit_locked_hooks <- saved_commit;
      t.Txn_state.after_commit_hooks <- saved_after;
      t.Txn_state.abort_hooks <- saved_abort;
      t.Txn_state.durable_hooks <- saved_durable;
      g t
  (* Any other exception abandons the attempt entirely (the ladder
     aborts and retires the record, which resets the floors), so no
     restoration is needed here. *)

let rec or_else_list t = function
  | [] -> retry t
  | [ f ] -> f t
  | f :: rest -> or_else t f (fun t -> or_else_list t rest)

let guard t cond = if not cond then retry t

(* ------------------------------------------------------------------ *)
(* Transaction-local storage                                            *)

module Local = struct
  type 'a key = {
    kuid : int;
    inject : 'a -> exn;
    project : exn -> 'a option;
    init : txn -> 'a;
  }

  let next_kuid = Atomic.make 1

  let key (type s) (init : txn -> s) : s key =
    let exception E of s in
    {
      kuid = Atomic.fetch_and_add next_kuid 1;
      inject = (fun x -> E x);
      project = (function E x -> Some x | _ -> None);
      init;
    }

  let find t k =
    Txn_state.check_open t;
    match Rwset.Llog.find t.Txn_state.locals k.kuid with
    | None -> None
    | Some e -> k.project e

  let set t k v =
    Txn_state.check_open t;
    Rwset.Llog.set t.Txn_state.locals k.kuid (k.inject v)

  let get t k =
    match find t k with
    | Some v -> v
    | None ->
        let v = k.init t in
        set t k v;
        v
end

(* ------------------------------------------------------------------ *)
(* The atomic-block entry                                               *)

(* Nesting is flattened: a domain-local slot tracks the transaction an
   [atomically] is currently running on this domain, and nested calls
   join it.  The nested body's effects then commit or abort with the
   outer transaction, which is the composition semantics Proustian
   objects assume. *)
let atomically ?config:(cfg = get_default_config ()) f =
  match Domain.DLS.get Txn_state.current_txn with
  | Some outer when not outer.Txn_state.finished -> f outer
  | _ -> Commit_ladder.run cfg f

let in_transaction () =
  match Domain.DLS.get Txn_state.current_txn with
  | Some t -> not t.Txn_state.finished
  | None -> false

(* Read-only snapshot transactions.  A root call takes the abort-free
   snapshot path; a nested call joins the enclosing transaction but
   holds its [ro] flag up for the duration, so writes anywhere under
   the read-only scope raise [Read_only_violation] even when the
   enclosing transaction could write. *)
let join_read_only outer f =
  let saved = outer.Txn_state.ro in
  outer.Txn_state.ro <- true;
  Fun.protect
    ~finally:(fun () -> outer.Txn_state.ro <- saved)
    (fun () -> f outer)

let read_only ?config:(cfg = get_default_config ()) f =
  match Domain.DLS.get Txn_state.current_txn with
  | Some outer when not outer.Txn_state.finished -> join_read_only outer f
  | _ -> Commit_ladder.run_read_only cfg f

(* ------------------------------------------------------------------ *)
(* The QoS entry: outcomes instead of open-ended retry                  *)

module Outcome = struct
  type 'a t = Committed of 'a | Timed_out | Budget_exhausted | Shed

  let to_option = function Committed v -> Some v | _ -> None

  let name = function
    | Committed _ -> "committed"
    | Timed_out -> "timed-out"
    | Budget_exhausted -> "budget-exhausted"
    | Shed -> "shed"
end

let deadline t =
  let d = (Txn_state.desc t).Txn_desc.deadline_ns in
  if d = 0 then None else Some (float_of_int d *. 1e-9)

(* Episode-level QoS counters are recorded here, once per episode —
   the ladder only counts the per-attempt events. *)
let atomic ?config:(cfg = get_default_config ()) ?deadline ?max_attempts
    ?(read_only = false) f =
  match Domain.DLS.get Txn_state.current_txn with
  | Some outer when not outer.Txn_state.finished ->
      (* Nested: join the enclosing transaction.  Its QoS envelope
         (deadline, budget, admission) already covers this body. *)
      if read_only then Outcome.Committed (join_read_only outer f)
      else Outcome.Committed (f outer)
  | _ ->
      if not (Qos.Shedder.admit ()) then begin
        Stats.record_shed ();
        Outcome.Shed
      end
      else begin
        let deadline_ns =
          match deadline with None -> 0 | Some d -> int_of_float (d *. 1e9)
        in
        let attempt_budget = Option.value max_attempts ~default:0 in
        let run =
          if read_only then Commit_ladder.run_read_only ~deadline_ns
          else Commit_ladder.run ~deadline_ns
        in
        match run ~attempt_budget cfg f with
        | v -> Outcome.Committed v
        | exception Commit_ladder.Deadline_exceeded ->
            Stats.record_timeout ();
            Outcome.Timed_out
        | exception Commit_ladder.Out_of_budget ->
            Stats.record_budget_exhausted ();
            Outcome.Budget_exhausted
      end

module Ref = struct
  type 'a t = 'a Tvar.t

  let make = Tvar.make
  let get = read
  let set = write
  let modify t r f = write t r (f (read t r))
end
