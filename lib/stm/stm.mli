(** A software transactional memory for OCaml 5 domains.

    The design is TL2-style (global version clock, per-location
    versioned values, commit-time validation) with a configurable
    conflict-detection strategy, mirroring the right-hand table of the
    paper's Figure 1:

    - [Lazy_lazy]: write/write conflicts detected at commit time
      (commit-time locking) and read/write conflicts at validation —
      the TL2 point in the design space.
    - [Eager_lazy]: encounter-time write locking (eager write/write),
      lazy read/write — the TinySTM/Ennals point.
    - [Eager_eager]: encounter-time write locking plus visible readers,
      so both conflict classes are detected eagerly — the mode required
      by Theorem 5.2 for eager/optimistic Proustian objects to be
      opaque.

    Transactions additionally expose three handler phases that the
    Proust layer builds on:

    - [on_commit_locked]: runs after the commit point while the write
      set is still locked; replay logs apply shadow-copy operations to
      base structures here, "behind the STM's native locking" (§4).
    - [after_commit]: runs after locks are released (abstract-lock
      release, user callbacks).
    - [on_abort]: runs in reverse registration order on abort
      (operation inverses, then abstract-lock release). *)

(** The single mode authority: enumerate with [Mode.all], print/parse
    with [Mode.to_string]/[Mode.of_string], read the [PROUST_MODE]
    environment default with [Mode.from_env].  Every mode list in the
    tree (bench CLIs, test matrices, the design-space printer) derives
    from it. *)
module Mode = Mode

type mode = Mode.t =
  | Lazy_lazy
  | Eager_lazy
  | Eager_eager
  | Serial_commit
      (** NOrec-style: no per-location commit locking at all; writers
          serialize on one global commit lock and readers validate
          against it.  Minimal metadata, zero per-location lock
          traffic, but write commits never overlap. *)
  | Multi_version
      (** MVCC: tvars keep a bounded version history; read-write
          transactions run TL2-style but serve snapshot-stale reads
          from the history, and {!read_only} transactions read a
          consistent snapshot abort-free.  See {!Mode.t}. *)

val mode_name : mode -> string

type config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
      (** revalidate and extend the read timestamp instead of aborting
          when a location is newer than the transaction's snapshot *)
  max_attempts : int;  (** give up (raise [Too_many_attempts]) after this *)
  abort_budget : int;
      (** attempts beyond this boost the descriptor's priority on every
          retry, feeding karma-style contention managers *)
  serial_fallback : bool;
      (** escalate to the serial-irrevocable mode instead of starving;
          with it on (the default), [Too_many_attempts] is unreachable
          as long as [fallback_after < max_attempts] *)
  fallback_after : int;
      (** attempts before a transaction takes the global quiesce token
          and re-runs irrevocably *)
  backoff_sleep_after : int;
      (** backoff rounds before each further round adds an OS sleep *)
  backoff_sleep : float;  (** seconds slept per degraded backoff round *)
}

(** The process-wide default configuration, read afresh at each use
    ([atomically] without [?config] consults it per call — use
    [set_default_config] to change it). *)
val get_default_config : unit -> config

val set_default_config : config -> unit

type txn

exception Too_many_attempts of int

(** Raised inside an atomic block by operations that must run inside
    one when handed a transaction whose attempt already ended. *)
exception Not_in_transaction

(** Raised by an episode whose body called [retry] with an empty read
    set: no tvar exists whose change could wake it, so blocking would
    hang forever. *)
exception Retry_no_reads

(** Raised by {!write} inside a read-only scope ({!read_only}, or
    [atomic ~read_only:true]).  Not an abort: the episode fails
    without retrying — the snapshot path cannot honor a write, and the
    program must hear about it. *)
exception Read_only_violation

(** [atomically f] runs [f] in a fresh transaction, retrying on
    conflict, and commits its effects atomically.  Nesting is
    flattened: an [atomically] reached while this domain is already
    running a transaction joins that transaction (its [config] is
    ignored), and the nested effects commit or abort with the outer
    one. *)
val atomically : ?config:config -> (txn -> 'a) -> 'a

(** Whether this domain is currently inside an [atomically] body —
    i.e. a nested [atomically] here would join rather than start a
    transaction.  For operations that are deliberately
    non-compositional (multi-transaction protocols such as
    [Semaphore.acquire_fair]) and must refuse to be flattened. *)
val in_transaction : unit -> bool

(** [read_only f] runs [f] as a {e read-only snapshot transaction}:
    every {!read} is served from the tvar version chains at the
    transaction's start timestamp (a consistent snapshot — some prefix
    of the committed transaction order), any {!write} raises
    {!Read_only_violation}, and the transaction {e never aborts} no
    matter how write-heavy the concurrency ([Stats] field [ro_aborts]
    stays 0 absent user exceptions or an armed watchdog).  Version
    history is maintained once any block has run under [Multi_version]
    — or once a [read_only] has run; the first call arms it — so
    snapshots always find the versions they need (the {!Snapshots}
    registration protocol pins them against GC).

    [retry] inside a read-only transaction raises {!Retry_no_reads}:
    snapshot reads record no watch entries, so there is nothing to
    wake on.

    A nested call joins the enclosing transaction (like {!atomically})
    but raises the read-only flag for its duration, so writes under
    the scope fail even when the outer transaction could write. *)
val read_only : ?config:config -> (txn -> 'a) -> 'a

(** {2 QoS: bounded atomic execution}

    {!atomically} retries until it commits — the starvation-proof
    ladder guarantees it eventually does, but says nothing about
    {e when}.  [atomic] is the bounded variant: the caller states what
    the episode may cost (a deadline, an attempt budget) and receives
    an explicit outcome instead of an open-ended wait.  See DESIGN.md,
    "Robustness & QoS". *)

module Outcome : sig
  (** The outcome lattice of a bounded episode.  Exactly one constructor
      carries a value: everything else guarantees the transaction's
      effects did {e not} happen (no partial writes, no leaked locks). *)
  type 'a t =
    | Committed of 'a  (** the body ran and its effects are visible *)
    | Timed_out  (** the deadline passed before a commit succeeded *)
    | Budget_exhausted  (** the attempt budget ran out *)
    | Shed  (** admission refused by the overload shedder; the body
                never ran *)

  val to_option : 'a t -> 'a option
  val name : 'a t -> string
end

(** [atomic ?deadline ?max_attempts f] runs [f] like {!atomically} but
    bounded.  [deadline] is an {e absolute} {!Clock.now_mono} point in
    seconds (e.g. [Clock.now_mono () +. 0.005]); it is checked before
    every attempt, at commit validation, and inside lock-wait polls,
    and backoff sleeps are clamped to it.  [max_attempts] bounds how
    many attempts the episode may start (independent of
    [config.max_attempts], whose [Too_many_attempts] semantics are
    unchanged).  When the {!Qos.Shedder} is enabled, admission is
    checked first and a refusal returns [Shed] without running [f].

    Irrevocable (serial-fallback) attempts ignore the deadline
    mid-attempt — nothing may abort them — so the episode can only time
    out between attempts once the fallback engaged.

    [read_only] (default false) routes the episode through the
    abort-free snapshot path of {!read_only} under the same QoS
    envelope: the deadline and budget still bound it (a snapshot
    transaction spends no attempts on conflicts, but the shedder,
    deadline and watchdog apply unchanged).

    Nested calls join the enclosing transaction and always return
    [Committed]: the outer episode's QoS envelope covers them. *)
val atomic :
  ?config:config ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?read_only:bool ->
  (txn -> 'a) ->
  'a Outcome.t

(** [deadline txn] is the running episode's absolute deadline in
    {!Clock.now_mono} seconds, if one was set — lock acquisition paths
    with their own timeouts clamp to it. *)
val deadline : txn -> float option

val read : txn -> 'a Tvar.t -> 'a
val write : txn -> 'a Tvar.t -> 'a -> unit

(** Abort the current attempt and block — parking the domain on the
    read set's per-tvar wait lists until a commit changes some
    location read so far (see {!Parking}) — then re-run.  Raises
    {!Retry_no_reads} if nothing was read.  Deadlines set through
    {!atomic} are honored while parked. *)
val retry : txn -> 'a

(** The retry blocking strategy: real parking (default) or the legacy
    busy-poll, kept switchable for comparison benches. *)
type retry_mode = Parking.retry_mode = Park | Poll

val set_retry_mode : retry_mode -> unit
val retry_mode : unit -> retry_mode

(** [retry] waiters currently registered and unwoken, process-wide
    (0 at quiescence — the wait-list orphan audit). *)
val parked_waiters : unit -> int

(** {2 Publication pipeline}

    Writing commits in [Serial_commit] mode route through the
    flat-combining group-commit publisher by default (see {!Publisher}):
    the domain that wins the serial gate drains the whole publication
    list — every pending commit, with its own validation, durable hooks
    and outcome hand-back — in one gate acquisition.
    [PROUST_COMBINE=0] (or [off]/[false]/[inline]) selects the legacy
    inline publisher at startup; [set_combining] flips it at runtime
    for A/B benching, mirroring the [PROUST_RETRY]/{!set_retry_mode}
    pattern.  Other modes always publish inline. *)

val set_combining : bool -> unit
val combining : unit -> bool

(** Combiner linger (seconds): after its own commit the gate winner
    keeps polling the publication list — yielding between polls —
    before releasing, so commits still in flight can join the batch.
    The budget bounds the idle gap between arrivals (it resets after
    every drain), so it only needs to cover scheduling jitter: a
    stream of arrivals keeps the combiner serving, a gap longer than
    the budget releases the gate.  The classic flat-combining dwell
    knob; essential for batching when domains outnumber cores, where
    an arrival otherwise only lands in the drain window if the
    combiner was preempted mid-gate.  Default [0.] (no linger);
    [PROUST_COMBINE_LINGER] (seconds) sets it at startup. *)
val set_combine_linger : float -> unit

val combine_linger : unit -> float

(** Adaptive linger: arm the configured {!combine_linger} only when
    the serial gate has recently been contended (a publisher lost the
    gate and queued a slot inside the last few tens of ms).  Batches
    only ever form out of contention, so a solo committer skips the
    dwell entirely — a linger budget can stay configured without
    taxing uncontended commits.  On by default;
    [PROUST_COMBINE_LINGER_ADAPTIVE=0] pins the legacy
    always-lingering behaviour at startup. *)
val set_adaptive_linger : bool -> unit

val adaptive_linger : unit -> bool

(** Publication-list entries currently waiting for a combiner,
    process-wide (0 at quiescence — the batch orphan audit). *)
val pending_publications : unit -> int

(** The combine-session face replay logs build cross-transaction
    merging on: inside a combiner's drain, [session ()] is [Some gen]
    (a generation unique to that drain) and [defer_flush f] parks [f]
    until just before the gate releases — outside, [session ()] is
    [None] and [defer_flush] runs [f] immediately. *)
module Combine : sig
  val session : unit -> int option
  val defer_flush : (unit -> unit) -> unit
end

(** [or_else txn f g] runs [f]; if [f] calls [retry], rolls back [f]'s
    buffered effects and runs [g] instead.  If [g] also retries, the
    whole transaction waits on the union of both read sets. *)
val or_else : txn -> (txn -> 'a) -> (txn -> 'a) -> 'a

(** First alternative that does not retry; an empty list retries
    immediately. *)
val or_else_list : txn -> (txn -> 'a) list -> 'a

(** [guard txn cond] retries the transaction unless [cond] holds — the
    STM-Haskell [check] idiom for building blocking operations. *)
val guard : txn -> bool -> unit

(** Abort this attempt and re-run the atomic block from scratch. *)
val restart : txn -> 'a

val desc : txn -> Txn_desc.t
val config : txn -> config

(** The transaction's current read timestamp (tests/diagnostics). *)
val read_version : txn -> int

val on_commit_locked : txn -> (unit -> unit) -> unit
val after_commit : txn -> (unit -> unit) -> unit

(** Register a durability handler.  If the transaction commits, the
    handler runs in the locked phase (write locks still held, so
    redo-log append order agrees with conflict order) and receives the
    commit version as its log sequence number; registering one forces
    the commit to tick the clock even when the tvar write set is empty,
    so every durable commit owns a distinct LSN.  The handler may
    return a wait thunk — typically a group-commit flush wait — which
    the ladder runs only after all locks and gates are released and the
    [after_commit] handlers have run. *)
val on_commit_durable : txn -> (int -> (unit -> unit) option) -> unit

(** Register an abort handler.  Unlike the other registrations this is
    permitted on a transaction that has already been killed remotely
    (but whose attempt is still running): eager constructions register
    operation inverses right after mutating the base structure, and a
    kill landing in that window must not cause the inverse to be
    dropped. *)
val on_abort : txn -> (unit -> unit) -> unit

(** {2 Fault injection and leak auditing} *)

(** [chaos_point txn p] consults {!Fault} at injection point [p] on
    behalf of [txn]: delays are served in place, a drawn [Abort] raises
    the transaction's conflict-abort, a drawn [Kill] marks its own
    descriptor aborted as a contention manager would.  Irrevocable
    (serial-fallback) attempts only honour the delay component.  The
    Proust layers call this around abstract-lock acquisition. *)
val chaos_point : txn -> Fault.point -> unit

(** Raised by the leak auditor when a finished transaction still owns a
    tvar version-lock, the serial commit gate, the quiesce token, or an
    externally registered resource. *)
exception Lock_leak of string

(** Enable/disable the post-attempt leak audit (off by default; the
    disabled fast path is a single atomic load per attempt). *)
val set_leak_audit : bool -> unit

val leak_audit_enabled : unit -> bool

(** [register_leak_check f] adds an external auditor: [f ~owner] should
    report a held resource description if the finished transaction
    descriptor with id [owner] still holds one.  Used by the
    pessimistic lock allocator to audit its striped rw-locks. *)
val register_leak_check : (owner:int -> string option) -> unit

(** {2 Descriptor-pool introspection}

    Transaction records are pooled per domain and reset between
    attempts (see DESIGN.md, "Descriptor reuse"); only the
    [Txn_desc.t] identity is fresh per attempt.  These entry points
    let tests verify the reset discipline. *)

(** Audit the calling domain's idle pooled record: raises {!Lock_leak}
    if any read/write/local log entry, locked-list entry or hook
    survived the last attempt.  No-op while the domain is inside an
    atomic block (the record is legitimately in use then). *)
val descriptor_pool_check : unit -> unit

(** Times the calling domain's pooled record has been handed out to an
    attempt (monotone; > number of atomic blocks run when conflicts
    forced retries). *)
val pool_reuses : unit -> int

(** Transaction-local storage: per-transaction lazily initialized
    values, dropped when the attempt ends.  This is the analogue of
    ScalaSTM's [TxnLocal], used for replay logs and shadow copies. *)
module Local : sig
  type 'a key

  (** [key init] allocates a new key; [init] runs per transaction on
      first access. *)
  val key : (txn -> 'a) -> 'a key

  val get : txn -> 'a key -> 'a
  val find : txn -> 'a key -> 'a option
  val set : txn -> 'a key -> 'a -> unit
end

(** Convenience aliases for tvar access in transaction style. *)
module Ref : sig
  type 'a t = 'a Tvar.t

  val make : 'a -> 'a t
  val get : txn -> 'a t -> 'a
  val set : txn -> 'a t -> 'a -> unit
  val modify : txn -> 'a t -> ('a -> 'a) -> unit
end
