type 'a versioned = { value : 'a; version : int; prev : 'a versioned option }

type 'a t = {
  uid : int;
  fbit : int;
  state : 'a versioned Atomic.t;
  mutable chain_len : int;
      (* Length of [state]'s version chain (head included).  Written
         only by [publish], which runs under the owner lock or the
         serial commit gate; the write is ordered before the head
         install and the next publisher's read after its head load, so
         the [state] atomic carries the happens-before edge.  Keeping
         the count here makes armed publishes O(1) instead of walking
         the chain. *)
  owner : Txn_desc.t option Atomic.t;
  readers : Txn_desc.t list Atomic.t;
  waiters : Waitq.waiter list Atomic.t;
}

let next_uid = Atomic.make 1

(* One of the 62 low non-sign bits of a word, chosen by uid.  Write-set
   summary filters OR these together so a read can rule out
   read-after-write with one [land].  62 (not 63/64) keeps the shift
   below the sign bit of a 63-bit OCaml int: [1 lsl 62] is [min_int]
   (still a usable bit) but [1 lsl 63] is 0, which would make the
   filter lose writes.  Precomputed here so the read hot path never
   pays the division. *)
let filter_bit uid = 1 lsl (uid mod 62)

let make v =
  let uid = Atomic.fetch_and_add next_uid 1 in
  {
    uid;
    fbit = filter_bit uid;
    state = Atomic.make { value = v; version = 0; prev = None };
    chain_len = 1;
    owner = Atomic.make None;
    readers = Atomic.make [];
    waiters = Atomic.make [];
  }

let load t = Atomic.get t.state
let peek t = (Atomic.get t.state).value
let current_owner t = Atomic.get t.owner

let rec try_lock t desc =
  match Atomic.get t.owner with
  | Some d when d == desc -> `Mine
  | Some d -> `Held d
  | None ->
      if Atomic.compare_and_set t.owner None (Some desc) then `Locked
      else try_lock t desc

let unlock t desc =
  match Atomic.get t.owner with
  | Some d when d == desc -> Atomic.set t.owner None
  | _ -> ()

let rec chain_length = function
  | None -> 0
  | Some v -> 1 + chain_length v.prev

(* Trim a version chain (newest-first) against the active-snapshot
   floor: keep the newest [keep] entries unconditionally, keep older
   entries while their version exceeds [floor], and at the first entry
   at depth >= [keep] with version <= [floor], keep that entry as the
   boundary (a snapshot at any timestamp >= floor resolves to the
   newest entry <= its timestamp, and the boundary is exactly the
   newest entry <= floor) and drop its tail.  Returns the possibly
   rebuilt chain, the number of reclaimed entries, and whether any
   node changed — an unchanged suffix is reused, so a publish that
   reclaims nothing allocates nothing beyond the new head. *)
let rec chain_trim node depth ~keep ~floor =
  match node with
  | None -> (None, 0, false)
  | Some v ->
      if depth < keep || v.version > floor then
        let prev', dropped, changed =
          chain_trim v.prev (depth + 1) ~keep ~floor
        in
        if changed then (Some { v with prev = prev' }, dropped, true)
        else (node, dropped, false)
      else
        let dropped = chain_length v.prev in
        if dropped = 0 then (node, 0, false)
        else (Some { v with prev = None }, dropped, true)

let publish t value ~version =
  (* Chaos hook: stretch the window between individual write-backs.
     Disruptive actions are not allowed here — the owning transaction
     is already past its linearization point. *)
  Fault.delay_only Fault.Mid_write_back;
  if not (Snapshots.armed ()) then
    (* Single-version modes: the original one-store hot path, no chain. *)
    Atomic.set t.state { value; version; prev = None }
  else begin
    let head = Atomic.get t.state in
    let keep = Snapshots.max_versions () in
    (* Amortized GC: let the chain grow to 2K, then trim back to ~K+1
       in one pass.  A full chain_trim rebuilds up to [keep] nodes, so
       trimming on every publish would allocate K records per store;
       deferring it to every Kth publish keeps the steady-state cost
       at ~one extra allocation per publish while still bounding the
       chain at 2K (plus whatever an active snapshot pins).  The
       [chain_len] count (maintained here, read after the head load)
       keeps the common no-trim publish O(1). *)
    let len = t.chain_len in
    let prev, len' =
      if len < 2 * keep then (Some head, len + 1)
      else begin
        let floor = Snapshots.floor () in
        (* Chaos hook: widen the floor-read -> install window, the
           reclamation race against a registering snapshot.  A snapshot
           this scan missed registered after our clock tick, so its
           timestamp covers the head we are about to install and never
           needs the trimmed tail.  Delay-only: past linearization. *)
        Fault.delay_only Fault.Version_gc;
        Stats.note_version_chain_len (len + 1);
        let prev, dropped, _ = chain_trim (Some head) 1 ~keep ~floor in
        if dropped > 0 then Stats.add_versions_gced dropped;
        (prev, len + 1 - dropped)
      end
    in
    t.chain_len <- len';
    (* Single store installs the new head; publish runs under the
       owner lock (or the serial commit gate), so no concurrent
       publish can interleave with this read-trim-store. *)
    Atomic.set t.state { value; version; prev };
    Stats.record_version_install ()
  end

(* Newest version at or below [version], walking the history chain
   from the head.  [None] means the history was already reclaimed
   below [version] — unreachable for a snapshot registered before it
   sampled its timestamp (see Snapshots), but surfaced as a conflict
   rather than an assertion so a protocol bug fails loudly. *)
let read_at t ~version =
  let rec go = function
    | None -> None
    | Some v -> if v.version <= version then Some v else go v.prev
  in
  go (Some (Atomic.get t.state))

let version_chain_len t = chain_length (Some (Atomic.get t.state))

(* Visible readers: CAS-push, pruning dead entries once the list grows
   past a small threshold.  Losing a prune race only leaves extra dead
   entries, which writers skip; a registration CAS failure retries. *)
let max_unpruned = 8

let rec register_reader t desc =
  let cur = Atomic.get t.readers in
  if List.memq desc cur then ()
  else
    let live =
      if List.length cur >= max_unpruned then
        List.filter Txn_desc.is_active cur
      else cur
    in
    if not (Atomic.compare_and_set t.readers cur (desc :: live)) then
      register_reader t desc

let active_readers t ~except =
  List.filter
    (fun d -> d != except && Txn_desc.is_active d)
    (Atomic.get t.readers)

(* Wait lists: CAS-push like the visible readers, pruning entries that
   already left [Waiting] (woken via another watched tvar, cancelled,
   expired) once the list grows past the same threshold.  Returns the
   new list length so registration can feed the wait-list high-water
   gauge. *)
let rec add_waiter t w =
  let cur = Atomic.get t.waiters in
  let live =
    if List.length cur >= max_unpruned then List.filter Waitq.is_waiting cur
    else cur
  in
  if Atomic.compare_and_set t.waiters cur (w :: live) then 1 + List.length live
  else add_waiter t w

(* Explicit deregistration keeps the lists orphan-free: a waiter that
   leaves (woken, cancelled or expired) removes itself from every list
   it joined.  Losing the race against a committer's [take_waiters]
   exchange just means the entry is already gone. *)
let rec remove_waiter t w =
  let cur = Atomic.get t.waiters in
  if List.memq w cur then begin
    let next = List.filter (fun x -> x != w) cur in
    if not (Atomic.compare_and_set t.waiters cur next) then remove_waiter t w
  end

(* Committer side: detach the whole list in one exchange.  The caller
   must have published the new version first — any waiter that misses
   this scan registered after the exchange, hence after the publish,
   and its post-registration revalidation sees the new version and
   self-cancels instead of parking (the no-lost-wakeup argument; see
   Parking). *)
let take_waiters t =
  if Atomic.get t.waiters == [] then [] else Atomic.exchange t.waiters []

let waiter_count t = List.length (Atomic.get t.waiters)
