type 'a versioned = { value : 'a; version : int }

type 'a t = {
  uid : int;
  fbit : int;
  state : 'a versioned Atomic.t;
  owner : Txn_desc.t option Atomic.t;
  readers : Txn_desc.t list Atomic.t;
  waiters : Waitq.waiter list Atomic.t;
}

let next_uid = Atomic.make 1

(* One of the 62 low non-sign bits of a word, chosen by uid.  Write-set
   summary filters OR these together so a read can rule out
   read-after-write with one [land].  62 (not 63/64) keeps the shift
   below the sign bit of a 63-bit OCaml int: [1 lsl 62] is [min_int]
   (still a usable bit) but [1 lsl 63] is 0, which would make the
   filter lose writes.  Precomputed here so the read hot path never
   pays the division. *)
let filter_bit uid = 1 lsl (uid mod 62)

let make v =
  let uid = Atomic.fetch_and_add next_uid 1 in
  {
    uid;
    fbit = filter_bit uid;
    state = Atomic.make { value = v; version = 0 };
    owner = Atomic.make None;
    readers = Atomic.make [];
    waiters = Atomic.make [];
  }

let load t = Atomic.get t.state
let peek t = (Atomic.get t.state).value
let current_owner t = Atomic.get t.owner

let rec try_lock t desc =
  match Atomic.get t.owner with
  | Some d when d == desc -> `Mine
  | Some d -> `Held d
  | None ->
      if Atomic.compare_and_set t.owner None (Some desc) then `Locked
      else try_lock t desc

let unlock t desc =
  match Atomic.get t.owner with
  | Some d when d == desc -> Atomic.set t.owner None
  | _ -> ()

let publish t value ~version =
  (* Chaos hook: stretch the window between individual write-backs.
     Disruptive actions are not allowed here — the owning transaction
     is already past its linearization point. *)
  Fault.delay_only Fault.Mid_write_back;
  Atomic.set t.state { value; version }

(* Visible readers: CAS-push, pruning dead entries once the list grows
   past a small threshold.  Losing a prune race only leaves extra dead
   entries, which writers skip; a registration CAS failure retries. *)
let max_unpruned = 8

let rec register_reader t desc =
  let cur = Atomic.get t.readers in
  if List.memq desc cur then ()
  else
    let live =
      if List.length cur >= max_unpruned then
        List.filter Txn_desc.is_active cur
      else cur
    in
    if not (Atomic.compare_and_set t.readers cur (desc :: live)) then
      register_reader t desc

let active_readers t ~except =
  List.filter
    (fun d -> d != except && Txn_desc.is_active d)
    (Atomic.get t.readers)

(* Wait lists: CAS-push like the visible readers, pruning entries that
   already left [Waiting] (woken via another watched tvar, cancelled,
   expired) once the list grows past the same threshold.  Returns the
   new list length so registration can feed the wait-list high-water
   gauge. *)
let rec add_waiter t w =
  let cur = Atomic.get t.waiters in
  let live =
    if List.length cur >= max_unpruned then List.filter Waitq.is_waiting cur
    else cur
  in
  if Atomic.compare_and_set t.waiters cur (w :: live) then 1 + List.length live
  else add_waiter t w

(* Explicit deregistration keeps the lists orphan-free: a waiter that
   leaves (woken, cancelled or expired) removes itself from every list
   it joined.  Losing the race against a committer's [take_waiters]
   exchange just means the entry is already gone. *)
let rec remove_waiter t w =
  let cur = Atomic.get t.waiters in
  if List.memq w cur then begin
    let next = List.filter (fun x -> x != w) cur in
    if not (Atomic.compare_and_set t.waiters cur next) then remove_waiter t w
  end

(* Committer side: detach the whole list in one exchange.  The caller
   must have published the new version first — any waiter that misses
   this scan registered after the exchange, hence after the publish,
   and its post-registration revalidation sees the new version and
   self-cancels instead of parking (the no-lost-wakeup argument; see
   Parking). *)
let take_waiters t =
  if Atomic.get t.waiters == [] then [] else Atomic.exchange t.waiters []

let waiter_count t = List.length (Atomic.get t.waiters)
