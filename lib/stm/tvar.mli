(** Versioned transactional variables.

    A tvar packs its current value and commit version into one
    immutable pair behind an [Atomic.t], so a reader always observes a
    consistent (value, version) snapshot with a single atomic load.
    Uncommitted values are never published here — writers buffer them
    in their write set and install them only at commit, while holding
    the tvar's owner lock.

    The [readers] list supports the visible-readers conflict mode
    ([Eager_eager]): registered descriptors of transactions that have
    read this tvar and may still be active.  Entries are pruned lazily;
    stale (committed/aborted) entries are ignored by writers. *)

type 'a versioned = { value : 'a; version : int }

type 'a t = {
  uid : int;
  fbit : int;
      (** precomputed write-set summary-filter bit, [1 lsl (uid mod 62)];
          see {!Rwset.Wlog} *)
  state : 'a versioned Atomic.t;
  owner : Txn_desc.t option Atomic.t;
  readers : Txn_desc.t list Atomic.t;
  waiters : Waitq.waiter list Atomic.t;
      (** parked [retry] waiters watching this tvar; see {!Parking} *)
}

(** [make v] is a fresh tvar holding [v] at version 0. *)
val make : 'a -> 'a t

(** Consistent snapshot of the current committed state. *)
val load : 'a t -> 'a versioned

(** Non-transactional peek at the committed value (tests, debugging). *)
val peek : 'a t -> 'a

val current_owner : 'a t -> Txn_desc.t option

(** [try_lock t desc] CASes the owner word from free to [desc].
    Returns [`Locked] on success, [`Mine] if [desc] already owns it,
    [`Held other] if another transaction owns it. *)
val try_lock : 'a t -> Txn_desc.t -> [ `Locked | `Mine | `Held of Txn_desc.t ]

(** Release the owner lock.  Only the owner may call this. *)
val unlock : 'a t -> Txn_desc.t -> unit

(** Publish a new committed state.  Caller must hold the owner lock. *)
val publish : 'a t -> 'a -> version:int -> unit

(** Register [desc] as a visible reader (idempotent). *)
val register_reader : 'a t -> Txn_desc.t -> unit

(** Active registered readers other than [except]. *)
val active_readers : 'a t -> except:Txn_desc.t -> Txn_desc.t list

(** Register a [retry] waiter (CAS-push, pruning dead entries past a
    small threshold).  Returns the new list length, for the wait-list
    high-water gauge. *)
val add_waiter : 'a t -> Waitq.waiter -> int

(** Remove a departing waiter; a no-op if a committer's
    [take_waiters] already detached it. *)
val remove_waiter : 'a t -> Waitq.waiter -> unit

(** Detach and return the whole wait list (committer side).  The
    caller must have published the new version first — see the
    no-lost-wakeup argument in {!Parking}. *)
val take_waiters : 'a t -> Waitq.waiter list

(** Current wait-list length, dead entries included (tests). *)
val waiter_count : 'a t -> int
