(** Versioned transactional variables.

    A tvar packs its current value and commit version into one
    immutable pair behind an [Atomic.t], so a reader always observes a
    consistent (value, version) snapshot with a single atomic load.
    Uncommitted values are never published here — writers buffer them
    in their write set and install them only at commit, while holding
    the tvar's owner lock.

    The [readers] list supports the visible-readers conflict mode
    ([Eager_eager]): registered descriptors of transactions that have
    read this tvar and may still be active.  Entries are pruned lazily;
    stale (committed/aborted) entries are ignored by writers.

    Under the [Multi_version] mode (once {!Snapshots.armed}), each
    publish links the displaced state onto an immutable newest-first
    history chain via [prev], bounded to the newest
    {!Snapshots.max_versions} entries plus whatever older versions an
    active snapshot may still reach; {!read_at} serves consistent
    snapshot reads from it.  The single-version modes never arm the
    chain and keep the original one-store publish. *)

type 'a versioned = { value : 'a; version : int; prev : 'a versioned option }

type 'a t = {
  uid : int;
  fbit : int;
      (** precomputed write-set summary-filter bit, [1 lsl (uid mod 62)];
          see {!Rwset.Wlog} *)
  state : 'a versioned Atomic.t;
  mutable chain_len : int;
      (** length of [state]'s version chain, head included; written
          only under the publish-side exclusion (owner lock or serial
          gate) so armed publishes stay O(1) — see [publish] *)
  owner : Txn_desc.t option Atomic.t;
  readers : Txn_desc.t list Atomic.t;
  waiters : Waitq.waiter list Atomic.t;
      (** parked [retry] waiters watching this tvar; see {!Parking} *)
}

(** [make v] is a fresh tvar holding [v] at version 0. *)
val make : 'a -> 'a t

(** Consistent snapshot of the current committed state. *)
val load : 'a t -> 'a versioned

(** Non-transactional peek at the committed value (tests, debugging). *)
val peek : 'a t -> 'a

val current_owner : 'a t -> Txn_desc.t option

(** [try_lock t desc] CASes the owner word from free to [desc].
    Returns [`Locked] on success, [`Mine] if [desc] already owns it,
    [`Held other] if another transaction owns it. *)
val try_lock : 'a t -> Txn_desc.t -> [ `Locked | `Mine | `Held of Txn_desc.t ]

(** Release the owner lock.  Only the owner may call this. *)
val unlock : 'a t -> Txn_desc.t -> unit

(** Publish a new committed state.  Caller must hold the owner lock
    (or the serial commit gate) — publishes to one tvar never race.
    When {!Snapshots.armed}, the displaced state is linked onto the
    version chain; once the chain reaches twice {!Snapshots.max_versions}
    it is trimmed back against {!Snapshots.floor} (amortized, so the
    common publish allocates one record), and no version visible to an
    active snapshot is ever reclaimed. *)
val publish : 'a t -> 'a -> version:int -> unit

(** [read_at t ~version] is the newest committed version of [t] at or
    below [version], walking the history chain; [None] if the history
    was reclaimed below [version] (unreachable for snapshots
    registered per the {!Snapshots} protocol). *)
val read_at : 'a t -> version:int -> 'a versioned option

(** Length of the version chain including the head (tests; bounded by
    [2 * max_versions] plus versions pinned by active snapshots, since
    trimming is amortized — see {!publish}). *)
val version_chain_len : 'a t -> int

(** Register [desc] as a visible reader (idempotent). *)
val register_reader : 'a t -> Txn_desc.t -> unit

(** Active registered readers other than [except]. *)
val active_readers : 'a t -> except:Txn_desc.t -> Txn_desc.t list

(** Register a [retry] waiter (CAS-push, pruning dead entries past a
    small threshold).  Returns the new list length, for the wait-list
    high-water gauge. *)
val add_waiter : 'a t -> Waitq.waiter -> int

(** Remove a departing waiter; a no-op if a committer's
    [take_waiters] already detached it. *)
val remove_waiter : 'a t -> Waitq.waiter -> unit

(** Detach and return the whole wait list (committer side).  The
    caller must have published the new version first — see the
    no-lost-wakeup argument in {!Parking}. *)
val take_waiters : 'a t -> Waitq.waiter list

(** Current wait-list length, dead entries included (tests). *)
val waiter_count : 'a t -> int
