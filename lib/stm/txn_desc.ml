type status = Active | Committed | Aborted

type t = {
  id : int;
  birth : int;
  status : status Atomic.t;
  mutable priority : int;
  irrevocable : bool;
  deadline_ns : int;
}

let next_id = Atomic.make 1

let create ?(priority = 0) ?(irrevocable = false) ?(deadline_ns = 0) ~birth () =
  {
    id = Atomic.fetch_and_add next_id 1;
    birth;
    status = Atomic.make Active;
    priority;
    irrevocable;
    deadline_ns;
  }

let is_active t = Atomic.get t.status = Active
let is_committed t = Atomic.get t.status = Committed
let is_aborted t = Atomic.get t.status = Aborted
let try_commit t = Atomic.compare_and_set t.status Active Committed
let try_abort t = Atomic.compare_and_set t.status Active Aborted
let try_kill t = (not t.irrevocable) && try_abort t
let earn t n = t.priority <- t.priority + n

let pp fmt t =
  let st =
    match Atomic.get t.status with
    | Active -> "active"
    | Committed -> "committed"
    | Aborted -> "aborted"
  in
  Format.fprintf fmt "txn#%d[%s,birth=%d,prio=%d]" t.id st t.birth t.priority
