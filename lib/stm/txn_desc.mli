(** Transaction descriptors.

    A descriptor is the part of a transaction's state that other
    transactions may inspect and act upon: its identity, age, priority
    and — crucially — its status word, which a contention manager may
    CAS from [Active] to [Aborted] to kill the transaction remotely.
    The victim observes the change at its next STM operation. *)

type status = Active | Committed | Aborted

type t = {
  id : int;  (** unique across all attempts in the process *)
  birth : int;  (** global-clock value when the attempt began *)
  status : status Atomic.t;
  mutable priority : int;
      (** contention-manager karma: work performed so far *)
  irrevocable : bool;
      (** serial-fallback attempts may not be killed remotely *)
  deadline_ns : int;
      (** absolute {!Clock.now_mono_ns} deadline the episode runs
          under, or [0] for none.  Public so deadline-aware contention
          managers can arbitrate earliest-deadline-first and the QoS
          watchdog can spot attempts that outlived their own budget. *)
}

(** Fresh descriptor with a unique id, [Active] status, priority
    carried over from previous attempts of the same atomic block. *)
val create :
  ?priority:int -> ?irrevocable:bool -> ?deadline_ns:int -> birth:int ->
  unit -> t

val is_active : t -> bool
val is_committed : t -> bool
val is_aborted : t -> bool

(** [try_commit t] linearizes the commit: CAS [Active -> Committed].
    Returns [false] if the transaction was aborted remotely first. *)
val try_commit : t -> bool

(** [try_abort t] CASes [Active -> Aborted]; [true] if this call
    performed the transition. *)
val try_abort : t -> bool

(** [try_kill t] is [try_abort t] for remote parties (contention
    managers, fault injection): it refuses to touch an irrevocable
    descriptor, which is what makes the serial fallback
    starvation-proof. *)
val try_kill : t -> bool

val earn : t -> int -> unit
(** Increase priority by the given amount of work. *)

val pp : Format.formatter -> t -> unit
