(* Transaction state: the mutable per-attempt record, its per-domain
   pool, and everything that inspects it (hooks, observability taps,
   fault injection, the leak auditor).

   Layering (see DESIGN.md): Rwset → Txn_state → Protocol →
   Commit_ladder → Stm.  This module owns the [t] record and the
   polymorphic [proto] dispatch slots; Protocol fills the slots,
   Commit_ladder drives attempts, Stm re-exports the public face. *)

(* The mode type is owned by [Mode] (the single authority for
   enumeration, parsing and the [PROUST_MODE] default); re-exported
   here with its constructors so protocol code keeps matching on bare
   [Lazy_lazy] etc. *)
type mode = Mode.t =
  | Lazy_lazy
  | Eager_lazy
  | Eager_eager
  | Serial_commit
  | Multi_version

let mode_name = Mode.to_string

type config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
  max_attempts : int;
  abort_budget : int;
  serial_fallback : bool;
  fallback_after : int;
  backoff_sleep_after : int;
  backoff_sleep : float;
}

let default_config_v =
  ref
    {
      mode = Mode.from_env ();
      cm = Contention.passive ();
      extend_reads = false;
      max_attempts = 100_000;
      abort_budget = 16;
      serial_fallback = true;
      fallback_after = 64;
      backoff_sleep_after = 6;
      backoff_sleep = 1e-6;
    }

let set_default_config c = default_config_v := c
let get_default_config () = !default_config_v

type abort_reason = Conflict | Killed | Explicit | Timed_out

exception Abort_exn of abort_reason
exception Retry_exn
exception Too_many_attempts of int
exception Not_in_transaction

(* A [retry] with an empty read set can never be woken — no tvar
   exists whose change could unblock it — so the episode fails with a
   typed error instead of parking (or, formerly, [failwith]-ing). *)
exception Retry_no_reads

(* A write attempted inside a read-only transaction.  Typed (not an
   abort reason): the transaction is not retried — the program asked
   for something the snapshot path cannot do, and must hear about it. *)
exception Read_only_violation

type locked = Locked : 'a Tvar.t -> locked

(* How a committed intent reaches the shared store.  [Inline_publish]
   is the classic path: the committing transaction acquires, validates
   and publishes by itself.  [Group_commit] routes the intent through
   {!Publisher}'s flat-combining layer: the domain that wins the serial
   gate drains every pending publication in one gate acquisition.  A
   protocol field (not a config flag) so each mode states its
   publication discipline next to its locking discipline. *)
type publish_stage = Inline_publish | Group_commit

(* The commit protocol as data: one record of hot-path hooks per
   conflict-detection mode, selected once when an atomic block starts
   instead of branching on [cfg.mode] at every read/write/commit.  The
   first two fields are explicitly polymorphic so eager protocols can
   lock typed tvars at encounter time.  Kept here (with the record they
   act on) to break the Txn_state ↔ Protocol cycle; Protocol builds the
   four instances. *)
type t = {
  mutable rv : int;
  mutable tdesc : Txn_desc.t;
  mutable cfg : config;
  mutable proto : proto;
  rset : Rwset.Rlog.t;
  wset : Rwset.Wlog.t;
  locals : Rwset.Llog.t;
  mutable locked : locked list;
  mutable commit_locked_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable after_commit_hooks : (unit -> unit) list;  (* LIFO storage *)
  mutable abort_hooks : (unit -> unit) list;  (* LIFO storage = run order *)
  mutable durable_hooks : (int -> (unit -> unit) option) list;
      (* LIFO storage.  Run in the locked phase with the commit version
         (LSN); each may return a wait thunk the ladder runs after all
         locks and gates are released (group-commit flush waits must not
         extend the locked window). *)
  backoff : Backoff.t;
  gate_backoff : Backoff.t;
  mutable finished : bool;
  mutable ro : bool;
      (* read-only (snapshot) attempt: writes raise
         [Read_only_violation], reads take the proto's snapshot path,
         chaos may delay but never abort it *)
  mutable ro_reads : int;
      (* snapshot reads this attempt, batched into Stats at commit —
         a per-read striped bump measurably drags the RO hot path *)
}

and proto = {
  p_read : 'a. t -> 'a Tvar.t -> 'a;
      (** committed-state read missing the write set: the slow path
          (TL2 version check, or an MVCC snapshot lookup) *)
  p_pre_read : 'a. t -> 'a Tvar.t -> unit;
      (** before a committed-state read (visible-reader registration) *)
  p_pre_write : 'a. t -> 'a Tvar.t -> unit;
      (** before buffering a write (encounter-time locking) *)
  p_acquire : t -> unit;
      (** writing commit, before validation: lock the plan or the gate *)
  p_release_fail : t -> unit;
      (** failed commit: release what [p_acquire] took that [do_abort]
          will not (the serial gate; per-location locks are on
          [t.locked] and released by the abort path) *)
  p_release : t -> unit;  (** after publish: release the gate *)
  p_stage : publish_stage;
      (** which publication pipeline carries this mode's committed
          intents (see {!publish_stage}) *)
}

let null_proto =
  {
    (* Never runs: reads reach a proto only inside a live attempt, and
       every attempt installs a real protocol.  Raising (rather than
       returning something) makes a dispatch bug loud. *)
    p_read = (fun _ _ -> raise Not_in_transaction);
    p_pre_read = (fun _ _ -> ());
    p_pre_write = (fun _ _ -> ());
    p_acquire = (fun _ -> ());
    p_release_fail = (fun _ -> ());
    p_release = (fun _ -> ());
    p_stage = Inline_publish;
  }

let desc t = t.tdesc
let config t = t.cfg
let read_version t = t.rv
let check_open t = if t.finished then raise Not_in_transaction

let check_alive t =
  check_open t;
  if Txn_desc.is_aborted t.tdesc then raise (Abort_exn Killed)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                            *)

(* A transaction's deadline is an absolute [Clock.now_mono_ns] point
   carried on its descriptor (0 = none).  Checks are placed where an
   attempt can stall — attempt start (the ladder), read-set validation
   and lock-wait polls — so an expired transaction aborts at its next
   such point instead of retrying forever.  Irrevocable (serial
   fallback) attempts ignore deadlines past this point: nothing may
   abort them, so the episode times out only between attempts. *)

let deadline_expired t =
  let d = t.tdesc.Txn_desc.deadline_ns in
  d <> 0 && Clock.now_mono_ns () >= d

let check_deadline t =
  if (not t.tdesc.Txn_desc.irrevocable) && deadline_expired t then
    raise (Abort_exn Timed_out)

(* Hook registration deliberately accepts zombies ([check_open], not
   [check_alive]) on all three phases.  Commit hooks registered by a
   remotely-killed attempt never run (the attempt cannot commit), so
   accepting them is harmless — whereas raising mid-registration tears
   an eager base mutation from the bookkeeping around it: e.g. a
   [Committed_size] local whose init registers its flush via
   [after_commit] would otherwise abort [Eager_map.put] between the
   base insert and the inverse registration, leaking the insert. *)
let on_commit_locked t f =
  check_open t;
  t.commit_locked_hooks <- f :: t.commit_locked_hooks

let after_commit t f =
  check_open t;
  t.after_commit_hooks <- f :: t.after_commit_hooks

let on_commit_durable t f =
  check_open t;
  t.durable_hooks <- f :: t.durable_hooks

(* NB: [check_open], not [check_alive] — a transaction killed remotely
   between a base-structure mutation and this registration is a zombie
   whose effects still need undoing when [do_abort] runs the hooks.
   Raising here instead would drop the inverse on the floor and leak
   the mutation (found by the chaos harness: a [Kill] injected inside
   [Abstract_lock.apply]'s window broke sequential equivalence). *)
let on_abort t f =
  check_open t;
  t.abort_hooks <- f :: t.abort_hooks

(* ------------------------------------------------------------------ *)
(* Observability taps                                                   *)

(* Each site loads the obs gate word exactly once; with tracing and
   metrics both off, nothing else happens — that single load is the
   whole per-site budget the overhead microbench enforces.  Events are
   stamped with the global clock tick inside the already-slow enabled
   path. *)

let reason_name = function
  | Conflict -> "conflict"
  | Killed -> "killed"
  | Explicit -> "explicit"
  | Timed_out -> "timed-out"

let obs_emit ~txn kind =
  Proust_obs.Trace.emit ~tick:(Clock.now Clock.global) ~txn kind

let obs_attempt_start t ~n =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id
        (Proust_obs.Trace.Attempt_start { attempt = n });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_attempt_start ()
  end

let obs_commit t =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id Proust_obs.Trace.Commit;
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_commit ()
  end

let obs_abort t reason =
  let g = Proust_obs.Gate.get () in
  if g <> 0 then begin
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn:t.tdesc.Txn_desc.id
        (Proust_obs.Trace.Abort { reason = reason_name reason });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.on_abort ()
  end

(* A bounded wait on a held resource: time the backoff step and feed
   both the trace and the lock-wait histogram. *)
let obs_wait ~txn ~held_by backoff =
  let g = Proust_obs.Gate.get () in
  if g = 0 then Backoff.once backoff
  else begin
    let t0 = Proust_obs.Trace.now_ns () in
    Backoff.once backoff;
    let dt = Proust_obs.Trace.now_ns () - t0 in
    if g land Proust_obs.Gate.trace_bit <> 0 then
      obs_emit ~txn (Proust_obs.Trace.Lock_wait { held_by });
    if g land Proust_obs.Gate.metrics_bit <> 0 then
      Proust_obs.Metrics.add_lock_wait dt
  end

let obs_validate t ~ok =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:t.tdesc.Txn_desc.id (Proust_obs.Trace.Validate { ok })

let obs_extend t ~ok =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:t.tdesc.Txn_desc.id (Proust_obs.Trace.Extend { ok })

let obs_fallback ~token =
  if Proust_obs.Gate.get () land Proust_obs.Gate.trace_bit <> 0 then
    obs_emit ~txn:0 (Proust_obs.Trace.Fallback { token })

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)

(* Interpret a chaos draw for the running transaction.  Irrevocable
   (serial-fallback) attempts only honour the delay component: the
   whole point of the fallback is that nothing can abort it. *)
let chaos_point t point =
  if Fault.enabled () then
    (* Read-only snapshot attempts honour only the delay component
       too: the abort-free guarantee must hold under chaos. *)
    if t.tdesc.Txn_desc.irrevocable || t.ro then Fault.delay_only point
    else
      match Fault.check point with
      | None -> ()
      | Some (Fault.Delay n) -> Fault.spin n
      | Some Fault.Abort -> raise (Abort_exn Conflict)
      | Some Fault.Kill ->
          (* Simulate a remote kill: the "victim" notices at its next
             liveness check, exactly like a contention-manager abort. *)
          ignore (Txn_desc.try_kill t.tdesc)
      | Some Fault.Crash ->
          (* Crash draws only make sense inside the redo log, whose code
             consults [Fault.check] directly; at STM-side points serve
             the draw as a remote kill so chaos schedules that list
             [Crash] everywhere still exercise an abort path. *)
          ignore (Txn_desc.try_kill t.tdesc)
      | Some Fault.Wedge ->
          (* Stall in place until some remote party — in practice the
             QoS watchdog — kills this attempt, then surface the kill
             exactly as [check_alive] would. *)
          while not (Txn_desc.is_aborted t.tdesc) do
            Domain.cpu_relax ()
          done;
          raise (Abort_exn Killed)

(* ------------------------------------------------------------------ *)
(* Snapshot sampling                                                    *)

(* NOrec-style global commit lock for the Serial_commit mode: all
   writing commits serialize here instead of locking their write sets
   per location.  Declared here because snapshot sampling (below) must
   consult it; acquire/release live with the commit protocol. *)
let commit_gate = Atomic.make 0

(* In Serial_commit mode a committing writer holds no per-location
   locks while publishing: it ticks the clock under the gate, then
   writes values back.  A clock value sampled inside that window counts
   a tick whose writes are not yet visible, and a transaction adopting
   it as its snapshot can read the stale value yet still pass (or
   fast-path skip) commit validation — a lost update.  So snapshot
   timestamps are sampled seqlock-style against the gate: a clock read
   only becomes a snapshot once the gate is observed free *after* it,
   at which point every serial tick <= the sample has fully published.
   (Non-serial writers publish under per-location version-locks, which
   the read path and read-log validation already detect.) *)
(* Refinement for the flat-combining publisher: the unsafe window is
   active *publication*, not gate tenure.  A lingering combiner (see
   {!Publisher}) holds the gate between drains while every tick it has
   taken is fully published; it advertises those quiescent stretches
   here so transaction starts need not serialize behind the linger.
   Soundness is the same seqlock argument: the flag is set with a
   release store after the drain's stores, so a sample [v] that
   observes it (acquire) sees every publication of every tick <= [v],
   and any drain starting after the observation ticks strictly later
   than [v].  Inline gate holders never touch the flag, so for them
   the original gate-free rule applies unchanged. *)
let gate_quiescent = Atomic.make false

let snapshot_clock ~serial =
  if not serial then Clock.now Clock.global
  else
    let rec go () =
      let v = Clock.now Clock.global in
      if Atomic.get commit_gate = 0 || Atomic.get gate_quiescent then v
      else begin
        Domain.cpu_relax ();
        go ()
      end
    in
    go ()

let release_locks t =
  List.iter (fun (Locked tv) -> Tvar.unlock tv t.tdesc) t.locked;
  t.locked <- []

(* Snapshot the read set as (tvar, recorded-version) pairs before the
   attempt's logs are torn down, so the ladder can register on wait
   lists (or poll) after aborting a [retry]. *)
let read_watch_entries t : (Rwset.packed_tvar * int) list =
  let ws = ref [] in
  Rwset.Rlog.iter t.rset (fun tv ver -> ws := (tv, ver) :: !ws);
  !ws

(* ------------------------------------------------------------------ *)
(* Leak auditing                                                        *)

exception Lock_leak of string

(* Debug-gated invariant check run after every finished attempt: a
   transaction that has ended — committed or aborted, under any fault
   schedule — must not still own any tvar version-lock, the commit
   gate, or any externally registered resource (abstract locks).  Off
   by default; the disabled fast path is one atomic load. *)
let audit_on = Atomic.make false
let set_leak_audit b = Atomic.set audit_on b
let leak_audit_enabled () = Atomic.get audit_on
let leak_checks : (owner:int -> string option) list Atomic.t = Atomic.make []

let rec register_leak_check f =
  let cur = Atomic.get leak_checks in
  if not (Atomic.compare_and_set leak_checks cur (f :: cur)) then
    register_leak_check f

let audit_txn t =
  let d = t.tdesc in
  let leak fmt = Format.kasprintf (fun s -> raise (Lock_leak s)) fmt in
  if not t.finished then
    leak "txn#%d audit before the attempt ended" d.Txn_desc.id;
  let check_tvar uid (tv_owner : Txn_desc.t option) =
    match tv_owner with
    | Some o when o == d ->
        leak "txn#%d still owns the version-lock of tvar#%d" d.Txn_desc.id uid
    | _ -> ()
  in
  Rwset.Rlog.iter t.rset (fun tv _ver ->
      check_tvar tv.Tvar.uid (Tvar.current_owner tv));
  Rwset.Wlog.iter_tvs t.wset (fun uid tv ->
      check_tvar uid (Tvar.current_owner tv));
  (match t.locked with
  | [] -> ()
  | l ->
      leak "txn#%d retains %d entries in its locked list" d.Txn_desc.id
        (List.length l));
  if Atomic.get commit_gate = d.Txn_desc.id then
    leak "txn#%d still holds the serial commit gate" d.Txn_desc.id;
  List.iter
    (fun check ->
      match check ~owner:d.Txn_desc.id with
      | None -> ()
      | Some what -> leak "txn#%d leaked %s" d.Txn_desc.id what)
    (Atomic.get leak_checks)

let maybe_audit t = if Atomic.get audit_on then audit_txn t

(* Descriptor-pool bleed check: a record handed out for reuse must be
   indistinguishable from a fresh one.  Complements [audit_txn] (which
   checks externally visible resources): this one checks the pooled
   record itself. *)
let audit_pool_residue t =
  let leak fmt = Format.kasprintf (fun s -> raise (Lock_leak s)) fmt in
  if not t.finished then
    leak "pooled txn#%d reacquired while its attempt is still running"
      t.tdesc.Txn_desc.id;
  let r = Rwset.Rlog.size t.rset in
  if r <> 0 then leak "pooled descriptor retains %d read-log entries" r;
  let w = Rwset.Wlog.size t.wset in
  if w <> 0 then leak "pooled descriptor retains %d write-log entries" w;
  let l = Rwset.Llog.size t.locals in
  if l <> 0 then leak "pooled descriptor retains %d transaction-locals" l;
  if t.locked <> [] then leak "pooled descriptor retains a locked list";
  if
    t.commit_locked_hooks <> []
    || t.after_commit_hooks <> []
    || t.abort_hooks <> []
    || t.durable_hooks <> []
  then leak "pooled descriptor retains stale hooks"

(* ------------------------------------------------------------------ *)
(* The watchdog registry                                                *)

(* A supervisor domain cannot walk other domains' DLS, so each domain's
   pool slot doubles as a globally visible "watch slot": when the
   watchdog is armed, attempt hand-out stamps the slot with the new
   descriptor and a monotonic start time, and retirement clears it.
   The scanner reads descriptors through these slots and kills the ones
   whose age crossed its threshold via the ordinary [Txn_desc.try_kill]
   path.  With the watchdog disarmed the per-attempt cost is the single
   [watchdog_on] load. *)
type watch_slot = {
  ws_dom : int;
  ws_desc : Txn_desc.t option Atomic.t;
  ws_start_ns : int Atomic.t;
}

let watchdog_on = Atomic.make false
let set_watchdog b = Atomic.set watchdog_on b
let watchdog_enabled () = Atomic.get watchdog_on
let watch_slots : watch_slot list Atomic.t = Atomic.make []

let rec register_watch_slot ws =
  let cur = Atomic.get watch_slots in
  if not (Atomic.compare_and_set watch_slots cur (ws :: cur)) then
    register_watch_slot ws

let watch_list () = Atomic.get watch_slots

(* ------------------------------------------------------------------ *)
(* The per-domain descriptor pool                                       *)

(* One transaction record per domain, reset between attempts instead of
   reallocated: the log buffers, backoffs and the record itself survive
   across every attempt and every atomic block the domain runs.  Only
   [Txn_desc] stays freshly allocated per attempt — remote parties
   (contention managers, visible-reader lists, fault injection) hold
   references to it and CAS its status word, so its identity must not
   be recycled while they can still see it.

   [depth] guards reentrancy: hooks may start a new root transaction
   (e.g. an [after_commit] callback calling [atomically]) while the
   pooled record still belongs to the episode that is mid-commit, so
   nested episodes fall back to freshly allocated state. *)
type slot = {
  slot_txn : t;
  episode_backoff : Backoff.t;
  slot_watch : watch_slot;
  mutable depth : int;
  mutable reuses : int;
}

let fresh () =
  let cfg = !default_config_v in
  {
    rv = 0;
    tdesc = Txn_desc.create ~birth:0 ();
    cfg;
    proto = null_proto;
    rset = Rwset.Rlog.create ();
    wset = Rwset.Wlog.create ();
    locals = Rwset.Llog.create ();
    locked = [];
    commit_locked_hooks = [];
    after_commit_hooks = [];
    abort_hooks = [];
    durable_hooks = [];
    backoff = Backoff.create ();
    gate_backoff = Backoff.create ();
    finished = true;
    ro = false;
    ro_reads = 0;
  }

let pool : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let ws =
        {
          ws_dom = (Domain.self () :> int);
          ws_desc = Atomic.make None;
          ws_start_ns = Atomic.make 0;
        }
      in
      register_watch_slot ws;
      {
        slot_txn = fresh ();
        episode_backoff = Backoff.create ();
        slot_watch = ws;
        depth = 0;
        reuses = 0;
      })

(* An episode is one [atomically] root call: a ladder of attempts
   sharing the pooled record (or fresh state when nested). *)
type episode = { ep_txn : t option; ep_backoff : Backoff.t }

let begin_episode cfg =
  let s = Domain.DLS.get pool in
  s.depth <- s.depth + 1;
  if s.depth = 1 then begin
    Backoff.reconfigure s.episode_backoff ~sleep_after:cfg.backoff_sleep_after
      ~sleep:cfg.backoff_sleep;
    { ep_txn = Some s.slot_txn; ep_backoff = s.episode_backoff }
  end
  else
    {
      ep_txn = None;
      ep_backoff =
        Backoff.create ~sleep_after:cfg.backoff_sleep_after
          ~sleep:cfg.backoff_sleep ();
    }

let end_episode () =
  let s = Domain.DLS.get pool in
  s.depth <- s.depth - 1

(* Hand out the episode's record for one attempt.  When auditing is on,
   prove the reset discipline first: the record must be exactly as
   [retire] left it. *)
let attempt_txn ep cfg ~proto ~priority ?birth ?(irrevocable = false)
    ?(deadline_ns = 0) ?(ro = false) () =
  let t =
    match ep.ep_txn with
    | Some t ->
        let s = Domain.DLS.get pool in
        s.reuses <- s.reuses + 1;
        if Atomic.get audit_on then audit_pool_residue t;
        t
    | None -> fresh ()
  in
  let rv = snapshot_clock ~serial:(cfg.mode = Serial_commit) in
  let birth = match birth with Some b -> b | None -> rv in
  t.rv <- rv;
  t.tdesc <- Txn_desc.create ~priority ~irrevocable ~deadline_ns ~birth ();
  t.cfg <- cfg;
  t.proto <- proto;
  t.ro <- ro;
  t.ro_reads <- 0;
  Backoff.reconfigure t.backoff ~sleep_after:cfg.backoff_sleep_after
    ~sleep:cfg.backoff_sleep;
  t.finished <- false;
  (* Publish the attempt to the watchdog scanner.  Only the pooled
     (root-episode) record has a slot; nested fresh records run inside a
     root attempt that is already being watched.  Start time is stamped
     before the descriptor so a scanner never pairs a new descriptor
     with a stale age. *)
  if Atomic.get watchdog_on then begin
    match ep.ep_txn with
    | Some _ ->
        let s = Domain.DLS.get pool in
        Atomic.set s.slot_watch.ws_start_ns (Clock.now_mono_ns ());
        Atomic.set s.slot_watch.ws_desc (Some t.tdesc)
    | None -> ()
  end;
  t

(* Scrub an ended attempt's state so the record can be handed out
   again.  Clearing (rather than reallocating) is what keeps the
   steady-state attempt allocation down to the descriptor itself. *)
let retire t =
  Rwset.Rlog.clear t.rset;
  Rwset.Wlog.clear t.wset;
  Rwset.Llog.clear t.locals;
  t.locked <- [];
  t.commit_locked_hooks <- [];
  t.after_commit_hooks <- [];
  t.abort_hooks <- [];
  t.durable_hooks <- [];
  t.proto <- null_proto;
  t.ro <- false;
  t.ro_reads <- 0;
  (* Unpublish from the watchdog even if it was disarmed mid-attempt:
     keyed on the slot's own contents, not [watchdog_on]. *)
  let s = Domain.DLS.get pool in
  if s.slot_txn == t && Atomic.get s.slot_watch.ws_desc <> None then
    Atomic.set s.slot_watch.ws_desc None

(* Public introspection (tests, chaos suite). *)
let pool_reuses () = (Domain.DLS.get pool).reuses

let descriptor_pool_check () =
  let s = Domain.DLS.get pool in
  if s.depth = 0 then audit_pool_residue s.slot_txn

(* ------------------------------------------------------------------ *)
(* The domain-local current transaction (nesting flattening)            *)

let current_txn : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
