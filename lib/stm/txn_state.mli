(** Transaction state: the pooled per-attempt record and everything
    that inspects it.

    Layering: {!Rwset} → [Txn_state] → {!Protocol} → {!Commit_ladder}
    → {!Stm}.  The record type is concrete here because the three
    layers above are the record's implementation, merely split by
    concern; user code never sees it ([Stm.txn] is abstract). *)

(** Re-export of {!Mode.t} with its constructors — {!Mode} is the
    single authority for enumerating, printing and parsing modes. *)
type mode = Mode.t =
  | Lazy_lazy
  | Eager_lazy
  | Eager_eager
  | Serial_commit
  | Multi_version

val mode_name : mode -> string

type config = {
  mode : mode;
  cm : Contention.t;
  extend_reads : bool;
  max_attempts : int;
  abort_budget : int;
  serial_fallback : bool;
  fallback_after : int;
  backoff_sleep_after : int;
  backoff_sleep : float;
}

val get_default_config : unit -> config
val set_default_config : config -> unit

type abort_reason = Conflict | Killed | Explicit | Timed_out

exception Abort_exn of abort_reason
exception Retry_exn
exception Too_many_attempts of int
exception Not_in_transaction

(** A [retry] whose transaction read nothing can never be woken; the
    episode fails with this instead of blocking forever. *)
exception Retry_no_reads

(** A write attempted inside a read-only (snapshot) transaction.  Not
    an abort reason: the episode fails without retrying. *)
exception Read_only_violation

type locked = Locked : 'a Tvar.t -> locked

(** How a committed intent reaches the shared store: the classic
    one-txn-one-acquisition inline path, or {!Publisher}'s
    flat-combining group commit (the serial gate's winner drains every
    pending publication in one acquisition).  A protocol field so each
    mode states its publication discipline next to its locking
    discipline. *)
type publish_stage = Inline_publish | Group_commit

(** One transaction attempt.  With the per-domain pool the same record
    (and its log buffers and backoffs) is reset and reused across
    attempts; only [tdesc] is freshly allocated per attempt, because
    remote parties retain references to it and CAS its status word. *)
type t = {
  mutable rv : int;
  mutable tdesc : Txn_desc.t;
  mutable cfg : config;
  mutable proto : proto;
  rset : Rwset.Rlog.t;
  wset : Rwset.Wlog.t;
  locals : Rwset.Llog.t;
  mutable locked : locked list;
  mutable commit_locked_hooks : (unit -> unit) list;
  mutable after_commit_hooks : (unit -> unit) list;
  mutable abort_hooks : (unit -> unit) list;
  mutable durable_hooks : (int -> (unit -> unit) option) list;
  backoff : Backoff.t;
  gate_backoff : Backoff.t;
  mutable finished : bool;
  mutable ro : bool;
      (** read-only (snapshot) attempt: writes raise
          {!Read_only_violation}, chaos never aborts it *)
  mutable ro_reads : int;
      (** snapshot reads this attempt, flushed to {!Stats} at commit *)
}

(** The commit protocol as data: per-mode hot-path hooks, selected once
    at [atomically] entry ({!Protocol.select}) instead of branching on
    [cfg.mode] per operation. *)
and proto = {
  p_read : 'a. t -> 'a Tvar.t -> 'a;
  p_pre_read : 'a. t -> 'a Tvar.t -> unit;
  p_pre_write : 'a. t -> 'a Tvar.t -> unit;
  p_acquire : t -> unit;
  p_release_fail : t -> unit;
  p_release : t -> unit;
  p_stage : publish_stage;
}

val null_proto : proto
val desc : t -> Txn_desc.t
val config : t -> config
val read_version : t -> int
val check_open : t -> unit
val check_alive : t -> unit
(** {2 Deadlines} *)

(** Whether the attempt's absolute {!Clock.now_mono_ns} deadline (on
    its descriptor; 0 = none) has passed. *)
val deadline_expired : t -> bool

(** Raise [Abort_exn Timed_out] if the deadline passed — unless the
    attempt is irrevocable (nothing may abort it mid-flight; the
    episode only times out between attempts). *)
val check_deadline : t -> unit

val on_commit_locked : t -> (unit -> unit) -> unit
val after_commit : t -> (unit -> unit) -> unit
val on_abort : t -> (unit -> unit) -> unit

(** Register a durability handler: runs in the commit locked phase with
    the commit version (its LSN); a returned thunk is the flush wait,
    run by the ladder after locks, gates and [after_commit] handlers.
    See {!Stm.on_commit_durable}. *)
val on_commit_durable : t -> (int -> (unit -> unit) option) -> unit

(** {2 Observability taps} — one gate load per disabled site. *)

val reason_name : abort_reason -> string
val obs_attempt_start : t -> n:int -> unit
val obs_commit : t -> unit
val obs_abort : t -> abort_reason -> unit
val obs_wait : txn:int -> held_by:int -> Backoff.t -> unit
val obs_validate : t -> ok:bool -> unit
val obs_extend : t -> ok:bool -> unit
val obs_fallback : token:int -> unit

(** Consult {!Fault} at an injection point on behalf of the txn. *)
val chaos_point : t -> Fault.point -> unit

(** {2 Snapshot sampling} *)

(** The Serial_commit global commit lock (0 = free, else holder's
    descriptor id).  Owned here because snapshot sampling seqlocks
    against it; acquire/release live in {!Protocol}. *)
val commit_gate : int Atomic.t

(** Set by a lingering combiner while it holds the gate with every
    taken tick fully published: snapshot sampling may proceed during
    such stretches (see the soundness note in the implementation).
    Must be false whenever a publication is in flight under the gate;
    inline holders never set it. *)
val gate_quiescent : bool Atomic.t

(** A clock sample valid as a snapshot: seqlocked against
    [commit_gate] when [serial]. *)
val snapshot_clock : serial:bool -> int

val release_locks : t -> unit

(** The read log as (tvar, recorded-version) watch pairs, snapshotted
    before the logs are torn down so the ladder can register them on
    wait lists (see {!Parking}) after aborting a [retry]. *)
val read_watch_entries : t -> (Rwset.packed_tvar * int) list

(** {2 Leak auditing} *)

exception Lock_leak of string

val set_leak_audit : bool -> unit
val leak_audit_enabled : unit -> bool
val register_leak_check : (owner:int -> string option) -> unit

(** Post-attempt invariant check (externally visible resources). *)
val audit_txn : t -> unit

val maybe_audit : t -> unit

(** Pool-bleed check: the record must be indistinguishable from fresh
    (empty logs, no locked list, no stale hooks, attempt ended). *)
val audit_pool_residue : t -> unit

(** {2 The watchdog registry}

    Supervisor-visible mirror of each domain's pooled attempt: the
    watchdog scanner cannot walk remote DLS, so armed attempt hand-out
    stamps the domain's watch slot with the live descriptor and a
    monotonic start time.  Only root-episode (pooled) attempts are
    published; nested fresh records run inside a watched root. *)

type watch_slot = {
  ws_dom : int;  (** owning domain id (diagnostics) *)
  ws_desc : Txn_desc.t option Atomic.t;  (** live attempt, if any *)
  ws_start_ns : int Atomic.t;  (** {!Clock.now_mono_ns} at hand-out *)
}

(** Arm/disarm watch-slot stamping (disarmed cost: one atomic load per
    attempt). *)
val set_watchdog : bool -> unit

val watchdog_enabled : unit -> bool

(** All registered slots (one per domain that ran a transaction). *)
val watch_list : unit -> watch_slot list

(** {2 The per-domain descriptor pool} *)

(** One [atomically] root call; attempts within it share the pooled
    record.  Nested episodes (hooks starting new roots) get fresh
    state. *)
type episode = { ep_txn : t option; ep_backoff : Backoff.t }

val begin_episode : config -> episode
val end_episode : unit -> unit

(** Hand out the episode's record, reset for one attempt.  Runs
    {!audit_pool_residue} first when auditing is enabled. *)
val attempt_txn :
  episode ->
  config ->
  proto:proto ->
  priority:int ->
  ?birth:int ->
  ?irrevocable:bool ->
  ?deadline_ns:int ->
  ?ro:bool ->
  unit ->
  t

(** Scrub an ended attempt so the record can be handed out again. *)
val retire : t -> unit

(** Times this domain's pooled record has been handed out. *)
val pool_reuses : unit -> int

(** Audit this domain's idle pooled record ({!Lock_leak} on residue);
    no-op while an episode is running. *)
val descriptor_pool_check : unit -> unit

(** The transaction an [atomically] is currently running on this
    domain, for nesting flattening. *)
val current_txn : t option Domain.DLS.key
