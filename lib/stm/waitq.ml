(* Parking primitives for blocking [retry]: the waiter record that tvar
   wait lists hold, and the per-domain Mutex/Condition lot it blocks
   on.  Sits beneath [Tvar] in the layering so tvars can carry waiter
   lists; the registration/validation/park protocol itself lives above,
   in [Parking]. *)

type state = Waiting | Woken | Cancelled

type lot = { mu : Mutex.t; cv : Condition.t }

type waiter = {
  w_lot : lot;
  w_state : state Atomic.t;
  w_wake_ns : int Atomic.t;
      (* commit-side wake-publication timestamp (0 = none): stamped by
         [wake] just before its transition attempt when metrics are on,
         so the resuming domain can histogram publication -> resume
         latency.  [expire] never stamps — timer wakes are episode
         timeouts, not wakeup-latency samples. *)
}

(* One lot per domain, reused across parks: a domain blocks on at most
   one waiter at a time (parks happen between ladder attempts, never
   nested), so the lot needs no generation counter — the park loop's
   condition is the waiter's own state word. *)
let lot_key : lot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { mu = Mutex.create (); cv = Condition.create () })

(* Waiters whose state is still [Waiting], across all wait lists.  The
   committer's fast path ([Parking.have_waiters]) is one load of this;
   the chaos suite's orphan audit checks it returns to 0 at
   quiescence. *)
let live = Atomic.make 0

let live_waiters () = Atomic.get live

let make () =
  {
    w_lot = Domain.DLS.get lot_key;
    w_state = Atomic.make Waiting;
    w_wake_ns = Atomic.make 0;
  }

let is_waiting w = Atomic.get w.w_state = Waiting

(* Register the waiter in the live count.  Called once, after the
   waiter is published on every wait list it watches. *)
let enlist _w = Atomic.incr live

(* The single Waiting -> final transition: whoever wins the CAS owns
   the [live] decrement, so wake/cancel/expire racing each other (a
   committer, the deadline timer, and the waiter's own revalidation
   can all fire at once) settle to exactly one transition. *)
let finish w next =
  if Atomic.compare_and_set w.w_state Waiting next then begin
    Atomic.decr live;
    true
  end
  else false

(* Wake a waiter (commit to a watched tvar).  Taking the lot mutex
   around the broadcast closes the missed-signal window: the parker
   checks its state under the same mutex before each wait, so either it
   sees the new state and never blocks, or it is already inside
   [Condition.wait] and receives the broadcast. *)
let signal w =
  Mutex.lock w.w_lot.mu;
  Condition.broadcast w.w_lot.cv;
  Mutex.unlock w.w_lot.mu

let wake w =
  (* Stamp before the transition attempt: a winning wake's timestamp
     is ordered (SC) before the state flip the parker resumes on; a
     losing stamp is harmless (the parker only reads it after a Woken
     observation, and a raced [expire] win just yields one spurious
     sample). *)
  if Proust_obs.Metrics.enabled () then
    Atomic.set w.w_wake_ns (Proust_obs.Trace.now_ns ());
  if finish w Woken then begin
    Stats.record_wakeup ();
    signal w;
    true
  end
  else false

let wake_ns w = Atomic.get w.w_wake_ns

(* The deadline timer's wake: same transition, but not counted as a
   commit wakeup — the episode surfaces it as a QoS timeout instead. *)
let expire w =
  if finish w Woken then begin
    signal w;
    true
  end
  else false

(* Cancel without blocking (failed revalidation, chaos-forced spurious
   unpark).  No signal needed: only the owning domain parks on [w], and
   it has not parked yet. *)
let cancel w = finish w Cancelled

(* Block until the state leaves [Waiting].  A [Condition.wait] return
   that finds the state unchanged is an OS-level spurious wakeup:
   counted, then re-waited. *)
let park w =
  Mutex.lock w.w_lot.mu;
  while Atomic.get w.w_state = Waiting do
    Condition.wait w.w_lot.cv w.w_lot.mu;
    if Atomic.get w.w_state = Waiting then Stats.record_spurious_wakeup ()
  done;
  Mutex.unlock w.w_lot.mu
