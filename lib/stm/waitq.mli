(** Parking primitives for blocking [retry]: the waiter record held by
    tvar wait lists, and the per-domain Mutex/Condition parking lot it
    blocks on.

    A waiter's lifecycle is a single [Waiting -> Woken|Cancelled]
    transition, decided by CAS, so a committer's wake, the deadline
    timer's expiry and the owner's own cancellation can race freely:
    exactly one wins, and it owns the global live-waiter accounting.
    The registration / revalidation / park protocol that makes this
    lost-wakeup-free lives above, in {!Parking}. *)

type state = Waiting | Woken | Cancelled

type lot = { mu : Mutex.t; cv : Condition.t }

type waiter = {
  w_lot : lot;
  w_state : state Atomic.t;
  w_wake_ns : int Atomic.t;
      (** commit-wake publication timestamp, 0 = none (see {!wake_ns}) *)
}

(** Fresh waiter bound to the calling domain's parking lot. *)
val make : unit -> waiter

val is_waiting : waiter -> bool

(** Count the waiter live.  Call once, after it is published on every
    wait list it watches; the matching decrement rides on the winning
    [wake]/[expire]/[cancel]. *)
val enlist : waiter -> unit

(** Waiters still in [Waiting] state process-wide.  The commit path's
    no-waiters fast path and the chaos suite's orphan audit (0 at
    quiescence) both read this. *)
val live_waiters : unit -> int

(** Commit-side wake: [true] if this call won the transition (stat
    counted, parked domain signalled).  With metrics enabled, stamps
    the waiter's wake-publication timestamp first. *)
val wake : waiter -> bool

(** The commit-wake publication timestamp ({!Proust_obs.Trace.now_ns}
    base), 0 if no commit-side wake stamped this waiter — the resuming
    domain subtracts it from its own clock for the wakeup-latency
    histogram.  Timer expiries leave it 0. *)
val wake_ns : waiter -> int

(** Deadline-timer wake: like [wake] but not counted as a commit
    wakeup — the episode reports it as a QoS timeout. *)
val expire : waiter -> bool

(** Owner-side cancellation before parking: [true] if it won. *)
val cancel : waiter -> bool

(** Block until the state leaves [Waiting]; returns immediately if it
    already has.  OS-level spurious wakeups are counted and
    re-waited. *)
val park : waiter -> unit
