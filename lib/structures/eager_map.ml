(** Generic eager Proustian map (Figure 2a), parameterized by the
    thread-safe base map it wraps.  Operations run against the base
    immediately; each mutation registers an inverse built from its own
    return value, exactly as the Scala [TrieMap.put] does.

    [combine_undo] enables the §9 future-work extension of log
    combining to undo logs: instead of one inverse handler per
    operation, the wrapper keeps one entry per dirty key — the key's
    value when the transaction first touched it — and a single abort
    handler restores all of them.  An aborting transaction then pays
    per unique key instead of per operation.

    Soundness: with a pessimistic LAP this is transactional boosting
    (Theorem 5.1, opaque under any STM mode).  With an optimistic LAP
    the STM must detect conflicts on the conflict-abstraction slots at
    encounter time ([Eager_lazy] or [Eager_eager] modes) — otherwise
    two conflicting transactions can interleave base mutations before
    either aborts (Theorem 5.2, and the "empty quarter" of Figure 1). *)

(** Accessors onto a linearizable base map. *)
type ('k, 'v) base = {
  bget : 'k -> 'v option;
  bput : 'k -> 'v -> 'v option;
  bremove : 'k -> 'v option;
  bcontains : 'k -> bool;
}

type ('k, 'v) t = {
  name : string;
  base : ('k, 'v) base;
  alock : 'k Abstract_lock.t;
  csize : Committed_size.t;
  undo_key : ('k, 'v option) Hashtbl.t Stm.Local.key option;
      (** present when undo combining is on: first-observed value per
          dirty key, restored wholesale on abort *)
}

let make ~base ~lap ?(size_mode = `Counter) ?(combine_undo = false)
    ?(name = "eager-map") () =
  let undo_key =
    if not combine_undo then None
    else
      Some
        (Stm.Local.key (fun txn ->
             let firsts : ('k, 'v option) Hashtbl.t = Hashtbl.create 8 in
             Stm.on_abort txn (fun () ->
                 Hashtbl.iter
                   (fun k old ->
                     match old with
                     | Some v -> ignore (base.bput k v)
                     | None -> ignore (base.bremove k))
                   firsts);
             firsts))
  in
  {
    name;
    base;
    alock = Abstract_lock.make ~lap ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
    undo_key;
  }

let get t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Read k ] (fun () -> t.base.bget k)

let contains t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Read k ] (fun () ->
      t.base.bcontains k)

(* Run a mutation under [Write k], undone either by a per-operation
   inverse or by recording the key's first value in the combined undo
   table. *)
let mutate t txn k ~op ~inverse =
  match t.undo_key with
  | None -> Abstract_lock.apply t.alock txn [ Intent.Write k ] ~inverse op
  | Some key ->
      Abstract_lock.apply t.alock txn [ Intent.Write k ] (fun () ->
          let firsts = Stm.Local.get txn key in
          let old = op () in
          if not (Hashtbl.mem firsts k) then Hashtbl.add firsts k old;
          old)

let put t txn k v =
  mutate t txn k
    ~op:(fun () ->
      let old = t.base.bput k v in
      if old = None then Committed_size.add t.csize txn 1;
      old)
    ~inverse:(fun old ->
      match old with
      | Some o -> ignore (t.base.bput k o)
      | None -> ignore (t.base.bremove k))

let remove t txn k =
  mutate t txn k
    ~op:(fun () ->
      let old = t.base.bremove k in
      if old <> None then Committed_size.add t.csize txn (-1);
      old)
    ~inverse:(fun old -> Option.iter (fun o -> ignore (t.base.bput k o)) old)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta_of_alock ~name:t.name t.alock;
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
