(** Generic eager Proustian map (Figure 2a), parameterized by the
    thread-safe base map it wraps.  Operations run against the base
    immediately; each mutation registers an inverse built from its own
    return value.  [combine_undo] switches to one combined undo entry
    per dirty key (§9 future work).

    Soundness: pessimistic LAP under any STM mode (Theorem 5.1);
    optimistic LAP requires encounter-time conflict detection
    ([Eager_lazy]/[Eager_eager]) — Theorem 5.2 and Figure 1's empty
    quarter. *)

(** Accessors onto a linearizable base map. *)
type ('k, 'v) base = {
  bget : 'k -> 'v option;
  bput : 'k -> 'v -> 'v option;
  bremove : 'k -> 'v option;
  bcontains : 'k -> bool;
}

type ('k, 'v) t

val make :
  base:('k, 'v) base ->
  lap:'k Lock_allocator.t ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine_undo:bool ->
  ?name:string ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
