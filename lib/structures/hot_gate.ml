(** Hot-key mitigation decorator: wraps any map trait so mutations of a
    key first take the key's shard in a {!Proust_concurrent.Shard_gate}
    and hold it to the end of the transaction.  Conflicting writers of
    a hot key then serialize {e before} burning optimistic attempts
    against each other, turning an abort storm into a short queue.

    The gate is strictly best effort (bounded spin, then bypass) and
    readers never touch it, so correctness stays entirely with the
    wrapped structure and the STM: the decorator preserves the inner
    trait's semantics under every mode the inner structure supports.
    Shards held by a transaction are tracked in a transaction-local and
    released by [after_commit]/[on_abort] hooks. *)

module G = Proust_concurrent.Shard_gate

type 'k t = {
  gate : G.t;
  hash : 'k -> int;
  held_key : int list ref Stm.Local.key;
}

let make ?shards ?spin ?(hash = Hashtbl.hash) () =
  let gate = G.create ?shards ?spin () in
  let held_key =
    Stm.Local.key (fun txn ->
        let held = ref [] in
        let free () =
          List.iter (G.release gate) !held;
          held := []
        in
        Stm.after_commit txn free;
        Stm.on_abort txn free;
        held)
  in
  { gate; hash; held_key }

let gate t = t.gate

(* Take the key's shard unless this transaction already holds it; a
   bypass leaves no trace — the op proceeds gateless. *)
let enter t txn k =
  let shard = G.shard_of t.gate (t.hash k) in
  let held = Stm.Local.get txn t.held_key in
  if (not (List.mem shard !held)) && G.try_acquire t.gate shard then
    held := shard :: !held

let wrap t (ops : ('k, 'v) Trait.Map.ops) : ('k, 'v) Trait.Map.ops =
  {
    ops with
    Trait.Map.put =
      (fun txn k v ->
        enter t txn k;
        ops.Trait.Map.put txn k v);
    remove =
      (fun txn k ->
        enter t txn k;
        ops.Trait.Map.remove txn k);
  }
