(** Hot-key mitigation decorator over any map trait: mutations take the
    key's shard in a best-effort {!Proust_concurrent.Shard_gate} (held
    to transaction end, released by commit/abort hooks), serializing
    hot-key writers before they burn optimistic attempts against each
    other.  Readers and bypassed writers proceed gateless; correctness
    stays entirely with the wrapped structure and the STM. *)

type 'k t

(** [hash] maps keys to shard hashes (default [Hashtbl.hash]); [shards]
    and [spin] as in {!Proust_concurrent.Shard_gate.create}. *)
val make : ?shards:int -> ?spin:int -> ?hash:('k -> int) -> unit -> 'k t

(** The underlying gate, for heat/bypass observability. *)
val gate : _ t -> Proust_concurrent.Shard_gate.t

(** Decorate a map trait: [put]/[remove] gate on the key's shard,
    everything else passes through untouched. *)
val wrap : 'k t -> ('k, 'v) Trait.Map.ops -> ('k, 'v) Trait.Map.ops
