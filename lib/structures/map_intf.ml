(** Deprecated alias module: the map trait now lives in {!Trait.Map}
    and the lock-allocator choice in {!Trait}.  Kept for one release —
    the record re-exports below mean existing construction sites,
    field accesses and pattern matches keep compiling unchanged.  New
    code should use {!Trait} directly. *)

type ('k, 'v) ops = ('k, 'v) Trait.Map.ops = {
  meta : Trait.meta;
  get : Stm.txn -> 'k -> 'v option;
  put : Stm.txn -> 'k -> 'v -> 'v option;
  remove : Stm.txn -> 'k -> 'v option;
  contains : Stm.txn -> 'k -> bool;
  size : Stm.txn -> int;
}

module type S = Trait.MAP

type lap_choice = Trait.lap_choice =
  | Optimistic
  | Optimistic_unvalidated
  | Pessimistic

let make_lap = Trait.make_lap
