(** Generic lazy Proustian map with memoized shadow copies — the
    paper's [LazyHashMap] construction (§4).  Pending operations live
    in a per-transaction {!Replay_log.Memo}; return values come from
    the memo table backed by reads of the unmodified base; commit
    applies the log behind the STM's locks; abort just drops it, so no
    inverses are declared. *)

type ('k, 'v) t = {
  name : string;
  base : ('k, 'v) Eager_map.base;
  alock : 'k Abstract_lock.t;
  csize : Committed_size.t;
  mergeable : bool;
  log_key : ('k, 'v) Replay_log.Memo.t Stm.Local.key;
}

let make ~base ~lap ?(combine = true) ?(size_mode = `Counter)
    ?(name = "memo-map") () =
  let memo_base =
    {
      Replay_log.Memo.base_get = base.Eager_map.bget;
      base_put = (fun k v -> ignore (base.Eager_map.bput k v));
      base_remove = (fun k -> ignore (base.Eager_map.bremove k));
    }
  in
  (* Cross-transaction combining is only sound over the validated
     optimistic LAP: a deferred base flush stays invisible because
     every stripe the effect covers sits in the committer's read set
     and was published under the combiner's gate with a version no
     concurrent snapshot validates against.  Pessimistic locks release
     entry-by-entry with no commit-time validation, and the
     unvalidated optimistic LAP keeps write stripes out of the read
     set, so neither may defer. *)
  let shared =
    if
      combine
      && lap.Lock_allocator.kind = Lock_allocator.Optimistic
      && lap.Lock_allocator.name = "optimistic"
    then Some (Replay_log.Memo.make_shared ())
    else None
  in
  {
    name;
    base;
    alock = Abstract_lock.make ~lap ~strategy:Update_strategy.Lazy;
    csize = Committed_size.create size_mode;
    mergeable = Option.is_some shared;
    log_key =
      Stm.Local.key (Replay_log.Memo.create ~combine ?shared ~base:memo_base);
  }

let log t txn = Stm.Local.get txn t.log_key

let get t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Read k ] (fun () ->
      Replay_log.Memo.get (log t txn) k)

let contains t txn k = get t txn k <> None

let put t txn k v =
  Abstract_lock.apply t.alock txn [ Intent.Write k ] (fun () ->
      let old = Replay_log.Memo.put (log t txn) txn k v in
      if old = None then Committed_size.add t.csize txn 1;
      old)

let remove t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Write k ] (fun () ->
      let old = Replay_log.Memo.remove (log t txn) txn k in
      if old <> None then Committed_size.add t.csize txn (-1);
      old)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta_of_alock ~mergeable:t.mergeable ~name:t.name t.alock;
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
