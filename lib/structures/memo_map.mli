(** Generic lazy Proustian map with memoized shadow copies — the
    paper's [LazyHashMap] construction (§4): pending operations live in
    a per-transaction {!Replay_log.Memo}; return values come from the
    memo table backed by reads of the unmodified base; commit applies
    the log behind the STM's locks; abort drops it.  [combine] toggles
    the log-combining optimisation of Figure 4's bottom row. *)

type ('k, 'v) t

val make :
  base:('k, 'v) Eager_map.base ->
  lap:'k Lock_allocator.t ->
  ?combine:bool ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?name:string ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
