(** The non-negative counter of §3 — the paper's running example of a
    conflict abstraction.

    One STM slot [l0]; with threshold 2 (the paper's choice):
    - [incr] reads [l0] whenever the counter is below the threshold;
    - [decr] writes [l0] whenever the counter is below the threshold;
    - above the threshold neither touches [l0], so increments and
      decrements run conflict-free, mirroring the paper's case (1).

    The intent computation consults the live counter value, so it is
    re-checked after acquisition until it reaches a fixed point — the
    state could shrink below the threshold between the sample and the
    acquisition (the classic boosting race).  Under an optimistic LAP
    the STM's read validation independently rejects such schedules; the
    loop makes the pessimistic configuration sound too.

    [observable] adds a striped observer band so that [value] can be
    read transactionally: updates write one sub-slot (colliding with
    each other only at 1/width rate), [value] reads the whole band.
    Without it (the paper's exact design) only the non-transactional
    [peek] is available. *)

module Nn = Proust_concurrent.Nn_counter

type element = Level | Observer

type t = {
  base : Nn.t;
  alock : element Abstract_lock.t;
  threshold : int;
  observable : bool;
  observer_width : int;
}

let make ?(threshold = 2) ?(lap = Trait.Optimistic) ?(observable = false)
    ?(observer_width = 8) ?(init = 0) () =
  let width = if observable then observer_width else 0 in
  let ca =
    Conflict_abstraction.exact ~slots:(1 + width) (fun ~stripe intent ->
        match Intent.key intent with
        | Level ->
            [ { Conflict_abstraction.slot = 0; write = Intent.is_write intent } ]
        | Observer ->
            if not observable then
              invalid_arg "P_counter: observer band disabled"
            else Conflict_abstraction.group_accesses ~width ~base:1 ~stripe intent)
  in
  {
    base = Nn.create ~init ();
    alock = Abstract_lock.make ~lap:(Trait.make_lap lap ~ca)
        ~strategy:Update_strategy.Eager;
    threshold;
    observable;
    observer_width;
  }

(* Intents demanded by the current state: the §3 conflict abstraction.
   Acquired through the stable-resampling loop, since the value may
   drop below the threshold between sampling and acquisition. *)
let level_intents t op () =
  if Nn.get t.base >= t.threshold then []
  else
    match op with
    | `Incr -> [ Intent.Read Level ]
    | `Decr -> [ Intent.Write Level ]

let acquire_stable t txn op =
  Abstract_lock.acquire_stable t.alock txn (level_intents t op)

let observer_intents t write =
  if t.observable then
    [ (if write then Intent.Write Observer else Intent.Read Observer) ]
  else []

let incr t txn =
  acquire_stable t txn `Incr;
  Abstract_lock.apply t.alock txn (observer_intents t true)
    ~inverse:(fun () -> ignore (Nn.try_decr t.base))
    (fun () -> Nn.incr t.base)

(** [decr t txn] is [false] when the counter was 0 — the §3 error flag. *)
let decr t txn =
  acquire_stable t txn `Decr;
  Abstract_lock.apply t.alock txn (observer_intents t true)
    ~inverse:(fun ok -> if ok then Nn.incr t.base)
    (fun () -> Nn.try_decr t.base)

(** Transactional read; requires [observable]. *)
let value t txn =
  if not t.observable then
    invalid_arg "P_counter.value: construct with ~observable:true";
  Abstract_lock.apply t.alock txn
    [ Intent.Read Observer ]
    (fun () -> Nn.get t.base)

(** Committed value, non-transactionally. *)
let peek t = Nn.get t.base

(** The counter-trait view; [value] requires [~observable:true]. *)
let ops t =
  {
    Trait.Counter.meta = Trait.meta_of_alock ~name:"p-counter" t.alock;
    incr = (fun txn -> incr t txn);
    decr = (fun txn -> decr t txn);
    value = (fun txn -> value t txn);
  }
