(** The non-negative counter of §3 — the paper's running example of a
    conflict abstraction: one STM slot, read by [incr] and written by
    [decr] whenever the value is below [threshold]; above it the
    operations commute and touch nothing.

    State-dependent intents are re-sampled to a fixed point after
    acquisition ({!Abstract_lock.acquire_stable}).  [observable] adds a
    striped observer band enabling the transactional [value] read. *)

type t

val make :
  ?threshold:int ->
  ?lap:Trait.lap_choice ->
  ?observable:bool ->
  ?observer_width:int ->
  ?init:int ->
  unit ->
  t

val incr : t -> Stm.txn -> unit

(** [decr t txn] is [false] when the counter was 0 (the §3 error
    flag); the counter never goes negative. *)
val decr : t -> Stm.txn -> bool

(** Transactional read; requires [~observable:true].
    @raise Invalid_argument otherwise. *)
val value : t -> Stm.txn -> int

(** Committed value, non-transactionally. *)
val peek : t -> int

(** The {!Trait.Counter} view; [value] requires the counter to have
    been built with [~observable:true]. *)
val ops : t -> Trait.Counter.ops
