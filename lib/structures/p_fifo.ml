(** Eager Proustian FIFO queue over the removable-node {!Deque}.

    An enqueue's inverse deletes the node it created (the Fig. 3
    lazy-deletion trick); a dequeue's inverse pushes the value back on
    the front.  State-dependent intents follow {!Trait.Queue}. *)

module D = Proust_concurrent.Deque
open Trait.Queue

type 'v t = {
  base : 'v D.t;
  alock : state Abstract_lock.t;
  csize : Committed_size.t;
}

let make ?(lap = Trait.Optimistic) ?(size_mode = `Counter) () =
  {
    base = D.create ();
    alock =
      Abstract_lock.make ~lap:(Trait.make_lap lap ~ca:(ca ()))
        ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
  }

let enqueue t txn v =
  Abstract_lock.acquire_stable t.alock txn (fun () ->
      Intent.Write Tail
      :: (if D.is_empty t.base then [ Intent.Write Head ] else []));
  ignore
    (Abstract_lock.apply t.alock txn []
       ~inverse:(fun node ->
         (* If this transaction itself dequeued the node, a later-run
            inverse has pushed the value back under a fresh node; fall
            back to removal by value (cf. P_pqueue). *)
         if not (D.delete t.base node) then ignore (D.remove_value t.base v))
       (fun () ->
         let node = D.push_back t.base v in
         Committed_size.add t.csize txn 1;
         node))

let dequeue t txn =
  Abstract_lock.acquire_stable t.alock txn (fun () ->
      (Intent.Write Head :: eager_dequeue_guard)
      @ (if D.size t.base <= 1 then [ Intent.Write Tail ] else []));
  Abstract_lock.apply t.alock txn []
    ~inverse:(fun popped ->
      Option.iter (fun v -> ignore (D.push_front t.base v)) popped)
    (fun () ->
      let popped = D.pop_front t.base in
      if popped <> None then Committed_size.add t.csize txn (-1);
      popped)

let front t txn =
  Abstract_lock.apply t.alock txn [ Intent.Read Head ] (fun () ->
      D.peek_front t.base)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

(** Committed contents, non-transactionally (tests). *)
let to_list t = D.to_list t.base

let ops t : 'v Trait.Queue.ops =
  {
    meta = Trait.meta_of_alock ~name:"p-fifo" t.alock;
    enqueue = enqueue t;
    dequeue = dequeue t;
    front = front t;
    size = size t;
  }
