(** Eager Proustian FIFO queue over the removable-node {!Deque}.

    Abstract state per {!Trait.Queue}: [Head] and [Tail], with
    state-dependent extras (enqueue-into-empty writes [Head]; a
    dequeue that may empty the queue writes [Tail]) acquired through
    the stable re-sampling loop, plus the eager dequeue guard that
    prevents consuming uncommitted enqueues — see {!Trait.Queue}. *)

type 'v t

val make :
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  unit ->
  'v t

val enqueue : 'v t -> Stm.txn -> 'v -> unit
val dequeue : 'v t -> Stm.txn -> 'v option
val front : 'v t -> Stm.txn -> 'v option
val size : 'v t -> Stm.txn -> int
val committed_size : 'v t -> int

(** Committed contents front-first, non-transactionally. *)
val to_list : 'v t -> 'v list

val ops : 'v t -> 'v Trait.Queue.ops
