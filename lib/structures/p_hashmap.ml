(** Eager Proustian hash map: {!Proust_concurrent.Chashmap} wrapped by
    the generic eager construction (Figure 2a over ConcurrentHashMap). *)

type ('k, 'v) t = {
  backing : ('k, 'v) Proust_concurrent.Chashmap.t;
  wrapper : ('k, 'v) Eager_map.t;
}

let base_of backing =
  {
    Eager_map.bget = Proust_concurrent.Chashmap.get backing;
    bput = Proust_concurrent.Chashmap.put backing;
    bremove = Proust_concurrent.Chashmap.remove backing;
    bcontains = Proust_concurrent.Chashmap.contains backing;
  }

let make ?(slots = 1024) ?(lap = Trait.Optimistic) ?size_mode
    ?combine_undo () =
  let backing = Proust_concurrent.Chashmap.create () in
  let ca = Conflict_abstraction.striped ~slots () in
  let lap = Trait.make_lap lap ~ca in
  {
    backing;
    wrapper =
      Eager_map.make ~base:(base_of backing) ~lap ?size_mode ?combine_undo
        ~name:"p-hashmap" ();
  }

(** Wrap a caller-supplied lock allocator (custom conflict
    abstractions, shared regions, ...). *)
let make_custom ~lap ?size_mode ?combine_undo () =
  let backing = Proust_concurrent.Chashmap.create () in
  {
    backing;
    wrapper =
      Eager_map.make ~base:(base_of backing) ~lap ?size_mode ?combine_undo
        ~name:"p-hashmap" ();
  }

let get t = Eager_map.get t.wrapper
let put t = Eager_map.put t.wrapper
let remove t = Eager_map.remove t.wrapper
let contains t = Eager_map.contains t.wrapper
let size t = Eager_map.size t.wrapper
let committed_size t = Eager_map.committed_size t.wrapper
let ops t = Eager_map.ops t.wrapper

(** The raw backing map, for tests that inspect committed state. *)
let backing t = t.backing
