(** Eager Proustian hash map — {!Proust_concurrent.Chashmap} wrapped by
    the generic eager construction (Figure 2a over ConcurrentHashMap).

    [combine_undo] enables the combined undo log (§9 future work): one
    restore entry per dirty key instead of one inverse per operation.

    Soundness: pessimistic LAP under any STM mode (Theorem 5.1);
    optimistic LAP only under the [Eager_lazy]/[Eager_eager] STM modes
    (Theorem 5.2 — see the design-space table in {!Proust}). *)

type ('k, 'v) t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine_undo:bool ->
  unit ->
  ('k, 'v) t

(** Wrap a caller-supplied lock allocator (custom conflict
    abstractions, shared slot regions, ...). *)
val make_custom :
  lap:'k Lock_allocator.t ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine_undo:bool ->
  unit ->
  ('k, 'v) t

(** Base-map accessors over a raw backing structure, for callers
    composing their own wrappers. *)
val base_of : ('k, 'v) Proust_concurrent.Chashmap.t -> ('k, 'v) Eager_map.base

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option

(** [put t txn k v] binds [k] and returns the previous binding, as seen
    by this transaction. *)
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option

val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool

(** Committed size plus this transaction's pending delta (Listing 2's
    reified size). *)
val size : ('k, 'v) t -> Stm.txn -> int

(** Committed size, non-transactionally. *)
val committed_size : ('k, 'v) t -> int

(** First-class view for benchmarks and generic drivers. *)
val ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops

(** The raw backing structure (tests, diagnostics). *)
val backing : ('k, 'v) t -> ('k, 'v) Proust_concurrent.Chashmap.t
