(** Lazy Proustian FIFO queue over the copy-on-write {!Cow_queue}:
    snapshot shadow copies, commit-time replay, optional root-CAS log
    combining.  Same conflict abstraction as {!P_fifo}. *)

module Cq = Proust_concurrent.Cow_queue
open Trait.Queue

type 'v t = {
  base : 'v Cq.t;
  alock : state Abstract_lock.t;
  csize : Committed_size.t;
  mergeable : bool;
  log_key : 'v Cq.snapshot Replay_log.Snapshot.t Stm.Local.key;
}

let make ?(lap = Trait.Optimistic) ?(size_mode = `Counter)
    ?(combine = false) () =
  let base = Cq.create () in
  let install =
    if combine then
      Some (fun ~expected ~desired -> Cq.commit base ~expected ~desired)
    else None
  in
  (* Cross-transaction merging needs the validated optimistic LAP —
     see {!Memo_map.make} for the soundness argument. *)
  let shared =
    if combine && lap = Trait.Optimistic then
      Some (Replay_log.Snapshot.make_shared ())
    else None
  in
  {
    base;
    alock =
      Abstract_lock.make ~lap:(Trait.make_lap lap ~ca:(ca ()))
        ~strategy:Update_strategy.Lazy;
    csize = Committed_size.create size_mode;
    mergeable = Option.is_some shared;
    log_key =
      Stm.Local.key
        (Replay_log.Snapshot.create ?install ?shared
           ~snapshot:(fun () -> Cq.snapshot base));
  }

let log t txn = Stm.Local.get txn t.log_key

let shadow_size t txn =
  Replay_log.Snapshot.read_only (log t txn) ~shadow:Cq.Snapshot.size
    ~direct:(fun () -> Cq.size t.base)

let enqueue t txn v =
  Abstract_lock.acquire_stable t.alock txn (fun () ->
      Intent.Write Tail
      :: (if shadow_size t txn = 0 then [ Intent.Write Head ] else []));
  Abstract_lock.apply t.alock txn [] (fun () ->
      Replay_log.Snapshot.update txn (log t txn)
        (fun s -> (Cq.Snapshot.enqueue s v, ()))
        ~merge:(fun s -> Cq.Snapshot.enqueue s v)
        ~replay:(fun () -> Cq.enqueue t.base v);
      Committed_size.add t.csize txn 1)

let dequeue t txn =
  Abstract_lock.acquire_stable t.alock txn (fun () ->
      Intent.Write Head
      :: (if shadow_size t txn <= 1 then [ Intent.Write Tail ] else []));
  Abstract_lock.apply t.alock txn [] (fun () ->
      let empty = shadow_size t txn = 0 in
      if empty then None
      else
        let popped =
          Replay_log.Snapshot.update txn (log t txn)
            (fun s ->
              match Cq.Snapshot.dequeue s with
              | None -> (s, None)
              | Some (v, s') -> (s', Some v))
            ~replay:(fun () -> ignore (Cq.dequeue t.base))
        in
        if popped <> None then Committed_size.add t.csize txn (-1);
        popped)

let front t txn =
  Abstract_lock.apply t.alock txn [ Intent.Read Head ] (fun () ->
      Replay_log.Snapshot.read_only (log t txn) ~shadow:Cq.Snapshot.peek
        ~direct:(fun () -> Cq.peek t.base))

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize
let to_list t = Cq.to_list t.base

let ops t : 'v Trait.Queue.ops =
  {
    meta = Trait.meta_of_alock ~mergeable:t.mergeable ~name:"p-lazy-fifo" t.alock;
    enqueue = enqueue t;
    dequeue = dequeue t;
    front = front t;
    size = size t;
  }
