(** Lazy Proustian FIFO queue over the copy-on-write {!Cow_queue}:
    snapshot shadow copies, commit-time replay, optional root-CAS log
    combining.  Shares {!Trait.Queue}'s conflict abstraction; the lazy
    strategy keeps uncommitted effects off the shared queue, so the
    eager dequeue guard is unnecessary. *)

type 'v t

val make :
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine:bool ->
  unit ->
  'v t

val enqueue : 'v t -> Stm.txn -> 'v -> unit
val dequeue : 'v t -> Stm.txn -> 'v option
val front : 'v t -> Stm.txn -> 'v option
val size : 'v t -> Stm.txn -> int
val committed_size : 'v t -> int
val to_list : 'v t -> 'v list
val ops : 'v t -> 'v Trait.Queue.ops
