(** Lazy Proustian hash map with memoized shadow copies — the paper's
    [LazyHashMap] over ConcurrentHashMap (§4).  [combine] enables the
    log-combining optimisation benchmarked at the bottom of Figure 4. *)

type ('k, 'v) t = {
  backing : ('k, 'v) Proust_concurrent.Chashmap.t;
  wrapper : ('k, 'v) Memo_map.t;
}

let make ?(slots = 1024) ?(lap = Trait.Optimistic) ?combine ?size_mode () =
  let backing = Proust_concurrent.Chashmap.create () in
  let ca = Conflict_abstraction.striped ~slots () in
  let lap = Trait.make_lap lap ~ca in
  let base = P_hashmap.base_of backing in
  {
    backing;
    wrapper =
      Memo_map.make ~base ~lap ?combine ?size_mode ~name:"p-lazy-hashmap" ();
  }

let get t = Memo_map.get t.wrapper
let put t = Memo_map.put t.wrapper
let remove t = Memo_map.remove t.wrapper
let contains t = Memo_map.contains t.wrapper
let size t = Memo_map.size t.wrapper
let committed_size t = Memo_map.committed_size t.wrapper
let ops t = Memo_map.ops t.wrapper
let backing t = t.backing
