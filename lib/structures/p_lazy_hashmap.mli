(** Lazy Proustian hash map with memoized shadow copies — the paper's
    [LazyHashMap] over ConcurrentHashMap (§4).  [combine] toggles the
    log-combining optimisation benchmarked at the bottom of Figure 4.
    Opaque under every STM mode (Theorem 5.3). *)

type ('k, 'v) t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?combine:bool ->
  ?size_mode:[ `Counter | `Transactional ] ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops

(** The raw backing map; only committed state is ever visible here. *)
val backing : ('k, 'v) t -> ('k, 'v) Proust_concurrent.Chashmap.t
