(** Lazy Proustian priority queue over the copy-on-write
    {!Cow_pqueue} — the paper's [LazyPriorityQueue] (§4).

    The first mutating operation snapshots the persistent heap in O(1);
    later operations run on the shadow; commit replays onto the shared
    queue.  A [remove_min] that finds the shadow empty registers no
    replay — emptiness is an observation, protected by the [Write Min]
    conflict-abstraction access. *)

module Cq = Proust_concurrent.Cow_pqueue
open Trait.Pqueue

type 'v t = {
  base : 'v Cq.t;
  alock : state Abstract_lock.t;
  csize : Committed_size.t;
  cmp : 'v -> 'v -> int;
  mergeable : bool;
  log_key : 'v Cq.snapshot Replay_log.Snapshot.t Stm.Local.key;
}

let make ~cmp ?(stripes = 8) ?(lap = Trait.Optimistic)
    ?(size_mode = `Counter) ?(combine = false) () =
  let base = Cq.create ~cmp () in
  let install =
    if combine then
      Some (fun ~expected ~desired -> Cq.commit base ~expected ~desired)
    else None
  in
  (* Cross-transaction merging needs the validated optimistic LAP —
     see {!Memo_map.make} for the soundness argument.  The striped
     [Multiset] band makes this the paying case: inserts from distinct
     transactions commute, so a write-heavy batch can merge several
     insert-only entries into one heap CAS. *)
  let shared =
    if combine && lap = Trait.Optimistic then
      Some (Replay_log.Snapshot.make_shared ())
    else None
  in
  {
    base;
    alock =
      Abstract_lock.make
        ~lap:(Trait.make_lap lap ~ca:(ca ~stripes))
        ~strategy:Update_strategy.Lazy;
    csize = Committed_size.create size_mode;
    cmp;
    mergeable = Option.is_some shared;
    log_key =
      Stm.Local.key
        (Replay_log.Snapshot.create ?install ?shared
           ~snapshot:(fun () -> Cq.snapshot base));
  }

let log t txn = Stm.Local.get txn t.log_key

let min t txn =
  Abstract_lock.apply t.alock txn [ Intent.Read Min ] (fun () ->
      Replay_log.Snapshot.read_only (log t txn) ~shadow:Cq.Snapshot.peek
        ~direct:(fun () -> Cq.peek t.base))

let insert t txn v =
  let min_intent =
    match min t txn with
    | Some cur when t.cmp v cur < 0 -> Intent.Write Min
    | Some _ -> Intent.Read Min
    | None -> Intent.Write Min  (* new minimum; see P_pqueue.insert *)
  in
  Abstract_lock.apply t.alock txn
    [ Intent.Write Multiset; min_intent ]
    (fun () ->
      Replay_log.Snapshot.update txn (log t txn)
        (fun s -> (Cq.Snapshot.add s v, ()))
        ~merge:(fun s -> Cq.Snapshot.add s v)
        ~replay:(fun () -> Cq.add t.base v);
      Committed_size.add t.csize txn 1)

let remove_min t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Write Min; Intent.Write Multiset ]
    (fun () ->
      let shadow_min =
        Replay_log.Snapshot.read_only (log t txn) ~shadow:Cq.Snapshot.peek
          ~direct:(fun () -> Cq.peek t.base)
      in
      match shadow_min with
      | None -> None
      | Some _ ->
          let popped =
            Replay_log.Snapshot.update txn (log t txn)
              (fun s ->
                match Cq.Snapshot.poll s with
                | None -> (s, None)
                | Some (x, s') -> (s', Some x))
              ~replay:(fun () -> ignore (Cq.poll t.base))
          in
          if popped <> None then Committed_size.add t.csize txn (-1);
          popped)

let contains t txn v =
  Abstract_lock.apply t.alock txn [ Intent.Read Multiset ] (fun () ->
      Replay_log.Snapshot.read_only (log t txn)
        ~shadow:(fun s -> Cq.Snapshot.contains s v)
        ~direct:(fun () -> Cq.contains t.base v))

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : 'v Trait.Pqueue.ops =
  {
    meta =
      Trait.meta_of_alock ~mergeable:t.mergeable ~name:"p-lazy-pqueue" t.alock;
    insert = insert t;
    remove_min = remove_min t;
    min = min t;
    contains = contains t;
    size = size t;
  }
