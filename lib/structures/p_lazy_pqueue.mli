(** Lazy Proustian priority queue over the copy-on-write {!Cow_pqueue}
    — the paper's [LazyPriorityQueue] (§4): snapshot shadow copies,
    commit-time replay, optional root-CAS log combining ([combine]).
    Same conflict abstraction as {!P_pqueue}. *)

type 'v t

val make :
  cmp:('v -> 'v -> int) ->
  ?stripes:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine:bool ->
  unit ->
  'v t

val insert : 'v t -> Stm.txn -> 'v -> unit
val remove_min : 'v t -> Stm.txn -> 'v option
val min : 'v t -> Stm.txn -> 'v option
val contains : 'v t -> Stm.txn -> 'v -> bool
val size : 'v t -> Stm.txn -> int
val committed_size : 'v t -> int
val ops : 'v t -> 'v Trait.Pqueue.ops
