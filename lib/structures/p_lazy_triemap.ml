(** Lazy Proustian trie map with snapshot shadow copies — the paper's
    [LazyTrieMap] (Figure 2b): the first mutating operation snapshots
    the Ctrie in O(1); further operations run on the shadow; commit
    replays the log onto the shared Ctrie behind the STM's locks. *)

module Ctrie = Proust_concurrent.Ctrie

type ('k, 'v) t = {
  backing : ('k, 'v) Ctrie.t;
  alock : 'k Abstract_lock.t;
  csize : Committed_size.t;
  log_key : ('k, 'v) Ctrie.snapshot Replay_log.Snapshot.t Stm.Local.key;
}

(** [combine] enables the snapshot-replay log-combining extension (§9
    future work): commit installs the shadow with one root CAS when no
    commuting transaction has slipped in, falling back to per-operation
    replay otherwise. *)
let make ?(slots = 1024) ?(lap = Trait.Optimistic) ?(size_mode = `Counter)
    ?(combine = false) () =
  let backing = Ctrie.create () in
  let ca = Conflict_abstraction.striped ~slots () in
  let lap = Trait.make_lap lap ~ca in
  let install =
    if combine then
      Some
        (fun ~expected ~desired ->
          Ctrie.compare_and_swap_root backing ~expected ~desired)
    else None
  in
  {
    backing;
    alock = Abstract_lock.make ~lap ~strategy:Update_strategy.Lazy;
    csize = Committed_size.create size_mode;
    log_key =
      Stm.Local.key
        (Replay_log.Snapshot.create ?install
           ~snapshot:(fun () -> Ctrie.snapshot backing));
  }

let log t txn = Stm.Local.get txn t.log_key

let get t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Read k ] (fun () ->
      Replay_log.Snapshot.read_only (log t txn)
        ~shadow:(fun s -> Ctrie.Snapshot.find s k)
        ~direct:(fun () -> Ctrie.get t.backing k))

let contains t txn k = get t txn k <> None

let put t txn k v =
  Abstract_lock.apply t.alock txn [ Intent.Write k ] (fun () ->
      let old =
        Replay_log.Snapshot.update txn (log t txn)
          (fun s -> Ctrie.Snapshot.add s k v)
          ~replay:(fun () -> ignore (Ctrie.put t.backing k v))
      in
      if old = None then Committed_size.add t.csize txn 1;
      old)

let remove t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Write k ] (fun () ->
      let old =
        Replay_log.Snapshot.update txn (log t txn)
          (fun s -> Ctrie.Snapshot.remove s k)
          ~replay:(fun () -> ignore (Ctrie.remove t.backing k))
      in
      if old <> None then Committed_size.add t.csize txn (-1);
      old)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta_of_alock ~name:"p-lazy-triemap" t.alock;
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }

let backing t = t.backing
