(** Lazy Proustian trie map with snapshot shadow copies — the paper's
    [LazyTrieMap] (Figure 2b): the first mutating operation snapshots
    the Ctrie in O(1); commit replays the log onto the shared trie
    behind the STM's locks, or — with [combine] — installs the shadow
    wholesale with one root CAS when no commuting transaction slipped
    in (§9 future work).  Opaque under every STM mode (Theorem 5.3). *)

type ('k, 'v) t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine:bool ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
val backing : ('k, 'v) t -> ('k, 'v) Proust_concurrent.Ctrie.t
