(** Proustian ordered map with range queries, over the snapshot-able
    {!Cow_omap} — a structure predication cannot express (§1: Proust
    "supports objects of arbitrary abstract type, not just sets and
    maps").

    The abstract state is the key space cut into [slots] contiguous
    bands by a monotone [index] function.  A point operation touches
    its key's band; a range operation touches every band intersecting
    the range; [min]/[max] observations touch the outermost occupied
    end, conservatively approximated by the full span.  Both the eager
    and lazy (snapshot-replay) update strategies are provided, chosen
    by [strategy]. *)

module Om = Proust_concurrent.Cow_omap

(** Abstract-state elements: one band of the key space, or a span. *)
type 'k element = Point of 'k | Span of 'k * 'k | Everything

type ('k, 'v) t = {
  base : ('k, 'v) Om.t;
  alock : 'k element Abstract_lock.t;
  csize : Committed_size.t;
  strategy : Update_strategy.t;
  log_key : ('k, 'v) Om.snapshot Replay_log.Snapshot.t Stm.Local.key;
}

let band_ca ~slots ~index : 'k element Conflict_abstraction.t =
  let clamp i = max 0 (min (slots - 1) i) in
  Conflict_abstraction.exact ~slots (fun ~stripe:_ intent ->
      let write = Intent.is_write intent in
      let slots_of = function
        | Point k -> [ clamp (index k) ]
        | Span (lo, hi) ->
            let a = clamp (index lo) and b = clamp (index hi) in
            List.init (max 0 (b - a) + 1) (fun i -> a + i)
        | Everything -> List.init slots Fun.id
      in
      List.map
        (fun slot -> { Conflict_abstraction.slot; write })
        (slots_of (Intent.key intent)))

let make ?(slots = 64) ?(lap = Trait.Optimistic)
    ?(strategy = Update_strategy.Lazy) ?(size_mode = `Counter)
    ?(combine = false) ~index () =
  let base = Om.create () in
  let install =
    if combine then
      Some (fun ~expected ~desired -> Om.commit base ~expected ~desired)
    else None
  in
  {
    base;
    alock =
      Abstract_lock.make
        ~lap:(Trait.make_lap lap ~ca:(band_ca ~slots ~index))
        ~strategy;
    csize = Committed_size.create size_mode;
    strategy;
    log_key =
      Stm.Local.key
        (Replay_log.Snapshot.create ?install
           ~snapshot:(fun () -> Om.snapshot base));
  }

let log t txn = Stm.Local.get txn t.log_key

let read_shadow t txn ~shadow ~direct =
  match t.strategy with
  | Update_strategy.Eager -> direct ()
  | Update_strategy.Lazy ->
      Replay_log.Snapshot.read_only (log t txn) ~shadow ~direct

let get t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Read (Point k) ]
    (fun () ->
      read_shadow t txn
        ~shadow:(fun s -> Om.Snapshot.find s k)
        ~direct:(fun () -> Om.get t.base k))

let contains t txn k = get t txn k <> None

let put t txn k v =
  Abstract_lock.apply t.alock txn
    [ Intent.Write (Point k) ]
    ~inverse:(fun old ->
      match old with
      | Some o -> ignore (Om.put t.base k o)
      | None -> ignore (Om.remove t.base k))
    (fun () ->
      let old =
        match t.strategy with
        | Update_strategy.Eager -> Om.put t.base k v
        | Update_strategy.Lazy ->
            Replay_log.Snapshot.update txn (log t txn)
              (fun s -> Om.Snapshot.add s k v)
              ~replay:(fun () -> ignore (Om.put t.base k v))
      in
      if old = None then Committed_size.add t.csize txn 1;
      old)

let remove t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Write (Point k) ]
    ~inverse:(fun old -> Option.iter (fun o -> ignore (Om.put t.base k o)) old)
    (fun () ->
      let old =
        match t.strategy with
        | Update_strategy.Eager -> Om.remove t.base k
        | Update_strategy.Lazy ->
            Replay_log.Snapshot.update txn (log t txn)
              (fun s -> Om.Snapshot.remove s k)
              ~replay:(fun () -> ignore (Om.remove t.base k))
      in
      if old <> None then Committed_size.add t.csize txn (-1);
      old)

(** [range t txn ~lo ~hi] — ascending bindings with [lo <= k <= hi];
    conflicts exactly with updates to keys in intersecting bands. *)
let range t txn ~lo ~hi =
  Abstract_lock.apply t.alock txn
    [ Intent.Read (Span (lo, hi)) ]
    (fun () ->
      read_shadow t txn
        ~shadow:(fun s -> Om.Snapshot.range s ~lo ~hi)
        ~direct:(fun () -> Om.range t.base ~lo ~hi))

let min_binding t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Read Everything ]
    (fun () ->
      read_shadow t txn ~shadow:Om.Snapshot.min_binding ~direct:(fun () ->
          Om.min_binding t.base))

let max_binding t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Read Everything ]
    (fun () ->
      read_shadow t txn ~shadow:Om.Snapshot.max_binding ~direct:(fun () ->
          Om.max_binding t.base))

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

(** Committed bindings, non-transactionally (tests). *)
let bindings t = Om.bindings t.base

let map_ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta_of_alock ~name:"p-omap" t.alock;
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
