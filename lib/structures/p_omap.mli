(** Proustian ordered map with range queries over the snapshot-able
    {!Cow_omap} — an abstract type beyond sets and maps (§1).

    The key space is cut into [slots] contiguous bands by a monotone
    [index] function; point operations touch their key's band, range
    reads every intersecting band, and min/max observations the whole
    span.  Both update strategies are supported ([strategy]); the lazy
    one can combine its replay log into a single root CAS
    ([combine]). *)

(** Abstract-state elements of the band conflict abstraction. *)
type 'k element = Point of 'k | Span of 'k * 'k | Everything

type ('k, 'v) t

(** The band conflict abstraction itself, reusable by other ordered
    wrappers (see {!P_skipmap}). *)
val band_ca :
  slots:int -> index:('k -> int) -> 'k element Conflict_abstraction.t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?strategy:Update_strategy.t ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?combine:bool ->
  index:('k -> int) ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool

(** Ascending bindings with [lo <= k <= hi]; conflicts exactly with
    updates to keys in intersecting bands. *)
val range : ('k, 'v) t -> Stm.txn -> lo:'k -> hi:'k -> ('k * 'v) list

val min_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val max_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int

(** Committed bindings, non-transactionally. *)
val bindings : ('k, 'v) t -> ('k * 'v) list

(** Point-operation view for generic map drivers. *)
val map_ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
