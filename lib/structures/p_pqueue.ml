(** Eager Proustian priority queue over {!Blocking_pqueue} — Figure 3.

    [insert] consults the current minimum to decide between [Read Min]
    (inserting above the minimum leaves it unchanged, commuting with
    other inserts) and [Write Min] (a new minimum conflicts with
    everything that observes the minimum).  The inverse of an insert is
    the paper's lazy-deletion trick: delete the handle returned by the
    base structure's [add]. *)

module Bq = Proust_concurrent.Blocking_pqueue
open Trait.Pqueue

type 'v t = {
  base : 'v Bq.t;
  alock : state Abstract_lock.t;
  csize : Committed_size.t;
  cmp : 'v -> 'v -> int;
}

let make ~cmp ?(stripes = 8) ?(lap = Trait.Optimistic)
    ?(size_mode = `Counter) () =
  {
    base = Bq.create ~cmp ();
    alock =
      Abstract_lock.make
        ~lap:(Trait.make_lap lap ~ca:(ca ~stripes))
        ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
    cmp;
  }

let min t txn =
  Abstract_lock.apply t.alock txn [ Intent.Read Min ] (fun () -> Bq.peek t.base)

let insert t txn v =
  let min_intent =
    match min t txn with
    | Some cur when t.cmp v cur < 0 -> Intent.Write Min
    | Some _ -> Intent.Read Min
    (* Inserting into an empty queue changes the minimum; Figure 3's
       getOrElse(Read(PQueueMin)) under-synchronizes here — see
       Ca_spec.figure3_literal_pqueue and DESIGN.md. *)
    | None -> Intent.Write Min
  in
  ignore
    (Abstract_lock.apply t.alock txn
       [ Intent.Write Multiset; min_intent ]
       ~inverse:(fun handle ->
         (* Lazy deletion (Fig. 3).  If this transaction itself popped
            the handle, a later-run inverse has re-added the value
            under a fresh handle; fall back to deletion by value. *)
         if not (Bq.delete t.base handle) then
           ignore (Bq.remove_value t.base v))
       (fun () ->
         let handle = Bq.add t.base v in
         Committed_size.add t.csize txn 1;
         handle))

let remove_min t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Write Min; Intent.Write Multiset ]
    ~inverse:(fun popped ->
      Option.iter (fun v -> ignore (Bq.add t.base v)) popped)
    (fun () ->
      let popped = Bq.poll t.base in
      if popped <> None then Committed_size.add t.csize txn (-1);
      popped)

let contains t txn v =
  Abstract_lock.apply t.alock txn [ Intent.Read Multiset ] (fun () ->
      Bq.contains t.base v)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

let ops t : 'v Trait.Pqueue.ops =
  {
    meta = Trait.meta_of_alock ~name:"p-pqueue" t.alock;
    insert = insert t;
    remove_min = remove_min t;
    min = min t;
    contains = contains t;
    size = size t;
  }
