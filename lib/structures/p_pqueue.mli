(** Eager Proustian priority queue over {!Blocking_pqueue} — Figure 3.

    Abstract state per Listing 3: [Min] (multi-reader/single-writer)
    and [Multiset] (a striped band: mutually commuting inserts write
    distinct sub-slots, observers read the whole band).  An insert's
    inverse deletes the handle it created (the lazy-deletion trick),
    falling back to deletion by value when the same transaction popped
    it.  Insert takes [Write Min] when it lowers the minimum or the
    queue is empty (repairing the literal Figure 3 — see
    {!Proust_verify.Ca_spec.figure3_literal_pqueue}). *)

type 'v t

val make :
  cmp:('v -> 'v -> int) ->
  ?stripes:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  unit ->
  'v t

val insert : 'v t -> Stm.txn -> 'v -> unit
val remove_min : 'v t -> Stm.txn -> 'v option
val min : 'v t -> Stm.txn -> 'v option
val contains : 'v t -> Stm.txn -> 'v -> bool
val size : 'v t -> Stm.txn -> int
val committed_size : 'v t -> int
val ops : 'v t -> 'v Trait.Pqueue.ops
