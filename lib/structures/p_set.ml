(** Eager Proustian set over the lock-free sorted list {!Lf_list} —
    wrapping a genuinely non-blocking base structure.  Inverses come
    from each operation's own result: an [add] that inserted is undone
    by [remove], and vice versa. *)

module Ll = Proust_concurrent.Lf_list

type 'k t = {
  base : 'k Ll.t;
  alock : 'k Abstract_lock.t;
  csize : Committed_size.t;
}

let make ?(slots = 1024) ?(lap = Trait.Optimistic) ?(size_mode = `Counter)
    ?compare () =
  let ca = Conflict_abstraction.striped ~slots () in
  {
    base = Ll.create ?compare ();
    alock =
      Abstract_lock.make ~lap:(Trait.make_lap lap ~ca)
        ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
  }

(** [add t txn k] inserts [k]; [false] if it was already present. *)
let add t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Write k ]
    ~inverse:(fun added -> if added then ignore (Ll.remove t.base k))
    (fun () ->
      let added = Ll.add t.base k in
      if added then Committed_size.add t.csize txn 1;
      added)

let remove t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Write k ]
    ~inverse:(fun removed -> if removed then ignore (Ll.add t.base k))
    (fun () ->
      let removed = Ll.remove t.base k in
      if removed then Committed_size.add t.csize txn (-1);
      removed)

let contains t txn k =
  Abstract_lock.apply t.alock txn [ Intent.Read k ] (fun () ->
      Ll.contains t.base k)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

(** Committed contents, non-transactionally (tests). *)
let to_list t = Ll.to_list t.base
