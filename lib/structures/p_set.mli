(** Eager Proustian set over the lock-free sorted list {!Lf_list}:
    boosting a genuinely non-blocking base structure.  Per-key striped
    conflict abstraction; inverses come from each operation's result. *)

type 'k t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  ?compare:('k -> 'k -> int) ->
  unit ->
  'k t

(** [add t txn k] inserts [k]; [false] if already present. *)
val add : 'k t -> Stm.txn -> 'k -> bool

val remove : 'k t -> Stm.txn -> 'k -> bool
val contains : 'k t -> Stm.txn -> 'k -> bool
val size : 'k t -> Stm.txn -> int
val committed_size : 'k t -> int

(** Committed contents in ascending order, non-transactionally. *)
val to_list : 'k t -> 'k list
