(** Eager Proustian ordered map over the concurrent {!Skiplist}.

    The skiplist offers no snapshots, so (unlike {!P_omap} over the
    COW tree) this wrapper must use the eager update strategy with
    inverses — the same forced choice the paper describes for
    structures without fast-snapshot semantics (§4).  It shares
    {!P_omap}'s band conflict abstraction, including range reads. *)

module Sl = Proust_concurrent.Skiplist

type ('k, 'v) t = {
  base : ('k, 'v) Sl.t;
  alock : 'k P_omap.element Abstract_lock.t;
  csize : Committed_size.t;
}

let make ?(slots = 64) ?(lap = Trait.Optimistic) ?(size_mode = `Counter)
    ~index () =
  {
    base = Sl.create ();
    alock =
      Abstract_lock.make
        ~lap:(Trait.make_lap lap ~ca:(P_omap.band_ca ~slots ~index))
        ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
  }

let get t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Read (P_omap.Point k) ]
    (fun () -> Sl.get t.base k)

let contains t txn k = get t txn k <> None

let put t txn k v =
  Abstract_lock.apply t.alock txn
    [ Intent.Write (P_omap.Point k) ]
    ~inverse:(fun old ->
      match old with
      | Some o -> ignore (Sl.put t.base k o)
      | None -> ignore (Sl.remove t.base k))
    (fun () ->
      let old = Sl.put t.base k v in
      if old = None then Committed_size.add t.csize txn 1;
      old)

let remove t txn k =
  Abstract_lock.apply t.alock txn
    [ Intent.Write (P_omap.Point k) ]
    ~inverse:(fun old -> Option.iter (fun o -> ignore (Sl.put t.base k o)) old)
    (fun () ->
      let old = Sl.remove t.base k in
      if old <> None then Committed_size.add t.csize txn (-1);
      old)

let range t txn ~lo ~hi =
  Abstract_lock.apply t.alock txn
    [ Intent.Read (P_omap.Span (lo, hi)) ]
    (fun () -> Sl.range t.base ~lo ~hi)

let min_binding t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Read P_omap.Everything ]
    (fun () -> Sl.min_binding t.base)

let max_binding t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Read P_omap.Everything ]
    (fun () -> Sl.max_binding t.base)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

(** Committed bindings, non-transactionally (tests). *)
let bindings t = Sl.bindings t.base

let map_ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta_of_alock ~name:"p-skipmap" t.alock;
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
