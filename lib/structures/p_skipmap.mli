(** Eager Proustian ordered map over the concurrent {!Skiplist}.

    The skiplist has no snapshots, so the wrapper must use the eager
    update strategy with inverses — the forced design-space choice for
    structures without fast-snapshot semantics (§4).  Shares
    {!P_omap}'s band conflict abstraction, range queries included. *)

type ('k, 'v) t

val make :
  ?slots:int ->
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  index:('k -> int) ->
  unit ->
  ('k, 'v) t

val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val range : ('k, 'v) t -> Stm.txn -> lo:'k -> hi:'k -> ('k * 'v) list
val min_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val max_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val size : ('k, 'v) t -> Stm.txn -> int
val committed_size : ('k, 'v) t -> int
val bindings : ('k, 'v) t -> ('k * 'v) list
val map_ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
