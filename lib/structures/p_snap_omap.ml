(** Snapshot ordered map: the whole persistent AVL
    ({!Proust_concurrent.Cow_omap.Snapshot}) behind a single tvar.
    Point ops functionally update the root; [range] reads the root
    once, so a scan of any width costs one read-set entry and is
    consistent by construction.

    The design point this occupies: writers serialize on the root (the
    opposite trade from {!P_omap}'s banded conflict abstraction), but
    under [Multi_version] a {!Stm.read_only} transaction scans an
    entire table — range after range — abort-free against any writer
    load, because the root tvar's version chain hands it the committed
    snapshot at its start time.  That is the open-system brownout
    story: read-dominated tenants get routed here at zero abort cost. *)

module Om = Proust_concurrent.Cow_omap

type ('k, 'v) t = { root : ('k, 'v) Om.snapshot Tvar.t }

let make ?compare () =
  { root = Tvar.make (Om.snapshot (Om.create ?compare ())) }

let get t txn k = Om.Snapshot.find (Stm.read txn t.root) k
let contains t txn k = Om.Snapshot.find (Stm.read txn t.root) k <> None

let put t txn k v =
  let s, old = Om.Snapshot.add (Stm.read txn t.root) k v in
  Stm.write txn t.root s;
  old

let remove t txn k =
  let s, old = Om.Snapshot.remove (Stm.read txn t.root) k in
  if old <> None then Stm.write txn t.root s;
  old

let size t txn = Om.Snapshot.size (Stm.read txn t.root)

(** Ascending bindings with [lo <= k <= hi]; one root read, so the
    result is a consistent snapshot regardless of mode. *)
let range t txn ~lo ~hi = Om.Snapshot.range (Stm.read txn t.root) ~lo ~hi

let min_binding t txn = Om.Snapshot.min_binding (Stm.read txn t.root)
let max_binding t txn = Om.Snapshot.max_binding (Stm.read txn t.root)
let bindings t txn = Om.Snapshot.bindings (Stm.read txn t.root)

(** Committed bindings, non-transactionally. *)
let peek_bindings t = Om.Snapshot.bindings (Tvar.peek t.root)

let map_ops t : ('k, 'v) Trait.Map.ops =
  {
    meta = Trait.meta ~name:"omap-snap" ~strategy:Update_strategy.Lazy ();
    get = get t;
    put = put t;
    remove = remove t;
    contains = contains t;
    size = size t;
  }
