(** Snapshot ordered map: a persistent AVL behind a single tvar.
    Writers serialize on the root; [range] costs one read-set entry and
    is snapshot-consistent, and under [Multi_version] a
    {!Stm.read_only} transaction scans abort-free against any writer
    load — the structure brownout RO-routing leans on. *)

type ('k, 'v) t

val make : ?compare:('k -> 'k -> int) -> unit -> ('k, 'v) t
val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
val size : ('k, 'v) t -> Stm.txn -> int

(** Ascending bindings with [lo <= k <= hi] — one root read. *)
val range : ('k, 'v) t -> Stm.txn -> lo:'k -> hi:'k -> ('k * 'v) list

val min_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val max_binding : ('k, 'v) t -> Stm.txn -> ('k * 'v) option
val bindings : ('k, 'v) t -> Stm.txn -> ('k * 'v) list

(** Committed bindings, non-transactionally. *)
val peek_bindings : ('k, 'v) t -> ('k * 'v) list

val map_ops : ('k, 'v) t -> ('k, 'v) Trait.Map.ops
