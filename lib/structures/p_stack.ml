(** Eager Proustian stack over the lock-free {!Treiber} stack.

    Stack operations barely commute — any two of push/pop fail to
    commute in some state, and pop/pop never commute on a non-empty
    stack — so the conflict abstraction is a single [Top] element,
    exclusively written by mutators and read by observers.  The
    wrapper exists to show that even a poorly-commuting structure
    wraps cleanly and composes transactionally; it simply degenerates
    to two-phase locking on one abstract element (§1's "conservative
    approximation"). *)

module T = Proust_concurrent.Treiber

type 'v t = {
  base : 'v T.t;
  alock : unit Abstract_lock.t;
  csize : Committed_size.t;
}

let make ?(lap = Trait.Optimistic) ?(size_mode = `Counter) () =
  {
    base = T.create ();
    alock =
      Abstract_lock.make
        ~lap:(Trait.make_lap lap ~ca:(Conflict_abstraction.coarse ()))
        ~strategy:Update_strategy.Eager;
    csize = Committed_size.create size_mode;
  }

let push t txn v =
  Abstract_lock.apply t.alock txn
    [ Intent.Write () ]
    ~inverse:(fun () -> ignore (T.pop t.base))
    (fun () ->
      T.push t.base v;
      Committed_size.add t.csize txn 1)

let pop t txn =
  Abstract_lock.apply t.alock txn
    [ Intent.Write () ]
    ~inverse:(fun popped -> Option.iter (T.push t.base) popped)
    (fun () ->
      let popped = T.pop t.base in
      if popped <> None then Committed_size.add t.csize txn (-1);
      popped)

let top t txn =
  Abstract_lock.apply t.alock txn [ Intent.Read () ] (fun () -> T.peek t.base)

let size t txn = Committed_size.read t.csize txn
let committed_size t = Committed_size.peek t.csize

(** Committed contents top-first, non-transactionally (tests). *)
let to_list t = T.to_list t.base
