(** Eager Proustian stack over the lock-free {!Treiber} stack.

    Stack operations barely commute, so the conflict abstraction is a
    single [Top] element: mutators write it, observers read it — the
    conservative degenerate point of the design space (§1), still
    composing transactionally with every other Proustian object. *)

type 'v t

val make :
  ?lap:Trait.lap_choice ->
  ?size_mode:[ `Counter | `Transactional ] ->
  unit ->
  'v t

val push : 'v t -> Stm.txn -> 'v -> unit
val pop : 'v t -> Stm.txn -> 'v option
val top : 'v t -> Stm.txn -> 'v option
val size : 'v t -> Stm.txn -> int
val committed_size : 'v t -> int

(** Committed contents top-first, non-transactionally. *)
val to_list : 'v t -> 'v list
