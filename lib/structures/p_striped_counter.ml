(** Striped transactional counter — the hot-key escape hatch for
    counter-shaped contention.  The count lives in a band of per-stripe
    tvars; [incr] writes only the calling domain's stripe, so
    concurrent increments from different domains commit without ever
    conflicting.  [decr] takes from its own stripe when it can and
    borrows from a sibling stripe otherwise (reading zero stripes on
    the way, which is exactly the regime where serialization is
    semantically required — a near-empty counter).  [value] reads the
    whole band and conflicts with everything, the standard price of a
    linearizable total.

    Unlike {!P_counter} (the §3 conflict-abstraction design) this is
    plain STM state: serializability comes from the STM under any mode,
    making it the A/B baseline for "shard the state" against "shrink
    the conflict abstraction". *)

type t = { stripes : int Tvar.t array; mask : int }

let make ?(stripes = 8) ?(init = 0) () =
  let rec pow2 k n = if k >= n then k else pow2 (k * 2) n in
  let n = pow2 1 (max 1 stripes) in
  let a = Array.init n (fun i -> Tvar.make (if i = 0 then init else 0)) in
  { stripes = a; mask = n - 1 }

let stripes t = t.mask + 1
let my_stripe t = (Domain.self () :> int) land t.mask

let incr t txn =
  let tv = t.stripes.(my_stripe t) in
  Stm.write txn tv (Stm.read txn tv + 1)

(* Take from the first non-zero stripe starting at our own.  The scan
   reads every zero stripe it passes, so a nearly-empty counter
   serializes against concurrent increments — which is unavoidable:
   whether this decr succeeds genuinely depends on them. *)
let decr t txn =
  let n = t.mask + 1 in
  let start = my_stripe t in
  let rec go i =
    if i = n then false
    else
      let tv = t.stripes.((start + i) land t.mask) in
      let v = Stm.read txn tv in
      if v > 0 then begin
        Stm.write txn tv (v - 1);
        true
      end
      else go (i + 1)
  in
  go 0

let value t txn =
  Array.fold_left (fun acc tv -> acc + Stm.read txn tv) 0 t.stripes

(** Committed total, non-transactionally. *)
let peek t =
  Array.fold_left (fun acc tv -> acc + Tvar.peek tv) 0 t.stripes

let ops t =
  {
    Trait.Counter.meta =
      Trait.meta ~name:"p-counter-striped" ~strategy:Update_strategy.Lazy ();
    incr = incr t;
    decr = decr t;
    value = value t;
  }
