(** Striped transactional counter: the count spread over per-stripe
    tvars so concurrent increments from different domains never
    conflict; [decr] borrows from sibling stripes near empty; [value]
    reads the whole band.  Plain STM state — serializable under any
    mode — and the A/B escape-hatch baseline against {!P_counter}'s
    conflict-abstraction design. *)

type t

(** [stripes] is rounded up to a power of two. *)
val make : ?stripes:int -> ?init:int -> unit -> t

val stripes : t -> int
val incr : t -> Stm.txn -> unit

(** [false] when the counter was 0 (never goes negative). *)
val decr : t -> Stm.txn -> bool

val value : t -> Stm.txn -> int

(** Committed total, non-transactionally. *)
val peek : t -> int

val ops : t -> Trait.Counter.ops
