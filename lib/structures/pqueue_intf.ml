(** Deprecated alias module: the priority-queue trait now lives in
    {!Trait.Pqueue} (with its abstract-state notes).  Kept for one
    release; new code should use {!Trait} directly. *)

type state = Trait.Pqueue.state = Min | Multiset

type 'v ops = 'v Trait.Pqueue.ops = {
  meta : Trait.meta;
  insert : Stm.txn -> 'v -> unit;
  remove_min : Stm.txn -> 'v option;
  min : Stm.txn -> 'v option;
  contains : Stm.txn -> 'v -> bool;
  size : Stm.txn -> int;
}

let ca = Trait.Pqueue.ca
