(** Deprecated alias module: the FIFO-queue trait now lives in
    {!Trait.Queue} (where the abstract-state and commutativity notes
    moved too).  Kept for one release; new code should use {!Trait}
    directly. *)

type state = Trait.Queue.state = Head | Tail

type 'v ops = 'v Trait.Queue.ops = {
  meta : Trait.meta;
  enqueue : Stm.txn -> 'v -> unit;
  dequeue : Stm.txn -> 'v option;
  front : Stm.txn -> 'v option;
  size : Stm.txn -> int;
}

let ca = Trait.Queue.ca
let eager_dequeue_guard = Trait.Queue.eager_dequeue_guard
