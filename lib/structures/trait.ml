(** The unified structure-trait layer.

    Every transactional structure in the repository — Proustian
    wrappers, lazy replay-log wrappers, and STM/lock baselines alike —
    exposes one of three first-class trait records ({!Map.ops},
    {!Queue.ops}, {!Pqueue.ops}).  All three share a common {!meta}
    header describing where the implementation sits in the paper's
    design space (Figure 1): its update strategy, its lock-allocation
    policy, and the STM conflict-detection mode it requires to stay
    opaque.  Benchmarks, the workload registry, and the
    linearizability harness enumerate implementations through this
    header instead of hand-maintained lists. *)

(** STM conflict-detection requirement (Figure 1 / Theorem 5.2).

    [Encounter_time] marks the plain eager/optimistic construction:
    base mutations become visible before commit, so the STM must
    detect conflicts at encounter time ([Eager_lazy] or
    [Eager_eager]).  Pessimistic wrappers hold real abstract locks and
    lazy wrappers keep effects off the shared structure, so both run
    under [Any_mode]. *)
type mode_req = Any_mode | Encounter_time

let mode_req_name = function
  | Any_mode -> "any"
  | Encounter_time -> "encounter-time"

let mode_ok req (m : Stm.mode) =
  match (req, m) with
  | Any_mode, _ -> true
  | Encounter_time, (Stm.Eager_lazy | Stm.Eager_eager) -> true
  | Encounter_time, (Stm.Lazy_lazy | Stm.Serial_commit | Stm.Multi_version) ->
      false

(** The shared trait header. *)
type meta = {
  name : string;
  strategy : Update_strategy.t;
  mode_req : mode_req;
  pessimistic : bool;  (** lock-allocation policy is pessimistic *)
  mergeable : bool;
      (** this instance's replay logs batch-merge across transactions
          under the flat-combining group commit ({!Replay_log}) *)
}

let meta ?(pessimistic = false) ?(mergeable = false) ~name ~strategy () =
  let mode_req =
    match strategy with
    | Update_strategy.Eager when not pessimistic -> Encounter_time
    | Update_strategy.Eager | Update_strategy.Lazy -> Any_mode
  in
  { name; strategy; mode_req; pessimistic; mergeable }

(** Derive the header from the wrapper's own abstract lock, so a
    structure cannot drift from the strategy/LAP it actually uses. *)
let meta_of_alock ?mergeable ~name al =
  meta ~name ?mergeable
    ~pessimistic:(Abstract_lock.lap_kind al = Lock_allocator.Pessimistic)
    ~strategy:(Abstract_lock.strategy al) ()

(* ------------------------------------------------------------------ *)
(* Lock-allocator choice (formerly Map_intf)                           *)

(** Choice of lock-allocator policy used by convenience constructors.
    [Optimistic_unvalidated] omits the read-before-write on
    conflict-abstraction slots: the paper's plain eager/optimistic
    construction, opaque only under eager STM conflict detection
    (Theorem 5.2). *)
type lap_choice = Optimistic | Optimistic_unvalidated | Pessimistic

let make_lap (choice : lap_choice) ~(ca : 'k Conflict_abstraction.t) :
    'k Lock_allocator.t =
  match choice with
  | Optimistic -> Lock_allocator.optimistic ~validate_writes:true ~ca ()
  | Optimistic_unvalidated ->
      Lock_allocator.optimistic ~validate_writes:false ~ca ()
  | Pessimistic -> Lock_allocator.pessimistic ~ca ()

(* ------------------------------------------------------------------ *)
(* The three traits                                                    *)

module Map = struct
  (** The transactional map trait (Listing 2), as a first-class record
      so benchmarks and tests can drive any implementation
      uniformly. *)
  type ('k, 'v) ops = {
    meta : meta;
    get : Stm.txn -> 'k -> 'v option;
    put : Stm.txn -> 'k -> 'v -> 'v option;
        (** binds and returns the previous binding *)
    remove : Stm.txn -> 'k -> 'v option;
    contains : Stm.txn -> 'k -> bool;
    size : Stm.txn -> int;
  }
end

module Queue = struct
  (** The transactional FIFO-queue trait, with a two-element abstract
      state in the style of Listing 3:

      - [Head]: the dequeue end.  [dequeue] and [front] operate here.
      - [Tail]: the enqueue end.  [enqueue] operates here.

      Commutativity facts the conflict abstraction encodes:
      - enqueues never commute with each other (they order elements),
        so [Tail] is exclusively written;
      - an enqueue into an {e empty} queue creates the new front, so
        it additionally writes [Head];
      - a dequeue that empties the queue additionally writes [Tail]
        (freezing emptiness against concurrent enqueues that sampled
        the queue as non-empty).

      The state-dependent intents are acquired through
      {!Abstract_lock.acquire_stable}.

      Under the {e eager} update strategy, dequeue additionally reads
      [Tail], making every dequeue conflict with every enqueue.  This
      is not a Definition 3.1 requirement — deq and enq commute on a
      non-empty queue — but an abort-safety one: an eager enqueue is
      visible in the shared base before its transaction commits, and
      without the conflict a concurrent dequeue could drain down to
      and consume the uncommitted element (whose enqueuer may yet
      abort).  The paper's eager priority queue avoids this
      automatically because every [removeMin] already conflicts with
      every [insert] through [PQueueMin]; a FIFO's conflict
      abstraction must pay for it explicitly.  Lazy wrappers keep
      uncommitted effects off the shared structure, so they skip the
      extra read. *)

  type state = Head | Tail

  type 'v ops = {
    meta : meta;
    enqueue : Stm.txn -> 'v -> unit;
    dequeue : Stm.txn -> 'v option;
    front : Stm.txn -> 'v option;
    size : Stm.txn -> int;
  }

  let ca () : state Conflict_abstraction.t =
    Conflict_abstraction.indexed ~slots:2
      ~index:(function Head -> 0 | Tail -> 1)

  (** Extra intent for eager dequeues (see above). *)
  let eager_dequeue_guard = [ Intent.Read Tail ]
end

module Pqueue = struct
  (** The transactional priority-queue trait (Listing 3).

      The abstract state has two elements: [Min], the current minimum,
      and [Multiset], the bag of queued values.  Commutativity is
      expressed against these elements rather than pairwise between
      methods — the "linear in the state space" economy the paper
      claims:

      - [Min] admits multiple readers xor a single writer;
      - [Multiset] admits multiple writers or multiple readers, but
        not both at once (all inserts commute with each other).

      The multiset's writers-compatible-with-writers semantics is
      encoded in the conflict abstraction as a striped band of
      sub-slots ({!Conflict_abstraction.group_accesses}). *)

  type state = Min | Multiset

  type 'v ops = {
    meta : meta;
    insert : Stm.txn -> 'v -> unit;
    remove_min : Stm.txn -> 'v option;
    min : Stm.txn -> 'v option;
    contains : Stm.txn -> 'v -> bool;
    size : Stm.txn -> int;
  }

  (** Conflict abstraction shared by both priority-queue wrappers:
      slot 0 is [Min]; slots 1..stripes are the [Multiset] band. *)
  let ca ~stripes : state Conflict_abstraction.t =
    Conflict_abstraction.exact ~slots:(1 + stripes) (fun ~stripe intent ->
        match Intent.key intent with
        | Min ->
            [
              {
                Conflict_abstraction.slot = 0;
                write = Intent.is_write intent;
              };
            ]
        | Multiset ->
            Conflict_abstraction.group_accesses ~width:stripes ~base:1
              ~stripe intent)
end

module Counter = struct
  (** The non-negative counter trait (§3's running example), shared by
      the Proustian counter and the counting semaphore: [incr] always
      succeeds, [decr] returns [false] instead of going negative, and
      [value] is a transactional read of the current count. *)
  type ops = {
    meta : meta;
    incr : Stm.txn -> unit;
    decr : Stm.txn -> bool;
    value : Stm.txn -> int;
  }
end

(* ------------------------------------------------------------------ *)
(* Module-style views, for wrappers exposed as modules                 *)

module type MAP = sig
  type ('k, 'v) t

  val get : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
  val put : ('k, 'v) t -> Stm.txn -> 'k -> 'v -> 'v option
  val remove : ('k, 'v) t -> Stm.txn -> 'k -> 'v option
  val contains : ('k, 'v) t -> Stm.txn -> 'k -> bool
  val size : ('k, 'v) t -> Stm.txn -> int
  val ops : ('k, 'v) t -> ('k, 'v) Map.ops
end

module type QUEUE = sig
  type 'v t

  val enqueue : 'v t -> Stm.txn -> 'v -> unit
  val dequeue : 'v t -> Stm.txn -> 'v option
  val front : 'v t -> Stm.txn -> 'v option
  val size : 'v t -> Stm.txn -> int
  val ops : 'v t -> 'v Queue.ops
end

module type PQUEUE = sig
  type 'v t

  val insert : 'v t -> Stm.txn -> 'v -> unit
  val remove_min : 'v t -> Stm.txn -> 'v option
  val min : 'v t -> Stm.txn -> 'v option
  val contains : 'v t -> Stm.txn -> 'v -> bool
  val size : 'v t -> Stm.txn -> int
  val ops : 'v t -> 'v Pqueue.ops
end
