(** A bounded MPMC channel over plain tvars.

    The buffer is the classic two-list functional queue — [front] in
    dequeue order, [back] reversed — plus a [credits] tvar counting
    free slots.  The split is deliberate: steady-state senders touch
    [back] and [credits] while receivers touch [front] and [credits],
    so a producer commit and a consumer commit conflict only on the
    credit count, not on a single buffer cell.  Receivers flip [back]
    into [front] only when [front] runs dry.

    Blocking is [Stm.retry]: a [send] into a full channel waits on
    [credits] (parked on its wait list until a receiver's commit frees
    a slot) and a [recv] from an empty one waits on [front]/[back].
    Both compose under [or_else]/{!Select}. *)

exception Closed

type 'a t = {
  capacity : int;
  front : 'a list Tvar.t;
  back : 'a list Tvar.t;
  credits : int Tvar.t;
  closed : bool Tvar.t;
}

let make ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Channel.make: capacity < 1";
  {
    capacity;
    front = Tvar.make [];
    back = Tvar.make [];
    credits = Tvar.make capacity;
    closed = Tvar.make false;
  }

let capacity t = t.capacity
let is_closed txn t = Stm.read txn t.closed

(* Number of buffered elements; derived from the credit count so a
   size probe does not read (and conflict on) both buffer lists. *)
let size txn t = t.capacity - Stm.read txn t.credits

let close txn t = Stm.write txn t.closed true

let enqueue txn t v =
  Stm.write txn t.credits (Stm.read txn t.credits - 1);
  Stm.write txn t.back (v :: Stm.read txn t.back)

let send txn t v =
  if Stm.read txn t.closed then raise Closed;
  Stm.guard txn (Stm.read txn t.credits > 0);
  enqueue txn t v

let try_send txn t v =
  if Stm.read txn t.closed then raise Closed;
  if Stm.read txn t.credits > 0 then begin
    enqueue txn t v;
    true
  end
  else false

(* Pop the next element, or [None] when the buffer is empty.  Reads
   [back] only on the empty-front slow path. *)
let pop txn t =
  match Stm.read txn t.front with
  | v :: rest ->
      Stm.write txn t.front rest;
      Stm.write txn t.credits (Stm.read txn t.credits + 1);
      Some v
  | [] -> (
      match List.rev (Stm.read txn t.back) with
      | [] -> None
      | v :: rest ->
          Stm.write txn t.back [];
          Stm.write txn t.front rest;
          Stm.write txn t.credits (Stm.read txn t.credits + 1);
          Some v)

let recv txn t =
  match pop txn t with
  | Some v -> v
  | None -> if Stm.read txn t.closed then raise Closed else Stm.retry txn

let recv_opt txn t =
  match pop txn t with
  | Some v -> Some v
  | None -> if Stm.read txn t.closed then None else Stm.retry txn

let try_recv txn t = pop txn t

let peek_opt txn t =
  match Stm.read txn t.front with
  | v :: _ -> Some v
  | [] -> (
      match List.rev (Stm.read txn t.back) with [] -> None | v :: _ -> Some v)

(* The queue-trait view: non-blocking dequeue/front (trait dequeue
   returns an option), blocking enqueue.  Registered instances use a
   capacity far above any workload's live element count, so the
   enqueue-side [guard] never parks a bench or lin run. *)
let ops t =
  let module T = Proust_structures.Trait in
  {
    T.Queue.meta = T.meta ~name:"chan" ~strategy:Update_strategy.Lazy ();
    enqueue = (fun txn v -> send txn t v);
    dequeue = (fun txn -> try_recv txn t);
    front = (fun txn -> peek_opt txn t);
    size = (fun txn -> size txn t);
  }
