(** A bounded MPMC channel: the canonical blocking structure over the
    parking retry path.  [send] blocks (parks) when the channel is
    full, [recv] when it is empty; both compose under
    [Stm.or_else]/{!Select} because blocking is [Stm.retry].

    Closing is a committed flag: after [close], sends raise {!Closed}
    and receives drain the buffer then raise (or return [None]). *)

type 'a t

(** Raised by [send] on a closed channel, and by [recv] on a closed
    {e and drained} one. *)
exception Closed

(** [make ~capacity ()] — capacity defaults to 64, must be ≥ 1. *)
val make : ?capacity:int -> unit -> 'a t

val capacity : 'a t -> int

(** Buffered element count (one tvar read, not a buffer walk). *)
val size : Stm.txn -> 'a t -> int

val is_closed : Stm.txn -> 'a t -> bool
val close : Stm.txn -> 'a t -> unit

(** Blocks ([Stm.retry]) while the channel is full. *)
val send : Stm.txn -> 'a t -> 'a -> unit

(** [false] instead of blocking when full; still raises {!Closed}. *)
val try_send : Stm.txn -> 'a t -> 'a -> bool

(** Blocks while empty; raises {!Closed} once closed and drained. *)
val recv : Stm.txn -> 'a t -> 'a

(** Blocks while empty and open; [None] once closed and drained. *)
val recv_opt : Stm.txn -> 'a t -> 'a option

(** Non-blocking receive: [None] when the buffer is empty. *)
val try_recv : Stm.txn -> 'a t -> 'a option

(** Non-blocking peek at the next element to be received. *)
val peek_opt : Stm.txn -> 'a t -> 'a option

(** The queue-trait view (blocking enqueue, non-blocking dequeue), for
    the workload registry and the lin/serializability harness. *)
val ops : 'a t -> 'a Proust_structures.Trait.Queue.ops
