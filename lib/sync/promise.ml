(** A one-shot promise cell: a write-once tvar.

    [fulfil] is first-writer-wins — the single-fulfilment invariant is
    transactional, so two racing fulfillers serialize and exactly one
    commits [Some].  [await] is [Stm.retry] on the unfulfilled cell:
    every waiter parks on the cell's wait list and the winning
    fulfiller's commit wakes them all (broadcast semantics for free —
    the cell never reverts to [None]). *)

exception Already_fulfilled

type 'a t = 'a option Tvar.t

let make () = Tvar.make None

let try_fulfil txn p v =
  match Stm.read txn p with
  | None ->
      Stm.write txn p (Some v);
      true
  | Some _ -> false

let fulfil txn p v = if not (try_fulfil txn p v) then raise Already_fulfilled

let await txn p =
  match Stm.read txn p with Some v -> v | None -> Stm.retry txn

let peek txn p = Stm.read txn p
let is_fulfilled txn p = Stm.read txn p <> None

(** Committed contents, non-transactionally. *)
let peek_committed p = Tvar.peek p
