(** One-shot promise cells (write-once tvars) with blocking [await].

    Single fulfilment is a transactional invariant: of any set of
    racing [fulfil]s exactly one commits; the rest observe [Some] and
    fail (or return [false] from [try_fulfil]). *)

type 'a t

exception Already_fulfilled

val make : unit -> 'a t

(** First-writer-wins; [false] if the cell already held a value. *)
val try_fulfil : Stm.txn -> 'a t -> 'a -> bool

(** @raise Already_fulfilled on a fulfilled cell. *)
val fulfil : Stm.txn -> 'a t -> 'a -> unit

(** Blocks ([Stm.retry], parking) until the cell is fulfilled. *)
val await : Stm.txn -> 'a t -> 'a

val peek : Stm.txn -> 'a t -> 'a option
val is_fulfilled : Stm.txn -> 'a t -> bool

(** Committed contents, non-transactionally. *)
val peek_committed : 'a t -> 'a option
