(** A FIFO built from promise cells: an unbounded ticket queue where
    slot [i] is a one-shot {!Promise} fulfilled by the [i]-th enqueue.

    The point of the structure is coverage: it exercises the promise
    cell through the queue trait, so the registry's FIFO
    serializability checks (sequential-witness search over committed
    histories) apply to promise fulfil/await exactly as they do to the
    hand-written queues.  Dequeue [await]s the cell it holds a ticket
    for — always already fulfilled here, since tickets are only issued
    up to [widx] — so the blocking path degenerates to the read path
    and the FIFO model stays non-blocking. *)

module M = Map.Make (Int)

type 'v t = {
  cells : 'v Promise.t M.t Tvar.t;
  widx : int Tvar.t;
  ridx : int Tvar.t;
}

let make () =
  { cells = Tvar.make M.empty; widx = Tvar.make 0; ridx = Tvar.make 0 }

let enqueue t txn v =
  let i = Stm.read txn t.widx in
  let p = Promise.make () in
  Promise.fulfil txn p v;
  Stm.write txn t.cells (M.add i p (Stm.read txn t.cells));
  Stm.write txn t.widx (i + 1)

let dequeue t txn =
  let r = Stm.read txn t.ridx in
  if r >= Stm.read txn t.widx then None
  else begin
    let m = Stm.read txn t.cells in
    let v = Promise.await txn (M.find r m) in
    Stm.write txn t.cells (M.remove r m);
    Stm.write txn t.ridx (r + 1);
    Some v
  end

let front t txn =
  let r = Stm.read txn t.ridx in
  if r >= Stm.read txn t.widx then None
  else Some (Promise.await txn (M.find r (Stm.read txn t.cells)))

let size t txn = Stm.read txn t.widx - Stm.read txn t.ridx

let ops t =
  let module T = Proust_structures.Trait in
  {
    T.Queue.meta =
      T.meta ~name:"promise-fifo" ~strategy:Update_strategy.Lazy ();
    enqueue = enqueue t;
    dequeue = dequeue t;
    front = front t;
    size = size t;
  }
