(** A ticket FIFO of one-shot promise cells — promise coverage through
    the queue trait (see the implementation header). *)

type 'v t

val make : unit -> 'v t
val enqueue : 'v t -> Stm.txn -> 'v -> unit
val dequeue : 'v t -> Stm.txn -> 'v option
val front : 'v t -> Stm.txn -> 'v option
val size : 'v t -> Stm.txn -> int
val ops : 'v t -> 'v Proust_structures.Trait.Queue.ops
