(** Multi-way blocking choice, STM-Haskell style.

    A case is just a transactional thunk that either completes or
    calls [Stm.retry]; [select] is [Stm.or_else_list] over the cases.
    The composition property does all the work: a case that retries
    rolls back to its watermark and the next case runs in the same
    transaction, and if {e every} case retries the transaction parks
    on the {e union} of all cases' read sets — one waiter woken by
    whichever channel/promise/semaphore changes first.

    [select] rotates the starting case by a global round-robin tick so
    a persistently-ready early case cannot starve later ones across
    repeated selects; [select_biased] keeps list order (deterministic,
    and what model-checking tests want). *)

type 'a case = Stm.txn -> 'a

let recv ch f txn = f (Channel.recv txn ch)

let send ch v f txn =
  Channel.send txn ch v;
  f ()

let await p f txn = f (Promise.await txn p)

let acquire ?n s f txn =
  Semaphore.acquire ?n txn s;
  f ()

let default f _txn = f ()

let select_biased txn cases =
  if cases = [] then invalid_arg "Select.select_biased: no cases";
  Stm.or_else_list txn cases

(* The fairness tick is global and advances once per [select] call
   (not per attempt), so a conflict-retried select keeps its rotation
   while successive selects start at successive cases. *)
let tick = Atomic.make 0

let rotate n l =
  let rec go n acc = function
    | rest when n = 0 -> rest @ List.rev acc
    | [] -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let select txn cases =
  match cases with
  | [] -> invalid_arg "Select.select: no cases"
  | [ c ] -> c txn
  | _ ->
      let len = List.length cases in
      let r = Atomic.fetch_and_add tick 1 land max_int mod len in
      Stm.or_else_list txn (rotate r cases)
