(** Multi-way blocking choice over channels, promises and semaphores.

    Built on [Stm.or_else_list]: if every armed case blocks, the
    transaction parks once on the union of their read sets. *)

(** A case: completes or retries.  Any [Stm.retry]-based operation can
    be a case directly — the combinators below are conveniences. *)
type 'a case = Stm.txn -> 'a

val recv : 'v Channel.t -> ('v -> 'a) -> 'a case
val send : 'v Channel.t -> 'v -> (unit -> 'a) -> 'a case
val await : 'v Promise.t -> ('v -> 'a) -> 'a case
val acquire : ?n:int -> Semaphore.t -> (unit -> 'a) -> 'a case

(** Never blocks: makes the whole select non-blocking when last. *)
val default : (unit -> 'a) -> 'a case

(** Round-robin-rotated choice: successive [select] calls start at
    successive cases, so a persistently-ready case cannot starve the
    others.  @raise Invalid_argument on an empty list. *)
val select : Stm.txn -> 'a case list -> 'a

(** Deterministic in-order choice (first ready case wins). *)
val select_biased : Stm.txn -> 'a case list -> 'a
