(** A counting semaphore: one non-negative tvar of available permits.

    [acquire] is [Stm.guard]-based, so an unavailable acquire parks on
    the permit tvar and a [release] commit wakes it.  Non-negativity
    is structural — the only decrement sits behind the guard — and the
    counter-trait view lets the lin harness check it against the
    {!Proust_verify.Adt_model.obs_counter} model alongside the paper's
    Proustian counter.

    {!acquire_fair} adds FIFO handoff: each blocked fair acquirer
    enqueues a one-shot grant cell on a transactional wait queue, and
    [release] hands permits straight to the queue head(s) inside its
    own transaction instead of topping up the free pool.  A granted
    permit is therefore reserved at release time — later acquirers
    (fair or not) cannot overtake it.  The price is compositionality:
    the enrol and the wait are two separate transactions (a single
    transaction that both published its cell and guarded on it would
    park on an effect nobody can see), so [acquire_fair] refuses to
    run inside an enclosing [atomically]. *)

type waiter = { w_n : int; w_grant : bool Tvar.t }

type t = {
  permits : int Tvar.t;
  fair_cap : int;
  (* FIFO of parked fair acquirers as a two-list functional queue:
     enqueue conses on [back], handoff pops [front], refilling from
     [List.rev back] when it runs dry. *)
  waiters : (waiter list * waiter list) Tvar.t;
}

let make ?(cap = max_int) n =
  if n < 0 then invalid_arg "Semaphore.make: negative permits";
  if cap < n then invalid_arg "Semaphore.make: cap < initial permits";
  { permits = Tvar.make n; fair_cap = cap; waiters = Tvar.make ([], []) }

let available txn s = Stm.read txn s.permits
let peek s = Tvar.peek s.permits

let try_acquire ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.try_acquire: negative n";
  let p = Stm.read txn s.permits in
  if p >= n then begin
    Stm.write txn s.permits (p - n);
    true
  end
  else false

let acquire ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.acquire: negative n";
  let p = Stm.read txn s.permits in
  Stm.guard txn (p >= n);
  Stm.write txn s.permits (p - n)

(* Pop the queue head, refilling the front from the back. *)
let dequeue_waiter txn s =
  match Stm.read txn s.waiters with
  | [], [] -> None
  | w :: front, back ->
      Stm.write txn s.waiters (front, back);
      Some w
  | [], back -> (
      match List.rev back with
      | w :: front -> Stm.write txn s.waiters (front, []); Some w
      | [] -> None)

let peek_waiter txn s =
  match Stm.read txn s.waiters with
  | w :: _, _ -> Some w
  | [], back -> (
      match List.rev back with w :: _ -> Some w | [] -> None)

(* Grant free permits to queued fair acquirers, strictly in FIFO
   order: a head that needs more than is available blocks the queue
   (no smaller request behind it may jump ahead), letting permits
   accumulate across releases until it is satisfied. *)
let rec hand_off txn s =
  match peek_waiter txn s with
  | Some w when w.w_n <= Stm.read txn s.permits ->
      ignore (dequeue_waiter txn s);
      Stm.write txn s.permits (Stm.read txn s.permits - w.w_n);
      Stm.write txn w.w_grant true;
      hand_off txn s
  | _ -> ()

(* Return permits to the pool without the cap tripwire — the
   compensation path below gives back permits it legitimately held, and
   must not be failed by releases that raced in meanwhile. *)
let give_back txn s n =
  Stm.write txn s.permits (Stm.read txn s.permits + n);
  hand_off txn s

let release ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.release: negative n";
  let p = Stm.read txn s.permits in
  if p + n > s.fair_cap then invalid_arg "Semaphore.release: above cap";
  Stm.write txn s.permits (p + n);
  hand_off txn s

let remove_waiter txn s w =
  let drop = List.filter (fun x -> not (x.w_grant == w.w_grant)) in
  let front, back = Stm.read txn s.waiters in
  Stm.write txn s.waiters (drop front, drop back)

let fair_waiters txn s =
  let front, back = Stm.read txn s.waiters in
  List.length front + List.length back

let acquire_fair ?(n = 1) s =
  if n < 0 then invalid_arg "Semaphore.acquire_fair: negative n";
  if Stm.in_transaction () then
    invalid_arg "Semaphore.acquire_fair: runs its own transactions";
  let enrolled =
    Stm.atomically (fun txn ->
        let p = Stm.read txn s.permits in
        let empty =
          match Stm.read txn s.waiters with [], [] -> true | _ -> false
        in
        if empty && p >= n then begin
          (* Nobody queued ahead: the direct path cannot overtake. *)
          Stm.write txn s.permits (p - n);
          None
        end
        else begin
          let w = { w_n = n; w_grant = Tvar.make false } in
          let front, back = Stm.read txn s.waiters in
          Stm.write txn s.waiters (front, w :: back);
          Some w
        end)
  in
  match enrolled with
  | None -> ()
  | Some w -> (
      try Stm.atomically (fun txn -> Stm.guard txn (Stm.read txn w.w_grant))
      with e ->
        (* The waiting episode died (kill, timeout, …).  Withdraw the
           cell — or, if a release granted it before we got here, put
           the permits back through the normal handoff path so the
           next waiter inherits them. *)
        Stm.atomically (fun txn ->
            if Stm.read txn w.w_grant then give_back txn s n
            else remove_waiter txn s w);
        raise e)

(* The counter-trait view: release/try_acquire/available are exactly
   incr/decr/value of the §3 non-negative counter. *)
let ops t =
  let module T = Proust_structures.Trait in
  {
    T.Counter.meta = T.meta ~name:"semaphore" ~strategy:Update_strategy.Lazy ();
    incr = (fun txn -> release txn t);
    decr = (fun txn -> try_acquire txn t);
    value = (fun txn -> available txn t);
  }
