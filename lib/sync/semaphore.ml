(** A counting semaphore: one non-negative tvar of available permits.

    [acquire] is [Stm.guard]-based, so an unavailable acquire parks on
    the permit tvar and a [release] commit wakes it.  Non-negativity
    is structural — the only decrement sits behind the guard — and the
    counter-trait view lets the lin harness check it against the
    {!Proust_verify.Adt_model.obs_counter} model alongside the paper's
    Proustian counter. *)

type t = { permits : int Tvar.t; fair_cap : int }

let make ?(cap = max_int) n =
  if n < 0 then invalid_arg "Semaphore.make: negative permits";
  if cap < n then invalid_arg "Semaphore.make: cap < initial permits";
  { permits = Tvar.make n; fair_cap = cap }

let available txn s = Stm.read txn s.permits
let peek s = Tvar.peek s.permits

let try_acquire ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.try_acquire: negative n";
  let p = Stm.read txn s.permits in
  if p >= n then begin
    Stm.write txn s.permits (p - n);
    true
  end
  else false

let acquire ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.acquire: negative n";
  let p = Stm.read txn s.permits in
  Stm.guard txn (p >= n);
  Stm.write txn s.permits (p - n)

let release ?(n = 1) txn s =
  if n < 0 then invalid_arg "Semaphore.release: negative n";
  let p = Stm.read txn s.permits in
  if p + n > s.fair_cap then invalid_arg "Semaphore.release: above cap";
  Stm.write txn s.permits (p + n)

(* The counter-trait view: release/try_acquire/available are exactly
   incr/decr/value of the §3 non-negative counter. *)
let ops t =
  let module T = Proust_structures.Trait in
  {
    T.Counter.meta = T.meta ~name:"semaphore" ~strategy:Update_strategy.Lazy ();
    incr = (fun txn -> release txn t);
    decr = (fun txn -> try_acquire txn t);
    value = (fun txn -> available txn t);
  }
