(** Counting semaphores over one permit tvar.

    Non-negativity is structural: the only decrement is behind an
    acquire guard, so no committed state ever shows negative permits.
    An optional [cap] bounds releases (a leak tripwire for
    acquire/release pairing bugs). *)

type t

(** [make ?cap n] — [n] initial permits ([n ≥ 0]); [release] beyond
    [cap] raises [Invalid_argument] (default: no cap). *)
val make : ?cap:int -> int -> t

(** Blocks ([Stm.retry], parking) until [n] permits (default 1) are
    available, then takes them atomically.  No ordering guarantee:
    whichever blocked acquirer revalidates first after a release wins
    (barging). *)
val acquire : ?n:int -> Stm.txn -> t -> unit

(** FIFO acquire: blocked fair acquirers are granted permits strictly
    in arrival order — [release] hands permits to the queue head
    inside its own transaction, so no later acquirer can overtake an
    earlier fair one.  A queue head needing [n > 1] permits blocks the
    queue until enough accumulate.

    Non-compositional: enrolment and waiting are two separate
    transactions, so this must be called {e outside} [Stm.atomically]
    ([Invalid_argument] otherwise).  On kill/timeout while waiting,
    the enrolment is rolled back (or, if the grant already landed, the
    permits are passed on to the next waiter) before the exception is
    re-raised. *)
val acquire_fair : ?n:int -> t -> unit

(** Fair acquirers currently enqueued (diagnostics/tests). *)
val fair_waiters : Stm.txn -> t -> int

(** [false] instead of blocking. *)
val try_acquire : ?n:int -> Stm.txn -> t -> bool

val release : ?n:int -> Stm.txn -> t -> unit
val available : Stm.txn -> t -> int

(** Committed permit count, non-transactionally. *)
val peek : t -> int

(** The counter-trait view (release/try_acquire/available as
    incr/decr/value) for the registry and lin harness. *)
val ops : t -> Proust_structures.Trait.Counter.ops
