(** Counting semaphores over one permit tvar.

    Non-negativity is structural: the only decrement is behind an
    acquire guard, so no committed state ever shows negative permits.
    An optional [cap] bounds releases (a leak tripwire for
    acquire/release pairing bugs). *)

type t

(** [make ?cap n] — [n] initial permits ([n ≥ 0]); [release] beyond
    [cap] raises [Invalid_argument] (default: no cap). *)
val make : ?cap:int -> int -> t

(** Blocks ([Stm.retry], parking) until [n] permits (default 1) are
    available, then takes them atomically. *)
val acquire : ?n:int -> Stm.txn -> t -> unit

(** [false] instead of blocking. *)
val try_acquire : ?n:int -> Stm.txn -> t -> bool

val release : ?n:int -> Stm.txn -> t -> unit
val available : Stm.txn -> t -> int

(** Committed permit count, non-transactionally. *)
val peek : t -> int

(** The counter-trait view (release/try_acquire/available as
    incr/decr/value) for the registry and lin harness. *)
val ops : t -> Proust_structures.Trait.Counter.ops
