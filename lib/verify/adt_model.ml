(** Finite models of abstract data types (§3, "it is sufficient to work
    with a model (or sequential implementation) of the abstract data
    type").  A model enumerates a bounded state space and a bounded set
    of operation instances; {!Commute} and {!Ca_check} quantify over
    them exhaustively. *)

type ('s, 'o, 'r) t = {
  name : string;
  states : 's list;  (** bounded state space to quantify over *)
  ops : 'o list;  (** operation instances, arguments included *)
  apply : 's -> 'o -> 's * 'r;
  equal_state : 's -> 's -> bool;
  equal_ret : 'r -> 'r -> bool;
  show_state : 's -> string;
  show_op : 'o -> string;
}

(* ------------------------------------------------------------------ *)
(* The §3 non-negative counter.                                        *)

type counter_op = Incr | Decr
type counter_ret = Ok_unit | Decr_ok | Decr_err

let counter ~bound : (int, counter_op, counter_ret) t =
  {
    name = "counter";
    (* Keep headroom below [bound] so Incr stays total on the explored
       states. *)
    states = List.init (bound - 1) Fun.id;
    ops = [ Incr; Decr ];
    apply =
      (fun s op ->
        match op with
        | Incr -> (s + 1, Ok_unit)
        | Decr -> if s = 0 then (0, Decr_err) else (s - 1, Decr_ok));
    equal_state = Int.equal;
    equal_ret = (fun a b -> a = b);
    show_state = string_of_int;
    show_op = (function Incr -> "incr" | Decr -> "decr");
  }

(* ------------------------------------------------------------------ *)
(* A small map (association list over a tiny key/value domain).        *)

type map_op = MGet of int | MPut of int * int | MRemove of int
type map_ret = MVal of int option | MUnit

let rec insert_sorted k v = function
  | [] -> [ (k, v) ]
  | (k', v') :: rest ->
      if k < k' then (k, v) :: (k', v') :: rest
      else if k = k' then (k, v) :: rest
      else (k', v') :: insert_sorted k v rest

let all_map_states ~keys ~values =
  (* Every partial function from keys to values, as a sorted alist. *)
  let rec go = function
    | [] -> [ [] ]
    | k :: rest ->
        let tails = go rest in
        List.concat_map
          (fun tail ->
            ([] @ [ tail ])
            @ List.map (fun v -> (k, v) :: tail) values)
          tails
        |> List.sort_uniq compare
  in
  go keys

let small_map ?(keys = [ 0; 1; 2 ]) ?(values = [ 0; 1 ]) () :
    ((int * int) list, map_op, map_ret) t =
  {
    name = "small-map";
    states = all_map_states ~keys ~values;
    ops =
      List.concat_map
        (fun k ->
          [ MGet k; MRemove k ] @ List.map (fun v -> MPut (k, v)) values)
        keys;
    apply =
      (fun s op ->
        match op with
        | MGet k -> (s, MVal (List.assoc_opt k s))
        | MPut (k, v) -> (insert_sorted k v s, MVal (List.assoc_opt k s))
        | MRemove k ->
            (List.remove_assoc k s, MVal (List.assoc_opt k s)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) s)
        ^ "}");
    show_op =
      (function
      | MGet k -> Printf.sprintf "get(%d)" k
      | MPut (k, v) -> Printf.sprintf "put(%d,%d)" k v
      | MRemove k -> Printf.sprintf "remove(%d)" k);
  }

(* ------------------------------------------------------------------ *)
(* A small priority queue (sorted multiset of ints).                   *)

type pq_op = PInsert of int | PRemoveMin | PMin | PContains of int
type pq_ret = PUnit | PVal of int option | PBool of bool

let all_multisets ~values ~max_size =
  let rec go size =
    if size = 0 then [ [] ]
    else
      let smaller = go (size - 1) in
      smaller
      @ (List.concat_map
           (fun ms -> List.map (fun v -> List.sort compare (v :: ms)) values)
           (List.filter (fun ms -> List.length ms = size - 1) smaller)
        |> List.sort_uniq compare)
  in
  List.sort_uniq compare (go max_size)

let small_pqueue ?(values = [ 0; 1; 2 ]) ?(max_size = 3) () :
    (int list, pq_op, pq_ret) t =
  {
    name = "small-pqueue";
    states = all_multisets ~values ~max_size;
    ops =
      [ PRemoveMin; PMin ]
      @ List.concat_map (fun v -> [ PInsert v; PContains v ]) values;
    apply =
      (fun s op ->
        match op with
        | PInsert v -> (List.sort compare (v :: s), PUnit)
        | PRemoveMin -> (
            match s with [] -> ([], PVal None) | m :: rest -> (rest, PVal (Some m)))
        | PMin -> (s, PVal (match s with [] -> None | m :: _ -> Some m))
        | PContains v -> (s, PBool (List.mem v s)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> "[" ^ String.concat ";" (List.map string_of_int s) ^ "]");
    show_op =
      (function
      | PInsert v -> Printf.sprintf "insert(%d)" v
      | PRemoveMin -> "removeMin"
      | PMin -> "min"
      | PContains v -> Printf.sprintf "contains(%d)" v);
  }

(* ------------------------------------------------------------------ *)
(* A small FIFO queue (front-first list).                              *)

type q_op = QEnq of int | QDeq | QFront
type q_ret = QUnit | QVal of int option

let all_lists ~values ~max_len =
  let rec go len =
    if len = 0 then [ [] ]
    else
      let shorter = go (len - 1) in
      shorter
      @ (List.concat_map
           (fun l ->
             if List.length l = len - 1 then List.map (fun v -> v :: l) values
             else [])
           shorter
        |> List.sort_uniq compare)
  in
  List.sort_uniq compare (go max_len)

let small_queue ?(values = [ 0; 1 ]) ?(max_len = 3) () :
    (int list, q_op, q_ret) t =
  {
    name = "small-queue";
    states = all_lists ~values ~max_len;
    ops = [ QDeq; QFront ] @ List.map (fun v -> QEnq v) values;
    apply =
      (fun s op ->
        match op with
        | QEnq v -> (s @ [ v ], QUnit)
        | QDeq -> (
            match s with [] -> ([], QVal None) | x :: rest -> (rest, QVal (Some x)))
        | QFront ->
            (s, QVal (match s with [] -> None | x :: _ -> Some x)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> "<" ^ String.concat ";" (List.map string_of_int s) ^ ">");
    show_op =
      (function
      | QEnq v -> Printf.sprintf "enq(%d)" v
      | QDeq -> "deq"
      | QFront -> "front");
  }

(* ------------------------------------------------------------------ *)

type bq_op = BEnq of int | BDeq | BFront | BSize
type bq_ret = BBool of bool | BVal of int option | BInt of int

let bounded_queue ?(values = [ 0; 1 ]) ~cap () : (int list, bq_op, bq_ret) t =
  {
    name = Printf.sprintf "bounded-queue-%d" cap;
    states = all_lists ~values ~max_len:cap;
    ops = [ BDeq; BFront; BSize ] @ List.map (fun v -> BEnq v) values;
    apply =
      (fun s op ->
        match op with
        | BEnq v ->
            if List.length s >= cap then (s, BBool false)
            else (s @ [ v ], BBool true)
        | BDeq -> (
            match s with
            | [] -> ([], BVal None)
            | x :: rest -> (rest, BVal (Some x)))
        | BFront -> (s, BVal (match s with [] -> None | x :: _ -> Some x))
        | BSize -> (s, BInt (List.length s)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> "<" ^ String.concat ";" (List.map string_of_int s) ^ ">");
    show_op =
      (function
      | BEnq v -> Printf.sprintf "benq(%d)" v
      | BDeq -> "bdeq"
      | BFront -> "bfront"
      | BSize -> "bsize");
  }

(* ------------------------------------------------------------------ *)
(* A small LIFO stack (top-first list).                                *)

type st_op = StPush of int | StPop | StTop
type st_ret = StUnit | StVal of int option

let small_stack ?(values = [ 0; 1 ]) ?(max_len = 3) () :
    (int list, st_op, st_ret) t =
  {
    name = "small-stack";
    states = all_lists ~values ~max_len;
    ops = [ StPop; StTop ] @ List.map (fun v -> StPush v) values;
    apply =
      (fun s op ->
        match op with
        | StPush v -> (v :: s, StUnit)
        | StPop -> (
            match s with [] -> ([], StVal None) | x :: rest -> (rest, StVal (Some x)))
        | StTop ->
            (s, StVal (match s with [] -> None | x :: _ -> Some x)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> "|" ^ String.concat ";" (List.map string_of_int s) ^ "|");
    show_op =
      (function
      | StPush v -> Printf.sprintf "push(%d)" v
      | StPop -> "pop"
      | StTop -> "top");
  }

(* ------------------------------------------------------------------ *)
(* The §3 counter with an observer: adds a transactional value read    *)
(* (P_counter's observable band), so recorded reads land in-history.   *)

type obs_counter_op = CIncr | CDecr | CGet
type obs_counter_ret = CUnit | CBool of bool | CInt of int

let obs_counter ~bound : (int, obs_counter_op, obs_counter_ret) t =
  {
    name = "obs-counter";
    states = List.init (bound - 1) Fun.id;
    ops = [ CIncr; CDecr; CGet ];
    apply =
      (fun s op ->
        match op with
        | CIncr -> (s + 1, CUnit)
        | CDecr -> if s = 0 then (0, CBool false) else (s - 1, CBool true)
        | CGet -> (s, CInt s));
    equal_state = Int.equal;
    equal_ret = (fun a b -> a = b);
    show_state = string_of_int;
    show_op =
      (function CIncr -> "incr" | CDecr -> "decr" | CGet -> "get");
  }

(* ------------------------------------------------------------------ *)
(* A small set (sorted list of ints).                                  *)

type set_op = SAdd of int | SRemove of int | SMem of int
type set_ret = SBool of bool

let all_subsets ~values =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = go rest in
        tails @ List.map (fun t -> v :: t) tails
  in
  List.sort_uniq compare (List.map (List.sort compare) (go values))

let small_set ?(values = [ 0; 1; 2 ]) () : (int list, set_op, set_ret) t =
  {
    name = "small-set";
    states = all_subsets ~values;
    ops = List.concat_map (fun v -> [ SAdd v; SRemove v; SMem v ]) values;
    apply =
      (fun s op ->
        match op with
        | SAdd v ->
            if List.mem v s then (s, SBool false)
            else (List.sort compare (v :: s), SBool true)
        | SRemove v ->
            if List.mem v s then (List.filter (fun x -> x <> v) s, SBool true)
            else (s, SBool false)
        | SMem v -> (s, SBool (List.mem v s)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> "{" ^ String.concat ";" (List.map string_of_int s) ^ "}");
    show_op =
      (function
      | SAdd v -> Printf.sprintf "add(%d)" v
      | SRemove v -> Printf.sprintf "remove(%d)" v
      | SMem v -> Printf.sprintf "mem(%d)" v);
  }

(* ------------------------------------------------------------------ *)
(* A small double-ended queue (front-first list).                      *)

type dq_op =
  | DPushFront of int
  | DPushBack of int
  | DPopFront
  | DPopBack
  | DPeekFront
  | DPeekBack

type dq_ret = DUnit | DVal of int option

let small_deque ?(values = [ 0; 1 ]) ?(max_len = 3) () :
    (int list, dq_op, dq_ret) t =
  {
    name = "small-deque";
    states = all_lists ~values ~max_len;
    ops =
      [ DPopFront; DPopBack; DPeekFront; DPeekBack ]
      @ List.concat_map (fun v -> [ DPushFront v; DPushBack v ]) values;
    apply =
      (fun s op ->
        let last l = List.nth l (List.length l - 1) in
        let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
        match op with
        | DPushFront v -> (v :: s, DUnit)
        | DPushBack v -> (s @ [ v ], DUnit)
        | DPopFront -> (
            match s with
            | [] -> ([], DVal None)
            | x :: rest -> (rest, DVal (Some x)))
        | DPopBack ->
            if s = [] then ([], DVal None)
            else (drop_last s, DVal (Some (last s)))
        | DPeekFront ->
            (s, DVal (match s with [] -> None | x :: _ -> Some x))
        | DPeekBack -> (s, DVal (if s = [] then None else Some (last s))));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s -> ">" ^ String.concat ";" (List.map string_of_int s) ^ "<");
    show_op =
      (function
      | DPushFront v -> Printf.sprintf "pushFront(%d)" v
      | DPushBack v -> Printf.sprintf "pushBack(%d)" v
      | DPopFront -> "popFront"
      | DPopBack -> "popBack"
      | DPeekFront -> "peekFront"
      | DPeekBack -> "peekBack");
  }

(* ------------------------------------------------------------------ *)
(* A small ordered map with range queries.                             *)

type o_op = OGet of int | OPut of int * int | ORemove of int | ORange of int * int
type o_ret = OVal of int option | OList of (int * int) list

let small_omap ?(keys = [ 0; 1; 2; 3 ]) ?(values = [ 0 ]) () :
    ((int * int) list, o_op, o_ret) t =
  {
    name = "small-omap";
    states = all_map_states ~keys ~values;
    ops =
      List.concat_map
        (fun k -> [ OGet k; ORemove k ] @ List.map (fun v -> OPut (k, v)) values)
        keys
      @ [ ORange (0, 1); ORange (1, 2); ORange (0, 3); ORange (2, 3) ];
    apply =
      (fun s op ->
        match op with
        | OGet k -> (s, OVal (List.assoc_opt k s))
        | OPut (k, v) -> (insert_sorted k v s, OVal (List.assoc_opt k s))
        | ORemove k -> (List.remove_assoc k s, OVal (List.assoc_opt k s))
        | ORange (lo, hi) ->
            (s, OList (List.filter (fun (k, _) -> k >= lo && k <= hi) s)));
    equal_state = (fun a b -> a = b);
    equal_ret = (fun a b -> a = b);
    show_state =
      (fun s ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) s)
        ^ "}");
    show_op =
      (function
      | OGet k -> Printf.sprintf "get(%d)" k
      | OPut (k, v) -> Printf.sprintf "put(%d,%d)" k v
      | ORemove k -> Printf.sprintf "remove(%d)" k
      | ORange (lo, hi) -> Printf.sprintf "range(%d,%d)" lo hi);
  }
