(** Finite models of abstract data types (§3: "it is sufficient to
    work with a model (or sequential implementation) of the abstract
    data type").  A model enumerates a bounded state space and a
    bounded set of operation instances; {!Commute} and {!Ca_check}
    quantify over them exhaustively. *)

type ('s, 'o, 'r) t = {
  name : string;
  states : 's list;  (** bounded state space to quantify over *)
  ops : 'o list;  (** operation instances, arguments included *)
  apply : 's -> 'o -> 's * 'r;
  equal_state : 's -> 's -> bool;
  equal_ret : 'r -> 'r -> bool;
  show_state : 's -> string;
  show_op : 'o -> string;
}

(** {1 The §3 non-negative counter} *)

type counter_op = Incr | Decr
type counter_ret = Ok_unit | Decr_ok | Decr_err

(** States [0 .. bound-2]; headroom keeps [Incr] total on the explored
    states. *)
val counter : bound:int -> (int, counter_op, counter_ret) t

(** {1 A small map (sorted association list)} *)

type map_op = MGet of int | MPut of int * int | MRemove of int
type map_ret = MVal of int option | MUnit

val insert_sorted : int -> 'v -> (int * 'v) list -> (int * 'v) list
val all_map_states : keys:int list -> values:int list -> (int * int) list list

val small_map :
  ?keys:int list -> ?values:int list -> unit ->
  ((int * int) list, map_op, map_ret) t

(** {1 A small priority queue (sorted multiset)} *)

type pq_op = PInsert of int | PRemoveMin | PMin | PContains of int
type pq_ret = PUnit | PVal of int option | PBool of bool

val all_multisets : values:int list -> max_size:int -> int list list

val small_pqueue :
  ?values:int list -> ?max_size:int -> unit -> (int list, pq_op, pq_ret) t

(** {1 A small FIFO queue (front-first list)} *)

type q_op = QEnq of int | QDeq | QFront
type q_ret = QUnit | QVal of int option

val all_lists : values:int list -> max_len:int -> int list list

val small_queue :
  ?values:int list -> ?max_len:int -> unit -> (int list, q_op, q_ret) t

(** {1 A small bounded FIFO queue}

    A capacity-[cap] queue whose enqueue {e reports} fullness instead
    of blocking — the sequential witness for the non-blocking face of
    {!Proust_sync.Channel} ([try_send]/[try_recv]). *)

type bq_op = BEnq of int | BDeq | BFront | BSize
type bq_ret = BBool of bool | BVal of int option | BInt of int

val bounded_queue :
  ?values:int list -> cap:int -> unit -> (int list, bq_op, bq_ret) t

(** {1 A small LIFO stack (top-first list)} *)

type st_op = StPush of int | StPop | StTop
type st_ret = StUnit | StVal of int option

val small_stack :
  ?values:int list -> ?max_len:int -> unit -> (int list, st_op, st_ret) t

(** {1 The §3 counter with an observable value read} *)

type obs_counter_op = CIncr | CDecr | CGet
type obs_counter_ret = CUnit | CBool of bool | CInt of int

val obs_counter : bound:int -> (int, obs_counter_op, obs_counter_ret) t

(** {1 A small set (sorted list)} *)

type set_op = SAdd of int | SRemove of int | SMem of int
type set_ret = SBool of bool

val all_subsets : values:int list -> int list list
val small_set : ?values:int list -> unit -> (int list, set_op, set_ret) t

(** {1 A small double-ended queue (front-first list)} *)

type dq_op =
  | DPushFront of int
  | DPushBack of int
  | DPopFront
  | DPopBack
  | DPeekFront
  | DPeekBack

type dq_ret = DUnit | DVal of int option

val small_deque :
  ?values:int list -> ?max_len:int -> unit -> (int list, dq_op, dq_ret) t

(** {1 A small ordered map with range queries} *)

type o_op =
  | OGet of int
  | OPut of int * int
  | ORemove of int
  | ORange of int * int

type o_ret = OVal of int option | OList of (int * int) list

val small_omap :
  ?keys:int list -> ?values:int list -> unit ->
  ((int * int) list, o_op, o_ret) t
