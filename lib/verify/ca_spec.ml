(** Pure specifications of conflict abstractions — the paper's
    [f_i^(m,rd), f_i^(m,wr) : args -> state -> bool] families, here as
    functions from (state, operation) to the slot index sets read and
    written.

    [stripe] quantifies over the per-transaction sub-slot choice used
    by group (multiple-compatible-writers) abstractions; abstractions
    that ignore it are stripe-independent. *)

type ('s, 'o) t = {
  name : string;
  slots : int;
  stripe_width : int;  (** how many stripe values to quantify over *)
  reads : stripe:int -> 's -> 'o -> int list;
  writes : stripe:int -> 's -> 'o -> int list;
}

(** The §3 counter abstraction: one location; [incr] reads it and
    [decr] writes it whenever the counter is below [threshold]. *)
let counter ?(threshold = 2) () : (int, Adt_model.counter_op) t =
  {
    name = Printf.sprintf "counter(threshold=%d)" threshold;
    slots = 1;
    stripe_width = 1;
    reads =
      (fun ~stripe:_ s op ->
        match op with Adt_model.Incr when s < threshold -> [ 0 ] | _ -> []);
    writes =
      (fun ~stripe:_ s op ->
        match op with Adt_model.Decr when s < threshold -> [ 0 ] | _ -> []);
  }

(** Striped map abstraction (§3): key [k] maps to slot [k mod slots];
    [get] reads it, [put]/[remove] write it. *)
let striped_map ?(slots = 4) () : ((int * int) list, Adt_model.map_op) t =
  let slot k = ((k mod slots) + slots) mod slots in
  {
    name = Printf.sprintf "striped-map(M=%d)" slots;
    slots;
    stripe_width = 1;
    reads =
      (fun ~stripe:_ _ op ->
        match op with Adt_model.MGet k -> [ slot k ] | _ -> []);
    writes =
      (fun ~stripe:_ _ op ->
        match op with
        | Adt_model.MPut (k, _) | Adt_model.MRemove k -> [ slot k ]
        | Adt_model.MGet _ -> []);
  }

(** A deliberately broken map abstraction that forgets that [remove]
    conflicts with [get] — used to show the checker catching bugs. *)
let broken_map ?(slots = 4) () : ((int * int) list, Adt_model.map_op) t =
  let good = striped_map ~slots () in
  {
    good with
    name = "broken-map";
    writes =
      (fun ~stripe s op ->
        match op with Adt_model.MRemove _ -> [] | _ -> good.writes ~stripe s op);
  }

(** The priority-queue abstraction of Listing 3 / {!Trait.Pqueue}:
    slot 0 is [PQueueMin]; slots 1..width are the [PQueueMultiSet]
    band (writers write their stripe's sub-slot, readers read the whole
    band).  State-dependence mirrors Figure 3's [insert]: inserting a
    new minimum writes [Min], otherwise reads it.

    Note one divergence from the literal Figure 3 code: inserting into
    an {e empty} queue also writes [Min] (it changes the minimum from
    "none" to [v]).  Figure 3's [getOrElse(Read(PQueueMin))] only reads
    in that case, which violates Definition 3.1 against a concurrent
    [min] observer — see {!figure3_literal_pqueue}, which the checker
    rejects with exactly that counterexample. *)
let pqueue ?(stripes = 2) () : (int list, Adt_model.pq_op) t =
  let band = List.init stripes (fun i -> 1 + i) in
  let lowers_min s v = match s with [] -> true | m :: _ -> v < m in
  {
    name = Printf.sprintf "pqueue(stripes=%d)" stripes;
    slots = 1 + stripes;
    stripe_width = stripes;
    reads =
      (fun ~stripe:_ s op ->
        match op with
        | Adt_model.PInsert v -> if lowers_min s v then [] else [ 0 ]
        | Adt_model.PMin -> [ 0 ]
        | Adt_model.PContains _ -> band
        | Adt_model.PRemoveMin -> []);
    writes =
      (fun ~stripe s op ->
        let my_sub = 1 + (abs stripe mod stripes) in
        match op with
        | Adt_model.PInsert v ->
            my_sub :: (if lowers_min s v then [ 0 ] else [])
        | Adt_model.PRemoveMin -> [ 0; my_sub ]
        | Adt_model.PMin | Adt_model.PContains _ -> []);
  }

(** The literal Figure 3 intent computation: inserting into an empty
    queue only {e reads} [PQueueMin].  Kept so the Definition 3.1
    checker can demonstrate the gap (insert-into-empty does not
    commute with a concurrent [min], yet triggers no conflicting
    access). *)
let figure3_literal_pqueue ?(stripes = 2) () : (int list, Adt_model.pq_op) t =
  let fixed = pqueue ~stripes () in
  let lowers_min s v = match s with [] -> false | m :: _ -> v < m in
  {
    fixed with
    name = "pqueue-figure3-literal";
    reads =
      (fun ~stripe s op ->
        match op with
        | Adt_model.PInsert v -> if lowers_min s v then [] else [ 0 ]
        | _ -> fixed.reads ~stripe s op);
    writes =
      (fun ~stripe s op ->
        let my_sub = 1 + (abs stripe mod stripes) in
        match op with
        | Adt_model.PInsert v ->
            my_sub :: (if lowers_min s v then [ 0 ] else [])
        | _ -> fixed.writes ~stripe s op);
  }

(** The FIFO-queue abstraction of {!Proust_structures.Trait.Queue}:
    slot 0 is [Head], slot 1 is [Tail].  Enqueue writes [Tail] (and
    [Head] when the queue is empty — it creates the new front);
    dequeue writes [Head] (and [Tail] when at most one element remains
    — it freezes emptiness against concurrent enqueues); [front] reads
    [Head]. *)
let fifo () : (int list, Adt_model.q_op) t =
  {
    name = "fifo";
    slots = 2;
    stripe_width = 1;
    reads =
      (fun ~stripe:_ _ op ->
        match op with Adt_model.QFront -> [ 0 ] | _ -> []);
    writes =
      (fun ~stripe:_ s op ->
        match op with
        | Adt_model.QEnq _ -> (1 :: (if s = [] then [ 0 ] else []))
        | Adt_model.QDeq -> (0 :: (if List.length s <= 1 then [ 1 ] else []))
        | Adt_model.QFront -> []);
  }

(** A broken FIFO abstraction that forgets the enqueue-into-empty
    [Head] write — checker fodder. *)
let broken_fifo () : (int list, Adt_model.q_op) t =
  let good = fifo () in
  {
    good with
    name = "broken-fifo";
    writes =
      (fun ~stripe s op ->
        match op with
        | Adt_model.QEnq _ -> [ 1 ]
        | _ -> good.writes ~stripe s op);
  }

(** Stack abstraction: a single exclusively-written [Top] element. *)
let stack () : (int list, Adt_model.st_op) t =
  {
    name = "stack";
    slots = 1;
    stripe_width = 1;
    reads =
      (fun ~stripe:_ _ op ->
        match op with Adt_model.StTop -> [ 0 ] | _ -> []);
    writes =
      (fun ~stripe:_ _ op ->
        match op with
        | Adt_model.StPush _ | Adt_model.StPop -> [ 0 ]
        | Adt_model.StTop -> []);
  }

(** Band abstraction for the ordered map with range queries
    ({!Proust_structures.P_omap}): keys are cut into [slots] contiguous
    bands; point operations touch their key's band, range reads touch
    every intersecting band. *)
let omap_bands ?(slots = 2) ~index () : ((int * int) list, Adt_model.o_op) t =
  let clamp i = max 0 (min (slots - 1) i) in
  let band k = clamp (index k) in
  let span lo hi =
    let a = band lo and b = band hi in
    List.init (max 0 (b - a) + 1) (fun i -> a + i)
  in
  {
    name = Printf.sprintf "omap-bands(M=%d)" slots;
    slots;
    stripe_width = 1;
    reads =
      (fun ~stripe:_ _ op ->
        match op with
        | Adt_model.OGet k -> [ band k ]
        | Adt_model.ORange (lo, hi) -> span lo hi
        | Adt_model.OPut _ | Adt_model.ORemove _ -> []);
    writes =
      (fun ~stripe:_ _ op ->
        match op with
        | Adt_model.OPut (k, _) | Adt_model.ORemove k -> [ band k ]
        | Adt_model.OGet _ | Adt_model.ORange _ -> []);
  }
