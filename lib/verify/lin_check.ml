(** Wing–Gong/Lowe-style linearizability checking of timed histories
    against an {!Adt_model}.

    A history is linearizable iff its completed operations admit a
    total order that (a) respects real-time precedence
    ({!Timed_history.precedes}) and (b) replays through the model with
    exactly the recorded return values.  The search walks
    configurations — a per-domain frontier position plus a model state
    — because each domain's own operations are already totally ordered,
    so the remaining history is always a tuple of per-domain suffixes.

    Two standard accelerations keep histories of a few thousand events
    tractable:

    - {b state memoization} (Wing–Gong as refined by Lowe): a
      configuration [(frontier, state)] that once failed to extend to a
      full linearization is never re-explored, killing the factorial
      blow-up of commuting operations;
    - {b independent-subhistory partitioning} (Horn–Kroening
      P-compositionality): when the ADT is a product of independent
      components — per-key map cells, for instance — the history is
      linearizable iff each component's subhistory is, so [?partition]
      splits the history and each piece is checked alone against the
      same (small) model. *)

type ('o, 'r) violation = {
  event : ('o, 'r) Timed_history.event;
      (** a frontier event of the first stuck configuration *)
  explored : int;  (** configurations explored before giving up *)
}

type ('o, 'r) outcome =
  | Linearizable
  | Not_linearizable of ('o, 'r) violation
  | Too_large of int  (** gave up after exploring this many configs *)

exception Search_exhausted of int

(* Check one (sub)history.  [events] must be start-sorted. *)
let check_subhistory ?(max_configs = 5_000_000)
    (m : ('s, 'o, 'r) Adt_model.t) ~(init : 's)
    (events : ('o, 'r) Timed_history.event list) : ('o, 'r) outcome =
  (* Group into per-domain sequences, preserving start order. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : ('o, 'r) Timed_history.event) ->
      let q =
        match Hashtbl.find_opt tbl e.Timed_history.domain with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add tbl e.Timed_history.domain q;
            q
      in
      Queue.add e q)
    events;
  let lanes =
    Hashtbl.fold (fun _ q acc -> Array.of_seq (Queue.to_seq q) :: acc) tbl []
    |> Array.of_list
  in
  let n = Array.length lanes in
  let pos = Array.make n 0 in
  let explored = ref 0 in
  (* Failed configurations, keyed on the frontier vector and a stable
     rendering of the model state ([show_state] hashes in full, unlike
     [Hashtbl.hash] on deep structural states). *)
  let failed = Hashtbl.create 4096 in
  let config_key state =
    let b = Buffer.create 64 in
    Array.iter
      (fun p ->
        Buffer.add_string b (string_of_int p);
        Buffer.add_char b ',')
      pos;
    Buffer.add_char b '|';
    Buffer.add_string b (m.Adt_model.show_state state);
    Buffer.contents b
  in
  let stuck : ('o, 'r) Timed_history.event option ref = ref None in
  let rec search state =
    let key = config_key state in
    if Hashtbl.mem failed key then false
    else begin
      incr explored;
      if !explored > max_configs then raise (Search_exhausted !explored);
      (* Frontier: the head of each non-exhausted lane.  A head is a
         legal next linearization iff no other remaining operation
         responded before it was invoked; within a lane the head has
         the minimal response tick, so comparing against the minimum
         head response suffices. *)
      let min_finish = ref max_int in
      let remaining = ref 0 in
      for d = 0 to n - 1 do
        if pos.(d) < Array.length lanes.(d) then begin
          incr remaining;
          let e = lanes.(d).(pos.(d)) in
          if e.Timed_history.finish < !min_finish then
            min_finish := e.Timed_history.finish
        end
      done;
      if !remaining = 0 then true
      else begin
        let ok = ref false in
        let d = ref 0 in
        while (not !ok) && !d < n do
          (if pos.(!d) < Array.length lanes.(!d) then
             let e = lanes.(!d).(pos.(!d)) in
             if e.Timed_history.start <= !min_finish then begin
               let state', r = m.Adt_model.apply state e.Timed_history.op in
               if m.Adt_model.equal_ret r e.Timed_history.ret then begin
                 pos.(!d) <- pos.(!d) + 1;
                 if search state' then ok := true
                 else pos.(!d) <- pos.(!d) - 1
               end
               else if !stuck = None then stuck := Some e
             end);
          incr d
        done;
        if not !ok then Hashtbl.replace failed key ();
        !ok
      end
    end
  in
  match search init with
  | true -> Linearizable
  | false ->
      let event =
        match !stuck with
        | Some e -> e
        | None -> List.hd events (* unreachable for non-empty histories *)
      in
      Not_linearizable { event; explored = !explored }
  | exception Search_exhausted n -> Too_large n

let analyze ?partition ?max_configs (m : ('s, 'o, 'r) Adt_model.t)
    ~(init : 's) (events : ('o, 'r) Timed_history.event list) :
    ('o, 'r) outcome =
  match events with
  | [] -> Linearizable
  | _ -> (
      let groups =
        match partition with
        | None -> [ events ]
        | Some key ->
            let tbl = Hashtbl.create 16 in
            let order = ref [] in
            List.iter
              (fun (e : ('o, 'r) Timed_history.event) ->
                let k = key e.Timed_history.op in
                match Hashtbl.find_opt tbl k with
                | Some q -> Queue.add e q
                | None ->
                    let q = Queue.create () in
                    Queue.add e q;
                    Hashtbl.add tbl k q;
                    order := k :: !order)
              events;
            List.rev_map
              (fun k -> List.of_seq (Queue.to_seq (Hashtbl.find tbl k)))
              !order
      in
      let rec go = function
        | [] -> Linearizable
        | g :: rest -> (
            match check_subhistory ?max_configs m ~init g with
            | Linearizable -> go rest
            | bad -> bad)
      in
      go groups)

let check ?partition ?max_configs m ~init events =
  match analyze ?partition ?max_configs m ~init events with
  | Linearizable -> true
  | Not_linearizable _ | Too_large _ -> false

let explain (m : ('s, 'o, 'r) Adt_model.t) = function
  | Linearizable -> "linearizable"
  | Too_large n -> Printf.sprintf "gave up after %d configurations" n
  | Not_linearizable v ->
      Printf.sprintf
        "not linearizable: no order explains %s -> %s (domain %d, ticks \
         [%d,%d]); %d configurations explored"
        (m.Adt_model.show_op v.event.Timed_history.op)
        "(recorded return)" v.event.Timed_history.domain
        v.event.Timed_history.start v.event.Timed_history.finish v.explored
