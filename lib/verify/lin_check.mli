(** Wing–Gong/Lowe-style linearizability checker over {!Adt_model}
    finite models, for histories recorded by {!Timed_history}.

    The search memoizes failed (frontier, state) configurations and can
    split the history into independent subhistories (Horn–Kroening
    P-compositionality) via [?partition], so histories of a few
    thousand events over small models check in seconds. *)

type ('o, 'r) violation = {
  event : ('o, 'r) Timed_history.event;
      (** a frontier event of the first configuration the search could
          not extend — the place the history wedges *)
  explored : int;
}

type ('o, 'r) outcome =
  | Linearizable
  | Not_linearizable of ('o, 'r) violation
  | Too_large of int

(** [analyze ?partition ?max_configs m ~init events] searches for a
    linearization of [events] starting from model state [init].
    [partition], when given, must map each operation to the independent
    ADT component it touches (e.g. its key); operations mapped to
    different components are checked as separate subhistories — only
    sound when components are truly independent (maps/sets: yes;
    queues/stacks: no).  [max_configs] (default 5M) bounds the search;
    exceeding it yields [Too_large]. *)
val analyze :
  ?partition:('o -> int) ->
  ?max_configs:int ->
  ('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  ('o, 'r) Timed_history.event list ->
  ('o, 'r) outcome

(** [check] is [analyze] collapsed to a verdict: [true] iff
    linearizable. *)
val check :
  ?partition:('o -> int) ->
  ?max_configs:int ->
  ('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  ('o, 'r) Timed_history.event list ->
  bool

(** Human-readable rendering of an outcome (uses the model's
    [show_op]). *)
val explain : ('s, 'o, 'r) Adt_model.t -> ('o, 'r) outcome -> string
