(** Generic stress drivers feeding the two history checkers.

    {!run} exercises a raw concurrent structure: N domains each apply a
    stream of model operations drawn from the instance's generator,
    every call recorded by {!Timed_history}; the merged history is then
    checked linearizable by {!Lin_check} against the instance's
    {!Adt_model}.

    {!run_serializable} is the transactional variant for Proustian
    wrappers: domains run short transactions of model operations,
    {!History} records what committed, and {!Serializability} must find
    a serial order — window by window, each window seeded with the
    model state the previous window's witness ended in, so long runs
    stay within the brute-force checker's reach. *)

type ('s, 'o, 'r) instance = {
  name : string;
  model : ('s, 'o, 'r) Adt_model.t;
  init : 's;
  partition : ('o -> int) option;
      (** independent-component key for {!Lin_check} (maps/sets) *)
  gen : (Random.State.t -> domain:int -> step:int -> 'o) option;
      (** custom op stream; default draws uniformly from [model.ops] *)
  make : unit -> 'o -> 'r;
      (** fresh structure, presented as an operation runner *)
}

let instance ?partition ?gen ~model ~init name make =
  { name; model; init; partition; gen; make }

let uniform_gen model =
  let ops = Array.of_list model.Adt_model.ops in
  fun rng ~domain:_ ~step:_ -> ops.(Random.State.int rng (Array.length ops))

let run ?(domains = 4) ?(ops_per_domain = 150) ?(seed = 0) ?(post = [])
    ?max_configs (inst : ('s, 'o, 'r) instance) : (int, string) result =
  let runner = inst.make () in
  let h = Timed_history.make ~domains () in
  let gen =
    match inst.gen with Some g -> g | None -> uniform_gen inst.model
  in
  (* Start barrier: without it, spawn latency lets early domains finish
     before late ones begin, and the histories exercise no overlap. *)
  let ready = Atomic.make 0 in
  List.init domains (fun d ->
      Domain.spawn (fun () ->
          let rng = Random.State.make [| seed; d; 0x71ed |] in
          Atomic.incr ready;
          while Atomic.get ready < domains do
            Domain.cpu_relax ()
          done;
          for step = 0 to ops_per_domain - 1 do
            let op = gen rng ~domain:d ~step in
            ignore (Timed_history.record h ~domain:d op (fun () -> runner op))
          done))
  |> List.iter Domain.join;
  (* Quiescent coda, e.g. a final read validating unit-op streams. *)
  List.iter
    (fun op -> ignore (Timed_history.record h ~domain:0 op (fun () -> runner op)))
    post;
  let events = Timed_history.events h in
  match
    Lin_check.analyze ?partition:inst.partition ?max_configs inst.model
      ~init:inst.init events
  with
  | Lin_check.Linearizable -> Ok (List.length events)
  | bad ->
      Error
        (Printf.sprintf "%s (%d events): %s" inst.name (List.length events)
           (Lin_check.explain inst.model bad))

(* ------------------------------------------------------------------ *)

type ('s, 'o, 'r) txn_instance = {
  t_name : string;
  t_model : ('s, 'o, 'r) Adt_model.t;
  t_init : 's;
  t_make : unit -> Stm.txn -> 'o -> 'r;
}

let txn_instance ~model ~init name make =
  { t_name = name; t_model = model; t_init = init; t_make = make }

let run_serializable ?(domains = 3) ?(txns_per_domain = 2) ?(windows = 3)
    ?(max_ops_per_txn = 3) ?(seed = 0) ~config
    (inst : ('s, 'o, 'r) txn_instance) : (int, string) result =
  let run_op = inst.t_make () in
  let h = History.make () in
  let ops = Array.of_list inst.t_model.Adt_model.ops in
  let state = ref inst.t_init in
  let committed = ref 0 in
  let failure = ref None in
  (try
     for w = 0 to windows - 1 do
       List.init domains (fun d ->
           Domain.spawn (fun () ->
               let rng = Random.State.make [| seed; w; d; 0x5e81 |] in
               for _ = 1 to txns_per_domain do
                 let batch =
                   List.init
                     (1 + Random.State.int rng max_ops_per_txn)
                     (fun _ -> ops.(Random.State.int rng (Array.length ops)))
                 in
                 Stm.atomically ~config (fun txn ->
                     List.iter
                       (fun op ->
                         let r = run_op txn op in
                         History.log h txn op r)
                       batch)
               done))
       |> List.iter Domain.join;
       let records = History.records h in
       match Serializability.witness_state inst.t_model ~init:!state records with
       | Some s' ->
           committed := !committed + List.length records;
           state := s';
           History.clear h
       | None ->
           failure :=
             Some
               (Printf.sprintf
                  "%s: window %d (%d committed txns) is not serializable \
                   from state %s"
                  inst.t_name w (List.length records)
                  (inst.t_model.Adt_model.show_state !state));
           raise Exit
     done
   with Exit -> ());
  match !failure with Some msg -> Error msg | None -> Ok !committed
