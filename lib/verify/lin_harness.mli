(** Generic stress drivers feeding the two history checkers: a
    linearizability harness for raw concurrent structures
    ({!Timed_history} + {!Lin_check}) and a serializability harness for
    Proustian wrappers ({!History} + {!Serializability}). *)

(** What it takes to stress-check one concurrent structure: its finite
    model, a fresh-structure constructor presented as an op runner, and
    optionally a partition key (for map-like ADTs whose per-key
    subhistories are independent) and a custom op-stream generator
    (e.g. per-domain owner arguments, acquire/release alternation). *)
type ('s, 'o, 'r) instance = {
  name : string;
  model : ('s, 'o, 'r) Adt_model.t;
  init : 's;
  partition : ('o -> int) option;
  gen : (Random.State.t -> domain:int -> step:int -> 'o) option;
  make : unit -> 'o -> 'r;
}

val instance :
  ?partition:('o -> int) ->
  ?gen:(Random.State.t -> domain:int -> step:int -> 'o) ->
  model:('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  string ->
  (unit -> 'o -> 'r) ->
  ('s, 'o, 'r) instance

(** [run inst] spawns [domains] domains, each applying [ops_per_domain]
    generated operations through the recorder, then checks the merged
    history.  [post] operations run on one domain after the join — a
    quiescent coda for structures (striped counters) whose reads are
    only quiescently consistent.  [Ok n] on a linearizable history of
    [n] events; [Error msg] with the checker's explanation otherwise. *)
val run :
  ?domains:int ->
  ?ops_per_domain:int ->
  ?seed:int ->
  ?post:'o list ->
  ?max_configs:int ->
  ('s, 'o, 'r) instance ->
  (int, string) result

(** The transactional counterpart: the runner receives the enclosing
    transaction. *)
type ('s, 'o, 'r) txn_instance = {
  t_name : string;
  t_model : ('s, 'o, 'r) Adt_model.t;
  t_init : 's;
  t_make : unit -> Stm.txn -> 'o -> 'r;
}

val txn_instance :
  model:('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  string ->
  (unit -> Stm.txn -> 'o -> 'r) ->
  ('s, 'o, 'r) txn_instance

(** [run_serializable ~config inst] runs [windows] rounds of [domains]
    domains × [txns_per_domain] short transactions (1 to
    [max_ops_per_txn] model ops each, logged via {!History}), checking
    each window serializable and seeding the next window with the
    witness's final model state.  [Ok n] after [n] committed
    transactions all explained; [Error msg] naming the first
    unserializable window otherwise. *)
val run_serializable :
  ?domains:int ->
  ?txns_per_domain:int ->
  ?windows:int ->
  ?max_ops_per_txn:int ->
  ?seed:int ->
  config:Stm.config ->
  ('s, 'o, 'r) txn_instance ->
  (int, string) result
