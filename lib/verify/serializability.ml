(** Brute-force serializability checking of recorded histories.

    A history of committed transactions is serializable w.r.t. an ADT
    model if some total order of the transactions replays every
    recorded operation with exactly the return value it observed.
    The search is exponential; intended for the small histories the
    stress tests record (≤ ~10 transactions per window). *)

(* Replay one transaction's events from [s]; [None] if some return
   value disagrees with the model. *)
let replay (m : ('s, 'o, 'r) Adt_model.t) s (rec_ : ('o, 'r) History.record) =
  let rec go s = function
    | [] -> Some s
    | { History.op; ret } :: rest ->
        let s', r = m.apply s op in
        if m.equal_ret r ret then go s' rest else None
  in
  go s rec_.History.events

(* The search shared by [witness] and [witness_state]: a serial order
   plus the model state it ends in. *)
let search_order (m : ('s, 'o, 'r) Adt_model.t) ~init records =
  let rec search s remaining acc =
    match remaining with
    | [] -> Some (List.rev acc, s)
    | _ ->
        List.find_map
          (fun r ->
            match replay m s r with
            | None -> None
            | Some s' ->
                let rest = List.filter (fun r' -> r' != r) remaining in
                search s' rest (r.History.txn_id :: acc))
          remaining
  in
  search init records []

(** [witness m ~init records] is a serial order (by [txn_id]) that
    explains the history, if one exists. *)
let witness m ~init records = Option.map fst (search_order m ~init records)

(** [witness_state m ~init records] additionally replays the witness,
    returning the model state it leaves behind — the seed for checking
    the next window of a long run incrementally. *)
let witness_state m ~init records =
  Option.map snd (search_order m ~init records)

let check m ~init records = witness m ~init records <> None
