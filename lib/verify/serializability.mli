(** Brute-force serializability checking of recorded histories: search
    for a total order of the committed transactions that replays every
    recorded operation with the return value it observed.  Exponential;
    intended for the small histories the stress tests record. *)

(** A witness order (by [txn_id]), if one exists. *)
val witness :
  ('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  ('o, 'r) History.record list ->
  int list option

(** Like {!witness}, but returns the model state the witness order
    ends in — lets long runs be checked window by window, each window
    seeded with the previous one's final state. *)
val witness_state :
  ('s, 'o, 'r) Adt_model.t ->
  init:'s ->
  ('o, 'r) History.record list ->
  's option

val check :
  ('s, 'o, 'r) Adt_model.t -> init:'s -> ('o, 'r) History.record list -> bool
