(** Low-overhead recorder of invocation/response intervals for
    *non-transactional* operations, complementing the commit-time
    {!History} used for serializability checking.

    Each domain appends completed operations to a private flat buffer
    (a doubling array, no locking on the hot path); [events] merges the
    buffers once the run has quiesced.  Timestamps come from one global
    monotonic tick counter ([Atomic.fetch_and_add]): the sequentially
    consistent increments give a total order on invocation and response
    edges that is consistent with real time across domains, which is
    exactly the precedence relation a linearizability checker needs —
    and, unlike wall-clock samples taken on different cores, it can
    never invert the order of two causally related edges. *)

type ('o, 'r) event = {
  domain : int;
  op : 'o;
  ret : 'r;
  start : int;  (* tick at invocation *)
  finish : int;  (* tick at response; start < finish *)
}

type ('o, 'r) buffer = {
  mutable items : ('o, 'r) event array;  (* flat; grown by doubling *)
  mutable len : int;
}

type ('o, 'r) t = { clock : int Atomic.t; buffers : ('o, 'r) buffer array }

let make ~domains () =
  {
    clock = Atomic.make 0;
    buffers = Array.init domains (fun _ -> { items = [||]; len = 0 });
  }

let tick t = Atomic.fetch_and_add t.clock 1

let push buf e =
  let cap = Array.length buf.items in
  if buf.len = cap then begin
    let items = Array.make (max 256 (2 * cap)) e in
    Array.blit buf.items 0 items 0 cap;
    buf.items <- items
  end;
  buf.items.(buf.len) <- e;
  buf.len <- buf.len + 1

let record t ~domain op f =
  let start = tick t in
  let ret = f () in
  let finish = tick t in
  push t.buffers.(domain) { domain; op; ret; start; finish };
  ret

(* Not thread-safe w.r.t. concurrent [record]s; call after joining the
   recording domains.  Per-domain buffers are already start-ordered, so
   the merge is a k-way sorted concatenation. *)
let events t =
  let all =
    Array.to_list t.buffers
    |> List.concat_map (fun b -> Array.to_list (Array.sub b.items 0 b.len))
  in
  List.sort (fun a b -> compare a.start b.start) all

let size t = Array.fold_left (fun acc b -> acc + b.len) 0 t.buffers

let clear t =
  Array.iter
    (fun b ->
      b.items <- [||];
      b.len <- 0)
    t.buffers

(** [a] precedes [b] in real time: [a] responded before [b] was
    invoked.  The checker may linearize overlapping events in either
    order; ordered ones only in history order. *)
let precedes a b = a.finish < b.start
