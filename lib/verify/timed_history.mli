(** Low-overhead recorder of invocation/response intervals for
    non-transactional operations — the raw-concurrent-layer counterpart
    of the commit-time {!History}.  Per-domain flat buffers (no hot-path
    locking), merged after the run; timestamps are ticks of one global
    atomic counter, giving a cross-domain total order on
    invocation/response edges consistent with real time. *)

type ('o, 'r) event = {
  domain : int;
  op : 'o;
  ret : 'r;
  start : int;  (** tick at invocation *)
  finish : int;  (** tick at response; [start < finish] *)
}

type ('o, 'r) t

val make : domains:int -> unit -> ('o, 'r) t

(** [record t ~domain op f] runs [f ()], appending a completed event
    with its invocation/response ticks to [domain]'s buffer, and
    returns [f ()]'s result.  Each domain index must be used by at most
    one domain at a time. *)
val record : ('o, 'r) t -> domain:int -> 'o -> (unit -> 'r) -> 'r

(** Merged events, sorted by invocation tick.  Only call after the
    recording domains have been joined. *)
val events : ('o, 'r) t -> ('o, 'r) event list

(** Total number of recorded events. *)
val size : ('o, 'r) t -> int

val clear : ('o, 'r) t -> unit

(** [precedes a b] — [a] responded before [b] was invoked, so every
    linearization must order [a] before [b]. *)
val precedes : ('o, 'r) event -> ('o, 'r) event -> bool
