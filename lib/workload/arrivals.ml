(** Open-system traffic generation: arrival processes and skewed key
    distributions.

    The closed-loop runner issues the next operation the moment the
    previous one returns, which silently re-times the schedule around
    the system's own slowness (coordinated omission).  An open-system
    run instead fixes the {e intended} arrival times up front — this
    module generates them — and the runner measures every request from
    its intended time, so queueing delay stays in the latency numbers.

    Everything here is deterministic from an explicit integer seed
    (callers derive it from [PROUST_SEED]): the same seed yields the
    same schedule and the same key stream, so an open-system cell is
    reproducible modulo actual service timing. *)

(* ------------------------------------------------------------------ *)
(* Seeding                                                             *)

(* One shared convention for deriving an RNG from the master seed plus
   a salt path (tenant index, purpose tag), so two generators never
   alias unless asked to. *)
let default_seed () =
  match Sys.getenv_opt "PROUST_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0xC0FFEE)
  | None -> 0xC0FFEE

let rng ?seed ~salt () =
  let seed = match seed with Some s -> s | None -> default_seed () in
  Random.State.make (Array.of_list (seed :: salt))

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)

(** [Poisson] is the classic open-system model: exponential
    inter-arrival gaps at [rate] per second.  [Bursty] is a two-state
    Markov-modulated Poisson process (on/off): arrivals at [rate_on]
    during bursts, [rate_off] between them, with exponentially
    distributed state dwell times ([mean_on]/[mean_off] seconds) — the
    antagonist shape that defeats admission controllers tuned to mean
    load. *)
type process =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
    }

let mean_rate = function
  | Poisson { rate } -> rate
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      ((rate_on *. mean_on) +. (rate_off *. mean_off))
      /. (mean_on +. mean_off)

(* Exponential sample by inversion; [1.0 -. u] keeps log's argument in
   (0, 1] (Random.State.float may return 0.0). *)
let exponential st ~rate =
  if rate <= 0.0 then invalid_arg "Arrivals.exponential: rate <= 0";
  -.log (1.0 -. Random.State.float st 1.0) /. rate

(** [schedule st process ~count] — [count] intended arrival offsets in
    seconds from the run's start, nondecreasing.  For [Bursty], state
    switches are resolved by thinning: time advances through off/on
    dwell periods and arrivals are drawn at the current state's rate. *)
let schedule st process ~count =
  if count < 0 then invalid_arg "Arrivals.schedule: count < 0";
  let out = Array.make count 0.0 in
  (match process with
  | Poisson { rate } ->
      let t = ref 0.0 in
      for i = 0 to count - 1 do
        t := !t +. exponential st ~rate;
        out.(i) <- !t
      done
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      if mean_on <= 0.0 || mean_off <= 0.0 then
        invalid_arg "Arrivals.schedule: bursty dwell times must be positive";
      (* [state_end] is when the current dwell period expires; an
         arrival drawn past it is discarded and time jumps to the
         switch instead (memorylessness makes the re-draw sound). *)
      let t = ref 0.0 in
      let on = ref false in
      let state_end = ref (exponential st ~rate:(1.0 /. mean_off)) in
      let i = ref 0 in
      while !i < count do
        let rate = if !on then rate_on else rate_off in
        let next =
          if rate <= 0.0 then infinity else !t +. exponential st ~rate
        in
        if next < !state_end then begin
          t := next;
          out.(!i) <- next;
          incr i
        end
        else begin
          t := !state_end;
          on := not !on;
          let mean = if !on then mean_on else mean_off in
          state_end := !t +. exponential st ~rate:(1.0 /. mean)
        end
      done);
  out

(* ------------------------------------------------------------------ *)
(* Key distributions                                                   *)

(** Key popularity over a keyspace of [keys] keys.  [Zipf] uses Gray's
    O(1) approximate inverse transform (the YCSB generator), so 10^6+
    keyspaces cost one O(n) zeta pass at construction and constant
    work per sample — the existing {!Workload.zipf_sampler} builds a
    full CDF table and stays for small closed-loop ranges.  [scramble]
    hashes ranks onto keys so popularity is spread across the
    keyspace; unscrambled, rank [i] {e is} key [i], which is what a
    hot-key antagonist wants (the hot set is a known prefix).
    [Hotset] sends a [fraction] of accesses to the first [hot] keys
    and the rest uniformly everywhere — the crudest possible flood. *)
type key_dist =
  | Uniform
  | Zipf of { s : float; scramble : bool }
  | Hotset of { hot : int; fraction : float }

type keygen = { kg_keys : int; kg_sample : Random.State.t -> int }

(* Xorshift-multiply mix for rank scrambling (constants fit OCaml's
   63-bit int; the exact mix only needs to be a fixed bijection-ish
   spreader, not a standard hash). *)
let scramble_hash x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x100000001B3 in
  (x lxor (x lsr 32)) land max_int

(* Gray's approximation (as used by YCSB's ZipfianGenerator): valid
   for exponent 0 < s < 1.  zeta(n) is computed once — a single O(n)
   float loop, ~4ms for 10^6 — then each sample is O(1). *)
let zipf_gen ~s ~n =
  if not (s > 0.0 && s < 1.0) then
    invalid_arg "Arrivals.keygen: Zipf exponent must be in (0, 1)";
  if n < 2 then invalid_arg "Arrivals.keygen: Zipf needs >= 2 keys";
  let zetan = ref 0.0 in
  for i = 1 to n do
    zetan := !zetan +. (1.0 /. (float_of_int i ** s))
  done;
  let zetan = !zetan in
  let theta = s in
  let alpha = 1.0 /. (1.0 -. theta) in
  let zeta2 = 1.0 +. (0.5 ** theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  fun st ->
    let u = Random.State.float st 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < zeta2 then 1
    else
      let r =
        int_of_float
          (float_of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha))
      in
      if r < 0 then 0 else if r >= n then n - 1 else r

let keygen dist ~keys =
  if keys <= 0 then invalid_arg "Arrivals.keygen: keys <= 0";
  let sample =
    match dist with
    | Uniform -> fun st -> Random.State.int st keys
    | Zipf { s; scramble } ->
        let rank = zipf_gen ~s ~n:keys in
        if scramble then fun st -> scramble_hash (rank st) mod keys
        else fun st -> rank st
    | Hotset { hot; fraction } ->
        if hot <= 0 || hot > keys then
          invalid_arg "Arrivals.keygen: hot set outside keyspace";
        if not (fraction >= 0.0 && fraction <= 1.0) then
          invalid_arg "Arrivals.keygen: hot fraction outside [0, 1]";
        fun st ->
          if Random.State.float st 1.0 < fraction then
            Random.State.int st hot
          else Random.State.int st keys
  in
  { kg_keys = keys; kg_sample = sample }

let next_key g st = g.kg_sample st
let keyspace g = g.kg_keys

(* ------------------------------------------------------------------ *)
(* Operation streams over a keygen                                     *)

(** [ops st g ~write_fraction ~count] — a pre-generated operation
    stream drawing keys from [g]: the {!Workload.op} shape, so the
    open runner reuses {!Workload.apply_op}. *)
let ops st g ~write_fraction ~count =
  Array.init count (fun _ ->
      let k = next_key g st in
      if Random.State.float st 1.0 < write_fraction then
        if Random.State.bool st then
          Workload.Put (k, Random.State.int st 1_000_000)
        else Workload.Remove k
      else Workload.Get k)
