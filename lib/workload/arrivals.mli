(** Open-system traffic generation: seeded arrival processes (Poisson
    and bursty/on-off) and skewed key distributions scaling to 10^6+
    keyspaces.  Deterministic from an explicit seed derived from
    [PROUST_SEED], so intended-arrival schedules are reproducible. *)

(** The [PROUST_SEED] environment value, or the repo-wide default. *)
val default_seed : unit -> int

(** [rng ?seed ~salt ()] — an RNG from the master seed (default
    {!default_seed}) and a salt path, e.g. [[tenant_index; purpose]];
    distinct salts give independent streams. *)
val rng : ?seed:int -> salt:int list -> unit -> Random.State.t

(** Arrival processes: [Poisson] at a fixed rate, or [Bursty] — a
    two-state on/off modulated Poisson process with exponential dwell
    times, the antagonist shape for admission-control testing. *)
type process =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;  (** arrivals/s during a burst *)
      rate_off : float;  (** arrivals/s between bursts *)
      mean_on : float;  (** mean burst length, seconds *)
      mean_off : float;  (** mean gap length, seconds *)
    }

(** Long-run mean arrival rate of a process, per second. *)
val mean_rate : process -> float

(** One exponential inter-arrival sample at [rate] per second. *)
val exponential : Random.State.t -> rate:float -> float

(** [schedule st p ~count] — [count] intended arrival offsets in
    seconds from run start, nondecreasing. *)
val schedule : Random.State.t -> process -> count:int -> float array

(** Key popularity.  [Zipf] requires exponent [0 < s < 1] (Gray's O(1)
    approximate sampler, as in YCSB — one O(n) zeta pass at
    construction); with [scramble] the rank→key map is hashed so hot
    ranks spread across the keyspace, without it rank [i] is key [i].
    [Hotset] sends [fraction] of accesses to keys [0, hot) and the
    rest uniformly over the whole keyspace. *)
type key_dist =
  | Uniform
  | Zipf of { s : float; scramble : bool }
  | Hotset of { hot : int; fraction : float }

type keygen

(** [keygen dist ~keys] over keyspace [0, keys). *)
val keygen : key_dist -> keys:int -> keygen

val next_key : keygen -> Random.State.t -> int
val keyspace : keygen -> int

(** Pre-generated {!Workload.op} stream drawing keys from the
    generator, [write_fraction] split evenly between put and remove. *)
val ops :
  Random.State.t ->
  keygen ->
  write_fraction:float ->
  count:int ->
  Workload.op array
