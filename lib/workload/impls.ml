(** Deprecated facade over {!Registry}, kept for callers written
    against the original hand-maintained map list.  New code should
    enumerate {!Registry.maps} (or [queues]/[pqueues]) directly — the
    registry derives each entry's required STM configuration from its
    {!Proust_structures.Trait.meta} header instead of hard-coding
    it. *)

type entry = {
  name : string;
  config : Stm.config option;  (** [None] = current default config *)
  make : unit -> (int, int) Proust_structures.Trait.Map.ops;
  pessimistic : bool;
      (** only benchmarked at o = 1, per the §7 livelock note *)
}

let eager_mode = Registry.eager_mode

let of_map (e : Registry.entry) =
  match e.Registry.target with
  | Registry.Map make ->
      {
        name = e.Registry.name;
        config = e.Registry.config;
        make;
        pessimistic = e.Registry.meta.Proust_structures.Trait.pessimistic;
      }
  | Registry.Queue _ | Registry.Pqueue _ | Registry.Counter _ ->
      invalid_arg "Impls.of_map: not a map entry"

let all ?slots () = List.map of_map (Registry.maps ?slots ())

let memo_variants ?slots () =
  let pick reg_name name =
    match Registry.find ?slots reg_name with
    | Some e -> { (of_map e) with name }
    | None -> invalid_arg ("Impls.memo_variants: no registry entry " ^ reg_name)
  in
  [ pick "lazy-memo" "memo-no-combine"; pick "lazy-memo-combine" "memo-combine" ]
