(** The map implementations under benchmark, as named constructors
    paired with the STM configuration each requires for soundness
    (Figure 1's compatibility constraints). *)

module S = Proust_structures
module B = Proust_baselines

type entry = {
  name : string;
  config : Stm.config option;  (** [None] = current default config *)
  make : unit -> (int, int) S.Map_intf.ops;
  pessimistic : bool;
      (** only benchmarked at o = 1, per the §7 livelock note *)
}

(* A function, not a top-level value: the default config is mutable
   process state, so capture it at entry construction time. *)
let eager_mode () = { (Stm.get_default_config ()) with mode = Stm.Eager_lazy }

let all ?(slots = 1024) () =
  [
    {
      name = "stm-map";
      config = None;
      make = (fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ()));
      pessimistic = false;
    };
    {
      name = "predication";
      config = None;
      make = (fun () -> B.Predication_map.ops (B.Predication_map.make ()));
      pessimistic = false;
    };
    {
      name = "eager-opt";
      (* eager updates need encounter-time conflict detection *)
      config = Some (eager_mode ());
      make = (fun () -> S.P_hashmap.ops (S.P_hashmap.make ~slots ()));
      pessimistic = false;
    };
    {
      name = "lazy-memo";
      config = None;
      make = (fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:false ()));
      pessimistic = false;
    };
    {
      name = "lazy-snap";
      config = None;
      make = (fun () -> S.P_lazy_triemap.ops (S.P_lazy_triemap.make ~slots ()));
      pessimistic = false;
    };
    {
      name = "pessimistic";
      config = None;
      make =
        (fun () ->
          S.P_hashmap.ops (S.P_hashmap.make ~slots ~lap:S.Map_intf.Pessimistic ()));
      pessimistic = true;
    };
  ]

let memo_variants ?(slots = 1024) () =
  [
    {
      name = "memo-no-combine";
      config = None;
      make = (fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:false ()));
      pessimistic = false;
    };
    {
      name = "memo-combine";
      config = None;
      make = (fun () -> S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:true ()));
      pessimistic = false;
    };
  ]
