(** The open-system runner: a shared pool of service domains works a
    merged, pre-scheduled stream of per-tenant requests, each stamped
    with its {e intended} arrival time, and every request is measured
    from that intended time — so queueing delay stays in the latency
    numbers (coordinated-omission-correct, unlike the closed-loop
    {!Runner}, which silently re-times its schedule around the
    system's own slowness).

    The pool is shared across tenants deliberately: that is the real
    overload topology, where one tenant's backlog delays everyone
    head-of-line, and it is exactly what per-class admission control
    must fix — a {!Qos.Brownout} shed decision costs microseconds, so
    shedding the antagonist at admission drains its backlog before the
    well-behaved tenant's requests queue behind it.

    Each tenant brings its own arrival process, key distribution,
    QoS-class token bucket ({!Qos.Tenant}) and deadline; the optional
    brownout controller is consulted per request and fed the
    admission-lag pressure signal.  Latencies land in the
    {!Proust_obs.Metrics} scope named after the tenant — the
    [intended]/[service] histogram pair with p999 — so isolation is
    measurable per tenant, not just in aggregate. *)

module Metrics = Proust_obs.Metrics
module T = Proust_structures.Trait

type tenant_spec = {
  ts_name : string;
  ts_klass : Qos.Tenant.klass;
  ts_process : Arrivals.process;
  ts_dist : Arrivals.key_dist;
  ts_keys : int;
  ts_write_fraction : float;
  ts_ops_per_txn : int;
  ts_deadline : float;  (** per-request deadline, seconds *)
  ts_max_attempts : int option;
      (** per-request retry budget; [None] = deadline only.  A tight
          budget makes a contention-thrashing class fail fast with
          [Budget_exhausted] instead of occupying a pool worker for
          the whole deadline. *)
  ts_qos : Qos.Tenant.config;
}

let tenant_spec ?(dist = Arrivals.Uniform) ?(keys = 1_000_000)
    ?(write_fraction = 0.2) ?(ops_per_txn = 2) ?(deadline = 0.05)
    ?max_attempts ?(qos = Qos.Tenant.default_config) ~name ~klass process =
  {
    ts_name = name;
    ts_klass = klass;
    ts_process = process;
    ts_dist = dist;
    ts_keys = keys;
    ts_write_fraction = write_fraction;
    ts_ops_per_txn = ops_per_txn;
    ts_deadline = deadline;
    ts_max_attempts = max_attempts;
    ts_qos = qos;
  }

type tenant_result = {
  tr_name : string;
  tr_klass : Qos.Tenant.klass;
  tr_stats : Qos.Tenant.stats;
  tr_goodput : float;  (** committed requests per second *)
  tr_offered : float;  (** scheduled arrivals per second *)
  tr_latency : Metrics.scope_summary option;
      (** the tenant's metrics scope: [intended]/[service] histograms
          (nanoseconds) with p999 *)
  tr_max_lag_s : float;  (** worst admission lag observed, seconds *)
}

type result = {
  o_duration : float;
  o_offered : float;  (** total scheduled arrivals per second *)
  o_brownout_peak : Qos.Brownout.level option;
  o_brownout_transitions : int;
  o_tenants : tenant_result list;
  o_stats : Stats.snapshot;  (** STM activity during the run *)
}

(* Per-tenant run state shared by the pool. *)
type tenant_rt = {
  rt_spec : tenant_spec;
  rt_tenant : Qos.Tenant.t;
  rt_ops : Workload.op array;  (* schedule length * ops_per_txn *)
  rt_max_lag_ns : int Atomic.t;
}

(* One merged-stream request: intended offset, tenant index, and the
   request's index within its tenant's op stream. *)
type req = { rq_off : float; rq_tenant : int; rq_idx : int }

let note_max_lag rt ns =
  let rec bump () =
    let cur = Atomic.get rt.rt_max_lag_ns in
    if ns > cur && not (Atomic.compare_and_set rt.rt_max_lag_ns cur ns) then
      bump ()
  in
  if ns > 0 then bump ()

(* Sleep-then-spin to an absolute monotonic time: sleepf gets within a
   millisecond, the spin takes out scheduler wake jitter. *)
let wait_until target =
  let dt = target -. Clock.now_mono () in
  if dt > 0.0015 then Unix.sleepf (dt -. 0.001);
  while Clock.now_mono () < target do
    Domain.cpu_relax ()
  done

(* One pool worker: serves requests [w, w + W, w + 2W, ...] of the
   merged stream, in intended-time order.  Never re-anchors: a worker
   running behind schedule issues the backlog immediately and the lag
   lands in the intended histogram — that is the whole point.  Past
   [cutoff] (run end plus the drain allowance) any remaining backlog
   is shed at the harness so a hopelessly overloaded cell still
   terminates — the sheds stay in the tenant's accounting. *)
let worker ?config ?brownout ~ro_ok ~t0 ~cutoff ~workers
    ~(apply : Stm.txn -> Workload.op -> unit) (reqs : req array)
    (rts : tenant_rt array) w =
  let n = Array.length reqs in
  let j = ref w in
  while !j < n do
    let rq = reqs.(!j) in
    let rt = rts.(rq.rq_tenant) in
    let spec = rt.rt_spec in
    let ten = rt.rt_tenant in
    Metrics.set_label spec.ts_name;
    if Clock.now_mono () > cutoff then begin
      (* Harness drain cutoff: account the arrival, shed the work. *)
      ignore (Qos.Tenant.admit ten);
      Qos.Tenant.note_outcome ten Qos.Tenant.Shed ~read:false ~aborts:0
    end
    else begin
      let intended = t0 +. rq.rq_off in
      wait_until intended;
      let o = spec.ts_ops_per_txn in
      let base = rq.rq_idx * o in
      let read_txn = ref true in
      for i = base to base + o - 1 do
        match rt.rt_ops.(i) with
        | Workload.Get _ -> ()
        | Workload.Put _ | Workload.Remove _ -> read_txn := false
      done;
      let read_txn = !read_txn in
      let decide () =
        if not (Qos.Tenant.admit ten) then Qos.Brownout.Shed
        else
          match brownout with
          | None -> Qos.Brownout.Admit
          | Some b -> Qos.Brownout.plan b ten ~read_txn
      in
      let now = Clock.now_mono () in
      let lag = now -. intended in
      note_max_lag rt (int_of_float (lag *. 1e9));
      (* Every request — served or shed — feeds the pressure signal:
         a controller that only heard from survivors could never
         recover once it sheds everything. *)
      Option.iter (fun b -> Qos.Brownout.note_lag b ~lag) brownout;
      match decide () with
      | Qos.Brownout.Shed ->
          Qos.Tenant.note_outcome ten Qos.Tenant.Shed ~read:read_txn ~aborts:0
      | (Qos.Brownout.Admit | Qos.Brownout.Admit_ro) as d ->
          let ro = d = Qos.Brownout.Admit_ro && ro_ok && read_txn in
          if ro then Qos.Tenant.note_ro_routed ten;
          let start = Clock.now_mono () in
          let runs = ref 0 in
          let outcome =
            Stm.atomic ?config ?max_attempts:spec.ts_max_attempts
              ~read_only:ro ~deadline:(start +. spec.ts_deadline) (fun txn ->
                incr runs;
                for i = base to base + o - 1 do
                  apply txn rt.rt_ops.(i)
                done)
          in
          let fin = Clock.now_mono () in
          let aborts = max 0 (!runs - 1) in
          (* Every executed episode lands in the latency pair —
             including timeouts, whose cost is the deadline plus the
             queueing that preceded it.  Recording only commits would
             be survivor bias: overload would *improve* the numbers. *)
          Metrics.add_intended_latency
            (int_of_float ((fin -. intended) *. 1e9));
          Metrics.add_service_latency (int_of_float ((fin -. start) *. 1e9));
          let kind =
            match outcome with
            | Stm.Outcome.Committed () -> Qos.Tenant.Committed
            | Stm.Outcome.Timed_out -> Qos.Tenant.Timed_out
            | Stm.Outcome.Budget_exhausted -> Qos.Tenant.Budget_exhausted
            | Stm.Outcome.Shed -> Qos.Tenant.Shed
          in
          Qos.Tenant.note_outcome ten kind ~read:read_txn ~aborts
    end;
    j := !j + workers
  done

(** [run ?seed ?config ?brownout ?workers ?prefill ~duration ~entry
    tenants] — one open-system run of [duration] seconds against a map
    registry entry, served by a shared pool of [workers] domains.
    Schedules and op streams are deterministic from [seed] (default
    [PROUST_SEED]); service timing of course is not.  RO routing is
    honoured only when the effective STM mode is [Multi_version] (the
    abort-free snapshot path needs version chains).  Metrics are
    force-enabled for the run and the tenants' scopes reset, so
    [tr_latency] is always populated.  [workers] defaults to the
    machine (capped at 4, one core left for the coordinator):
    oversubscribing domains turns scheduler timeslices into a
    double-digit-ms latency floor. *)
let run ?seed ?config ?brownout ?workers ?(prefill = 10_000)
    ?(warmup = 0.0) ?(drain = 0.25) ~duration ~(entry : Registry.entry)
    (tenants : tenant_spec list) =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (min 4 (Domain.recommended_domain_count () - 1))
  in
  let make_ops =
    match entry.Registry.target with
    | Registry.Map make -> make
    | _ ->
        invalid_arg
          ("Open_runner.run: registry entry " ^ entry.Registry.name
         ^ " is not a map")
  in
  let config = match config with Some c -> Some c | None -> entry.Registry.config in
  let ro_ok =
    (match config with
    | Some c -> c.Stm.mode
    | None -> (Stm.get_default_config ()).Stm.mode)
    = Stm.Multi_version
  in
  let ops = make_ops () in
  (* Sequential prefill: covers the unscrambled-Zipf / hotset key
     prefix every skewed tenant hammers. *)
  let prefill_n =
    List.fold_left (fun acc ts -> min acc ts.ts_keys) prefill tenants
  in
  for k = 0 to prefill_n - 1 do
    Stm.atomically ?config (fun txn -> ignore (ops.T.Map.put txn k k))
  done;
  let apply txn op = Workload.apply_op ops txn op in
  let scheds = ref [] in
  let rts =
    Array.of_list
      (List.mapi
         (fun i ts ->
           let sched_rng = Arrivals.rng ?seed ~salt:[ i; 1 ] () in
           let ops_rng = Arrivals.rng ?seed ~salt:[ i; 2 ] () in
           (* Size the candidate pool by the *peak* rate — for a
              bursty process a window that skews on-heavy would
              exhaust a mean-rate pool mid-run and silently stop
              offering traffic — plus 20% headroom; offsets past
              [duration] are dropped at the merge (and never
              accounted as arrivals). *)
           let rate =
             match ts.ts_process with
             | Arrivals.Poisson { rate } -> rate
             | Arrivals.Bursty { rate_on; rate_off; _ } ->
                 Float.max rate_on rate_off
           in
           let count =
             max 1 (int_of_float (ceil (rate *. duration *. 1.2)) + 16)
           in
           let sched = Arrivals.schedule sched_rng ts.ts_process ~count in
           scheds := (i, sched) :: !scheds;
           let kg = Arrivals.keygen ts.ts_dist ~keys:ts.ts_keys in
           {
             rt_spec = ts;
             rt_tenant =
               Qos.Tenant.make ~config:ts.ts_qos ~name:ts.ts_name
                 ~klass:ts.ts_klass ();
             rt_ops =
               Arrivals.ops ops_rng kg ~write_fraction:ts.ts_write_fraction
                 ~count:(count * ts.ts_ops_per_txn);
             rt_max_lag_ns = Atomic.make 0;
           })
         tenants)
  in
  (* Merge the tenant schedules into one intended-time-ordered stream;
     the shared pool strides over it. *)
  let reqs =
    List.concat_map
      (fun (i, sched) ->
        let l = ref [] in
        Array.iteri
          (fun idx off ->
            if off <= duration then
              l := { rq_off = off; rq_tenant = i; rq_idx = idx } :: !l)
          sched;
        !l)
      !scheds
    |> Array.of_list
  in
  Array.sort (fun a b -> compare a.rq_off b.rq_off) reqs;
  let offered = Array.make (Array.length rts) 0 in
  Array.iter
    (fun rq -> offered.(rq.rq_tenant) <- offered.(rq.rq_tenant) + 1)
    reqs;
  let was_enabled = Metrics.enabled () in
  Metrics.enable ();
  Array.iter (fun rt -> Metrics.reset_scope rt.rt_spec.ts_name) rts;
  let before = Stats.read () in
  (* Absolute run origin: far enough out that every worker is spawned
     and waiting before the first arrival is due. *)
  let t0 = Clock.now_mono () +. 0.05 +. (0.005 *. float_of_int workers) in
  let cutoff = t0 +. duration +. drain in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            worker ?config ?brownout ~ro_ok ~t0 ~cutoff ~workers ~apply reqs
              rts w))
  in
  (* Warmup window: let admission control find its level, then zero the
     latency scopes so the reported percentiles are steady-state.  The
     counters (sheds, timeouts, ...) deliberately stay whole-run. *)
  if warmup > 0.0 then begin
    wait_until (t0 +. warmup);
    Array.iter (fun rt -> Metrics.reset_scope rt.rt_spec.ts_name) rts
  end;
  List.iter Domain.join domains;
  let after = Stats.read () in
  if not was_enabled then Metrics.disable ();
  let tenant_result i rt =
    let st = Qos.Tenant.stats rt.rt_tenant in
    {
      tr_name = rt.rt_spec.ts_name;
      tr_klass = rt.rt_spec.ts_klass;
      tr_stats = st;
      tr_goodput = float_of_int st.Qos.Tenant.s_committed /. duration;
      tr_offered = float_of_int offered.(i) /. duration;
      tr_latency = Metrics.read_scope rt.rt_spec.ts_name;
      tr_max_lag_s = float_of_int (Atomic.get rt.rt_max_lag_ns) *. 1e-9;
    }
  in
  let tenant_results = Array.to_list (Array.mapi tenant_result rts) in
  {
    o_duration = duration;
    o_offered =
      float_of_int (Array.length reqs) /. duration;
    o_brownout_peak = Option.map Qos.Brownout.peak_level brownout;
    o_brownout_transitions =
      (match brownout with Some b -> Qos.Brownout.transitions b | None -> 0);
    o_tenants = tenant_results;
    o_stats = Stats.diff before after;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

module J = Proust_obs.Json

let tenant_to_json (tr : tenant_result) =
  let s = tr.tr_stats in
  J.Obj
    [
      ("tenant", J.String tr.tr_name);
      ("class", J.String (Qos.Tenant.klass_name tr.tr_klass));
      ("arrivals", J.Int s.Qos.Tenant.s_arrivals);
      ("admitted", J.Int s.Qos.Tenant.s_admitted);
      ("committed", J.Int s.Qos.Tenant.s_committed);
      ("shed", J.Int s.Qos.Tenant.s_shed);
      ("timed_out", J.Int s.Qos.Tenant.s_timed_out);
      ("budget_exhausted", J.Int s.Qos.Tenant.s_budget_exhausted);
      ("ro_routed", J.Int s.Qos.Tenant.s_ro_routed);
      ("aborts", J.Int s.Qos.Tenant.s_aborts);
      ("abort_ewma", J.Float s.Qos.Tenant.s_abort_ewma);
      ("read_fraction", J.Float s.Qos.Tenant.s_read_fraction);
      ("offered_rps", J.Float tr.tr_offered);
      ("goodput_rps", J.Float tr.tr_goodput);
      ("max_lag_s", J.Float tr.tr_max_lag_s);
      ( "latency_ns",
        match tr.tr_latency with
        | Some s -> Metrics.scope_summary_to_json s
        | None -> J.Null );
    ]

let to_json (r : result) =
  J.Obj
    [
      ("duration_s", J.Float r.o_duration);
      ("offered_rps", J.Float r.o_offered);
      ( "brownout_peak",
        match r.o_brownout_peak with
        | Some l -> J.String (Qos.Brownout.level_name l)
        | None -> J.Null );
      ("brownout_transitions", J.Int r.o_brownout_transitions);
      ("tenants", J.List (List.map tenant_to_json r.o_tenants));
      ( "stats",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Stats.to_assoc r.o_stats))
      );
    ]
