(** The open-system runner: a shared pool of service domains works a
    merged stream of per-tenant requests issued at {e intended} arrival
    times fixed before the run, and latency is measured from the
    intended time, not from when a worker got around to sending — the
    coordinated-omission-correct discipline the closed-loop {!Runner}
    cannot provide.  The pool is shared across tenants (the real
    overload topology: one tenant's backlog delays everyone
    head-of-line); per-tenant QoS admission ({!Qos.Tenant}) and an
    optional {!Qos.Brownout} controller sit on the admission path. *)

type tenant_spec = {
  ts_name : string;
  ts_klass : Qos.Tenant.klass;
  ts_process : Arrivals.process;
  ts_dist : Arrivals.key_dist;
  ts_keys : int;
  ts_write_fraction : float;
  ts_ops_per_txn : int;
  ts_deadline : float;  (** per-request deadline, seconds *)
  ts_max_attempts : int option;
      (** per-request retry budget; [None] = deadline only *)
  ts_qos : Qos.Tenant.config;
}

(** Constructor with the defaults benches use: uniform keys over 10^6,
    20% writes, 2 ops/txn, 50 ms deadline, uncapped QoS. *)
val tenant_spec :
  ?dist:Arrivals.key_dist ->
  ?keys:int ->
  ?write_fraction:float ->
  ?ops_per_txn:int ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?qos:Qos.Tenant.config ->
  name:string ->
  klass:Qos.Tenant.klass ->
  Arrivals.process ->
  tenant_spec

type tenant_result = {
  tr_name : string;
  tr_klass : Qos.Tenant.klass;
  tr_stats : Qos.Tenant.stats;
  tr_goodput : float;  (** committed requests per second *)
  tr_offered : float;  (** scheduled arrivals per second *)
  tr_latency : Proust_obs.Metrics.scope_summary option;
      (** per-tenant scope; [intended]/[service] histograms carry the
          open-system latency pair (nanoseconds, with p999) *)
  tr_max_lag_s : float;  (** worst admission lag observed, seconds *)
}

type result = {
  o_duration : float;
  o_offered : float;  (** total scheduled arrivals per second *)
  o_brownout_peak : Qos.Brownout.level option;
  o_brownout_transitions : int;
  o_tenants : tenant_result list;
  o_stats : Stats.snapshot;  (** STM activity during the run *)
}

(** [run ?seed ?config ?brownout ?prefill ~duration ~entry tenants] —
    one open-system run against a map registry entry.  Schedules and
    op streams are deterministic from [seed] (default [PROUST_SEED]).
    [config] overrides the entry's derived STM config; RO routing from
    the brownout controller is honoured only under [Multi_version].
    Every scheduled arrival inside the window is accounted:
    [committed + shed + timed_out + budget_exhausted = arrivals].
    Latency is recorded for every {e executed} episode — timeouts
    included, at their full cost — never for sheds.  [warmup] > 0
    zeroes the latency scopes that many seconds in (counters stay
    whole-run); past run end plus [drain] seconds, remaining backlog is
    shed at the harness so overloaded cells terminate.  [workers]
    defaults to the machine's core count less one, capped at 4 —
    oversubscribing domains puts scheduler timeslices in the tail. *)
val run :
  ?seed:int ->
  ?config:Stm.config ->
  ?brownout:Qos.Brownout.t ->
  ?workers:int ->
  ?prefill:int ->
  ?warmup:float ->
  ?drain:float ->
  duration:float ->
  entry:Registry.entry ->
  tenant_spec list ->
  result

val tenant_to_json : tenant_result -> Proust_obs.Json.t
val to_json : result -> Proust_obs.Json.t
