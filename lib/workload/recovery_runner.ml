(* The crash-point chaos harness: seeded multi-domain workloads over a
   durable map that "crash" (halt the redo log, abandon the workers'
   progress) at a configured durability injection point, followed by a
   recovery whose result is checked against the committed history.

   The correctness criterion, per ISSUE/ROADMAP item 5:

     acked  ⊆  replayed  ⊆  committed

   — no acknowledged commit may be lost, nothing that did not commit
   may be resurrected — and the recovered structure's contents must
   equal the {!Proust_verify.Adt_model} fold of exactly the replayed
   records in LSN order (prefix-consistency at the structure level),
   with a second recovery changing nothing. *)

module Durable = Proust_durable
module Adt_model = Proust_verify.Adt_model
module Trait = Proust_structures.Trait

type txn_record = {
  lsn : int;
  ops : Adt_model.map_op list;  (* chronological MPut/MRemove *)
  acked : bool;
}

type config = {
  domains : int;
  txns_per_domain : int;
  keys : int;
  values : int;
  seed : int;
  fmt : Durable.Frame.format;
  crash_point : Fault.point option;  (* None: run to completion *)
  crash_prob : float;
  batch_delay : float;
}

let default_config =
  {
    domains = 4;
    txns_per_domain = 150;
    keys = 16;
    values = 64;
    seed = 0xC0FFEE;
    fmt = Durable.Frame.Value;
    crash_point = None;
    crash_prob = 0.02;
    batch_delay = 0.;
  }

type result = {
  committed : txn_record list;  (* every committed durable txn *)
  crashed : bool;  (* the log halted mid-run *)
  log_path : string;
}

(* Apply one model op to the durable map inside the transaction. *)
let apply_op (m : (int, int) Trait.Map.ops) txn = function
  | Adt_model.MPut (k, v) -> ignore (m.Trait.Map.put txn k v)
  | Adt_model.MRemove k -> ignore (m.Trait.Map.remove txn k)
  | Adt_model.MGet k -> ignore (m.Trait.Map.get txn k)

let gen_ops rng cfg =
  let n = 1 + Random.State.int rng 3 in
  List.init n (fun _ ->
      let k = Random.State.int rng cfg.keys in
      match Random.State.int rng 4 with
      | 0 -> Adt_model.MRemove k
      | _ -> Adt_model.MPut (k, Random.State.int rng cfg.values))

let run ~path ~(base : unit -> (int, int) Trait.Map.ops) cfg =
  let log = Durable.Redo_log.create ~batch_delay:cfg.batch_delay ~path () in
  (match cfg.crash_point with
  | None -> ()
  | Some p ->
      Fault.configure ~seed:cfg.seed
        [ (p, { Fault.prob = cfg.crash_prob; actions = [ Fault.Crash ] }) ]);
  Fun.protect
    ~finally:(fun () ->
      if cfg.crash_point <> None then Fault.disable ();
      Durable.Redo_log.close log)
    (fun () ->
      let base_ops = base () in
      let all = Mutex.create () in
      let committed = ref [] in
      let workers =
        List.init cfg.domains (fun d ->
            Domain.spawn (fun () ->
                let rng =
                  Random.State.make [| cfg.seed; d; 0x5EED |]
                in
                (* Per-domain wrapper so the on-commit tap can pair the
                   LSN the ladder hands out with the ops this domain's
                   current transaction performed. *)
                let mine = ref [] in
                let current = ref [] in
                let tap ~lsn ~acked =
                  mine := { lsn; ops = !current; acked } :: !mine
                in
                let m =
                  Durable.Durable_map.ops
                    (Durable.Durable_map.wrap ~on_commit:tap ~fmt:cfg.fmt
                       ~log base_ops)
                in
                (try
                   for _ = 1 to cfg.txns_per_domain do
                     if not (Durable.Redo_log.halted log) then begin
                       let ops = gen_ops rng cfg in
                       current := ops;
                       Stm.atomically (fun txn ->
                           List.iter (apply_op m txn) ops)
                     end
                   done
                 with e ->
                   (* A worker dying would deadlock the join; surface
                      the exception after the run instead. *)
                   Mutex.lock all;
                   committed := [];
                   Mutex.unlock all;
                   raise e);
                Mutex.lock all;
                committed := !mine @ !committed;
                Mutex.unlock all))
      in
      List.iter Domain.join workers;
      let crashed = Durable.Redo_log.halted log in
      { committed = !committed; crashed; log_path = path })

(* ------------------------------------------------------------------ *)
(* Verification                                                         *)

let model = Adt_model.small_map ()

let fold_model records =
  List.fold_left
    (fun st (r : txn_record) ->
      List.fold_left (fun st op -> fst (model.Adt_model.apply st op)) st r.ops)
    [] records

let contents (m : (int, int) Trait.Map.ops) ~keys =
  Stm.atomically (fun txn ->
      List.filter_map
        (fun k ->
          match m.Trait.Map.get txn k with
          | Some v -> Some (k, v)
          | None -> None)
        (List.init keys Fun.id))

let show_state st =
  "{"
  ^ String.concat "; "
      (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

(* [verify res ~base ~keys] recovers the log in [res] and checks the
   full criterion.  [base] builds a fresh empty structure per replay;
   [keys] bounds the keyspace scan.  Returns [Error msg] naming the
   first violated clause. *)
let verify (res : result) ~(base : unit -> (int, int) Trait.Map.ops) ~keys =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let report = Durable.Recovery.run res.log_path in
  let replayed = Durable.Recovery.replayed_lsns report in
  let committed_lsns = List.map (fun r -> r.lsn) res.committed in
  let acked_lsns =
    List.filter_map (fun r -> if r.acked then Some r.lsn else None)
      res.committed
  in
  let in_snapshot lsn = lsn <> 0 && lsn <= report.Durable.Recovery.snapshot_lsn in
  let* () =
    (* No acknowledged commit lost: an acked LSN is either replayed or
       already folded into the snapshot. *)
    match
      List.find_opt
        (fun l -> not (List.mem l replayed || in_snapshot l))
        acked_lsns
    with
    | Some l -> Error (Printf.sprintf "acked lsn %d lost by recovery" l)
    | None -> Ok ()
  in
  let* () =
    (* Nothing resurrected: every replayed record came from a commit. *)
    match
      List.find_opt (fun l -> not (List.mem l committed_lsns)) replayed
    with
    | Some l -> Error (Printf.sprintf "recovery replayed unknown lsn %d" l)
    | None -> Ok ()
  in
  (* Prefix-consistency of the recovered state: fold the model over the
     durable subset of the committed history in LSN order. *)
  let durable_records =
    List.filter (fun r -> List.mem r.lsn replayed || in_snapshot r.lsn)
      res.committed
    |> List.sort (fun a b -> compare a.lsn b.lsn)
  in
  let want = fold_model durable_records in
  let fresh = base () in
  Durable.Durable_map.replay report fresh;
  let got = contents fresh ~keys in
  let* () =
    if model.Adt_model.equal_state want got then Ok ()
    else
      Error
        (Printf.sprintf "recovered state %s, model folds to %s"
           (show_state got) (show_state want))
  in
  (* Idempotence: a second recovery sees the same (tail-truncated) log
     and reproduces the same state. *)
  let report2 = Durable.Recovery.run res.log_path in
  let* () =
    if Durable.Recovery.replayed_lsns report2 = replayed then Ok ()
    else Error "second recovery saw a different record set"
  in
  let fresh2 = base () in
  Durable.Durable_map.replay report2 fresh2;
  let got2 = contents fresh2 ~keys in
  if model.Adt_model.equal_state got got2 then Ok ()
  else Error "double recovery diverged"
