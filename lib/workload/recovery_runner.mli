(** The crash-point chaos harness: seeded multi-domain workloads over a
    durable map that halt the redo log at a configured {!Fault}
    durability point, then recover and check the result against the
    committed history ([acked ⊆ replayed ⊆ committed], recovered state
    = model fold of the replayed records, double recovery a no-op). *)

type txn_record = {
  lsn : int;  (** commit version stamped by the ladder *)
  ops : Proust_verify.Adt_model.map_op list;  (** chronological *)
  acked : bool;  (** the flush wait confirmed durability *)
}

type config = {
  domains : int;
  txns_per_domain : int;
  keys : int;  (** keyspace [0 .. keys-1] *)
  values : int;
  seed : int;
  fmt : Proust_durable.Frame.format;
  crash_point : Fault.point option;  (** [None]: run to completion *)
  crash_prob : float;
  batch_delay : float;  (** group-commit linger, seconds *)
}

val default_config : config

type result = {
  committed : txn_record list;
  crashed : bool;
  log_path : string;
}

(** [run ~path ~base cfg] drives [cfg.domains] workers over one durable
    wrap of [base ()] logging to [path]; workers stop at their budget
    or as soon as the log halts.  Configures (and afterwards disables)
    {!Fault} when [cfg.crash_point] is set. *)
val run :
  path:string ->
  base:(unit -> (int, int) Proust_structures.Trait.Map.ops) ->
  config ->
  result

(** [verify res ~base ~keys] recovers [res.log_path] twice and checks
    the full criterion; [Error msg] names the first violated clause. *)
val verify :
  result ->
  base:(unit -> (int, int) Proust_structures.Trait.Map.ops) ->
  keys:int ->
  (unit, string) Result.t
