(** The benchmarkable-implementation registry.

    One entry per (structure, configuration-variant) point, covering
    every Proustian wrapper and baseline in the repository — maps,
    FIFO queues, and priority queues alike — keyed by the structure's
    {!Proust_structures.Trait.meta} header.  The STM configuration an
    entry requires is {e derived} from the header ([Encounter_time]
    structures get an eager-mode config, per Figure 1) rather than
    hand-maintained, so an implementation cannot be benchmarked under
    a mode that would violate Theorem 5.2. *)

module S = Proust_structures
module B = Proust_baselines
module Y = Proust_sync
module T = S.Trait

type target =
  | Map of (unit -> (int, int) T.Map.ops)
  | Queue of (unit -> int T.Queue.ops)
  | Pqueue of (unit -> int T.Pqueue.ops)
  | Counter of (unit -> T.Counter.ops)

type entry = {
  name : string;  (** registry key; also the meta/trace label *)
  meta : T.meta;
  config : Stm.config option;
      (** the STM config the entry needs for soundness; [None] =
          whatever the process default currently is *)
  target : target;
}

(* A function, not a top-level value: the default config is mutable
   process state, so capture it at entry-construction time. *)
let eager_mode () = { (Stm.get_default_config ()) with mode = Stm.Eager_lazy }

let config_for (meta : T.meta) =
  match meta.T.mode_req with
  | T.Encounter_time -> Some (eager_mode ())
  | T.Any_mode -> None

(* Registry names override the structure's intrinsic meta name (two
   entries may wrap the same structure under different laps), and the
   override is pushed into the ops the entry builds so metrics scopes
   and trace labels agree with the registry key. *)
let map_entry name make =
  let make () =
    let o = make () in
    { o with T.Map.meta = { o.T.Map.meta with T.name = name } }
  in
  let meta = (make ()).T.Map.meta in
  { name; meta; config = config_for meta; target = Map make }

let queue_entry name make =
  let make () =
    let o = make () in
    { o with T.Queue.meta = { o.T.Queue.meta with T.name = name } }
  in
  let meta = (make ()).T.Queue.meta in
  { name; meta; config = config_for meta; target = Queue make }

let pqueue_entry name make =
  let make () =
    let o = make () in
    { o with T.Pqueue.meta = { o.T.Pqueue.meta with T.name = name } }
  in
  let meta = (make ()).T.Pqueue.meta in
  { name; meta; config = config_for meta; target = Pqueue make }

let counter_entry name make =
  let make () =
    let o = make () in
    { o with T.Counter.meta = { o.T.Counter.meta with T.name = name } }
  in
  let meta = (make ()).T.Counter.meta in
  { name; meta; config = config_for meta; target = Counter make }

let all ?(slots = 1024) () =
  [
    (* -- maps: baselines ------------------------------------------ *)
    map_entry "stm-map" (fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ()));
    map_entry "predication" (fun () ->
        B.Predication_map.ops (B.Predication_map.make ()));
    map_entry "boosted" (fun () -> B.Boosted_map.ops (B.Boosted_map.make ~slots ()));
    map_entry "coarse" (fun () -> B.Coarse_map.ops (B.Coarse_map.make ()));
    (* -- maps: Proustian design-space points ---------------------- *)
    map_entry "eager-opt" (fun () -> S.P_hashmap.ops (S.P_hashmap.make ~slots ()));
    map_entry "pessimistic" (fun () ->
        S.P_hashmap.ops (S.P_hashmap.make ~slots ~lap:T.Pessimistic ()));
    map_entry "lazy-memo" (fun () ->
        S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:false ()));
    map_entry "lazy-memo-combine" (fun () ->
        S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots ~combine:true ()));
    map_entry "lazy-snap" (fun () ->
        S.P_lazy_triemap.ops (S.P_lazy_triemap.make ~slots ()));
    map_entry "eager-trie" (fun () -> S.P_triemap.ops (S.P_triemap.make ~slots ()));
    (* Ordered maps expose a plain-map view for the registry; range
       queries stay behind their own APIs. *)
    map_entry "omap" (fun () ->
        S.P_omap.map_ops (S.P_omap.make ~slots ~index:(fun k -> k / 16) ()));
    map_entry "skipmap" (fun () ->
        S.P_skipmap.map_ops (S.P_skipmap.make ~slots ~index:(fun k -> k / 16) ()));
    map_entry "omap-snap" (fun () -> S.P_snap_omap.map_ops (S.P_snap_omap.make ()));
    (* -- hot-key mitigation A/B points ----------------------------- *)
    (* Same structure as "eager-opt" with writes serialized through a
       best-effort shard gate; benched against it under skew. *)
    map_entry "eager-opt-hotgate" (fun () ->
        let hg = S.Hot_gate.make ~shards:64 () in
        S.Hot_gate.wrap hg (S.P_hashmap.ops (S.P_hashmap.make ~slots ())));
    (* -- FIFO queues ---------------------------------------------- *)
    queue_entry "fifo-eager" (fun () -> S.P_fifo.ops (S.P_fifo.make ()));
    queue_entry "fifo-pess" (fun () ->
        S.P_fifo.ops (S.P_fifo.make ~lap:T.Pessimistic ()));
    queue_entry "fifo-lazy" (fun () -> S.P_lazy_fifo.ops (S.P_lazy_fifo.make ()));
    (* -- priority queues ------------------------------------------ *)
    pqueue_entry "pq-eager" (fun () ->
        S.P_pqueue.ops (S.P_pqueue.make ~cmp:compare ()));
    pqueue_entry "pq-pess" (fun () ->
        S.P_pqueue.ops (S.P_pqueue.make ~cmp:compare ~lap:T.Pessimistic ()));
    pqueue_entry "pq-lazy" (fun () ->
        S.P_lazy_pqueue.ops (S.P_lazy_pqueue.make ~cmp:compare ()));
    (* -- blocking-coordination structures (lib/sync) ----------------- *)
    (* The registry channel's capacity is far above any workload's live
       element count so the blocking enqueue never parks a bench or lin
       run; bounded blocking semantics are tested separately. *)
    queue_entry "chan-mpmc" (fun () ->
        Y.Channel.ops (Y.Channel.make ~capacity:1_000_000 ()));
    queue_entry "promise-fifo" (fun () ->
        Y.Promise_fifo.ops (Y.Promise_fifo.make ()));
    (* -- counters ------------------------------------------------- *)
    counter_entry "semaphore" (fun () -> Y.Semaphore.ops (Y.Semaphore.make 0));
    counter_entry "p-counter" (fun () ->
        S.P_counter.ops (S.P_counter.make ~observable:true ()));
    (* The striped escape hatch, A/B against "p-counter". *)
    counter_entry "p-counter-striped" (fun () ->
        S.P_striped_counter.ops (S.P_striped_counter.make ()));
  ]

let is_map e = match e.target with Map _ -> true | _ -> false
let is_queue e = match e.target with Queue _ -> true | _ -> false
let is_pqueue e = match e.target with Pqueue _ -> true | _ -> false
let is_counter e = match e.target with Counter _ -> true | _ -> false
let maps ?slots () = List.filter is_map (all ?slots ())
let queues ?slots () = List.filter is_queue (all ?slots ())
let pqueues ?slots () = List.filter is_pqueue (all ?slots ())
let counters ?slots () = List.filter is_counter (all ?slots ())
let find ?slots name = List.find_opt (fun e -> e.name = name) (all ?slots ())
let names ?slots () = List.map (fun e -> e.name) (all ?slots ())

let kind_name e =
  match e.target with
  | Map _ -> "map"
  | Queue _ -> "queue"
  | Pqueue _ -> "pqueue"
  | Counter _ -> "counter"
