(** The benchmarkable-implementation registry: one entry per
    (structure, configuration-variant) point across maps, FIFO queues
    and priority queues, keyed by the structure's
    {!Proust_structures.Trait.meta} header.  The STM configuration an
    entry requires is derived from the header (an [Encounter_time]
    structure gets an eager-mode config, per Figure 1), so an
    implementation cannot be enumerated under a mode that would
    violate Theorem 5.2. *)

type target =
  | Map of (unit -> (int, int) Proust_structures.Trait.Map.ops)
  | Queue of (unit -> int Proust_structures.Trait.Queue.ops)
  | Pqueue of (unit -> int Proust_structures.Trait.Pqueue.ops)
  | Counter of (unit -> Proust_structures.Trait.Counter.ops)

type entry = {
  name : string;  (** registry key; also the meta/trace label *)
  meta : Proust_structures.Trait.meta;
  config : Stm.config option;
      (** the STM config the entry needs for soundness; [None] =
          whatever the process default currently is *)
  target : target;
}

(** Eager-mode variant of the current default config (captured at call
    time — the default is mutable process state). *)
val eager_mode : unit -> Stm.config

(** Derive the config an implementation with this header requires. *)
val config_for : Proust_structures.Trait.meta -> Stm.config option

val all : ?slots:int -> unit -> entry list
val maps : ?slots:int -> unit -> entry list
val queues : ?slots:int -> unit -> entry list
val pqueues : ?slots:int -> unit -> entry list
val counters : ?slots:int -> unit -> entry list
val find : ?slots:int -> string -> entry option
val names : ?slots:int -> unit -> string list

(** ["map"], ["queue"], ["pqueue"] or ["counter"]. *)
val kind_name : entry -> string
