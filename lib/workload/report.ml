(** Table/series rendering for benchmark output: one row per measured
    cell, in the shape of the paper's Figure 4 series (time in ms to
    process the operation stream, per implementation and thread
    count). *)

let header () =
  Printf.printf "%-18s %5s %5s %4s %10s %9s %12s %9s %9s %7s\n" "impl" "u" "o"
    "t" "mean(ms)" "sd(ms)" "ops/s" "commits" "aborts" "fallbk";
  Printf.printf "%s\n" (String.make 96 '-')

let row ~name (r : Runner.result) =
  Printf.printf "%-18s %5.2f %5d %4d %10.2f %9.2f %12.0f %9d %9d %7d\n%!" name
    r.Runner.spec.Workload.write_fraction r.Runner.spec.Workload.ops_per_txn
    r.Runner.threads r.Runner.mean_ms r.Runner.stddev_ms r.Runner.throughput
    r.Runner.stats.Stats.commits r.Runner.stats.Stats.aborts
    r.Runner.stats.Stats.fallbacks

let csv_header oc =
  output_string oc
    "impl,u,o,threads,mean_ms,stddev_ms,ops_per_s,commits,aborts,conflicts,\
     fallbacks,injected_faults\n"

let csv_row oc ~name (r : Runner.result) =
  Printf.fprintf oc "%s,%.2f,%d,%d,%.3f,%.3f,%.0f,%d,%d,%d,%d,%d\n" name
    r.Runner.spec.Workload.write_fraction r.Runner.spec.Workload.ops_per_txn
    r.Runner.threads r.Runner.mean_ms r.Runner.stddev_ms r.Runner.throughput
    r.Runner.stats.Stats.commits r.Runner.stats.Stats.aborts
    r.Runner.stats.Stats.conflicts r.Runner.stats.Stats.fallbacks
    r.Runner.stats.Stats.injected_faults

let section title =
  Printf.printf "\n=== %s ===\n%!" title
