(** Table/series/JSON rendering for benchmark output: one row (or JSON
    cell) per measured cell, in the shape of the paper's Figure 4
    series (time in ms to process the operation stream, per
    implementation and thread count).

    The machine-readable shapes — CSV columns and the
    ["proust-bench/v1"] JSON report — derive their STM-counter fields
    from {!Stats.to_assoc}, so a new counter shows up in every output
    format without touching this module. *)

module J = Proust_obs.Json

let header () =
  Printf.printf "%-18s %5s %5s %4s %10s %9s %12s %9s %9s %7s %6s %6s\n" "impl"
    "u" "o" "t" "mean(ms)" "sd(ms)" "ops/s" "commits" "aborts" "fallbk" "shed"
    "tmout";
  Printf.printf "%s\n" (String.make 110 '-')

let row ~name (r : Runner.result) =
  Printf.printf "%-18s %5.2f %5d %4d %10.2f %9.2f %12.0f %9d %9d %7d %6d %6d\n%!"
    name r.Runner.spec.Workload.write_fraction
    r.Runner.spec.Workload.ops_per_txn r.Runner.threads r.Runner.mean_ms
    r.Runner.stddev_ms r.Runner.throughput r.Runner.stats.Stats.commits
    r.Runner.stats.Stats.aborts r.Runner.stats.Stats.fallbacks
    r.Runner.stats.Stats.shed r.Runner.stats.Stats.timeouts

let stat_keys () = List.map fst (Stats.to_assoc (Stats.read ()))

let csv_header oc =
  output_string oc "impl,u,o,threads,mean_ms,stddev_ms,ops_per_s";
  List.iter (fun k -> Printf.fprintf oc ",%s" k) (stat_keys ());
  output_char oc '\n'

let csv_row oc ~name (r : Runner.result) =
  Printf.fprintf oc "%s,%.2f,%d,%d,%.3f,%.3f,%.0f" name
    r.Runner.spec.Workload.write_fraction r.Runner.spec.Workload.ops_per_txn
    r.Runner.threads r.Runner.mean_ms r.Runner.stddev_ms r.Runner.throughput;
  List.iter
    (fun (_, v) -> Printf.fprintf oc ",%d" v)
    (Stats.to_assoc r.Runner.stats);
  output_char oc '\n'

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* JSON report: the BENCH_*.json format.                               *)

let json_cell ~name (r : Runner.result) =
  J.Obj
    [
      ("impl", J.String name);
      ("u", J.Float r.Runner.spec.Workload.write_fraction);
      ("o", J.Int r.Runner.spec.Workload.ops_per_txn);
      ("threads", J.Int r.Runner.threads);
      ("key_range", J.Int r.Runner.spec.Workload.key_range);
      ("total_ops", J.Int r.Runner.spec.Workload.total_ops);
      ("mean_ms", J.Float r.Runner.mean_ms);
      ("stddev_ms", J.Float r.Runner.stddev_ms);
      ("trials_ms", J.List (List.map (fun t -> J.Float t) r.Runner.trials_ms));
      ("ops_per_s", J.Float r.Runner.throughput);
      (* Derived allocation figure the CI regression gate keys on. *)
      ( "minor_words_per_commit",
        if r.Runner.stats.Stats.commits = 0 then J.Null
        else
          J.Float
            (float_of_int r.Runner.stats.Stats.minor_words
            /. float_of_int r.Runner.stats.Stats.commits) );
      ( "stats",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Int v)) (Stats.to_assoc r.Runner.stats))
      );
      ( "latency_ns",
        match r.Runner.latency with
        | Some s -> Proust_obs.Metrics.scope_summary_to_json s
        | None -> J.Null );
    ]

(** The report envelope: [config] carries run-level settings (host
    facts, CLI flags, STM mode) as caller-chosen fields. *)
let json_report ~config cells =
  J.Obj
    [
      ("schema", J.String "proust-bench/v1");
      ("config", J.Obj config);
      ("cells", J.List cells);
    ]

let write_json ~file ~config cells =
  J.write_file file (json_report ~config cells)
