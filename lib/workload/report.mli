(** Table/series/JSON rendering for benchmark output, in the shape of
    the paper's Figure 4 series.  CSV columns and the
    ["proust-bench/v1"] JSON report derive their STM-counter fields
    from {!Stats.to_assoc}. *)

val header : unit -> unit
val row : name:string -> Runner.result -> unit
val csv_header : out_channel -> unit
val csv_row : out_channel -> name:string -> Runner.result -> unit
val section : string -> unit

(** One measured cell as a JSON object: run shape ([impl], [u], [o],
    [threads], …), timings, the {!Stats.to_assoc} counter diff, and the
    latency summary ([null] when metrics were off). *)
val json_cell : name:string -> Runner.result -> Proust_obs.Json.t

(** The report envelope: [{schema = "proust-bench/v1"; config; cells}].
    [config] carries run-level settings as caller-chosen fields. *)
val json_report :
  config:(string * Proust_obs.Json.t) list ->
  Proust_obs.Json.t list ->
  Proust_obs.Json.t

val write_json :
  file:string ->
  config:(string * Proust_obs.Json.t) list ->
  Proust_obs.Json.t list ->
  unit
