(** Multi-domain throughput runner for the Figure 4 experiment.

    Each trial prefills the map to half the key range, splits the
    operation stream across [threads] domains, releases them through a
    spin barrier, and times the window from release to last join.
    Trials are separated by a major GC ("garbage collecting in between
    to reduce jitter", §7); the first [warmup] trials are discarded. *)

type result = {
  threads : int;
  spec : Workload.spec;
  mean_ms : float;
  stddev_ms : float;
  trials_ms : float list;
  throughput : float;  (** committed ops per second, from the mean *)
  stats : Stats.snapshot;  (** STM activity during the measured trials *)
}

let barrier n =
  let c = Atomic.make 0 in
  fun () ->
    Atomic.incr c;
    while Atomic.get c < n do
      Domain.cpu_relax ()
    done

let prefill ?config (ops : (int, int) Proust_structures.Map_intf.ops) spec =
  let rng = Random.State.make [| 0xbeef |] in
  for _ = 1 to spec.Workload.key_range / 2 do
    let k = Random.State.int rng spec.Workload.key_range in
    Stm.atomically ?config (fun txn -> ignore (ops.put txn k k))
  done

let run_trial ?config ?dist ~threads ~(spec : Workload.spec) make_ops =
  let ops = make_ops () in
  prefill ?config ops spec;
  let per_thread = spec.total_ops / threads in
  let streams =
    Array.init threads (fun i ->
        Workload.stream ~seed:(i + 1) ?dist spec ~count:per_thread)
  in
  let enter = barrier threads in
  (* Workers time themselves: first-start to last-finish.  Timing from
     the spawning thread under-measures when there are fewer cores than
     domains (the workers can finish before the spawner runs again). *)
  let started = Array.make threads 0.0 in
  let finished = Array.make threads 0.0 in
  let body i () =
    enter ();
    started.(i) <- Unix.gettimeofday ();
    let stream = streams.(i) in
    let n = Array.length stream in
    let o = spec.ops_per_txn in
    let idx = ref 0 in
    while !idx < n do
      let stop = min n (!idx + o) in
      let start = !idx in
      Stm.atomically ?config (fun txn ->
          for j = start to stop - 1 do
            Workload.apply_op ops txn stream.(j)
          done);
      idx := stop
    done;
    finished.(i) <- Unix.gettimeofday ()
  in
  let domains = List.init threads (fun i -> Domain.spawn (body i)) in
  List.iter Domain.join domains;
  Array.fold_left max neg_infinity finished
  -. Array.fold_left min infinity started

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

(** [run ?config ?chaos ~threads ~spec ~trials ~warmup make_ops] —
    [make_ops] builds a fresh map per trial so trials are independent.
    [chaos] arms {!Fault} with the given policy for the measured trials
    (and disarms it afterwards), so a run can report STM behaviour under
    an adversarial schedule; the returned stats then carry the injected
    fault and serial-fallback counts. *)
let run ?config ?chaos ?chaos_seed ?dist ?(trials = 3) ?(warmup = 1) ~threads
    ~spec make_ops =
  for _ = 1 to warmup do
    ignore (run_trial ?config ?dist ~threads ~spec make_ops);
    Gc.full_major ()
  done;
  (match chaos with
  | None -> ()
  | Some policy -> Fault.configure ?seed:chaos_seed policy);
  Fun.protect
    ~finally:(fun () -> if chaos <> None then Fault.disable ())
    (fun () ->
      let before = Stats.read () in
      let times =
        List.init trials (fun _ ->
            let dt = run_trial ?config ?dist ~threads ~spec make_ops in
            Gc.full_major ();
            dt)
      in
      let after = Stats.read () in
      let ms = List.map (fun s -> s *. 1000.0) times in
      {
        threads;
        spec;
        mean_ms = mean ms;
        stddev_ms = stddev ms;
        trials_ms = ms;
        throughput = float_of_int spec.total_ops /. (mean times);
        stats = Stats.diff before after;
      })

(** Share of transaction attempts that escalated to the
    serial-irrevocable fallback during the measured trials. *)
let fallback_rate (r : result) =
  if r.stats.Stats.starts = 0 then 0.0
  else float_of_int r.stats.Stats.fallbacks /. float_of_int r.stats.Stats.starts
