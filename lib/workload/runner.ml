(** Multi-domain throughput runner for the Figure 4 experiment.

    Each trial prefills the structure, splits the operation stream
    across [threads] domains, releases them through a spin barrier,
    and times the window from release to last join.  Trials are
    separated by a major GC ("garbage collecting in between to reduce
    jitter", §7); the first [warmup] trials are discarded.

    The core loop is generic over the operation type, so the same
    trial machinery drives maps, FIFO queues and priority queues;
    {!run_entry} dispatches on a {!Registry.entry}.  When a [label] is
    given, each worker domain enters that {!Proust_obs.Metrics} scope,
    so a run's commit/abort-retry/lock-wait latency histograms land
    under the implementation's name; the scope is reset after warmup
    and summarized into the result when metrics are enabled. *)

type result = {
  threads : int;
  spec : Workload.spec;
  mean_ms : float;
  stddev_ms : float;
  trials_ms : float list;
  throughput : float;  (** committed ops per second, from the mean *)
  stats : Stats.snapshot;  (** STM activity during the measured trials *)
  latency : Proust_obs.Metrics.scope_summary option;
      (** per-scope latency histograms for the measured trials; [None]
          unless a [label] was given and metrics were enabled *)
}

let barrier n =
  let c = Atomic.make 0 in
  fun () ->
    Atomic.incr c;
    while Atomic.get c < n do
      Domain.cpu_relax ()
    done

(* One trial, generic over the structure ('ops) and operation ('op)
   types.  [streams i] yields domain [i]'s pre-generated operations. *)
let run_trial (type ops op) ?config ?label ~threads ~(spec : Workload.spec)
    ~(prefill : Stm.config option -> ops -> unit) ~(streams : int -> op array)
    ~(apply : ops -> Stm.txn -> op -> unit) (make_ops : unit -> ops) =
  let ops = make_ops () in
  prefill config ops;
  let streams = Array.init threads streams in
  let enter = barrier threads in
  (* Workers time themselves: first-start to last-finish, on the
     monotonic clock (a wall-clock step mid-trial would corrupt the
     window).  Timing from the spawning thread under-measures when
     there are fewer cores than domains (the workers can finish before
     the spawner runs again). *)
  let started = Array.make threads 0.0 in
  let finished = Array.make threads 0.0 in
  let body i () =
    Option.iter Proust_obs.Metrics.set_label label;
    enter ();
    started.(i) <- Clock.now_mono ();
    (* [Gc.minor_words] is per-domain in OCaml 5, so each worker owns
       its delta; the bulk-add into [Stats] makes the run's total
       divisible by committed transactions for a words-per-commit
       figure. *)
    let words0 = Gc.minor_words () in
    let stream = streams.(i) in
    let n = Array.length stream in
    let o = spec.ops_per_txn in
    let idx = ref 0 in
    while !idx < n do
      let stop = min n (!idx + o) in
      let start = !idx in
      Stm.atomically ?config (fun txn ->
          for j = start to stop - 1 do
            apply ops txn stream.(j)
          done);
      idx := stop
    done;
    Stats.add_minor_words (int_of_float (Gc.minor_words () -. words0));
    finished.(i) <- Clock.now_mono ()
  in
  let domains = List.init threads (fun i -> Domain.spawn (body i)) in
  List.iter Domain.join domains;
  Array.fold_left max neg_infinity finished
  -. Array.fold_left min infinity started

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

(* Generic warmup/measure harness shared by all three structure kinds.
   [chaos] arms {!Fault} with the given policy for the measured trials
   (and disarms it afterwards), so a run can report STM behaviour under
   an adversarial schedule. *)
let run_gen ?config ?chaos ?chaos_seed ?(trials = 3) ?(warmup = 1) ?label
    ~threads ~spec ~prefill ~streams ~apply make_ops =
  let trial () =
    run_trial ?config ?label ~threads ~spec ~prefill ~streams ~apply make_ops
  in
  for _ = 1 to warmup do
    ignore (trial ());
    Gc.full_major ()
  done;
  (* Warmup latencies would pollute the measured histograms. *)
  Option.iter Proust_obs.Metrics.reset_scope label;
  (match chaos with
  | None -> ()
  | Some policy -> Fault.configure ?seed:chaos_seed policy);
  Fun.protect
    ~finally:(fun () -> if chaos <> None then Fault.disable ())
    (fun () ->
      let before = Stats.read () in
      let times =
        List.init trials (fun _ ->
            let dt = trial () in
            Gc.full_major ();
            dt)
      in
      let after = Stats.read () in
      let ms = List.map (fun s -> s *. 1000.0) times in
      {
        threads;
        spec;
        mean_ms = mean ms;
        stddev_ms = stddev ms;
        trials_ms = ms;
        throughput = float_of_int spec.Workload.total_ops /. mean times;
        stats = Stats.diff before after;
        latency =
          (match label with
          | Some l when Proust_obs.Metrics.enabled () ->
              Proust_obs.Metrics.read_scope l
          | _ -> None);
      })

(** [run ?config ?chaos ~threads ~spec make_ops] — the map benchmark.
    [make_ops] builds a fresh map per trial so trials are independent;
    prefill inserts [key_range / 2] random keys. *)
let run ?config ?chaos ?chaos_seed ?dist ?trials ?warmup ?label ~threads
    ~(spec : Workload.spec) make_ops =
  let prefill config ops =
    let rng = Random.State.make [| 0xbeef |] in
    for _ = 1 to spec.Workload.key_range / 2 do
      let k = Random.State.int rng spec.Workload.key_range in
      Stm.atomically ?config (fun txn ->
          ignore (ops.Proust_structures.Trait.Map.put txn k k))
    done
  in
  let per_thread = spec.Workload.total_ops / threads in
  run_gen ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads ~spec
    ~prefill
    ~streams:(fun i -> Workload.stream ~seed:(i + 1) ?dist spec ~count:per_thread)
    ~apply:Workload.apply_op make_ops

(** FIFO-queue benchmark: prefill enqueues [key_range / 2] values. *)
let run_queue ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads
    ~(spec : Workload.spec) make_ops =
  let prefill config ops =
    for v = 1 to spec.Workload.key_range / 2 do
      Stm.atomically ?config (fun txn ->
          ops.Proust_structures.Trait.Queue.enqueue txn v)
    done
  in
  let per_thread = spec.Workload.total_ops / threads in
  run_gen ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads ~spec
    ~prefill
    ~streams:(fun i -> Workload.queue_stream ~seed:(i + 1) spec ~count:per_thread)
    ~apply:Workload.apply_qop make_ops

(** Priority-queue benchmark: prefill inserts [key_range / 2] random
    values. *)
let run_pqueue ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads
    ~(spec : Workload.spec) make_ops =
  let prefill config ops =
    let rng = Random.State.make [| 0xbeef |] in
    for _ = 1 to spec.Workload.key_range / 2 do
      let v = Random.State.int rng spec.Workload.key_range in
      Stm.atomically ?config (fun txn ->
          ops.Proust_structures.Trait.Pqueue.insert txn v)
    done
  in
  let per_thread = spec.Workload.total_ops / threads in
  run_gen ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads ~spec
    ~prefill
    ~streams:(fun i ->
      Workload.pqueue_stream ~seed:(i + 1) spec ~count:per_thread)
    ~apply:Workload.apply_pqop make_ops

(** Counter benchmark: prefill increments [key_range / 2] times so
    early decrements have headroom. *)
let run_counter ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads
    ~(spec : Workload.spec) make_ops =
  let prefill config ops =
    for _ = 1 to spec.Workload.key_range / 2 do
      Stm.atomically ?config (fun txn ->
          ops.Proust_structures.Trait.Counter.incr txn)
    done
  in
  let per_thread = spec.Workload.total_ops / threads in
  run_gen ?config ?chaos ?chaos_seed ?trials ?warmup ?label ~threads ~spec
    ~prefill
    ~streams:(fun i ->
      Workload.counter_stream ~seed:(i + 1) spec ~count:per_thread)
    ~apply:Workload.apply_cop make_ops

(** Benchmark a {!Registry.entry} under the STM config its trait header
    requires; the metrics scope defaults to the entry's name. *)
let run_entry ?chaos ?chaos_seed ?dist ?trials ?warmup ?label ~threads ~spec
    (e : Registry.entry) =
  let label = Option.value label ~default:e.Registry.name in
  match e.Registry.target with
  | Registry.Map make ->
      run ?config:e.Registry.config ?chaos ?chaos_seed ?dist ?trials ?warmup
        ~label ~threads ~spec make
  | Registry.Queue make ->
      run_queue ?config:e.Registry.config ?chaos ?chaos_seed ?trials ?warmup
        ~label ~threads ~spec make
  | Registry.Pqueue make ->
      run_pqueue ?config:e.Registry.config ?chaos ?chaos_seed ?trials ?warmup
        ~label ~threads ~spec make
  | Registry.Counter make ->
      run_counter ?config:e.Registry.config ?chaos ?chaos_seed ?trials ?warmup
        ~label ~threads ~spec make

(** Share of transaction attempts that escalated to the
    serial-irrevocable fallback during the measured trials. *)
let fallback_rate (r : result) =
  if r.stats.Stats.starts = 0 then 0.0
  else float_of_int r.stats.Stats.fallbacks /. float_of_int r.stats.Stats.starts
