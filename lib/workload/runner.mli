(** Multi-domain throughput runner for the Figure 4 experiment: each
    trial prefills the map to half the key range, splits the stream
    across domains released through a spin barrier, and measures
    first-start to last-finish inside the workers (timing from the
    spawner under-measures when domains outnumber cores).  Trials are
    separated by a major GC; warmup trials are discarded. *)

type result = {
  threads : int;
  spec : Workload.spec;
  mean_ms : float;
  stddev_ms : float;
  trials_ms : float list;
  throughput : float;  (** committed ops per second, from the mean *)
  stats : Stats.snapshot;  (** STM activity during the measured trials *)
}

(** [barrier n] returns an [enter] function that blocks until [n]
    participants arrived. *)
val barrier : int -> unit -> unit

(** [run ?config ?chaos ?dist ~threads ~spec make_ops] — [make_ops]
    builds a fresh map per trial so trials are independent.  [chaos]
    arms {!Fault} with the given policy for the measured trials and
    disarms it afterwards; the result's stats then include the injected
    fault and serial-fallback counts for fallback-rate reporting. *)
val run :
  ?config:Stm.config ->
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?dist:Workload.distribution ->
  ?trials:int ->
  ?warmup:int ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> (int, int) Proust_structures.Map_intf.ops) ->
  result

(** Share of attempts that escalated to the serial-irrevocable
    fallback during the measured trials. *)
val fallback_rate : result -> float
