(** Multi-domain throughput runner for the Figure 4 experiment: each
    trial prefills the structure, splits the stream across domains
    released through a spin barrier, and measures first-start to
    last-finish inside the workers (timing from the spawner
    under-measures when domains outnumber cores).  Trials are
    separated by a major GC; warmup trials are discarded.

    The same trial machinery drives maps, FIFO queues and priority
    queues; {!run_entry} dispatches on a {!Registry.entry}.  A [label]
    routes each worker into that {!Proust_obs.Metrics} scope (reset
    after warmup), and the scope's latency summary lands in the result
    when metrics are enabled. *)

type result = {
  threads : int;
  spec : Workload.spec;
  mean_ms : float;
  stddev_ms : float;
  trials_ms : float list;
  throughput : float;  (** committed ops per second, from the mean *)
  stats : Stats.snapshot;  (** STM activity during the measured trials *)
  latency : Proust_obs.Metrics.scope_summary option;
      (** per-scope latency histograms for the measured trials; [None]
          unless a [label] was given and metrics were enabled *)
}

(** [barrier n] returns an [enter] function that blocks until [n]
    participants arrived. *)
val barrier : int -> unit -> unit

(** [run ?config ?chaos ~threads ~spec make_ops] — [make_ops] builds a
    fresh map per trial so trials are independent.  [chaos] arms
    {!Fault} with the given policy for the measured trials and disarms
    it afterwards; the result's stats then include the injected fault
    and serial-fallback counts for fallback-rate reporting. *)
val run :
  ?config:Stm.config ->
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?dist:Workload.distribution ->
  ?trials:int ->
  ?warmup:int ->
  ?label:string ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> (int, int) Proust_structures.Trait.Map.ops) ->
  result

(** FIFO-queue variant: [spec.write_fraction] is the enqueue share. *)
val run_queue :
  ?config:Stm.config ->
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?trials:int ->
  ?warmup:int ->
  ?label:string ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> int Proust_structures.Trait.Queue.ops) ->
  result

(** Priority-queue variant: [spec.write_fraction] is the insert
    share. *)
val run_pqueue :
  ?config:Stm.config ->
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?trials:int ->
  ?warmup:int ->
  ?label:string ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> int Proust_structures.Trait.Pqueue.ops) ->
  result

(** Counter variant: [spec.write_fraction] is the increment share; the
    rest splits between decrements and value reads. *)
val run_counter :
  ?config:Stm.config ->
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?trials:int ->
  ?warmup:int ->
  ?label:string ->
  threads:int ->
  spec:Workload.spec ->
  (unit -> Proust_structures.Trait.Counter.ops) ->
  result

(** Benchmark a registry entry under the STM config its trait header
    requires; the metrics scope defaults to the entry's name. *)
val run_entry :
  ?chaos:(Fault.point * Fault.site) list ->
  ?chaos_seed:int ->
  ?dist:Workload.distribution ->
  ?trials:int ->
  ?warmup:int ->
  ?label:string ->
  threads:int ->
  spec:Workload.spec ->
  Registry.entry ->
  result

(** Share of attempts that escalated to the serial-irrevocable
    fallback during the measured trials. *)
val fallback_rate : result -> float
