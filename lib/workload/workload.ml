(** Workload generation for the §7 map-throughput experiment.

    Randomly selected operations over a fixed key range: a [u] fraction
    of operations are writes, split evenly between [put] and [remove];
    the rest are [get] (§7).  Operations are pre-generated so RNG cost
    stays out of the timed region. *)

type op = Get of int | Put of int * int | Remove of int

type spec = {
  key_range : int;  (** keys are drawn uniformly from [0, key_range) *)
  write_fraction : float;  (** the paper's [u] *)
  ops_per_txn : int;  (** the paper's [o] *)
  total_ops : int;  (** across all threads *)
}

let default_spec =
  { key_range = 1024; write_fraction = 0.5; ops_per_txn = 1; total_ops = 20_000 }

(** Key popularity: [Uniform] is the paper's setup; [Zipf s] skews
    access towards hot keys with exponent [s] (s ~ 0.99 approximates
    many caching workloads), raising semantic contention without
    changing the key range. *)
type distribution = Uniform | Zipf of float

(* Inverse-CDF sampler over [0, n). *)
let zipf_sampler ~s ~n =
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !total
  done;
  fun rng ->
    let u = Random.State.float rng !total in
    (* binary search for the first index with cdf >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

let key_sampler dist spec =
  match dist with
  | Uniform -> fun rng -> Random.State.int rng spec.key_range
  | Zipf s -> zipf_sampler ~s ~n:spec.key_range

let gen_op rng sample spec =
  let k = sample rng in
  if Random.State.float rng 1.0 < spec.write_fraction then
    if Random.State.bool rng then Put (k, Random.State.int rng 1_000_000)
    else Remove k
  else Get k

(** [stream ~seed spec ~count] pre-generates [count] operations. *)
let stream ~seed ?(dist = Uniform) spec ~count =
  let rng = Random.State.make [| seed; spec.key_range; spec.ops_per_txn |] in
  let sample = key_sampler dist spec in
  Array.init count (fun _ -> gen_op rng sample spec)

(** Number of transactions a stream of [count] ops forms (the tail
    transaction may be short). *)
let txn_count spec ~count = (count + spec.ops_per_txn - 1) / spec.ops_per_txn

let apply_op (ops : (int, int) Proust_structures.Trait.Map.ops) txn = function
  | Get k -> ignore (ops.get txn k)
  | Put (k, v) -> ignore (ops.put txn k v)
  | Remove k -> ignore (ops.remove txn k)

(* ------------------------------------------------------------------ *)
(* Queue and priority-queue streams.  [write_fraction] doubles as the
   producer fraction: a [u] share of operations insert, the rest
   consume.  The same spec record drives all three shapes so a bench
   cell is comparable across structure kinds. *)

type qop = Enqueue of int | Dequeue
type pqop = Insert of int | Remove_min

let queue_stream ~seed (spec : spec) ~count =
  let rng = Random.State.make [| seed; 0xf1f0; spec.ops_per_txn |] in
  Array.init count (fun _ ->
      if Random.State.float rng 1.0 < spec.write_fraction then
        Enqueue (Random.State.int rng spec.key_range)
      else Dequeue)

let pqueue_stream ~seed (spec : spec) ~count =
  let rng = Random.State.make [| seed; 0x9e9e; spec.ops_per_txn |] in
  Array.init count (fun _ ->
      if Random.State.float rng 1.0 < spec.write_fraction then
        Insert (Random.State.int rng spec.key_range)
      else Remove_min)

let apply_qop (ops : int Proust_structures.Trait.Queue.ops) txn = function
  | Enqueue v -> ops.enqueue txn v
  | Dequeue -> ignore (ops.dequeue txn)

let apply_pqop (ops : int Proust_structures.Trait.Pqueue.ops) txn = function
  | Insert v -> ops.insert txn v
  | Remove_min -> ignore (ops.remove_min txn)

(* Counter stream: the [u] share increments; the rest split evenly
   between (failable) decrements and transactional value reads. *)
type cop = Cincr | Cdecr | Cvalue

let counter_stream ~seed (spec : spec) ~count =
  let rng = Random.State.make [| seed; 0xc0de; spec.ops_per_txn |] in
  Array.init count (fun _ ->
      if Random.State.float rng 1.0 < spec.write_fraction then Cincr
      else if Random.State.bool rng then Cdecr
      else Cvalue)

let apply_cop (ops : Proust_structures.Trait.Counter.ops) txn = function
  | Cincr -> ops.incr txn
  | Cdecr -> ignore (ops.decr txn)
  | Cvalue -> ignore (ops.value txn)
