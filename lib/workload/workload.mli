(** Workload generation for the §7 map-throughput experiment: randomly
    selected operations over a fixed key range, a [u] fraction of them
    writes (split evenly between put and remove), pre-generated so RNG
    cost stays out of the timed region. *)

type op = Get of int | Put of int * int | Remove of int

type spec = {
  key_range : int;  (** keys are drawn from [0, key_range) *)
  write_fraction : float;  (** the paper's [u] *)
  ops_per_txn : int;  (** the paper's [o] *)
  total_ops : int;  (** across all threads *)
}

val default_spec : spec

(** Key popularity: [Uniform] is the paper's setup; [Zipf s] skews
    access towards hot keys with exponent [s]. *)
type distribution = Uniform | Zipf of float

val stream : seed:int -> ?dist:distribution -> spec -> count:int -> op array

(** Transactions formed by a stream of [count] ops (ragged tail
    included). *)
val txn_count : spec -> count:int -> int

val apply_op :
  (int, int) Proust_structures.Trait.Map.ops -> Stm.txn -> op -> unit

(** Queue / priority-queue streams over the same {!spec}:
    [write_fraction] is the producer (enqueue/insert) share. *)

type qop = Enqueue of int | Dequeue
type pqop = Insert of int | Remove_min

val queue_stream : seed:int -> spec -> count:int -> qop array
val pqueue_stream : seed:int -> spec -> count:int -> pqop array
val apply_qop : int Proust_structures.Trait.Queue.ops -> Stm.txn -> qop -> unit

val apply_pqop :
  int Proust_structures.Trait.Pqueue.ops -> Stm.txn -> pqop -> unit

(** Counter operations: the [write_fraction] share increments, the
    rest split evenly between decrements and value reads. *)
type cop = Cincr | Cdecr | Cvalue

val counter_stream : seed:int -> spec -> count:int -> cop array
val apply_cop : Proust_structures.Trait.Counter.ops -> Stm.txn -> cop -> unit
