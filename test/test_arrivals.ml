(* Open-system traffic generation: arrival processes, skewed key
   distributions, and the seed-determinism contract the open runner
   leans on.

   Statistical assertions use wide tolerances and fixed sub-seeds: the
   point is catching inverted logic (a Zipf that is secretly uniform, a
   Poisson off by 10x), not certifying the generators to three
   decimals. *)

open Util
module W = Proust_workload
module A = W.Arrivals

let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr)

let gaps sched =
  Array.init
    (Array.length sched - 1)
    (fun i -> sched.(i + 1) -. sched.(i))

(* -- Schedules ------------------------------------------------------- *)

let test_poisson_interarrival () =
  let st = A.rng ~seed:(sub_seed 1) ~salt:[ 0; 1 ] () in
  let rate = 10_000.0 in
  let sched = A.schedule st (A.Poisson { rate }) ~count:50_000 in
  Array.iteri
    (fun i t ->
      if i > 0 && t < sched.(i - 1) then
        Alcotest.failf "schedule not nondecreasing at %d" i)
    sched;
  let g = gaps sched in
  let m = mean g in
  (* Mean inter-arrival = 1/rate within 5% over 50k samples. *)
  if Float.abs ((m *. rate) -. 1.0) > 0.05 then
    Alcotest.failf "Poisson mean gap %.3g, expected %.3g" m (1.0 /. rate);
  (* Exponential gaps: P(gap > mean) = 1/e ~ 0.368. *)
  let above = Array.fold_left (fun n x -> if x > m then n + 1 else n) 0 g in
  let frac = float_of_int above /. float_of_int (Array.length g) in
  if Float.abs (frac -. 0.368) > 0.03 then
    Alcotest.failf "P(gap > mean) = %.3f, expected ~0.368" frac

let test_bursty_rate_between () =
  let p =
    A.Bursty
      { rate_on = 50_000.0; rate_off = 5_000.0; mean_on = 0.1; mean_off = 0.1 }
  in
  check (Alcotest.float 1.0) "mean_rate" 27_500.0 (A.mean_rate p);
  (* Averaged over many independent windows the realized rate must
     straddle the analytic mean; any single window may not (duty-cycle
     variance is the point of the process). *)
  let total = ref 0 in
  let runs = 20 in
  let span = 1.0 in
  for s = 1 to runs do
    let st = A.rng ~seed:(sub_seed 2) ~salt:[ s; 1 ] () in
    let sched = A.schedule st p ~count:60_000 in
    Array.iteri
      (fun i t ->
        if i > 0 && t < sched.(i - 1) then
          Alcotest.failf "bursty schedule not nondecreasing at %d" i)
      sched;
    total :=
      !total
      + Array.fold_left (fun n t -> if t <= span then n + 1 else n) 0 sched
  done;
  let realized = float_of_int !total /. (float_of_int runs *. span) in
  if Float.abs ((realized /. A.mean_rate p) -. 1.0) > 0.15 then
    Alcotest.failf "bursty realized rate %.0f vs mean %.0f" realized
      (A.mean_rate p)

(* -- Key distributions ----------------------------------------------- *)

let sample_hist g st ~n ~keys =
  let h = Array.make keys 0 in
  for _ = 1 to n do
    let k = A.next_key g st in
    if k < 0 || k >= keys then Alcotest.failf "key %d outside keyspace" k;
    h.(k) <- h.(k) + 1
  done;
  h

let test_zipf_rank_frequency () =
  let keys = 100_000 in
  let g = A.keygen (A.Zipf { s = 0.8; scramble = false }) ~keys in
  let st = A.rng ~seed:(sub_seed 3) ~salt:[ 0; 2 ] () in
  let n = 200_000 in
  let h = sample_hist g st ~n ~keys in
  (* Unscrambled: rank i is key i.  Rank-frequency must decay — each
     decade of rank cuts frequency by roughly 10^-s, so adjacent
     decades must at least be ordered with real separation. *)
  let mass lo hi =
    let t = ref 0 in
    for i = lo to hi do
      t := !t + h.(i)
    done;
    !t
  in
  let top1 = mass 0 0 in
  let d10 = mass 0 9 in
  let d100 = mass 10 99 in
  let d1000 = mass 100 999 in
  if not (top1 > 0 && d10 > d100 / 5 && d100 > d1000 / 5) then
    Alcotest.failf "Zipf decades not decaying: %d / %d / %d" d10 d100 d1000;
  (* The head must be far above the uniform share n/keys = 2. *)
  if top1 < 100 * (n / keys) then
    Alcotest.failf "Zipf head %d barely above uniform share %d" top1 (n / keys);
  (* And the tail must still be populated (not a degenerate hot-only
     generator). *)
  if mass 1000 (keys - 1) = 0 then Alcotest.fail "Zipf tail empty"

let test_zipf_scramble_spreads () =
  let keys = 65_536 in
  let g = A.keygen (A.Zipf { s = 0.9; scramble = true }) ~keys in
  let st = A.rng ~seed:(sub_seed 4) ~salt:[ 0; 3 ] () in
  let n = 50_000 in
  let h = sample_hist g st ~n ~keys in
  (* Scrambling moves popularity off the rank prefix: the first 16
     keys must NOT hold the head mass they would unscrambled (~40%). *)
  let prefix = ref 0 in
  for i = 0 to 15 do
    prefix := !prefix + h.(i)
  done;
  if float_of_int !prefix /. float_of_int n > 0.2 then
    Alcotest.failf "scrambled Zipf still has %d/%d in the rank prefix" !prefix n;
  (* But the distribution is still skewed: some key is far above the
     uniform share. *)
  let hottest = Array.fold_left max 0 h in
  if hottest < 20 * max 1 (n / keys) then
    Alcotest.failf "scrambled Zipf hottest key only %d samples" hottest

let test_hotset_fraction () =
  let keys = 100_000 and hot = 8 in
  let fraction = 0.9 in
  let g = A.keygen (A.Hotset { hot; fraction }) ~keys in
  let st = A.rng ~seed:(sub_seed 5) ~salt:[ 0; 4 ] () in
  let n = 100_000 in
  let h = sample_hist g st ~n ~keys in
  let in_hot = ref 0 in
  for i = 0 to hot - 1 do
    in_hot := !in_hot + h.(i)
  done;
  (* Expected hot mass = fraction + (1-fraction) * hot/keys. *)
  let expect = fraction +. ((1.0 -. fraction) *. float_of_int hot /. float_of_int keys) in
  let got = float_of_int !in_hot /. float_of_int n in
  if Float.abs (got -. expect) > 0.02 then
    Alcotest.failf "hotset mass %.3f, expected %.3f" got expect

(* -- Determinism ----------------------------------------------------- *)

let test_seed_determinism () =
  let mk seed salt =
    let st = A.rng ~seed ~salt () in
    A.schedule st (A.Poisson { rate = 1000.0 }) ~count:2_000
  in
  let a = mk 42 [ 0; 1 ] and b = mk 42 [ 0; 1 ] in
  check cb "same seed+salt: identical schedules" true (a = b);
  let c = mk 42 [ 1; 1 ] in
  check cb "different salt: different schedule" false (a = c);
  let d = mk 43 [ 0; 1 ] in
  check cb "different seed: different schedule" false (a = d);
  (* Ops streams too: same inputs, same array. *)
  let ops seed =
    let st = A.rng ~seed ~salt:[ 0; 2 ] () in
    let g = A.keygen (A.Zipf { s = 0.7; scramble = true }) ~keys:10_000 in
    A.ops st g ~write_fraction:0.3 ~count:5_000
  in
  check cb "same seed: identical op stream" true (ops 7 = ops 7);
  check cb "different seed: different op stream" false (ops 7 = ops 8)

let test_ops_write_fraction () =
  let st = A.rng ~seed:(sub_seed 6) ~salt:[ 0; 5 ] () in
  let g = A.keygen A.Uniform ~keys:1_000 in
  let reads =
    A.ops st g ~write_fraction:0.0 ~count:2_000
    |> Array.for_all (function W.Workload.Get _ -> true | _ -> false)
  in
  check cb "write_fraction 0: all reads" true reads;
  let writes =
    A.ops st g ~write_fraction:1.0 ~count:2_000
    |> Array.for_all (function W.Workload.Get _ -> false | _ -> true)
  in
  check cb "write_fraction 1: no reads" true writes

(* qcheck: schedules are nondecreasing and start past zero for any
   rate and count in a sane range. *)
let qcheck_schedule_monotone =
  qcheck ~count:100 "any Poisson schedule is nondecreasing and positive"
    QCheck2.Gen.(pair (int_range 1 2_000) (float_range 10.0 100_000.0))
    (fun (count, rate) ->
      let st = A.rng ~seed:(sub_seed 7) ~salt:[ count; 6 ] () in
      let sched = A.schedule st (A.Poisson { rate }) ~count in
      let ok = ref (Array.length sched = count) in
      Array.iteri
        (fun i t ->
          if t <= 0.0 then ok := false;
          if i > 0 && t < sched.(i - 1) then ok := false)
        sched;
      !ok)

let qcheck_zipf_in_range =
  qcheck ~count:100 "Zipf samples stay inside the keyspace"
    QCheck2.Gen.(pair (int_range 2 1_000_000) (float_range 0.05 0.95))
    (fun (keys, s) ->
      let g = A.keygen (A.Zipf { s; scramble = (keys land 1 = 0) }) ~keys in
      let st = A.rng ~seed:(sub_seed 8) ~salt:[ keys; 7 ] () in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = A.next_key g st in
        if k < 0 || k >= keys then ok := false
      done;
      !ok)

let suite =
  [
    test "Poisson inter-arrival mean and shape" test_poisson_interarrival;
    test "bursty rate brackets and monotonicity" test_bursty_rate_between;
    test "Zipf rank-frequency decays" test_zipf_rank_frequency;
    test "Zipf scramble spreads the head" test_zipf_scramble_spreads;
    test "hotset mass matches the fraction" test_hotset_fraction;
    test "schedules and op streams are seed-deterministic"
      test_seed_determinism;
    test "op streams honour write_fraction" test_ops_write_fraction;
    qcheck_schedule_monotone;
    qcheck_zipf_in_range;
  ]
