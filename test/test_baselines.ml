(** Tests for the comparison systems: the pure-STM map, transactional
    predication, and the boosting/coarse presets. *)

open Util
module B = Proust_baselines
module S = Proust_structures

let baseline_maps :
    (string * (unit -> (int, int) S.Trait.Map.ops)) list =
  [
    ("stm-map", fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ()));
    ( "stm-map-sized",
      fun () -> B.Stm_hashmap.ops (B.Stm_hashmap.make ~track_size:true ()) );
    ("predication", fun () -> B.Predication_map.ops (B.Predication_map.make ()));
    ("boosted", fun () -> B.Boosted_map.ops (B.Boosted_map.make ()));
    ("coarse", fun () -> B.Coarse_map.ops (B.Coarse_map.make ()));
  ]

let semantics (ops : (int, int) S.Trait.Map.ops) () =
  let at f = Stm.atomically f in
  check copt_i "get empty" None (at (fun txn -> ops.get txn 1));
  check copt_i "put fresh" None (at (fun txn -> ops.put txn 1 10));
  check copt_i "put old" (Some 10) (at (fun txn -> ops.put txn 1 11));
  check cb "contains" true (at (fun txn -> ops.contains txn 1));
  check ci "size" 1 (at (fun txn -> ops.size txn));
  check copt_i "remove" (Some 11) (at (fun txn -> ops.remove txn 1));
  check ci "size after" 0 (at (fun txn -> ops.size txn))

let rollback (ops : (int, int) S.Trait.Map.ops) () =
  ignore (Stm.atomically (fun txn -> ops.put txn 1 100));
  let tries = ref 0 in
  Stm.atomically (fun txn ->
      incr tries;
      if !tries = 1 then begin
        ignore (ops.put txn 1 999);
        ignore (ops.put txn 2 2);
        ignore (Stm.restart txn)
      end);
  check copt_i "restored" (Some 100)
    (Stm.atomically (fun txn -> ops.get txn 1));
  check copt_i "no phantom" None (Stm.atomically (fun txn -> ops.get txn 2))

let transfers (ops : (int, int) S.Trait.Map.ops) () =
  let keys = 10 in
  Stm.atomically (fun txn ->
      for k = 0 to keys - 1 do
        ignore (ops.put txn k 50)
      done);
  spawn_all 4 (fun d ->
      let rng = Random.State.make [| d |] in
      for _ = 1 to 200 do
        let a = Random.State.int rng keys and b = Random.State.int rng keys in
        if a <> b then
          Stm.atomically (fun txn ->
              let va = Option.get (ops.get txn a) in
              ignore (ops.put txn a (va - 1));
              let vb = Option.get (ops.get txn b) in
              ignore (ops.put txn b (vb + 1)))
      done);
  let total =
    Stm.atomically (fun txn ->
        let t = ref 0 in
        for k = 0 to keys - 1 do
          t := !t + Option.get (ops.get txn k)
        done;
        !t)
  in
  check ci "conserved" (keys * 50) total

let per_baseline_tests =
  List.concat_map
    (fun (name, make) ->
      [
        test (name ^ ": semantics") (fun () -> semantics (make ()) ());
        test (name ^ ": rollback") (fun () -> rollback (make ()) ());
        slow (name ^ ": concurrent transfers") (fun () -> transfers (make ()) ());
      ])
    baseline_maps

(* ------------------------------------------------------------------ *)
(* False conflicts: the motivating §1 observation.  Two transactions
   touching different keys in the same bucket conflict on the pure-STM
   map, but not on a Proustian map with per-key striping.              *)

(* A deterministic interleaving: T0 reads key [k1], then waits until T1
   has committed an update to key [k2], then writes [k1] and tries to
   commit.  If the synchronization metadata for the two (distinct!)
   keys collides, T0's first attempt must abort; if not, nothing
   aborts. *)
let scheduled_conflict (ops : (int, int) S.Trait.Map.ops) k1 k2 =
  Stats.reset ();
  let t0_read = Atomic.make 0 and t1_done = Atomic.make 0 in
  let d0 =
    Domain.spawn (fun () ->
        Stm.atomically (fun txn ->
            ignore (ops.S.Trait.Map.get txn k1);
            Atomic.incr t0_read;
            while Atomic.get t1_done = 0 do
              Domain.cpu_relax ()
            done;
            ignore (ops.S.Trait.Map.put txn k1 1)))
  in
  let d1 =
    Domain.spawn (fun () ->
        while Atomic.get t0_read = 0 do
          Domain.cpu_relax ()
        done;
        Stm.atomically (fun txn -> ignore (ops.S.Trait.Map.put txn k2 2));
        Atomic.set t1_done 1)
  in
  Domain.join d0;
  Domain.join d1;
  (Stats.read ()).Stats.aborts

let test_false_conflicts () =
  (* stm-map with a single bucket: the two distinct keys share it, so
     the schedule must produce a false conflict (§1's motivation). *)
  let stm_map = B.Stm_hashmap.ops (B.Stm_hashmap.make ~buckets:1 ()) in
  let stm_aborts = scheduled_conflict stm_map 0 1 in
  check cb "pure-STM map false-conflicts on distinct keys" true
    (stm_aborts >= 1);
  (* A Proustian map with ample striping keeps the keys apart: the
     same schedule commits both transactions without any abort. *)
  let proust = S.P_lazy_hashmap.ops (S.P_lazy_hashmap.make ~slots:4096 ()) in
  let proust_aborts = scheduled_conflict proust 0 1 in
  check ci "proust map has no false conflict" 0 proust_aborts

(* Predication-specific: predicates are reused per key. *)
let test_predication_predicate_reuse () =
  let m = B.Predication_map.make () in
  ignore (Stm.atomically (fun txn -> B.Predication_map.put m txn 1 10));
  ignore (Stm.atomically (fun txn -> B.Predication_map.remove m txn 1));
  (* Removing leaves the predicate in place holding None. *)
  check copt_i "absent after remove" None
    (Stm.atomically (fun txn -> B.Predication_map.get m txn 1));
  ignore (Stm.atomically (fun txn -> B.Predication_map.put m txn 1 20));
  check copt_i "rebound" (Some 20)
    (Stm.atomically (fun txn -> B.Predication_map.get m txn 1));
  check ci "size tracked across reuse" 1 (B.Predication_map.committed_size m)

let test_stm_map_size_consistency () =
  let m = B.Stm_hashmap.make ~track_size:true () in
  let ops = B.Stm_hashmap.ops m in
  spawn_all 4 (fun d ->
      for i = 0 to 99 do
        ignore
          (Stm.atomically (fun txn -> ops.S.Trait.Map.put txn ((d * 100) + i) i))
      done);
  check ci "transactional size exact" 400
    (Stm.atomically (fun txn -> ops.S.Trait.Map.size txn))

let suite =
  per_baseline_tests
  @ [
      slow "false conflicts: stm-map vs proust" test_false_conflicts;
      test "predication predicate reuse" test_predication_predicate_reuse;
      slow "stm-map transactional size" test_stm_map_size_consistency;
    ]
